//! Fabric construction: topology building, cable wiring, and subnet-manager
//! route computation.
//!
//! [`FabricBuilder`] accumulates HCAs, switches, bridges (e.g. the Obsidian
//! Longbow pair from the `obsidian` crate), and cables; [`FabricBuilder::finish`]
//! wires egress ports, runs the subnet manager (BFS shortest-path LID routing,
//! which is how a real SM programs linear forwarding tables), and schedules
//! every ULP's `start` callback at time zero.

use crate::hca::{HcaActor, HcaConfig, HcaCore, START_TOKEN};
use crate::link::{EgressPort, LinkConfig};
use crate::switch::Switch;
use crate::types::Lid;
use crate::ulp::Ulp;
use simcore::domain::{self, DomainReport, DomainSpec};
use simcore::{Actor, ActorId, Dur, Engine, EngineCounters, Time};
use std::cell::RefCell;
use std::collections::VecDeque;

/// How `Fabric::run` chooses between the serial and the partitioned engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum PartitionMode {
    /// Partition when the topology splits at WAN boundaries, the lookahead
    /// window is wide enough to amortize synchronization, and spare cores
    /// exist (after subtracting sweep workers). The default.
    Auto = 0,
    /// Always run serially (`repro --serial`, `IBWAN_SERIAL=1`).
    Off = 1,
    /// Partition whenever a domain plan exists, regardless of core count or
    /// window width — used by A/B determinism tests and the perf harness's
    /// parallel column.
    Force = 2,
}

/// Engine execution knobs carried by every fabric, set at build time and
/// immutable afterwards. This replaces the old process-global
/// `set_default_coalescing`/`set_partition_mode` setters: harnesses thread a
/// profile (usually derived from `ibwan_core`'s `RunConfig`) down through
/// the experiment constructors instead of mutating statics. Both knobs are
/// A/B-invisible in every virtual-time observable — enforced by the
/// determinism suites — so a profile only changes wall-clock behaviour.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EngineProfile {
    /// Fragment-train coalescing on the wire path (topology safety checks
    /// still apply; see [`FabricBuilder::finish`]).
    pub coalescing: bool,
    /// Serial vs partitioned engine choice for [`Fabric::run`].
    pub partition: PartitionMode,
}

impl Default for EngineProfile {
    fn default() -> Self {
        EngineProfile {
            coalescing: true,
            partition: PartitionMode::Auto,
        }
    }
}

impl EngineProfile {
    /// The default profile with the partitioned engine pinned off
    /// (`repro --serial`).
    pub fn serial() -> Self {
        EngineProfile {
            partition: PartitionMode::Off,
            ..EngineProfile::default()
        }
    }

    /// The default profile with partitioning forced wherever a domain plan
    /// exists (A/B harnesses, the perf parallel column).
    pub fn forced() -> Self {
        EngineProfile {
            partition: PartitionMode::Force,
            ..EngineProfile::default()
        }
    }

    /// The default profile with the per-fragment wire path
    /// (`repro --no-coalescing`).
    pub fn no_coalescing() -> Self {
        EngineProfile {
            coalescing: false,
            ..EngineProfile::default()
        }
    }
}

/// Auto mode only partitions when the window is at least this wide: below
/// ~100 µs of lookahead the per-round barrier cost eats the win on typical
/// intra-cluster event densities (the paper's interesting WAN regime is
/// 1–10 ms anyway).
pub const AUTO_MIN_LOOKAHEAD: Dur = Dur::from_us(100);

/// How many events Auto's density probe executes serially before deciding
/// serial vs. partitioned. Large enough to see past the time-zero startup
/// burst into steady-state traffic, small enough to be free (a full figure
/// run is millions of events).
pub const AUTO_PROBE_EVENTS: u64 = 4096;

/// Auto partitions only when at most this fraction of probed events crossed
/// the domain cut: staging, channel transfer, and wire-tail bookkeeping tax
/// every crossing, so a cut that most traffic straddles parallelizes badly.
const AUTO_MAX_CROSS_SHARE: f64 = 0.25;

/// Auto partitions only when the probed prefix averaged at least this many
/// events per domain per minimum-lookahead window — the work a window must
/// hold for batching to amortize its synchronization.
const AUTO_MIN_WINDOW_EVENTS: f64 = 4.0;

/// Events dispatched per domain index are folded into this many slots.
const DOMAIN_TALLY_SLOTS: usize = 8;

/// Engine work accumulated by every [`Fabric::run`] on the current thread
/// since the last [`reset_run_tally`]. Experiment constructors bury their
/// fabrics, so harnesses (the provenance-stamping runner, `perf`) read
/// per-experiment engine stats from here. The tally is **thread-local**:
/// sweep workers each accumulate their own and `sweep::parallel_map` merges
/// them back into the calling thread, so concurrent experiments never bleed
/// counters into each other the way the old process-wide atomics did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunTally {
    /// Summed engine-counter deltas across runs (`peak_queue_len` is a max).
    pub counters: EngineCounters,
    /// `Fabric::run` calls that executed partitioned.
    pub partitioned_runs: u64,
    /// `Fabric::run` calls that executed serially.
    pub serial_runs: u64,
    /// Total synchronization rounds across all partitioned runs.
    pub sync_rounds: u64,
    /// Widest split seen (0 when everything ran serially).
    pub max_domains: u64,
    /// Events dispatched per domain index (capped at 8 slots; wider splits
    /// fold into the last slot), trimmed to the widest split observed.
    pub events_per_domain: Vec<u64>,
}

impl RunTally {
    /// Fold another tally (e.g. a sweep worker's) into this one.
    pub fn merge(&mut self, other: &RunTally) {
        self.counters += other.counters;
        self.partitioned_runs += other.partitioned_runs;
        self.serial_runs += other.serial_runs;
        self.sync_rounds += other.sync_rounds;
        self.max_domains = self.max_domains.max(other.max_domains);
        if self.events_per_domain.len() < other.events_per_domain.len() {
            self.events_per_domain
                .resize(other.events_per_domain.len(), 0);
        }
        for (slot, &events) in other.events_per_domain.iter().enumerate() {
            self.events_per_domain[slot] += events;
        }
    }

    /// Fraction of would-be hop events that rode inside a train instead:
    /// `fragments_coalesced / (events_processed + fragments_coalesced)`.
    pub fn coalescing_ratio(&self) -> f64 {
        let c = &self.counters;
        let total = c.events_processed + c.fragments_coalesced;
        if total == 0 {
            0.0
        } else {
            c.fragments_coalesced as f64 / total as f64
        }
    }
}

thread_local! {
    static RUN_TALLY: RefCell<RunTally> = RefCell::new(RunTally::default());
}

/// Reset the current thread's run tally (call before an experiment).
pub fn reset_run_tally() {
    RUN_TALLY.with(|t| *t.borrow_mut() = RunTally::default());
}

/// Take the current thread's run tally, leaving it reset.
pub fn take_run_tally() -> RunTally {
    RUN_TALLY.with(|t| std::mem::take(&mut *t.borrow_mut()))
}

/// A snapshot of the current thread's run tally.
pub fn run_tally() -> RunTally {
    RUN_TALLY.with(|t| t.borrow().clone())
}

/// Fold a tally captured on another thread (a finished sweep worker) into
/// the current thread's tally.
pub fn merge_run_tally(other: &RunTally) {
    RUN_TALLY.with(|t| t.borrow_mut().merge(other));
}

/// Per-run engine-counter delta: monotonic fields subtract; the queue
/// high-water mark is not differentiable, so the run inherits the engine's
/// lifetime peak.
fn counters_delta(after: &EngineCounters, before: &EngineCounters) -> EngineCounters {
    EngineCounters {
        events_processed: after.events_processed - before.events_processed,
        events_allocated: after.events_allocated - before.events_allocated,
        pool_hits: after.pool_hits - before.pool_hits,
        peak_queue_len: after.peak_queue_len,
        timers_cancelled: after.timers_cancelled - before.timers_cancelled,
        trains_emitted: after.trains_emitted - before.trains_emitted,
        fragments_coalesced: after.fragments_coalesced - before.fragments_coalesced,
        sync_rounds_saved: after.sync_rounds_saved - before.sync_rounds_saved,
        barrier_ns: after.barrier_ns - before.barrier_ns,
        round_events: std::array::from_fn(|b| after.round_events[b] - before.round_events[b]),
    }
}

/// Anything the builder can wire a cable into.
pub trait PortAttach: Actor {
    /// Attach `egress` as this entity's port `idx`.
    fn attach_port(&mut self, idx: usize, egress: EgressPort);

    /// Minimum extra virtual-time delay this entity adds between receiving a
    /// packet and emitting it onward — its contribution to cross-domain
    /// lookahead when it sits on a partition boundary. `None` (the default)
    /// means "unknown": a boundary through this entity cannot be partitioned.
    /// WAN extenders (the Obsidian Longbow) override this with their transit
    /// latency plus injected WAN delay.
    fn forward_lookahead(&self) -> Option<Dur> {
        None
    }
}

impl PortAttach for HcaActor {
    fn attach_port(&mut self, idx: usize, egress: EgressPort) {
        assert_eq!(idx, 0, "HCAs are single-ported in this model");
        self.core_mut().attach_port(egress);
    }
}

impl PortAttach for Switch {
    fn attach_port(&mut self, idx: usize, egress: EgressPort) {
        Switch::attach_port(self, idx, egress);
    }
}

/// A fabric endpoint: the actor id of its HCA and its assigned LID.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NodeHandle {
    /// Engine actor id of the [`HcaActor`].
    pub actor: ActorId,
    /// Subnet-manager-assigned LID.
    pub lid: Lid,
}

enum Kind {
    Endpoint(#[allow(dead_code)] Lid),
    Switch,
    /// Transparent two-port bridge (range extender); no routing table.
    Bridge,
    /// Non-fabric actor (benchmark drivers etc.).
    Other,
}

type AttachFn = Box<dyn Fn(&mut Engine, ActorId, usize, EgressPort)>;
type LookaheadFn = Box<dyn Fn(&Engine, ActorId) -> Option<Dur>>;

/// Builds a fabric on top of a fresh [`Engine`].
pub struct FabricBuilder {
    engine: Engine,
    kinds: Vec<Kind>,
    attachers: Vec<Option<AttachFn>>,
    lookaheads: Vec<Option<LookaheadFn>>,
    /// adjacency: for each actor, (peer actor, local port idx, link cfg)
    adj: Vec<Vec<(ActorId, usize, LinkConfig)>>,
    ports_used: Vec<usize>,
    next_lid: u16,
    nodes: Vec<NodeHandle>,
    profile: EngineProfile,
    partitioning: bool,
}

impl FabricBuilder {
    /// Start building with a deterministic seed and the default
    /// [`EngineProfile`] (coalescing on, auto partitioning).
    pub fn new(seed: u64) -> Self {
        FabricBuilder::with_profile(seed, EngineProfile::default())
    }

    /// Start building with a deterministic seed and an explicit engine
    /// profile — the entry point for `RunConfig`-threaded harnesses.
    pub fn with_profile(seed: u64, profile: EngineProfile) -> Self {
        FabricBuilder {
            engine: Engine::new(seed),
            kinds: Vec::new(),
            attachers: Vec::new(),
            lookaheads: Vec::new(),
            adj: Vec::new(),
            ports_used: Vec::new(),
            next_lid: 1,
            nodes: Vec::new(),
            profile,
            partitioning: true,
        }
    }

    /// Explicitly enable/disable fragment-train coalescing for this fabric
    /// (overrides the profile; topology safety checks still apply).
    pub fn set_coalescing(&mut self, on: bool) {
        self.profile.coalescing = on;
    }

    /// Force the per-fragment path for this fabric — used by components that
    /// introduce per-fragment divergence trains cannot express (e.g. random
    /// per-fragment loss injection).
    pub fn disable_coalescing(&mut self) {
        self.profile.coalescing = false;
    }

    /// Force serial execution for this fabric — used by components whose
    /// behaviour depends on engine-global state the partitioned engine cannot
    /// replicate bit-identically (e.g. random loss drawing from the shared
    /// RNG: per-domain engines hold per-domain generators, so draw order
    /// would diverge from the serial run).
    pub fn disable_partitioning(&mut self) {
        self.partitioning = false;
    }

    fn register<T: PortAttach>(&mut self, actor: Box<T>, kind: Kind) -> ActorId {
        let id = self.engine.add_actor(actor);
        debug_assert_eq!(id, self.kinds.len());
        self.kinds.push(kind);
        self.attachers.push(Some(Box::new(
            |eng: &mut Engine, id: ActorId, idx: usize, eg: EgressPort| {
                eng.actor_mut::<T>(id).attach_port(idx, eg);
            },
        )));
        self.lookaheads
            .push(Some(Box::new(|eng: &Engine, id: ActorId| -> Option<Dur> {
                eng.actor::<T>(id).forward_lookahead()
            })));
        self.adj.push(Vec::new());
        self.ports_used.push(0);
        id
    }

    /// Add a compute node: an HCA running `ulp`. A LID is assigned.
    pub fn add_hca(&mut self, cfg: HcaConfig, ulp: Box<dyn Ulp>) -> NodeHandle {
        let lid = Lid(self.next_lid);
        self.next_lid += 1;
        let core = HcaCore::new(lid, cfg);
        let actor = self.register(Box::new(HcaActor::new(core, ulp)), Kind::Endpoint(lid));
        let handle = NodeHandle { actor, lid };
        self.nodes.push(handle);
        handle
    }

    /// Add a switch.
    pub fn add_switch(&mut self) -> ActorId {
        self.register(Box::new(Switch::new()), Kind::Switch)
    }

    /// Add a transparent two-port bridge (e.g. an Obsidian Longbow).
    pub fn add_bridge<T: PortAttach>(&mut self, bridge: Box<T>) -> ActorId {
        self.register(bridge, Kind::Bridge)
    }

    /// Add a non-fabric actor (driver, coordinator). It gets no ports. Such
    /// actors have no cables to infer a domain from, so their presence
    /// disables partitioning for the fabric.
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let id = self.engine.add_actor(actor);
        self.kinds.push(Kind::Other);
        self.attachers.push(None);
        self.lookaheads.push(None);
        self.adj.push(Vec::new());
        self.ports_used.push(0);
        id
    }

    /// Mutable engine access during construction (e.g. to configure ULPs).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Cable two fabric entities together with symmetric link parameters.
    pub fn link(&mut self, a: ActorId, b: ActorId, cfg: LinkConfig) {
        for &(id, peer) in &[(a, b), (b, a)] {
            assert!(
                !matches!(self.kinds[id], Kind::Other),
                "cannot cable a non-fabric actor"
            );
            let port = self.ports_used[id];
            if let Kind::Endpoint(_) = self.kinds[id] {
                assert_eq!(port, 0, "HCAs take exactly one cable");
            }
            self.ports_used[id] += 1;
            self.adj[id].push((peer, port, cfg));
        }
    }

    /// Wire ports, run the subnet manager, schedule ULP starts, and return
    /// the runnable fabric.
    pub fn finish(mut self) -> Fabric {
        // Attach egress ports for every adjacency entry.
        for id in 0..self.adj.len() {
            let Some(attach) = self.attachers[id].as_ref() else {
                continue;
            };
            for &(peer, port, cfg) in &self.adj[id] {
                attach(&mut self.engine, id, port, EgressPort::new(peer, cfg));
            }
        }

        // Subnet manager: BFS from every endpoint; each switch routes the
        // endpoint's LID out the port it was discovered through.
        let n = self.adj.len();
        for &NodeHandle { actor: end, lid } in &self.nodes {
            let mut seen = vec![false; n];
            let mut queue = VecDeque::new();
            seen[end] = true;
            queue.push_back(end);
            while let Some(u) = queue.pop_front() {
                // Iterate copies to appease the borrow checker.
                let neighbors: Vec<(ActorId, usize)> =
                    self.adj[u].iter().map(|&(p, _, _)| (p, 0)).collect();
                for (v, _) in neighbors {
                    if seen[v] {
                        continue;
                    }
                    seen[v] = true;
                    // v was discovered via u: v's route to `lid` is its port
                    // facing u.
                    if matches!(self.kinds[v], Kind::Switch) {
                        let port_to_u = self.adj[v]
                            .iter()
                            .find(|&&(p, _, _)| p == u)
                            .map(|&(_, port, _)| port)
                            .expect("adjacency must be symmetric");
                        self.engine
                            .actor_mut::<Switch>(v)
                            .set_route(lid.0, port_to_u);
                    }
                    queue.push_back(v);
                }
            }
        }

        // Fragment trains are only exact when no switch can merge competing
        // flows onto one egress port mid-train: a >2-port switch may
        // interleave two flows' fragments on shared egress, which per-train
        // reservation cannot reproduce. Pipeline topologies (HCA–HCA,
        // HCA–switch–HCA, WAN bridges) are safe.
        let safe = self
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| matches!(k, Kind::Switch))
            .all(|(id, _)| self.ports_used[id] <= 2);
        let coalesce = self.profile.coalescing && safe;
        for &NodeHandle { actor, .. } in &self.nodes {
            self.engine
                .actor_mut::<HcaActor>(actor)
                .core_mut()
                .set_coalescing(coalesce);
        }

        // Kick every ULP at time zero.
        for &NodeHandle { actor, .. } in &self.nodes {
            self.engine.schedule_timer(Time::ZERO, actor, START_TOKEN);
        }

        let switches = self
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| matches!(k, Kind::Switch))
            .map(|(id, _)| id)
            .collect();
        let plan = self.compute_plan();
        Fabric {
            engine: self.engine,
            nodes: self.nodes,
            switches,
            plan,
            partition: self.profile.partition,
            last_domain_report: None,
        }
    }

    /// Derive the domain plan: cut the topology at every bridge–bridge cable
    /// (the Longbow–Longbow WAN links), make each remaining connected
    /// component a domain, and bound the cross-domain lookahead per cut-edge
    /// direction. Returns `None` whenever the split would be unsound or
    /// useless, in which case the fabric always runs serially:
    ///
    /// * partitioning disabled (random loss needs the shared RNG order),
    /// * non-fabric actors present (no cables → no domain assignment),
    /// * fewer than two components after the cut,
    /// * a boundary bridge with unknown forward delay, or
    /// * a component no cut edge leads into (it could never be woken).
    fn compute_plan(&self) -> Option<DomainSpec> {
        if !self.partitioning {
            return None;
        }
        if self.kinds.iter().any(|k| matches!(k, Kind::Other)) {
            return None;
        }
        let n = self.adj.len();
        let is_cut = |a: ActorId, b: ActorId| {
            matches!(self.kinds[a], Kind::Bridge) && matches!(self.kinds[b], Kind::Bridge)
        };

        // Connected components of the cable graph minus cut edges.
        let mut domain_of = vec![u32::MAX; n];
        let mut domains = 0u32;
        for start in 0..n {
            if domain_of[start] != u32::MAX {
                continue;
            }
            domain_of[start] = domains;
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &(v, _, _) in &self.adj[u] {
                    if domain_of[v] == u32::MAX && !is_cut(u, v) {
                        domain_of[v] = domains;
                        queue.push_back(v);
                    }
                }
            }
            domains += 1;
        }
        if domains < 2 {
            return None;
        }

        // Lookahead per ordered domain pair: for a message crossing the cut
        // cable a→b, the minimum delay after the sending bridge's event is
        // the cable's propagation latency, plus — on uncredited cables —
        // the bridge's own forward delay (transit + injected WAN delay; the
        // bridge buffers before emitting). Credited cables return
        // `CreditMsg`s at bare cable latency, so the forward delay cannot be
        // counted for them.
        //
        // Alongside the static bound, classify each direction for the
        // train-aware wire-tail promise (`DomainSpec::tail_safe`): it holds
        // only when every `da → db` message is serialized through a single
        // physical path, i.e. exactly one cut cable connects the ordered
        // pair and nothing bypasses its port serialization. Credit returns
        // are scheduled at bare cable latency without riding the egress
        // port, so a credited cut cable voids the promise in both
        // directions it can carry credits.
        let d = domains as usize;
        let mut lookahead_ns = vec![vec![u64::MAX; d]; d];
        let mut cut_cables = vec![vec![0u32; d]; d];
        let mut serialized = vec![vec![true; d]; d];
        for a in 0..n {
            for &(b, _, cfg) in &self.adj[a] {
                if !is_cut(a, b) {
                    continue;
                }
                let (da, db) = (domain_of[a] as usize, domain_of[b] as usize);
                if da == db {
                    // A redundant bridge cable inside one domain: harmless.
                    continue;
                }
                let mut l = cfg.latency;
                if cfg.credit_packets.is_none() {
                    let fwd = self.lookaheads[a].as_ref()?(&self.engine, a)?;
                    l += fwd;
                } else {
                    serialized[da][db] = false;
                }
                cut_cables[da][db] += 1;
                let slot = &mut lookahead_ns[da][db];
                *slot = (*slot).min(l.as_ns());
            }
        }
        let mut tail_safe = vec![vec![false; d]; d];
        for s in 0..d {
            for t in 0..d {
                tail_safe[s][t] = cut_cables[s][t] == 1 && serialized[s][t];
            }
        }

        let spec = DomainSpec {
            domains: d,
            domain_of,
            lookahead_ns,
            tail_safe,
        };
        spec.is_runnable().then_some(spec)
    }
}

/// A wired, runnable fabric.
pub struct Fabric {
    /// The underlying engine; run it with [`Engine::run`] or step manually.
    pub engine: Engine,
    nodes: Vec<NodeHandle>,
    switches: Vec<ActorId>,
    /// Domain split derived at build time; `None` → always serial.
    plan: Option<DomainSpec>,
    /// Serial vs partitioned engine choice, fixed at build time from the
    /// builder's [`EngineProfile`].
    partition: PartitionMode,
    /// Stats from the most recent partitioned [`Fabric::run`] (cleared by a
    /// serial run).
    last_domain_report: Option<DomainReport>,
}

impl Fabric {
    /// All endpoints in creation order.
    pub fn nodes(&self) -> &[NodeHandle] {
        &self.nodes
    }

    /// Borrow a node's [`HcaActor`].
    pub fn hca(&self, node: NodeHandle) -> &HcaActor {
        self.engine.actor::<HcaActor>(node.actor)
    }

    /// Mutably borrow a node's [`HcaActor`].
    pub fn hca_mut(&mut self, node: NodeHandle) -> &mut HcaActor {
        self.engine.actor_mut::<HcaActor>(node.actor)
    }

    /// The domain split this fabric would run partitioned with, if any.
    pub fn domain_plan(&self) -> Option<&DomainSpec> {
        self.plan.as_ref()
    }

    /// Stats from the most recent [`Fabric::run`], if it ran partitioned.
    pub fn domain_report(&self) -> Option<&DomainReport> {
        self.last_domain_report.as_ref()
    }

    /// Whether `run` would consider the partitioned path right now, given
    /// the plan, the fabric's build-time [`PartitionMode`], and (in auto
    /// mode) the lookahead width and spare-core budget. Auto additionally
    /// runs a density probe inside [`Fabric::run`] before committing.
    fn should_partition(&self) -> bool {
        let Some(plan) = self.plan.as_ref() else {
            return false;
        };
        match self.partition {
            PartitionMode::Off => false,
            PartitionMode::Force => self.engine.trace().is_none(),
            PartitionMode::Auto => {
                if self.engine.trace().is_some() {
                    return false; // one bounded trace can't span two threads
                }
                if plan.min_lookahead() < Some(AUTO_MIN_LOOKAHEAD) {
                    return false; // window too narrow to amortize barriers
                }
                // Thread budget: spare cores after sweep workers (or the
                // per-job allowance a pool granted us). On a 1-core box this
                // is 1 < domains, so Auto always runs serially — it can
                // never be slower than serial there.
                domain::spawn_budget() >= plan.domains
            }
        }
    }

    /// Auto's density probe: run a short serial prefix with cross-domain
    /// tallying enabled, then decide whether the partitioned engine can win.
    /// The prefix is byte-for-byte the serial simulation, so the probe never
    /// perturbs results regardless of the verdict. Returns `true` when the
    /// remainder should run partitioned.
    ///
    /// The verdict needs two things to hold (both computed over the probed
    /// prefix, from `EngineCounters` plus the probe tally):
    ///
    /// * **cross-domain share** `cross / events` at most
    ///   [`AUTO_MAX_CROSS_SHARE`] — domains must mostly mind their own
    ///   business, or staging overhead swamps the parallelism;
    /// * **event density** of at least [`AUTO_MIN_WINDOW_EVENTS`] events per
    ///   domain per minimum-lookahead window — otherwise each window holds
    ///   too little work to amortize its synchronization. A prefix that
    ///   never advanced virtual time counts as infinitely dense.
    fn auto_probe(&mut self) -> bool {
        let plan = self.plan.as_ref().expect("caller checked plan");
        let events_before = self.engine.counters().events_processed;
        let time_before = self.engine.now();
        let saved_limit = self.engine.event_limit();

        self.engine.begin_partition_probe(&plan.domain_of);
        self.engine
            .set_event_limit(saved_limit.min(events_before.saturating_add(AUTO_PROBE_EVENTS)));
        self.engine.run();
        let cross = self.engine.end_partition_probe();
        self.engine.set_event_limit(saved_limit);

        if self.engine.next_event_time().is_none() || self.engine.stopped() {
            // The whole simulation fit inside the probe; nothing left to
            // parallelize.
            return false;
        }
        let events = self.engine.counters().events_processed - events_before;
        if events == 0 {
            return false;
        }
        let cross_share = cross as f64 / events as f64;
        if cross_share > AUTO_MAX_CROSS_SHARE {
            return false;
        }
        let elapsed_ns = self.engine.now().since(time_before).as_ns();
        if elapsed_ns == 0 {
            return true; // startup burst: maximal density
        }
        let window_ns = plan
            .min_lookahead()
            .expect("plan with no cut edges is not runnable")
            .as_ns();
        let per_window_per_domain =
            events as f64 * window_ns as f64 / elapsed_ns as f64 / plan.domains as f64;
        per_window_per_domain >= AUTO_MIN_WINDOW_EVENTS
    }

    /// Run the simulation to quiescence; returns final virtual time.
    ///
    /// Chooses between the serial event loop and the partitioned engine
    /// ([`simcore::domain::run_partitioned`]) per [`Fabric::should_partition`];
    /// in [`PartitionMode::Auto`] a density probe ([`Fabric::auto_probe`])
    /// additionally vets the workload over a short serial prefix. The serial
    /// and partitioned paths are bit-identical in every virtual-time
    /// observable, so the choice is invisible to experiments (enforced by
    /// the A/B determinism suite in `bench/tests/determinism.rs`).
    pub fn run(&mut self) -> Time {
        let before = self.engine.counters();
        let mut partitioned = self.should_partition();
        if partitioned && self.partition == PartitionMode::Auto && !self.auto_probe() {
            partitioned = false;
        }
        let t = if partitioned {
            let plan = self.plan.as_ref().expect("should_partition checked plan");
            let report = domain::run_partitioned(&mut self.engine, plan);
            RUN_TALLY.with(|tally| {
                let mut tally = tally.borrow_mut();
                tally.partitioned_runs += 1;
                tally.sync_rounds += report.sync_rounds;
                tally.max_domains = tally.max_domains.max(report.domains as u64);
                let slots = report.events_per_domain.len().min(DOMAIN_TALLY_SLOTS);
                if tally.events_per_domain.len() < slots {
                    tally.events_per_domain.resize(slots, 0);
                }
                for (d, &events) in report.events_per_domain.iter().enumerate() {
                    tally.events_per_domain[d.min(DOMAIN_TALLY_SLOTS - 1)] += events;
                }
            });
            self.last_domain_report = Some(report);
            self.engine.now()
        } else {
            RUN_TALLY.with(|tally| tally.borrow_mut().serial_runs += 1);
            self.last_domain_report = None;
            self.engine.run()
        };
        let after = self.engine.counters();
        RUN_TALLY.with(|tally| {
            let delta = counters_delta(&after, &before);
            tally.borrow_mut().counters += delta;
        });
        t
    }

    /// All switch actor ids (creation order).
    pub fn switches(&self) -> &[ActorId] {
        &self.switches
    }

    /// Aggregate traffic statistics across the fabric — post-run diagnosis
    /// of who moved what.
    pub fn report(&self) -> FabricReport {
        let mut r = FabricReport::default();
        for &node in &self.nodes {
            let core = self.hca(node).core();
            r.hca_packets_sent += core.packets_sent();
            r.hca_packets_received += core.packets_received();
        }
        for &sw in &self.switches {
            r.switch_packets_forwarded += self.engine.actor::<Switch>(sw).forwarded();
        }
        r.nodes = self.nodes.len();
        r.switches = self.switches.len();
        r.engine_counters = self.engine.counters();
        if let Some(d) = &self.last_domain_report {
            r.domains = d.domains;
            r.sync_rounds = d.sync_rounds;
        }
        r
    }
}

/// Fabric-wide traffic totals from [`Fabric::report`].
///
/// Equality deliberately skips `domains` and `sync_rounds`: they describe
/// *how* the engine executed (serial vs. partitioned, how often a domain
/// blocked), not what the simulated fabric did, and the A/B determinism
/// suites compare serial and partitioned reports with `==`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricReport {
    /// Endpoint count.
    pub nodes: usize,
    /// Switch count.
    pub switches: usize,
    /// Packets emitted by all HCAs (data + ACKs + retransmissions).
    pub hca_packets_sent: u64,
    /// Packets delivered to all HCAs.
    pub hca_packets_received: u64,
    /// Forwarding operations across all switches.
    pub switch_packets_forwarded: u64,
    /// Domains the most recent run was split into (0 = ran serially).
    pub domains: usize,
    /// Synchronization rounds the most recent partitioned run executed
    /// (0 = ran serially).
    pub sync_rounds: u64,
    /// Event-engine hot-path counters (allocations, pool hits, queue depth).
    pub engine_counters: simcore::EngineCounters,
}

impl PartialEq for FabricReport {
    fn eq(&self, other: &Self) -> bool {
        // See the struct doc: execution-strategy fields are excluded.
        // `engine_counters` equality is itself the schedule-independent
        // subset defined in `simcore`.
        self.nodes == other.nodes
            && self.switches == other.switches
            && self.hca_packets_sent == other.hca_packets_sent
            && self.hca_packets_received == other.hca_packets_received
            && self.switch_packets_forwarded == other.switch_packets_forwarded
            && self.engine_counters == other.engine_counters
    }
}

impl Eq for FabricReport {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::QpConfig;
    use crate::ulp::NullUlp;
    use crate::verbs::{Completion, RecvWr, SendWr};
    use simcore::Ctx;

    /// ULP that sends one message to a peer on start and records receptions.
    struct OneShot {
        peer: Option<(Lid, crate::qp::Qpn)>,
        len: u32,
        got: Vec<(u32, u64)>,
        send_done_at: Option<Time>,
        recv_done_at: Option<Time>,
    }

    impl OneShot {
        fn new() -> Self {
            OneShot {
                peer: None,
                len: 0,
                got: vec![],
                send_done_at: None,
                recv_done_at: None,
            }
        }
    }

    impl Ulp for OneShot {
        fn start(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
            // Both sides made QP 0 during setup (test harness below).
            if let Some(peer) = self.peer {
                let qpn = crate::qp::Qpn(0);
                hca.connect(qpn, peer);
                hca.post_send(ctx, qpn, SendWr::send(1, self.len, 99));
            }
        }
        fn on_completion(&mut self, _hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
            match c {
                Completion::SendDone { .. } => self.send_done_at = Some(ctx.now()),
                Completion::RecvDone { len, imm, .. } => {
                    self.got.push((len, imm));
                    self.recv_done_at = Some(ctx.now());
                }
                Completion::WriteArrived { .. } => {}
            }
        }
    }

    fn two_nodes_via_switch(len: u32) -> (Fabric, NodeHandle, NodeHandle) {
        let mut b = FabricBuilder::new(7);
        let n1 = b.add_hca(HcaConfig::default(), Box::new(OneShot::new()));
        let n2 = b.add_hca(HcaConfig::default(), Box::new(OneShot::new()));
        let sw = b.add_switch();
        b.link(n1.actor, sw, LinkConfig::ddr_lan());
        b.link(n2.actor, sw, LinkConfig::ddr_lan());
        let mut f = b.finish();
        // Create QPs and connect: sender n1 -> receiver n2.
        let q1 = f.hca_mut(n1).core_mut().create_qp(QpConfig::rc());
        let q2 = f.hca_mut(n2).core_mut().create_qp(QpConfig::rc());
        f.hca_mut(n2).core_mut().connect(q2, (n1.lid, q1));
        f.hca_mut(n2).core_mut().post_recv(q2, RecvWr { wr_id: 0 });
        let ulp = f.hca_mut(n1).ulp_mut::<OneShot>();
        ulp.peer = Some((n2.lid, q2));
        ulp.len = len;
        (f, n1, n2)
    }

    #[test]
    fn end_to_end_send_through_switch() {
        let (mut f, n1, n2) = two_nodes_via_switch(4096);
        f.run();
        let rx = f.hca(n2).ulp::<OneShot>();
        assert_eq!(rx.got, vec![(4096, 99)]);
        let tx = f.hca(n1).ulp::<OneShot>();
        // Sender completes only after the ACK returns: later than receiver.
        assert!(tx.send_done_at.unwrap() > rx.recv_done_at.unwrap() - simcore::Dur::from_us(1));
    }

    #[test]
    fn lids_are_unique_and_dense() {
        let mut b = FabricBuilder::new(1);
        let n1 = b.add_hca(HcaConfig::default(), Box::new(NullUlp));
        let n2 = b.add_hca(HcaConfig::default(), Box::new(NullUlp));
        let n3 = b.add_hca(HcaConfig::default(), Box::new(NullUlp));
        assert_eq!((n1.lid, n2.lid, n3.lid), (Lid(1), Lid(2), Lid(3)));
    }

    #[test]
    fn routing_across_two_switches() {
        // n1 - sw1 - sw2 - n2: the SM must install routes on both switches.
        let mut b = FabricBuilder::new(7);
        let n1 = b.add_hca(HcaConfig::default(), Box::new(OneShot::new()));
        let n2 = b.add_hca(HcaConfig::default(), Box::new(OneShot::new()));
        let sw1 = b.add_switch();
        let sw2 = b.add_switch();
        b.link(n1.actor, sw1, LinkConfig::ddr_lan());
        b.link(sw1, sw2, LinkConfig::ddr_lan());
        b.link(n2.actor, sw2, LinkConfig::ddr_lan());
        let mut f = b.finish();
        let q1 = f.hca_mut(n1).core_mut().create_qp(QpConfig::rc());
        let q2 = f.hca_mut(n2).core_mut().create_qp(QpConfig::rc());
        f.hca_mut(n2).core_mut().connect(q2, (n1.lid, q1));
        f.hca_mut(n2).core_mut().post_recv(q2, RecvWr { wr_id: 0 });
        let ulp = f.hca_mut(n1).ulp_mut::<OneShot>();
        ulp.peer = Some((n2.lid, q2));
        ulp.len = 100;
        f.run();
        assert_eq!(f.hca(n2).ulp::<OneShot>().got, vec![(100, 99)]);
    }

    #[test]
    fn report_counts_traffic() {
        let (mut f, _n1, _n2) = two_nodes_via_switch(4096);
        f.run();
        let r = f.report();
        assert_eq!(r.nodes, 2);
        assert_eq!(r.switches, 1);
        // 2 data fragments + 1 ACK, each crossing the switch once.
        assert_eq!(r.hca_packets_sent, 3);
        assert_eq!(r.hca_packets_received, 3);
        assert_eq!(r.switch_packets_forwarded, 3);
    }

    #[test]
    fn lan_fabrics_have_no_domain_plan() {
        // No bridges → nothing to cut → always serial.
        let (f, _n1, _n2) = two_nodes_via_switch(1024);
        assert!(f.domain_plan().is_none());
    }

    #[test]
    fn non_fabric_actors_disable_partitioning() {
        struct Idle;
        impl simcore::Actor for Idle {
            fn on_message(
                &mut self,
                _ctx: &mut simcore::Ctx<'_>,
                _from: ActorId,
                _msg: Box<dyn std::any::Any>,
            ) {
            }
        }
        let mut b = FabricBuilder::new(3);
        let _ = b.add_hca(HcaConfig::default(), Box::new(NullUlp));
        b.add_actor(Box::new(Idle));
        let f = b.finish();
        assert!(f.domain_plan().is_none());
    }

    #[test]
    #[should_panic(expected = "exactly one cable")]
    fn hca_cannot_take_two_cables() {
        let mut b = FabricBuilder::new(1);
        let n1 = b.add_hca(HcaConfig::default(), Box::new(NullUlp));
        let s1 = b.add_switch();
        let s2 = b.add_switch();
        b.link(n1.actor, s1, LinkConfig::ddr_lan());
        b.link(n1.actor, s2, LinkConfig::ddr_lan());
    }
}
