//! Basic InfiniBand identifiers and wire constants.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Local IDentifier assigned by the subnet manager to every end port.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lid(pub u16);

impl fmt::Debug for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lid{}", self.0)
    }
}
impl fmt::Display for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Wire overhead per RC packet: LRH (8) + BTH (12) + iCRC/vCRC (6) and
/// framing — calibrated so a 2 KB-MTU RC stream peaks at ~980 MB/s over the
/// 8 Gb/s (1000 MB/s) SDR WAN link, matching Section 3.2.2 of the paper.
pub const RC_HEADER_BYTES: u64 = 42;

/// Wire overhead per UD packet: LRH + GRH (40) + BTH + DETH (8) + CRCs —
/// calibrated so a 2 KB UD stream peaks at ~967 MB/s over SDR, matching the
/// paper's reported verbs-level UD peak.
pub const UD_HEADER_BYTES: u64 = 70;

/// Size of an ACK / control packet on the wire (header-only packet).
pub const ACK_BYTES: u64 = 30;

/// Size of an RDMA-read request packet on the wire.
pub const READ_REQ_BYTES: u64 = 46;

/// Default InfiniBand path MTU used throughout (2048-byte payload), matching
/// the 2 KB MTU of the paper's testbed HCAs.
pub const DEFAULT_MTU: u32 = 2048;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lid_display() {
        assert_eq!(format!("{}", Lid(7)), "7");
        assert_eq!(format!("{:?}", Lid(7)), "lid7");
    }

    #[test]
    fn header_calibration_matches_paper_peaks() {
        // SDR carries 1000 MB/s of wire bytes; goodput = payload fraction.
        let rc_goodput = 1000.0 * 2048.0 / (2048.0 + RC_HEADER_BYTES as f64);
        let ud_goodput = 1000.0 * 2048.0 / (2048.0 + UD_HEADER_BYTES as f64);
        assert!((rc_goodput - 980.0).abs() < 2.0, "rc {rc_goodput}");
        assert!((ud_goodput - 967.0).abs() < 2.0, "ud {ud_goodput}");
    }
}
