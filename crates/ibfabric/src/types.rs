//! Basic InfiniBand identifiers and wire constants.
//!
//! These live in the `ibwire` leaf crate (so the engine's typed packet lane
//! can reference them without depending on the fabric model) and are
//! re-exported here under their original paths.

pub use ibwire::{Lid, ACK_BYTES, DEFAULT_MTU, RC_HEADER_BYTES, READ_REQ_BYTES, UD_HEADER_BYTES};
