//! Verbs-facing work-request and completion types.

use crate::qp::Qpn;
use crate::types::Lid;
use bytes::Bytes;

/// What kind of data transfer a posted send work request performs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SendKind {
    /// Channel semantics: consumes a receive WQE at the responder.
    Send,
    /// Memory semantics: writes into remote memory without consuming a
    /// receive WQE. If `imm` is set on the work request, the responder gets a
    /// `RecvDone`-style notification (RDMA Write with Immediate); otherwise the
    /// write is silent and only visible through
    /// [`crate::hca::HcaCore::rdma_bytes_received`].
    RdmaWrite,
    /// Memory semantics: reads `len` bytes from remote memory; the responder's
    /// HCA streams the data back without host involvement.
    RdmaRead,
}

/// A send-side work request posted to a QP's send queue.
#[derive(Clone, Debug)]
pub struct SendWr {
    /// Caller-chosen identifier, echoed in the completion.
    pub wr_id: u64,
    /// Transfer kind.
    pub kind: SendKind,
    /// Message length in bytes (for `RdmaRead`, the length to read).
    pub len: u32,
    /// Immediate value / ULP tag. For `RdmaWrite`, `u64::MAX` means "no
    /// immediate" and the write is silent at the responder.
    pub imm: u64,
    /// Optional inline payload for integrity tests.
    pub data: Option<Bytes>,
    /// For UD QPs: the destination address (LID + QPN). RC QPs are connected
    /// and ignore this.
    pub ud_dest: Option<(Lid, Qpn)>,
}

impl SendWr {
    /// Convenience: a channel-semantics send.
    pub fn send(wr_id: u64, len: u32, imm: u64) -> Self {
        SendWr {
            wr_id,
            kind: SendKind::Send,
            len,
            imm,
            data: None,
            ud_dest: None,
        }
    }

    /// Convenience: an RDMA write without immediate (silent at responder).
    pub fn rdma_write(wr_id: u64, len: u32) -> Self {
        SendWr {
            wr_id,
            kind: SendKind::RdmaWrite,
            len,
            imm: u64::MAX,
            data: None,
            ud_dest: None,
        }
    }

    /// Convenience: an RDMA write with immediate (notifies responder).
    pub fn rdma_write_imm(wr_id: u64, len: u32, imm: u64) -> Self {
        SendWr {
            wr_id,
            kind: SendKind::RdmaWrite,
            len,
            imm,
            data: None,
            ud_dest: None,
        }
    }

    /// Convenience: an RDMA read.
    pub fn rdma_read(wr_id: u64, len: u32) -> Self {
        SendWr {
            wr_id,
            kind: SendKind::RdmaRead,
            len,
            imm: u64::MAX,
            data: None,
            ud_dest: None,
        }
    }

    /// Attach a UD destination.
    pub fn to(mut self, dest: (Lid, Qpn)) -> Self {
        self.ud_dest = Some(dest);
        self
    }

    /// Attach inline payload (integrity tests). Length must equal the
    /// message length; use [`SendWr::with_meta`] for small ULP headers.
    pub fn with_data(mut self, data: Bytes) -> Self {
        debug_assert_eq!(data.len(), self.len as usize);
        self.data = Some(data);
        self
    }

    /// Attach small ULP metadata (a protocol header such as a TCP segment
    /// header or an RPC header) that rides with the message but does not
    /// represent its payload. Must be *shorter* than the message length.
    pub fn with_meta(mut self, meta: Bytes) -> Self {
        debug_assert_ne!(
            meta.len(),
            self.len as usize,
            "use with_data for full payloads"
        );
        self.data = Some(meta);
        self
    }
}

/// A receive work request (pre-posted buffer).
#[derive(Clone, Copy, Debug)]
pub struct RecvWr {
    /// Caller-chosen identifier, echoed in the completion.
    pub wr_id: u64,
}

/// A completion-queue entry delivered to the HCA's ULP.
#[derive(Clone, Debug)]
pub enum Completion {
    /// A posted send/write/read finished. For RC this fires when the message
    /// is fully ACKed (reads: fully returned); for UD when the datagram has
    /// left the port.
    SendDone {
        /// QP the work request was posted on.
        qpn: Qpn,
        /// The `wr_id` from the original [`SendWr`].
        wr_id: u64,
        /// The original [`SendKind`].
        kind: SendKind,
        /// Message length.
        len: u32,
    },
    /// An incoming message consumed a receive WQE (Send, RDMA-Write-with-
    /// immediate, or UD datagram).
    RecvDone {
        /// QP the message arrived on.
        qpn: Qpn,
        /// The `wr_id` of the consumed [`RecvWr`].
        wr_id: u64,
        /// Message length received.
        len: u32,
        /// Immediate value / ULP tag.
        imm: u64,
        /// Source address (LID, QPN) — meaningful for UD, echoed for RC.
        src: (Lid, Qpn),
        /// Inline payload if the sender attached one.
        data: Option<Bytes>,
    },
    /// A silent (no-immediate) RDMA write landed and the QP was configured
    /// with [`crate::qp::QpConfig::notify_silent_writes`]. Models a ULP that
    /// polls memory for arrival (as `rdma_lat` does) — note there is no
    /// receive-WQE overhead on this path.
    WriteArrived {
        /// QP the write landed on.
        qpn: Qpn,
        /// Bytes written.
        len: u32,
    },
}

impl Completion {
    /// The QP this completion belongs to.
    pub fn qpn(&self) -> Qpn {
        match self {
            Completion::SendDone { qpn, .. }
            | Completion::RecvDone { qpn, .. }
            | Completion::WriteArrived { qpn, .. } => *qpn,
        }
    }
}
