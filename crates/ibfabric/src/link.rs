//! Point-to-point link model: serialization at the port plus propagation,
//! with optional IB-style credit-based flow control.
//!
//! InfiniBand links are lossless: a transmitter may only send while the
//! receiver has advertised buffer credits, and credits return as the
//! receiver drains packets onward. Over a long-haul link the credit loop
//! spans the full round trip, so the receiver's buffer depth caps the
//! in-flight data — the reason WAN range extenders like the Obsidian
//! Longbow carry very deep buffers. Credits default to `None` (infinite
//! buffering), which models such deep-buffered deployments; set
//! [`LinkConfig::credit_packets`] to study shallow-buffer behaviour.

use crate::packet::Packet;
use simcore::{ActorId, Dur, Rate, SerialResource, Time};
use std::collections::VecDeque;

/// Link-level credit return (one freed receive buffer). Sent by the
/// receiving entity back to the transmitter on credited links.
pub struct CreditMsg;

/// Static link parameters.
#[derive(Copy, Clone, Debug)]
pub struct LinkConfig {
    /// Serialization rate of the link (data rate).
    pub rate: Rate,
    /// One-way propagation latency.
    pub latency: Dur,
    /// Receive-buffer credits per direction; `None` = effectively infinite
    /// (deep buffers). With `Some(n)`, at most `n` packets may be unreturned
    /// at any instant.
    pub credit_packets: Option<usize>,
}

impl LinkConfig {
    /// An intra-cluster InfiniBand DDR cable: 16 Gb/s data, 100 ns one way.
    pub fn ddr_lan() -> Self {
        LinkConfig {
            rate: Rate::from_gbps(16),
            latency: Dur::from_ns(100),
            credit_packets: None,
        }
    }

    /// An intra-cluster InfiniBand SDR cable: 8 Gb/s data, 100 ns one way.
    pub fn sdr_lan() -> Self {
        LinkConfig {
            rate: Rate::from_gbps(8),
            latency: Dur::from_ns(100),
            credit_packets: None,
        }
    }

    /// Limit the link to `n` receive-buffer credits per direction.
    pub fn with_credits(mut self, n: usize) -> Self {
        self.credit_packets = Some(n);
        self
    }
}

/// The egress half of a link attached to a port: owns the serialization
/// resource, the credit pool, and the waiting queue.
pub struct EgressPort {
    /// Neighbor actor on the other end of the cable.
    pub peer: ActorId,
    cfg: LinkConfig,
    tx: SerialResource,
    credits: Option<usize>,
    queue: VecDeque<(Time, Packet)>,
}

impl EgressPort {
    /// New egress port towards `peer`.
    pub fn new(peer: ActorId, cfg: LinkConfig) -> Self {
        EgressPort {
            peer,
            cfg,
            tx: SerialResource::new(cfg.rate),
            credits: cfg.credit_packets,
            queue: VecDeque::new(),
        }
    }

    /// Submit `pkt` for transmission beginning no earlier than `ready`.
    /// Returns `Some((arrival, pkt))` if a credit was available (schedule
    /// the delivery), or `None` if the packet was queued awaiting credits.
    pub fn transmit(&mut self, ready: Time, pkt: Packet) -> Option<(Time, Packet)> {
        match self.credits {
            Some(0) => {
                self.queue.push_back((ready, pkt));
                None
            }
            Some(ref mut n) => {
                *n -= 1;
                Some(self.serialize(ready, pkt))
            }
            None => Some(self.serialize(ready, pkt)),
        }
    }

    fn serialize(&mut self, ready: Time, pkt: Packet) -> (Time, Packet) {
        let (_start, finish) = self.tx.reserve(ready, pkt.wire_bytes());
        (finish + self.cfg.latency, pkt)
    }

    /// Submit a whole fragment train (head arriving at `ready`, member `k`
    /// at `ready + k * gap_ns`) as one serialization reservation. Returns the
    /// head's arrival time at the peer after rewriting `pkt.gap_ns` to the
    /// departure spacing, or `None` when the link cannot carry the train as a
    /// unit (credited link, or no closed-form service pattern) and the caller
    /// must de-coalesce via [`EgressPort::transmit_seq`].
    pub fn transmit_train(&mut self, ready: Time, pkt: &mut Packet) -> Option<Time> {
        debug_assert!(pkt.is_train());
        if self.credits.is_some() {
            // Credit accounting is per fragment; trains cannot cross a
            // credited link as a unit.
            return None;
        }
        let (head_finish, gap_out) =
            self.tx
                .reserve_train(ready, pkt.count, pkt.wire_bytes(), Dur::from_ns(pkt.gap_ns))?;
        pkt.gap_ns = gap_out.as_ns();
        Some(head_finish + self.cfg.latency)
    }

    /// Forward `pkt` — train or single — across this port, delivering each
    /// resulting packet through `deliver(arrival, pkt)`. Trains ride as one
    /// event when the link supports it and are otherwise expanded into their
    /// per-fragment members (bit-identical timing either way).
    pub fn transmit_seq(
        &mut self,
        ready: Time,
        pkt: Packet,
        deliver: &mut dyn FnMut(Time, Packet),
    ) {
        if !pkt.is_train() {
            if let Some((arrival, pkt)) = self.transmit(ready, pkt) {
                deliver(arrival, pkt);
            }
            return;
        }
        let mut pkt = pkt;
        if let Some(arrival) = self.transmit_train(ready, &mut pkt) {
            deliver(arrival, pkt);
            return;
        }
        // De-coalesce: replay each member at its own arrival instant. This is
        // exactly the per-fragment path, so timing stays bit-identical.
        let gap = Dur::from_ns(pkt.gap_ns);
        for k in 0..pkt.count {
            if let Some((arrival, member)) = self.transmit(ready + gap * k as u64, pkt.frag(k)) {
                deliver(arrival, member);
            }
        }
    }

    /// A credit returned from the peer at `now`; possibly releases a queued
    /// packet (returns its scheduled arrival).
    pub fn credit_returned(&mut self, now: Time) -> Option<(Time, Packet)> {
        let n = self
            .credits
            .as_mut()
            .expect("credit returned on an uncredited link");
        if let Some((ready, pkt)) = self.queue.pop_front() {
            // The freed buffer is consumed immediately by the queued packet.
            Some(self.serialize(ready.max(now), pkt))
        } else {
            *n += 1;
            None
        }
    }

    /// True if this direction uses credit flow control (so the receiving
    /// side must return credits).
    pub fn credited(&self) -> bool {
        self.cfg.credit_packets.is_some()
    }

    /// Packets currently waiting for credits.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Link configuration.
    pub fn config(&self) -> LinkConfig {
        self.cfg
    }

    /// Accumulated busy (transmitting) time — for utilization reporting.
    pub fn busy_time(&self) -> Dur {
        self.tx.busy_time()
    }

    /// Earliest instant the transmitter is idle.
    pub fn next_free(&self) -> Time {
        self.tx.next_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Opcode;
    use crate::qp::Qpn;
    use crate::types::Lid;

    fn pkt(payload: u32) -> Packet {
        Packet {
            dst_lid: Lid(2),
            src_lid: Lid(1),
            dst_qpn: Qpn(0),
            src_qpn: Qpn(0),
            opcode: Opcode::UdSend,
            psn: 0,
            payload,
            msg_id: 0,
            msg_len: payload,
            offset: 0,
            imm: 0,
            count: 1,
            stride: 0,
            gap_ns: 0,
            data: None,
        }
    }

    fn train(payload: u32, count: u32, gap_ns: u64) -> Packet {
        Packet {
            opcode: Opcode::RcSend {
                position: crate::packet::Position::First,
            },
            msg_len: payload * count,
            count,
            stride: payload,
            gap_ns,
            ..pkt(payload)
        }
    }

    #[test]
    fn back_to_back_serialization() {
        let cfg = LinkConfig {
            rate: Rate::from_gbps(8), // 1 ns/byte
            latency: Dur::from_us(1),
            credit_packets: None,
        };
        let mut port = EgressPort::new(0, cfg);
        let (a1, _) = port.transmit(Time::ZERO, pkt(930)).unwrap();
        assert_eq!(a1, Time::from_ns(1000) + Dur::from_us(1));
        // Second packet queued behind the first on the wire.
        let (a2, _) = port.transmit(Time::ZERO, pkt(930)).unwrap();
        assert_eq!(a2, Time::from_ns(2000) + Dur::from_us(1));
        // After idle time, starts immediately.
        let (a3, _) = port.transmit(Time::from_us(10), pkt(430)).unwrap();
        assert_eq!(a3, Time::from_us(10) + Dur::from_ns(500) + Dur::from_us(1));
        assert_eq!(port.busy_time(), Dur::from_ns(2500));
    }

    /// Per-fragment reference: transmit every member individually and return
    /// the (arrival, psn) schedule.
    fn per_fragment_schedule(port: &mut EgressPort, ready: Time, pkt: &Packet) -> Vec<(Time, u32)> {
        let gap = Dur::from_ns(pkt.gap_ns);
        (0..pkt.count)
            .filter_map(|k| {
                port.transmit(ready + gap * k as u64, pkt.frag(k))
                    .map(|(t, p)| (t, p.psn))
            })
            .collect()
    }

    #[test]
    fn train_matches_per_fragment_timing() {
        let cfg = LinkConfig::sdr_lan();
        let mut a = EgressPort::new(0, cfg);
        let mut b = EgressPort::new(0, cfg);
        // Back-to-back train fresh off an HCA (gap 0 → serialization-paced).
        let t = train(2048, 4, 0);
        let golden = per_fragment_schedule(&mut a, Time::from_ns(500), &t);
        let mut got = Vec::new();
        b.transmit_seq(Time::from_ns(500), t, &mut |arrival, p| {
            let gap = Dur::from_ns(p.gap_ns);
            for k in 0..p.count {
                got.push((arrival + gap * k as u64, p.psn.wrapping_add(k)));
            }
        });
        assert_eq!(got, golden);
        assert_eq!(a.busy_time(), b.busy_time());
        assert_eq!(a.next_free(), b.next_free());
    }

    #[test]
    fn train_behind_backlog_matches_per_fragment() {
        let cfg = LinkConfig::sdr_lan();
        let mut a = EgressPort::new(0, cfg);
        let mut b = EgressPort::new(0, cfg);
        a.transmit(Time::ZERO, pkt(8000));
        b.transmit(Time::ZERO, pkt(8000));
        // Train arrives spaced wider than service while the port is busy:
        // reserve_train declines and transmit_seq must de-coalesce exactly.
        let t = train(1000, 5, 3000);
        let golden = per_fragment_schedule(&mut a, Time::from_ns(100), &t);
        let mut got = Vec::new();
        b.transmit_seq(Time::from_ns(100), t, &mut |arrival, p| {
            assert_eq!(p.count, 1, "backlogged slow train must de-coalesce");
            got.push((arrival, p.psn));
        });
        assert_eq!(got, golden);
        assert_eq!(a.next_free(), b.next_free());
    }

    #[test]
    fn credited_links_refuse_trains() {
        let cfg = LinkConfig::sdr_lan().with_credits(8);
        let mut port = EgressPort::new(0, cfg);
        let mut t = train(1024, 3, 0);
        assert!(port.transmit_train(Time::ZERO, &mut t).is_none());
        // transmit_seq falls back to per-fragment members, consuming credits.
        let mut n = 0;
        port.transmit_seq(Time::ZERO, t, &mut |_, p| {
            assert_eq!(p.count, 1);
            n += 1;
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn credits_gate_transmission() {
        let cfg = LinkConfig::sdr_lan().with_credits(2);
        let mut port = EgressPort::new(0, cfg);
        assert!(port.transmit(Time::ZERO, pkt(100)).is_some());
        assert!(port.transmit(Time::ZERO, pkt(100)).is_some());
        // Third packet has no credit: queued.
        assert!(port.transmit(Time::ZERO, pkt(100)).is_none());
        assert_eq!(port.queued(), 1);
        // A returned credit releases it.
        let released = port.credit_returned(Time::from_us(5));
        assert!(released.is_some());
        assert_eq!(port.queued(), 0);
        // Another return with nothing queued restores the pool.
        assert!(port.credit_returned(Time::from_us(6)).is_none());
        assert!(port.transmit(Time::from_us(7), pkt(100)).is_some());
    }

    #[test]
    fn uncredited_links_never_queue() {
        let mut port = EgressPort::new(0, LinkConfig::ddr_lan());
        for _ in 0..100 {
            assert!(port.transmit(Time::ZERO, pkt(64)).is_some());
        }
        assert_eq!(port.queued(), 0);
        assert!(!port.credited());
    }

    #[test]
    fn lan_presets() {
        assert_eq!(LinkConfig::ddr_lan().rate.ps_per_byte(), 500);
        assert_eq!(LinkConfig::sdr_lan().rate.ps_per_byte(), 1000);
    }
}
