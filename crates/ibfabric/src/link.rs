//! Point-to-point link model: serialization at the port plus propagation,
//! with optional IB-style credit-based flow control.
//!
//! InfiniBand links are lossless: a transmitter may only send while the
//! receiver has advertised buffer credits, and credits return as the
//! receiver drains packets onward. Over a long-haul link the credit loop
//! spans the full round trip, so the receiver's buffer depth caps the
//! in-flight data — the reason WAN range extenders like the Obsidian
//! Longbow carry very deep buffers. Credits default to `None` (infinite
//! buffering), which models such deep-buffered deployments; set
//! [`LinkConfig::credit_packets`] to study shallow-buffer behaviour.

use crate::packet::Packet;
use simcore::{ActorId, Dur, Rate, SerialResource, Time};
use std::collections::VecDeque;

/// Link-level credit return (one freed receive buffer). Sent by the
/// receiving entity back to the transmitter on credited links.
pub struct CreditMsg;

/// Static link parameters.
#[derive(Copy, Clone, Debug)]
pub struct LinkConfig {
    /// Serialization rate of the link (data rate).
    pub rate: Rate,
    /// One-way propagation latency.
    pub latency: Dur,
    /// Receive-buffer credits per direction; `None` = effectively infinite
    /// (deep buffers). With `Some(n)`, at most `n` packets may be unreturned
    /// at any instant.
    pub credit_packets: Option<usize>,
}

impl LinkConfig {
    /// An intra-cluster InfiniBand DDR cable: 16 Gb/s data, 100 ns one way.
    pub fn ddr_lan() -> Self {
        LinkConfig {
            rate: Rate::from_gbps(16),
            latency: Dur::from_ns(100),
            credit_packets: None,
        }
    }

    /// An intra-cluster InfiniBand SDR cable: 8 Gb/s data, 100 ns one way.
    pub fn sdr_lan() -> Self {
        LinkConfig {
            rate: Rate::from_gbps(8),
            latency: Dur::from_ns(100),
            credit_packets: None,
        }
    }

    /// Limit the link to `n` receive-buffer credits per direction.
    pub fn with_credits(mut self, n: usize) -> Self {
        self.credit_packets = Some(n);
        self
    }
}

/// The egress half of a link attached to a port: owns the serialization
/// resource, the credit pool, and the waiting queue.
pub struct EgressPort {
    /// Neighbor actor on the other end of the cable.
    pub peer: ActorId,
    cfg: LinkConfig,
    tx: SerialResource,
    credits: Option<usize>,
    queue: VecDeque<(Time, Packet)>,
}

impl EgressPort {
    /// New egress port towards `peer`.
    pub fn new(peer: ActorId, cfg: LinkConfig) -> Self {
        EgressPort {
            peer,
            cfg,
            tx: SerialResource::new(cfg.rate),
            credits: cfg.credit_packets,
            queue: VecDeque::new(),
        }
    }

    /// Submit `pkt` for transmission beginning no earlier than `ready`.
    /// Returns `Some((arrival, pkt))` if a credit was available (schedule
    /// the delivery), or `None` if the packet was queued awaiting credits.
    pub fn transmit(&mut self, ready: Time, pkt: Packet) -> Option<(Time, Packet)> {
        match self.credits {
            Some(0) => {
                self.queue.push_back((ready, pkt));
                None
            }
            Some(ref mut n) => {
                *n -= 1;
                Some(self.serialize(ready, pkt))
            }
            None => Some(self.serialize(ready, pkt)),
        }
    }

    fn serialize(&mut self, ready: Time, pkt: Packet) -> (Time, Packet) {
        let (_start, finish) = self.tx.reserve(ready, pkt.wire_bytes());
        (finish + self.cfg.latency, pkt)
    }

    /// A credit returned from the peer at `now`; possibly releases a queued
    /// packet (returns its scheduled arrival).
    pub fn credit_returned(&mut self, now: Time) -> Option<(Time, Packet)> {
        let n = self
            .credits
            .as_mut()
            .expect("credit returned on an uncredited link");
        if let Some((ready, pkt)) = self.queue.pop_front() {
            // The freed buffer is consumed immediately by the queued packet.
            Some(self.serialize(ready.max(now), pkt))
        } else {
            *n += 1;
            None
        }
    }

    /// True if this direction uses credit flow control (so the receiving
    /// side must return credits).
    pub fn credited(&self) -> bool {
        self.cfg.credit_packets.is_some()
    }

    /// Packets currently waiting for credits.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Link configuration.
    pub fn config(&self) -> LinkConfig {
        self.cfg
    }

    /// Accumulated busy (transmitting) time — for utilization reporting.
    pub fn busy_time(&self) -> Dur {
        self.tx.busy_time()
    }

    /// Earliest instant the transmitter is idle.
    pub fn next_free(&self) -> Time {
        self.tx.next_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Opcode;
    use crate::qp::Qpn;
    use crate::types::Lid;

    fn pkt(payload: u32) -> Packet {
        Packet {
            dst_lid: Lid(2),
            src_lid: Lid(1),
            dst_qpn: Qpn(0),
            src_qpn: Qpn(0),
            opcode: Opcode::UdSend,
            psn: 0,
            payload,
            msg_id: 0,
            msg_len: payload,
            offset: 0,
            imm: 0,
            data: None,
        }
    }

    #[test]
    fn back_to_back_serialization() {
        let cfg = LinkConfig {
            rate: Rate::from_gbps(8), // 1 ns/byte
            latency: Dur::from_us(1),
            credit_packets: None,
        };
        let mut port = EgressPort::new(0, cfg);
        let (a1, _) = port.transmit(Time::ZERO, pkt(930)).unwrap();
        assert_eq!(a1, Time::from_ns(1000) + Dur::from_us(1));
        // Second packet queued behind the first on the wire.
        let (a2, _) = port.transmit(Time::ZERO, pkt(930)).unwrap();
        assert_eq!(a2, Time::from_ns(2000) + Dur::from_us(1));
        // After idle time, starts immediately.
        let (a3, _) = port.transmit(Time::from_us(10), pkt(430)).unwrap();
        assert_eq!(a3, Time::from_us(10) + Dur::from_ns(500) + Dur::from_us(1));
        assert_eq!(port.busy_time(), Dur::from_ns(2500));
    }

    #[test]
    fn credits_gate_transmission() {
        let cfg = LinkConfig::sdr_lan().with_credits(2);
        let mut port = EgressPort::new(0, cfg);
        assert!(port.transmit(Time::ZERO, pkt(100)).is_some());
        assert!(port.transmit(Time::ZERO, pkt(100)).is_some());
        // Third packet has no credit: queued.
        assert!(port.transmit(Time::ZERO, pkt(100)).is_none());
        assert_eq!(port.queued(), 1);
        // A returned credit releases it.
        let released = port.credit_returned(Time::from_us(5));
        assert!(released.is_some());
        assert_eq!(port.queued(), 0);
        // Another return with nothing queued restores the pool.
        assert!(port.credit_returned(Time::from_us(6)).is_none());
        assert!(port.transmit(Time::from_us(7), pkt(100)).is_some());
    }

    #[test]
    fn uncredited_links_never_queue() {
        let mut port = EgressPort::new(0, LinkConfig::ddr_lan());
        for _ in 0..100 {
            assert!(port.transmit(Time::ZERO, pkt(64)).is_some());
        }
        assert_eq!(port.queued(), 0);
        assert!(!port.credited());
    }

    #[test]
    fn lan_presets() {
        assert_eq!(LinkConfig::ddr_lan().rate.ps_per_byte(), 500);
        assert_eq!(LinkConfig::sdr_lan().rate.ps_per_byte(), 1000);
    }
}
