//! The wire unit forwarded between fabric actors (HCAs, switches, Longbows).
//!
//! The packet types live in the `ibwire` leaf crate so the simulation
//! engine's typed packet lane ([`simcore::Msg::Packet`]) can carry them by
//! value; they are re-exported here under their original paths. Fabric
//! actors receive packets through [`simcore::Actor::on_packet`] and put them
//! back on the wire with `ctx.send_at(peer, pkt, arrival)` — no boxing, no
//! downcasting.

pub use ibwire::{Opcode, Packet, Position};
