//! # ibfabric — packet-level InfiniBand fabric model
//!
//! Models the pieces of the InfiniBand Architecture the paper's experiments
//! exercise:
//!
//! * **HCAs** with queue pairs (QPs), completion semantics, and host posting
//!   overheads ([`hca`], [`qp`]).
//! * **Transports**: Reliable Connected (RC) — in-order, ACKed, with a bounded
//!   number of outstanding (un-ACKed) messages, which is exactly the mechanism
//!   that makes medium-message bandwidth collapse over long-delay WAN links —
//!   and Unreliable Datagram (UD) — fire-and-forget, MTU-limited, and therefore
//!   delay-insensitive ([`qp`]).
//! * **Verbs**: Send/Recv channel semantics and RDMA Write / RDMA Read memory
//!   semantics ([`verbs`]).
//! * **Switches** with subnet-manager-installed LID forwarding tables
//!   ([`switch`], [`fabric`]).
//! * **Upper-layer protocol hook** ([`ulp`]): MPI, IPoIB, and NFS sit on HCAs
//!   through the [`ulp::Ulp`] trait, mirroring how real ULPs sit on verbs.
//! * **perftest-style ULPs** ([`perftest`]) reproducing the OFED `perftest`
//!   latency/bandwidth tools used in Section 3.2 of the paper.
//!
//! The model carries packet *sizes* and logical identifiers, not payload
//! bytes; an optional inline payload supports data-integrity property tests.
//!
//! ```
//! use ibfabric::fabric::FabricBuilder;
//! use ibfabric::hca::HcaConfig;
//! use ibfabric::link::LinkConfig;
//! use ibfabric::perftest::{rc_qp_pair, BwConfig, BwPeer};
//! use ibfabric::qp::QpConfig;
//!
//! // Two nodes back-to-back on a DDR cable, streaming 64 KB messages.
//! let mut b = FabricBuilder::new(1);
//! let tx = b.add_hca(HcaConfig::default(), Box::new(BwPeer::sender(BwConfig::new(65536, 100))));
//! let rx = b.add_hca(HcaConfig::default(), Box::new(BwPeer::receiver()));
//! b.link(tx.actor, rx.actor, LinkConfig::ddr_lan());
//! let mut fabric = b.finish();
//! let (qt, qr) = rc_qp_pair(&mut fabric, tx, rx, QpConfig::rc());
//! fabric.hca_mut(tx).ulp_mut::<BwPeer>().qpn = qt;
//! fabric.hca_mut(rx).ulp_mut::<BwPeer>().qpn = qr;
//! fabric.run();
//! let bw = fabric.hca(tx).ulp::<BwPeer>().bandwidth_mbs();
//! assert!(bw > 1500.0); // near the 2000 MB/s DDR line rate
//! ```

pub mod fabric;
pub mod hca;
pub mod link;
pub mod packet;
pub mod perftest;
pub mod qp;
pub mod switch;
pub mod types;
pub mod ulp;
pub mod verbs;

pub use fabric::{Fabric, FabricBuilder, NodeHandle};
pub use hca::{HcaActor, HcaConfig, HcaCore};
pub use link::LinkConfig;
pub use packet::{Opcode, Packet};
pub use qp::{QpConfig, QpState, Qpn, TransportType};
pub use types::Lid;
pub use ulp::{NullUlp, Ulp};
pub use verbs::{Completion, RecvWr, SendKind, SendWr};
