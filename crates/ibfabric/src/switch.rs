//! An InfiniBand switch: forwards packets by destination LID using the
//! forwarding table installed by the subnet manager.

use crate::link::{CreditMsg, EgressPort};
use crate::packet::Packet;
use simcore::{Actor, ActorId, Ctx, Dur};
use std::any::Any;

/// A LID-routed switch with per-port egress serialization.
///
/// The model is store-and-forward with a fixed forwarding latency; real IB
/// switches cut through (~200 ns), which the forwarding latency approximates
/// for the small packets that dominate latency measurements.
pub struct Switch {
    fwd_latency: Dur,
    ports: Vec<Option<EgressPort>>,
    /// Forwarding table indexed directly by LID (LIDs are small and dense,
    /// so a flat table beats hashing on the per-packet path).
    routes: Vec<Option<usize>>,
    forwarded: u64,
}

impl Switch {
    /// A switch with the default 200 ns forwarding latency.
    pub fn new() -> Self {
        Self::with_latency(Dur::from_ns(200))
    }

    /// A switch with an explicit forwarding latency.
    pub fn with_latency(fwd_latency: Dur) -> Self {
        Switch {
            fwd_latency,
            ports: Vec::new(),
            routes: Vec::new(),
            forwarded: 0,
        }
    }

    /// Attach `egress` as port `idx` (used by the fabric builder).
    pub fn attach_port(&mut self, idx: usize, egress: EgressPort) {
        if self.ports.len() <= idx {
            self.ports.resize_with(idx + 1, || None);
        }
        assert!(self.ports[idx].is_none(), "port {idx} already attached");
        self.ports[idx] = Some(egress);
    }

    /// Install a forwarding entry: packets for `lid` leave through `port`.
    pub fn set_route(&mut self, lid: u16, port: usize) {
        let i = lid as usize;
        if self.routes.len() <= i {
            self.routes.resize(i + 1, None);
        }
        self.routes[i] = Some(port);
    }

    /// Number of attached ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Default for Switch {
    fn default() -> Self {
        Self::new()
    }
}

impl Switch {
    fn port_to(&mut self, peer: ActorId) -> Option<&mut EgressPort> {
        self.ports.iter_mut().flatten().find(|p| p.peer == peer)
    }
}

impl Actor for Switch {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: ActorId, pkt: Packet) {
        // Ingress buffer freed once the packet moves to the egress queue:
        // return the link-level credit to the upstream neighbor.
        if let Some(in_port) = self.port_to(from) {
            if in_port.credited() {
                debug_assert_eq!(pkt.count, 1, "trains never cross credited links");
                let latency = in_port.config().latency;
                ctx.send(from, Box::new(CreditMsg), latency);
            }
        }
        let port_idx = self
            .routes
            .get(pkt.dst_lid.0 as usize)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("no route for {:?}", pkt.dst_lid));
        let port = self.ports[port_idx]
            .as_mut()
            .unwrap_or_else(|| panic!("route points at unattached port {port_idx}"));
        self.forwarded += pkt.count as u64;
        // The forwarding latency shifts every train member uniformly, so the
        // inter-fragment gap survives the hop and one reservation covers the
        // whole train.
        let ready = ctx.now() + self.fwd_latency;
        let peer = port.peer;
        port.transmit_seq(ready, pkt, &mut |arrival, p| ctx.send_at(peer, p, arrival));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, msg: Box<dyn Any>) {
        msg.downcast::<CreditMsg>()
            .expect("switch received an unexpected control message");
        let now = ctx.now();
        let port = self.port_to(from).expect("credit from an actor on no port");
        if let Some((arrival, pkt)) = port.credit_returned(now) {
            let peer = port.peer;
            ctx.send_at(peer, pkt, arrival);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::packet::{Opcode, Packet};
    use crate::qp::Qpn;
    use crate::types::Lid;
    use simcore::{Engine, Time};

    /// Actor that records packet arrival times.
    struct Sink {
        arrivals: Vec<Time>,
    }
    impl Actor for Sink {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
            panic!("sink expects packets on the packet lane");
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, _pkt: Packet) {
            self.arrivals.push(ctx.now());
        }
    }

    fn test_packet(dst: u16, payload: u32) -> Packet {
        Packet {
            dst_lid: Lid(dst),
            src_lid: Lid(1),
            dst_qpn: Qpn(0),
            src_qpn: Qpn(0),
            opcode: Opcode::UdSend,
            psn: 0,
            payload,
            msg_id: 0,
            msg_len: payload,
            offset: 0,
            imm: 0,
            count: 1,
            stride: 0,
            gap_ns: 0,
            data: None,
        }
    }

    #[test]
    fn forwards_by_lid_with_latency() {
        let mut e = Engine::new(1);
        let sink = e.add_actor(Box::new(Sink { arrivals: vec![] }));
        let mut sw = Switch::new();
        sw.attach_port(
            0,
            EgressPort::new(
                sink,
                LinkConfig {
                    rate: simcore::Rate::from_gbps(8),
                    latency: Dur::from_ns(100),
                    credit_packets: None,
                },
            ),
        );
        sw.set_route(5, 0);
        let swid = e.add_actor(Box::new(sw));
        e.schedule_message(Time::ZERO, swid, swid, test_packet(5, 930));
        e.run();
        // 200ns fwd + (930+70)ns serialization + 100ns propagation = 1300ns.
        assert_eq!(e.actor::<Sink>(sink).arrivals, vec![Time::from_ns(1300)]);
        assert_eq!(e.actor::<Switch>(swid).forwarded, 1);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unknown_lid_panics() {
        let mut e = Engine::new(1);
        let sw = Switch::new();
        let swid = e.add_actor(Box::new(sw));
        e.schedule_message(Time::ZERO, swid, swid, test_packet(9, 1));
        e.run();
    }
}
