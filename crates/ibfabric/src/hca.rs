//! The Host Channel Adapter actor: owns the node's QPs, applies host timing
//! costs, moves packets to/from the wire, and dispatches completions to the
//! node's ULP.

use crate::link::{CreditMsg, EgressPort};
use crate::packet::Packet;
use crate::qp::{Qp, QpConfig, QpOutput, Qpn};
use crate::types::Lid;
use crate::ulp::Ulp;
use crate::verbs::{Completion, RecvWr, SendWr};
use simcore::{Actor, ActorId, Ctx, Dur, Rate, SerialResource, Time, TimerId};
use std::any::Any;

/// Timer token reserved for the simulation-start kick that calls
/// [`Ulp::start`]. ULP timers must use tokens below [`RETRANSMIT_BASE`].
pub const START_TOKEN: u64 = u64::MAX;

/// Timer tokens at or above this value (and below [`START_TOKEN`]) are
/// per-QP retransmission timers: token = `RETRANSMIT_BASE + qpn`.
pub const RETRANSMIT_BASE: u64 = 1 << 60;

/// Host-side timing parameters of an HCA + driver stack.
///
/// Calibrated so that back-to-back RC half-round-trip latency for small
/// messages lands near the few-microsecond DDR figures of the paper's
/// testbed, and so the Longbow pair adds its documented ~5 µs.
#[derive(Copy, Clone, Debug)]
pub struct HcaConfig {
    /// CPU cost to post one work request (descriptor write + doorbell).
    pub post_overhead: Dur,
    /// Latency from hardware completion to the ULP observing the CQE.
    pub cq_latency: Dur,
    /// Extra receive-side cost for channel semantics (recv-WQE consumption);
    /// RDMA operations skip it, which is why RDMA write latency beats
    /// send/recv in Figure 3.
    pub recv_overhead: Dur,
}

impl Default for HcaConfig {
    fn default() -> Self {
        HcaConfig {
            post_overhead: Dur::from_ns(300),
            cq_latency: Dur::from_ns(300),
            recv_overhead: Dur::from_ns(400),
        }
    }
}

/// The verbs-facing half of an HCA, handed to the ULP.
pub struct HcaCore {
    lid: Lid,
    cfg: HcaConfig,
    port: Option<EgressPort>,
    qps: Vec<Qp>,
    /// Currently armed retransmission timer per QP, so a quiescing QP can
    /// cancel its stale timer instead of letting it fire as a no-op.
    rto_timers: Vec<Option<TimerId>>,
    /// Recycled QP output buffer: capacity persists across packets, so the
    /// steady-state receive/ACK path allocates nothing.
    scratch: QpOutput,
    host_cpu: SerialResource,
    packets_sent: u64,
    packets_received: u64,
    /// Fragment-train emission for QPs created on this HCA. On by default;
    /// [`crate::fabric::FabricBuilder::finish`] clears it when the topology
    /// cannot carry trains exactly (shared switch ports, injected loss).
    coalescing: bool,
}

impl HcaCore {
    /// New core with no port attached yet (the fabric builder wires it).
    pub fn new(lid: Lid, cfg: HcaConfig) -> Self {
        HcaCore {
            lid,
            cfg,
            port: None,
            qps: Vec::new(),
            rto_timers: Vec::new(),
            scratch: QpOutput::default(),
            host_cpu: SerialResource::new(Rate::INFINITE),
            packets_sent: 0,
            packets_received: 0,
            coalescing: true,
        }
    }

    /// Enable/disable fragment-train emission for this HCA's QPs (existing
    /// and future ones).
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalescing = on;
        for qp in &mut self.qps {
            qp.set_coalescing(on);
        }
    }

    /// This port's LID.
    pub fn lid(&self) -> Lid {
        self.lid
    }

    /// Host timing configuration.
    pub fn config(&self) -> HcaConfig {
        self.cfg
    }

    /// Create a QP; QPNs are assigned densely from 0.
    pub fn create_qp(&mut self, cfg: QpConfig) -> Qpn {
        let qpn = Qpn(self.qps.len() as u32);
        let mut qp = Qp::new(qpn, cfg, self.lid);
        qp.set_coalescing(self.coalescing);
        self.qps.push(qp);
        self.rto_timers.push(None);
        qpn
    }

    /// Connect an RC QP to a remote (LID, QPN).
    pub fn connect(&mut self, qpn: Qpn, remote: (Lid, Qpn)) {
        self.qp_mut(qpn).connect(remote);
    }

    /// Immutable access to a QP.
    pub fn qp(&self, qpn: Qpn) -> &Qp {
        &self.qps[qpn.0 as usize]
    }

    /// Mutable access to a QP.
    pub fn qp_mut(&mut self, qpn: Qpn) -> &mut Qp {
        &mut self.qps[qpn.0 as usize]
    }

    /// Total packets this HCA put on the wire.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Total packets delivered to this HCA.
    pub fn packets_received(&self) -> u64 {
        self.packets_received
    }

    /// Bytes deposited into `qpn` by silent RDMA writes.
    pub fn rdma_bytes_received(&self, qpn: Qpn) -> u64 {
        self.qp(qpn).rdma_bytes_received()
    }

    /// Post a send-side work request, paying the host posting overhead.
    pub fn post_send(&mut self, ctx: &mut Ctx<'_>, qpn: Qpn, wr: SendWr) {
        self.post_send_after(ctx, qpn, wr, ctx.now());
    }

    /// Post a send-side work request whose packets may not hit the wire
    /// before `earliest` (used by ULPs that model their own per-packet host
    /// processing, e.g. the IPoIB/TCP stack).
    pub fn post_send_after(&mut self, ctx: &mut Ctx<'_>, qpn: Qpn, wr: SendWr, earliest: Time) {
        let at = earliest.max(ctx.now());
        let (_, ready) = self.host_cpu.reserve_dur(at, self.cfg.post_overhead);
        let mut out = std::mem::take(&mut self.scratch);
        self.qps[qpn.0 as usize].post_send(wr, &mut out);
        self.arm_if_requested(ctx, qpn, &out);
        self.flush(ctx, ready, &mut out);
        out.reset();
        self.scratch = out;
    }

    fn arm_if_requested(&mut self, ctx: &mut Ctx<'_>, qpn: Qpn, out: &QpOutput) {
        debug_assert!(
            !(out.arm_retransmit && out.disarm_retransmit),
            "a QP cannot arm and disarm in the same output"
        );
        if out.arm_retransmit {
            let rto = self.qps[qpn.0 as usize].config().rto;
            let id = ctx.timer_cancellable(rto, RETRANSMIT_BASE + qpn.0 as u64);
            self.rto_timers[qpn.0 as usize] = Some(id);
        }
        if out.disarm_retransmit {
            if let Some(id) = self.rto_timers[qpn.0 as usize].take() {
                ctx.cancel_timer(id);
            }
        }
    }

    /// A per-QP retransmission timer fired (routed by [`HcaActor`]).
    pub fn on_retransmit_timer(&mut self, ctx: &mut Ctx<'_>, qpn: Qpn) {
        self.rto_timers[qpn.0 as usize] = None; // it just fired
        let mut out = std::mem::take(&mut self.scratch);
        self.qps[qpn.0 as usize].on_retransmit_timer(&mut out);
        self.arm_if_requested(ctx, qpn, &out);
        let now = ctx.now();
        self.flush(ctx, now, &mut out);
        out.reset();
        self.scratch = out;
    }

    /// Post a receive WQE (no wire effect; negligible cost).
    pub fn post_recv(&mut self, qpn: Qpn, wr: RecvWr) {
        self.qp_mut(qpn).post_recv(wr);
    }

    /// Put QP outputs on the wire / completion path. `ready` is the earliest
    /// instant the packets may start serializing.
    fn flush(&mut self, ctx: &mut Ctx<'_>, ready: Time, out: &mut QpOutput) {
        let port = self
            .port
            .as_mut()
            .expect("HCA port not wired — did you call FabricBuilder::finish?");
        let peer = port.peer;
        for pkt in out.packets.drain(..) {
            self.packets_sent += pkt.count as u64;
            port.transmit_seq(ready, pkt, &mut |arrival, p| ctx.send_at(peer, p, arrival));
        }
        for c in out.completions.drain(..) {
            ctx.send(
                ctx.self_id(),
                Box::new(CompletionDelivery(c)),
                self.cfg.cq_latency,
            );
        }
        if !out.tx_completions.is_empty() {
            // Wire-out completions (UD sends): valid once this flush's
            // packets have finished serializing.
            let tx_end = port.next_free().max(ctx.now());
            for c in out.tx_completions.drain(..) {
                ctx.send_at(
                    ctx.self_id(),
                    Box::new(CompletionDelivery(c)),
                    tx_end + self.cfg.cq_latency,
                );
            }
        }
    }

    /// Handle a packet arriving from the wire.
    fn handle_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        debug_assert_eq!(pkt.dst_lid, self.lid, "packet routed to wrong HCA");
        if pkt.is_train() && pkt.gap_ns > 0 {
            // A train's head just arrived; its protocol outcome (cumulative
            // ACK, completion, assembly advance) belongs to the *tail*
            // arrival instant, exactly when the last per-fragment delivery
            // would have happened. Re-deliver to ourselves at the tail with
            // the gap zeroed as the deferral-done marker. The whole train is
            // counted here, once.
            self.packets_received += pkt.count as u64;
            let tail = Dur::from_ns(pkt.gap_ns) * (pkt.count as u64 - 1);
            let mut pkt = pkt;
            pkt.gap_ns = 0;
            let me = ctx.self_id();
            ctx.send(me, pkt, tail);
            return;
        }
        if !pkt.is_train() {
            self.packets_received += 1;
        }
        let train_count = pkt.count;
        let qpn = pkt.dst_qpn;
        let consumes_recv = matches!(
            pkt.opcode,
            crate::packet::Opcode::UdSend | crate::packet::Opcode::RcSend { .. }
        );
        let mut out = std::mem::take(&mut self.scratch);
        self.qps[qpn.0 as usize].on_packet(pkt, &mut out);
        self.arm_if_requested(ctx, qpn, &out);
        // ACKs / read responses leave immediately (hardware path, no host).
        let now = ctx.now();
        let extra = if consumes_recv {
            self.cfg.recv_overhead
        } else {
            Dur::ZERO
        };
        let port = self.port.as_mut().expect("HCA port not wired");
        if port.credited() {
            debug_assert_eq!(train_count, 1, "trains never cross credited links");
            // Our receive buffer is drained: return the link-level credit.
            let latency = port.config().latency;
            ctx.send(port.peer, Box::new(CreditMsg), latency);
        }
        let peer = port.peer;
        for p in out.packets.drain(..) {
            self.packets_sent += p.count as u64;
            port.transmit_seq(now, p, &mut |arrival, p| ctx.send_at(peer, p, arrival));
        }
        for c in out.completions.drain(..) {
            ctx.send(
                ctx.self_id(),
                Box::new(CompletionDelivery(c)),
                self.cfg.cq_latency + extra,
            );
        }
        debug_assert!(
            out.tx_completions.is_empty(),
            "wire-out completions only arise from posting"
        );
        out.reset();
        self.scratch = out;
    }

    /// A link-level credit came back from the neighbor: release a queued
    /// packet if one is waiting.
    fn handle_credit(&mut self, ctx: &mut Ctx<'_>) {
        let port = self.port.as_mut().expect("HCA port not wired");
        if let Some((arrival, pkt)) = port.credit_returned(ctx.now()) {
            ctx.send_at(port.peer, pkt, arrival);
        }
    }

    /// Attach the (single) port. Used by the fabric builder.
    pub fn attach_port(&mut self, egress: EgressPort) {
        assert!(self.port.is_none(), "HCA port already attached");
        self.port = Some(egress);
    }

    /// The neighbor actor this HCA's cable runs to.
    pub fn port_peer(&self) -> Option<ActorId> {
        self.port.as_ref().map(|p| p.peer)
    }
}

/// Internal self-message carrying a CQE to the ULP after `cq_latency`.
struct CompletionDelivery(Completion);

/// The engine actor pairing an [`HcaCore`] with its [`Ulp`].
pub struct HcaActor {
    core: HcaCore,
    ulp: Box<dyn Ulp>,
}

impl HcaActor {
    /// Build a node from its HCA core and protocol.
    pub fn new(core: HcaCore, ulp: Box<dyn Ulp>) -> Self {
        HcaActor { core, ulp }
    }

    /// The HCA core (for inspection after a run).
    pub fn core(&self) -> &HcaCore {
        &self.core
    }

    /// Mutable core access (for setup).
    pub fn core_mut(&mut self) -> &mut HcaCore {
        &mut self.core
    }

    /// Downcast the ULP to its concrete type.
    pub fn ulp<T: Ulp>(&self) -> &T {
        let any: &dyn Any = &*self.ulp;
        any.downcast_ref::<T>().expect("ULP type mismatch")
    }

    /// Downcast the ULP to its concrete type, mutably.
    pub fn ulp_mut<T: Ulp>(&mut self) -> &mut T {
        let any: &mut dyn Any = &mut *self.ulp;
        any.downcast_mut::<T>().expect("ULP type mismatch")
    }
}

impl Actor for HcaActor {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, pkt: Packet) {
        self.core.handle_packet(ctx, pkt);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, msg: Box<dyn Any>) {
        match msg.downcast::<CompletionDelivery>() {
            Ok(cd) => self.ulp.on_completion(&mut self.core, ctx, cd.0),
            Err(msg) => match msg.downcast::<CreditMsg>() {
                Ok(_) => self.core.handle_credit(ctx),
                Err(msg) => self.ulp.on_user(&mut self.core, ctx, from, msg),
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == START_TOKEN {
            self.ulp.start(&mut self.core, ctx);
        } else if token >= RETRANSMIT_BASE {
            self.core
                .on_retransmit_timer(ctx, Qpn((token - RETRANSMIT_BASE) as u32));
        } else {
            self.ulp.on_timer(&mut self.core, ctx, token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricBuilder;
    use crate::link::LinkConfig;
    use crate::qp::QpConfig;
    use crate::ulp::Ulp;
    use simcore::Time;

    /// Records completion delivery times.
    struct Recorder {
        qpn: Qpn,
        peer: Option<(Lid, Qpn)>,
        to_send: Vec<u32>,
        send_done_at: Vec<Time>,
        recv_done_at: Vec<Time>,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder {
                qpn: Qpn(0),
                peer: None,
                to_send: vec![],
                send_done_at: vec![],
                recv_done_at: vec![],
            }
        }
    }

    impl Ulp for Recorder {
        fn start(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
            for _ in 0..16 {
                hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
            }
            for (i, &len) in self.to_send.iter().enumerate() {
                let mut wr = SendWr::send(i as u64, len, 0);
                if let Some(p) = self.peer {
                    wr = wr.to(p);
                }
                hca.post_send(ctx, self.qpn, wr);
            }
        }
        fn on_completion(&mut self, _h: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
            match c {
                Completion::SendDone { .. } => self.send_done_at.push(ctx.now()),
                Completion::RecvDone { .. } => self.recv_done_at.push(ctx.now()),
                Completion::WriteArrived { .. } => {}
            }
        }
    }

    fn pair() -> (
        crate::fabric::Fabric,
        crate::fabric::NodeHandle,
        crate::fabric::NodeHandle,
    ) {
        let mut b = FabricBuilder::new(2);
        let a = b.add_hca(HcaConfig::default(), Box::new(Recorder::new()));
        let c = b.add_hca(HcaConfig::default(), Box::new(Recorder::new()));
        b.link(a.actor, c.actor, LinkConfig::ddr_lan());
        let mut f = b.finish();
        let (qa, qb) = crate::perftest::rc_qp_pair(&mut f, a, c, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<Recorder>().qpn = qa;
        f.hca_mut(c).ulp_mut::<Recorder>().qpn = qb;
        (f, a, c)
    }

    #[test]
    fn posting_costs_serialize_on_the_host_cpu() {
        // Two back-to-back posts: the second message's wire time starts
        // after the second 300 ns posting slot.
        let (mut f, a, c) = pair();
        f.hca_mut(a).ulp_mut::<Recorder>().to_send = vec![64, 64];
        f.run();
        let rx = &f.hca(c).ulp::<Recorder>().recv_done_at;
        assert_eq!(rx.len(), 2);
        assert!(rx[1] > rx[0]);
    }

    #[test]
    fn rc_send_completion_waits_for_ack() {
        let (mut f, a, c) = pair();
        f.hca_mut(a).ulp_mut::<Recorder>().to_send = vec![1024];
        f.run();
        let tx = f.hca(a).ulp::<Recorder>();
        let rx = f.hca(c).ulp::<Recorder>();
        assert_eq!(tx.send_done_at.len(), 1);
        assert_eq!(rx.recv_done_at.len(), 1);
        // ACK round trip: sender completes after (or with) receiver.
        assert!(tx.send_done_at[0] >= rx.recv_done_at[0] - Dur::from_us(1));
    }

    #[test]
    fn retransmit_token_space_is_disjoint_from_ulp_tokens() {
        // Compile-time invariants of the token layout.
        const _: () = assert!(RETRANSMIT_BASE > (1 << 32));
        const _: () = assert!(START_TOKEN > RETRANSMIT_BASE);
    }

    #[test]
    fn packet_counters_track_acks_too() {
        let (mut f, a, c) = pair();
        f.hca_mut(a).ulp_mut::<Recorder>().to_send = vec![100, 100, 100];
        f.run();
        // 3 data packets out, 3 ACKs back.
        assert_eq!(f.hca(a).core().packets_sent(), 3);
        assert_eq!(f.hca(a).core().packets_received(), 3);
        assert_eq!(f.hca(c).core().packets_sent(), 3);
    }
}
