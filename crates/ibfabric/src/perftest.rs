//! Verbs-level performance-test ULPs, mirroring the OFED `perftest` suite the
//! paper uses in Section 3.2 (`ib_send_lat`, `ib_send_bw`, `rdma_lat`, ...).
//!
//! Two ULPs cover the suite:
//!
//! * [`PingPong`] — latency test: strict request/response alternation; the
//!   reported figure is half the mean round-trip, exactly like `perftest`.
//! * [`BwPeer`] — bandwidth test: keeps `tx_depth` work requests outstanding
//!   until `iters` messages complete; unidirectional tests make one node a
//!   pure receiver, bidirectional tests configure both sides to transmit.

use crate::hca::HcaCore;
use crate::qp::{QpConfig, Qpn};
use crate::types::Lid;
use crate::ulp::Ulp;
use crate::verbs::{Completion, RecvWr, SendKind, SendWr};
use simcore::{Ctx, OnlineStats, Time};

/// Which latency flavour [`PingPong`] runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LatMode {
    /// Send/Recv over RC (`ib_send_lat -c RC`).
    SendRc,
    /// Send/Recv over UD (`ib_send_lat -c UD`).
    SendUd,
    /// RDMA Write over RC with memory polling (`rdma_lat`).
    WriteRc,
}

/// Ping-pong latency ULP. Place one on each node; mark one as initiator.
pub struct PingPong {
    /// QP to use (created during setup).
    pub qpn: Qpn,
    /// UD destination (LID, QPN) — required for [`LatMode::SendUd`].
    pub peer: Option<(Lid, Qpn)>,
    /// Latency mode.
    pub mode: LatMode,
    /// True on the side that starts each round.
    pub initiator: bool,
    /// Message size.
    pub size: u32,
    /// Rounds to run.
    pub iters: u32,
    sent_at: Time,
    rounds: u32,
    /// Half-round-trip samples, microseconds.
    pub samples: OnlineStats,
}

impl PingPong {
    /// New ping-pong endpoint (configure the public fields before running).
    pub fn new(mode: LatMode, initiator: bool, size: u32, iters: u32) -> Self {
        PingPong {
            qpn: Qpn(0),
            peer: None,
            mode,
            initiator,
            size,
            iters,
            sent_at: Time::ZERO,
            rounds: 0,
            samples: OnlineStats::new(),
        }
    }

    /// Mean one-way latency in microseconds (half mean RTT).
    pub fn mean_latency_us(&self) -> f64 {
        self.samples.mean()
    }

    fn fire(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        let wr = match self.mode {
            LatMode::SendRc => SendWr::send(0, self.size, 0),
            LatMode::SendUd => SendWr::send(0, self.size, 0)
                .to(self.peer.expect("UD ping-pong needs a peer address")),
            LatMode::WriteRc => SendWr::rdma_write(0, self.size),
        };
        self.sent_at = ctx.now();
        hca.post_send(ctx, self.qpn, wr);
    }

    fn on_arrival(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        if self.mode != LatMode::WriteRc {
            hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
        }
        if self.initiator {
            let rtt = ctx.now().since(self.sent_at);
            self.samples.push(rtt.as_us_f64() / 2.0);
            self.rounds += 1;
            if self.rounds < self.iters {
                self.fire(hca, ctx);
            }
        } else {
            self.fire(hca, ctx);
        }
    }
}

impl Ulp for PingPong {
    fn start(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        if self.mode != LatMode::WriteRc {
            hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
        }
        if self.initiator {
            self.fire(hca, ctx);
        }
    }

    fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
        match c {
            Completion::RecvDone { .. } | Completion::WriteArrived { .. } => {
                self.on_arrival(hca, ctx)
            }
            Completion::SendDone { .. } => {}
        }
    }
}

/// Configuration for one side of a bandwidth test.
#[derive(Copy, Clone, Debug)]
pub struct BwConfig {
    /// Message size in bytes.
    pub size: u32,
    /// Messages to send.
    pub iters: u64,
    /// Work requests kept outstanding at the sender (perftest `--tx-depth`).
    pub tx_depth: usize,
    /// Send or RdmaWrite.
    pub kind: SendKind,
}

impl BwConfig {
    /// perftest-like defaults: depth 128, Send semantics.
    pub fn new(size: u32, iters: u64) -> Self {
        BwConfig {
            size,
            iters,
            tx_depth: 128,
            kind: SendKind::Send,
        }
    }
}

/// Bandwidth-test endpoint: optionally transmits, and sinks whatever arrives.
pub struct BwPeer {
    /// QP to use (created during setup).
    pub qpn: Qpn,
    /// UD destination (LID, QPN) for UD tests.
    pub peer: Option<(Lid, Qpn)>,
    /// Transmit role, if any.
    pub tx: Option<BwConfig>,
    posted: u64,
    completed: u64,
    started: Option<Time>,
    finished: Option<Time>,
    rx_count: u64,
    rx_bytes: u64,
    rx_first: Option<Time>,
    rx_last: Option<Time>,
    rx_posted: bool,
}

impl BwPeer {
    /// A transmitting endpoint.
    pub fn sender(cfg: BwConfig) -> Self {
        BwPeer {
            qpn: Qpn(0),
            peer: None,
            tx: Some(cfg),
            posted: 0,
            completed: 0,
            started: None,
            finished: None,
            rx_count: 0,
            rx_bytes: 0,
            rx_first: None,
            rx_last: None,
            rx_posted: false,
        }
    }

    /// A pure receiver.
    pub fn receiver() -> Self {
        BwPeer {
            qpn: Qpn(0),
            peer: None,
            tx: None,
            posted: 0,
            completed: 0,
            started: None,
            finished: None,
            rx_count: 0,
            rx_bytes: 0,
            rx_first: None,
            rx_last: None,
            rx_posted: false,
        }
    }

    /// Messages received.
    pub fn received(&self) -> u64 {
        self.rx_count
    }

    /// Receive-side goodput in MillionBytes/s over the arrival interval.
    /// This is the honest measure for UD, where the sender gets no
    /// feedback from a slower downstream (WAN) link.
    pub fn rx_bandwidth_mbs(&self) -> f64 {
        let (Some(t0), Some(t1)) = (self.rx_first, self.rx_last) else {
            return 0.0;
        };
        let d = t1.since(t0);
        if d.is_zero() {
            return 0.0;
        }
        self.rx_bytes as f64 / d.as_secs_f64() / 1e6
    }

    /// Sender-side goodput in MillionBytes/s over the completion interval.
    pub fn bandwidth_mbs(&self) -> f64 {
        let (Some(t0), Some(t1), Some(cfg)) = (self.started, self.finished, self.tx) else {
            return 0.0;
        };
        let dur = t1.since(t0);
        if dur.is_zero() {
            return 0.0;
        }
        (cfg.size as f64 * cfg.iters as f64) / dur.as_secs_f64() / 1e6
    }

    /// Time of the last send completion.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished
    }

    fn post_one(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        let cfg = self.tx.expect("post_one on a pure receiver");
        let mut wr = match cfg.kind {
            SendKind::Send => SendWr::send(self.posted, cfg.size, 0),
            SendKind::RdmaWrite => SendWr::rdma_write(self.posted, cfg.size),
            SendKind::RdmaRead => SendWr::rdma_read(self.posted, cfg.size),
        };
        if let Some(p) = self.peer {
            wr = wr.to(p);
        }
        hca.post_send(ctx, self.qpn, wr);
        self.posted += 1;
    }

    fn replenish_recvs(&mut self, hca: &mut HcaCore) {
        // Keep a deep pool of pre-posted receives, as perftest does.
        if !self.rx_posted {
            for _ in 0..512 {
                hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
            }
            self.rx_posted = true;
        }
    }
}

impl Ulp for BwPeer {
    fn start(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        self.replenish_recvs(hca);
        if let Some(cfg) = self.tx {
            self.started = Some(ctx.now());
            let burst = (cfg.tx_depth as u64).min(cfg.iters);
            for _ in 0..burst {
                self.post_one(hca, ctx);
            }
        }
    }

    fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
        match c {
            Completion::SendDone { .. } => {
                self.completed += 1;
                let cfg = self.tx.expect("send completion on a pure receiver");
                if self.posted < cfg.iters {
                    self.post_one(hca, ctx);
                }
                if self.completed == cfg.iters {
                    self.finished = Some(ctx.now());
                }
            }
            Completion::RecvDone { len, .. } | Completion::WriteArrived { len, .. } => {
                self.rx_count += 1;
                self.rx_bytes += len as u64;
                if self.rx_first.is_none() {
                    self.rx_first = Some(ctx.now());
                }
                self.rx_last = Some(ctx.now());
                // Re-post the consumed receive.
                hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
            }
        }
    }
}

/// Create and connect an RC QP pair between two already-built nodes.
///
/// Returns the QPNs on `(a, b)`.
pub fn rc_qp_pair(
    fabric: &mut crate::fabric::Fabric,
    a: crate::fabric::NodeHandle,
    b: crate::fabric::NodeHandle,
    cfg: QpConfig,
) -> (Qpn, Qpn) {
    let qa = fabric.hca_mut(a).core_mut().create_qp(cfg);
    let qb = fabric.hca_mut(b).core_mut().create_qp(cfg);
    fabric.hca_mut(a).core_mut().connect(qa, (b.lid, qb));
    fabric.hca_mut(b).core_mut().connect(qb, (a.lid, qa));
    (qa, qb)
}

/// Create (unconnected) UD QPs on two nodes; returns `(a, b)` QPNs.
pub fn ud_qp_pair(
    fabric: &mut crate::fabric::Fabric,
    a: crate::fabric::NodeHandle,
    b: crate::fabric::NodeHandle,
    cfg: QpConfig,
) -> (Qpn, Qpn) {
    let qa = fabric.hca_mut(a).core_mut().create_qp(cfg);
    let qb = fabric.hca_mut(b).core_mut().create_qp(cfg);
    (qa, qb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricBuilder, NodeHandle};
    use crate::hca::{HcaActor, HcaConfig};
    use crate::link::LinkConfig;

    fn back_to_back(ulp_a: Box<dyn Ulp>, ulp_b: Box<dyn Ulp>) -> (Fabric, NodeHandle, NodeHandle) {
        let mut b = FabricBuilder::new(3);
        let n1 = b.add_hca(HcaConfig::default(), ulp_a);
        let n2 = b.add_hca(HcaConfig::default(), ulp_b);
        b.link(n1.actor, n2.actor, LinkConfig::ddr_lan());
        let f = b.finish();
        (f, n1, n2)
    }

    #[test]
    fn send_latency_back_to_back_is_microseconds() {
        let (mut f, a, b) = back_to_back(
            Box::new(PingPong::new(LatMode::SendRc, true, 4, 100)),
            Box::new(PingPong::new(LatMode::SendRc, false, 4, 100)),
        );
        let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<PingPong>().qpn = qa;
        f.hca_mut(b).ulp_mut::<PingPong>().qpn = qb;
        f.run();
        let lat = f.hca(a).ulp::<PingPong>().mean_latency_us();
        // DDR back-to-back small-message half-RTT: a few microseconds.
        assert!(lat > 0.5 && lat < 5.0, "latency {lat} us");
        assert_eq!(f.hca(a).ulp::<PingPong>().samples.count(), 100);
    }

    #[test]
    fn write_latency_beats_send_latency() {
        let (mut f, a, b) = back_to_back(
            Box::new(PingPong::new(LatMode::SendRc, true, 4, 50)),
            Box::new(PingPong::new(LatMode::SendRc, false, 4, 50)),
        );
        let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<PingPong>().qpn = qa;
        f.hca_mut(b).ulp_mut::<PingPong>().qpn = qb;
        f.run();
        let send_lat = f.hca(a).ulp::<PingPong>().mean_latency_us();

        let (mut f2, a2, b2) = back_to_back(
            Box::new(PingPong::new(LatMode::WriteRc, true, 4, 50)),
            Box::new(PingPong::new(LatMode::WriteRc, false, 4, 50)),
        );
        let (qa2, qb2) = rc_qp_pair(&mut f2, a2, b2, QpConfig::rc().with_write_notify());
        f2.hca_mut(a2).ulp_mut::<PingPong>().qpn = qa2;
        f2.hca_mut(b2).ulp_mut::<PingPong>().qpn = qb2;
        f2.run();
        let write_lat = f2.hca(a2).ulp::<PingPong>().mean_latency_us();
        assert!(
            write_lat < send_lat,
            "RDMA write ({write_lat}) should beat send/recv ({send_lat})"
        );
    }

    #[test]
    fn ud_latency_round_trips() {
        let (mut f, a, b) = back_to_back(
            Box::new(PingPong::new(LatMode::SendUd, true, 4, 50)),
            Box::new(PingPong::new(LatMode::SendUd, false, 4, 50)),
        );
        let (qa, qb) = ud_qp_pair(&mut f, a, b, QpConfig::ud());
        {
            let h = f.hca_mut(a).ulp_mut::<PingPong>();
            h.qpn = qa;
            h.peer = Some((b.lid, qb));
        }
        {
            let h = f.hca_mut(b).ulp_mut::<PingPong>();
            h.qpn = qb;
            h.peer = Some((a.lid, qa));
        }
        f.run();
        assert_eq!(f.hca(a).ulp::<PingPong>().samples.count(), 50);
    }

    #[test]
    fn rc_bandwidth_approaches_line_rate_on_lan() {
        let (mut f, a, b) = back_to_back(
            Box::new(BwPeer::sender(BwConfig::new(65536, 400))),
            Box::new(BwPeer::receiver()),
        );
        let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
        f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
        f.run();
        let bw = f.hca(a).ulp::<BwPeer>().bandwidth_mbs();
        // DDR LAN line rate is 2000 MB/s; with headers ~1959 max.
        assert!(bw > 1700.0 && bw < 2000.0, "bw {bw}");
        assert_eq!(f.hca(b).ulp::<BwPeer>().received(), 400);
    }

    #[test]
    fn hca_counts_packets() {
        let (mut f, a, b) = back_to_back(
            Box::new(BwPeer::sender(BwConfig::new(2048, 10))),
            Box::new(BwPeer::receiver()),
        );
        let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
        f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
        f.run();
        let tx: &HcaActor = f.hca(a);
        assert_eq!(tx.core().packets_sent(), 10); // 10 data packets
        assert_eq!(tx.core().packets_received(), 10); // 10 ACKs
    }
}
