//! Queue-pair state machines for the RC and UD transports.
//!
//! A [`Qp`] is pure protocol logic: it consumes posted work requests and
//! incoming packets, and produces outgoing packets plus completions into a
//! [`QpOutput`]. All timing (host posting overhead, port serialization,
//! completion latency) is applied by [`crate::hca::HcaCore`], which drives
//! these state machines.
//!
//! ## RC windowing — the paper's key mechanism
//!
//! RC guarantees reliable in-order delivery with ACKs, which bounds how much
//! data a QP can keep un-acknowledged "in the pipe". The model enforces
//! [`QpConfig::max_inflight_msgs`] (default 16) and an optional byte cap.
//! Over a WAN with round-trip time `RTT`, a stream of `S`-byte messages can
//! therefore sustain at most `max_inflight_msgs * S / RTT` — exactly the
//! medium-message bandwidth collapse of Figure 5 of the paper, and the reason
//! large messages (or message coalescing) recover WAN bandwidth. UD has no
//! ACKs, so its bandwidth is delay-independent (Figure 4).

use crate::packet::{Opcode, Packet, Position};
use crate::types::Lid;
use crate::verbs::{Completion, RecvWr, SendKind, SendWr};
#[cfg(test)]
use bytes::Bytes;
use bytes::BytesMut;
use simcore::Dur;
use std::collections::VecDeque;

pub use ibwire::Qpn;

/// Queue-pair state, following the verbs connection state machine
/// (`ibv_modify_qp`): receives may be posted from `Init`, packets are
/// accepted from `Rtr`, and sends may be posted only in `Rts`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QpState {
    /// Freshly created (RC starts here).
    Init,
    /// Ready to receive: the remote peer is known.
    Rtr,
    /// Ready to send (UD QPs start here; no connection needed).
    Rts,
}

/// IB transport service type.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TransportType {
    /// Reliable Connected: ordered, ACKed, windowed, messages up to 2 GB.
    Rc,
    /// Unreliable Datagram: single-MTU messages, no ACKs, no connection.
    Ud,
}

/// Static QP parameters.
#[derive(Copy, Clone, Debug)]
pub struct QpConfig {
    /// Transport service.
    pub transport: TransportType,
    /// Path MTU: payload bytes per packet.
    pub mtu: u32,
    /// RC: maximum outstanding (un-ACKed) messages. The paper's testbed
    /// behaviour calibrates to 16.
    pub max_inflight_msgs: usize,
    /// RC: cap on outstanding bytes (at least one message is always allowed).
    pub max_inflight_bytes: u64,
    /// RC: maximum outstanding RDMA reads (IB "initiator depth").
    pub max_outstanding_reads: usize,
    /// Deliver [`Completion::WriteArrived`] for silent RDMA writes (models a
    /// memory-polling receiver, as `rdma_lat` uses).
    pub notify_silent_writes: bool,
    /// RC retransmission timeout: if no ACK progress happens within this
    /// span, all un-ACKed messages are retransmitted (go-back-N). Must
    /// exceed the worst-case RTT of the deployment (IB encodes this as the
    /// "local ACK timeout"; 2000 km of fiber needs > 20 ms).
    pub rto: Dur,
    /// Minimum run of contiguous full-MTU fragments of one message before
    /// the sender emits a fragment *train* (one [`Packet`] with `count > 1`)
    /// instead of individual packets. Only meaningful once the HCA enables
    /// coalescing on the QP; values below 2 behave as 2.
    pub coalesce_min_frags: u32,
}

impl QpConfig {
    /// RC QP with the calibrated defaults (2 KB MTU, 16-message window).
    pub fn rc() -> Self {
        QpConfig {
            transport: TransportType::Rc,
            mtu: crate::types::DEFAULT_MTU,
            max_inflight_msgs: 16,
            max_inflight_bytes: u64::MAX,
            max_outstanding_reads: 4,
            notify_silent_writes: false,
            rto: Dur::from_ms(60),
            coalesce_min_frags: 2,
        }
    }

    /// UD QP with 2 KB MTU.
    pub fn ud() -> Self {
        QpConfig {
            transport: TransportType::Ud,
            mtu: crate::types::DEFAULT_MTU,
            max_inflight_msgs: usize::MAX,
            max_inflight_bytes: u64::MAX,
            max_outstanding_reads: 0,
            notify_silent_writes: false,
            rto: Dur::from_ms(60),
            coalesce_min_frags: 2,
        }
    }

    /// Override the MTU.
    pub fn with_mtu(mut self, mtu: u32) -> Self {
        self.mtu = mtu;
        self
    }

    /// Override the RC message window.
    pub fn with_window(mut self, msgs: usize) -> Self {
        self.max_inflight_msgs = msgs;
        self
    }

    /// Enable [`Completion::WriteArrived`] notifications for silent writes.
    pub fn with_write_notify(mut self) -> Self {
        self.notify_silent_writes = true;
        self
    }
}

/// Outputs produced by driving a QP state machine.
#[derive(Default)]
pub struct QpOutput {
    /// Packets to place on the wire, in order.
    pub packets: Vec<Packet>,
    /// Completions to deliver to the ULP, in order.
    pub completions: Vec<Completion>,
    /// Completions that become valid only once the emitted packets have
    /// finished serializing onto the wire (UD send completions: the HCA
    /// signals when the datagram's DMA is done, i.e. at wire-out).
    pub tx_completions: Vec<Completion>,
    /// The HCA must (re-)arm this QP's retransmission timer.
    pub arm_retransmit: bool,
    /// The send pipeline quiesced (nothing un-ACKed remains): the HCA should
    /// cancel the armed retransmission timer instead of letting it fire as a
    /// stale no-op.
    pub disarm_retransmit: bool,
}

impl QpOutput {
    /// Clear for reuse, keeping the vectors' capacity. The HCA drives every
    /// QP through one recycled scratch output so steady-state packet
    /// processing performs no per-packet heap allocation.
    pub fn reset(&mut self) {
        self.packets.clear();
        self.completions.clear();
        self.tx_completions.clear();
        self.arm_retransmit = false;
        self.disarm_retransmit = false;
    }
}

struct Assembly {
    msg_id: u64,
    msg_len: u32,
    received: u32,
    imm: u64,
    src: (Lid, Qpn),
    consumes_recv: bool,
    data: BytesMut,
    expected_offset: u32,
    /// A fragment was lost mid-message: ignore the rest until the
    /// retransmitted `First` fragment restarts the assembly.
    poisoned: bool,
}

struct InflightSend {
    msg_id: u64,
    wr: SendWr,
}

/// A queue pair: send/receive queues plus transport state.
pub struct Qp {
    qpn: Qpn,
    cfg: QpConfig,
    state: QpState,
    local_lid: Lid,
    remote: Option<(Lid, Qpn)>,
    // --- sender state ---
    sq: VecDeque<SendWr>,
    inflight: VecDeque<InflightSend>,
    inflight_bytes: u64,
    inflight_reads: VecDeque<InflightSend>,
    next_send_msg_id: u64,
    next_read_msg_id: u64,
    next_ud_msg_id: u64,
    next_psn: u32,
    /// Monotonic counter of ACK progress (retransmit-timer bookkeeping).
    progress_seq: u64,
    last_fire_progress: u64,
    timer_armed: bool,
    retransmit_rounds: u64,
    /// Emit fragment trains (see [`Packet::count`]). Off by default so the
    /// raw state machine is per-fragment; [`crate::hca::HcaCore`] turns it on
    /// when the surrounding fabric can carry trains exactly.
    coalesce: bool,
    // --- receiver state ---
    rq: VecDeque<RecvWr>,
    /// Next sender message id this receiver will accept (go-back-N).
    expected_msg_id: u64,
    assembling: Option<Assembly>,
    read_assembling: Option<Assembly>,
    rdma_bytes_received: u64,
    ud_dropped: u64,
    dup_fragments: u64,
    gap_drops: u64,
}

impl Qp {
    /// Create a QP owned by the port with `local_lid`.
    pub fn new(qpn: Qpn, cfg: QpConfig, local_lid: Lid) -> Self {
        let state = match cfg.transport {
            TransportType::Ud => QpState::Rts, // datagram QPs need no peer
            TransportType::Rc => QpState::Init,
        };
        Qp {
            qpn,
            cfg,
            state,
            local_lid,
            remote: None,
            sq: VecDeque::new(),
            inflight: VecDeque::new(),
            inflight_bytes: 0,
            inflight_reads: VecDeque::new(),
            next_send_msg_id: 0,
            next_read_msg_id: 0,
            next_ud_msg_id: 0,
            next_psn: 0,
            progress_seq: 0,
            last_fire_progress: 0,
            timer_armed: false,
            retransmit_rounds: 0,
            coalesce: false,
            rq: VecDeque::new(),
            expected_msg_id: 0,
            assembling: None,
            read_assembling: None,
            rdma_bytes_received: 0,
            ud_dropped: 0,
            dup_fragments: 0,
            gap_drops: 0,
        }
    }

    /// QP number.
    pub fn qpn(&self) -> Qpn {
        self.qpn
    }
    /// Configuration.
    pub fn config(&self) -> &QpConfig {
        &self.cfg
    }
    /// Current connection state.
    pub fn state(&self) -> QpState {
        self.state
    }

    /// Transition Init → RTR: learn the remote peer; the QP may now accept
    /// incoming packets (`ibv_modify_qp` to `IBV_QPS_RTR`).
    pub fn modify_to_rtr(&mut self, remote: (Lid, Qpn)) {
        assert_eq!(self.cfg.transport, TransportType::Rc, "only RC connects");
        assert_eq!(self.state, QpState::Init, "RTR requires Init");
        self.remote = Some(remote);
        self.state = QpState::Rtr;
    }

    /// Transition RTR → RTS: the QP may now send (`IBV_QPS_RTS`).
    pub fn modify_to_rts(&mut self) {
        assert_eq!(self.state, QpState::Rtr, "RTS requires RTR");
        self.state = QpState::Rts;
    }

    /// Convenience: full Init → RTR → RTS transition (how every test and
    /// experiment brings up connections).
    pub fn connect(&mut self, remote: (Lid, Qpn)) {
        self.modify_to_rtr(remote);
        self.modify_to_rts();
    }
    /// Connected peer, if any.
    pub fn remote(&self) -> Option<(Lid, Qpn)> {
        self.remote
    }
    /// Bytes deposited by silent (no-immediate) RDMA writes.
    pub fn rdma_bytes_received(&self) -> u64 {
        self.rdma_bytes_received
    }
    /// UD datagrams dropped for lack of a posted receive.
    pub fn ud_dropped(&self) -> u64 {
        self.ud_dropped
    }
    /// Number of receive WQEs currently posted.
    pub fn posted_recvs(&self) -> usize {
        self.rq.len()
    }
    /// Send-queue depth not yet on the wire (excludes in-flight).
    pub fn pending_sends(&self) -> usize {
        self.sq.len()
    }
    /// Messages currently un-ACKed (RC).
    pub fn inflight_msgs(&self) -> usize {
        self.inflight.len() + self.inflight_reads.len()
    }
    /// Go-back-N retransmission rounds triggered on this QP.
    pub fn retransmit_rounds(&self) -> u64 {
        self.retransmit_rounds
    }
    /// Duplicate/stale fragments discarded by the receiver.
    pub fn dup_fragments(&self) -> u64 {
        self.dup_fragments
    }
    /// Fragments dropped because an earlier message/fragment was lost.
    pub fn gap_drops(&self) -> u64 {
        self.gap_drops
    }
    /// Enable or disable fragment-train emission on this QP.
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalesce = on;
    }

    /// Post a receive WQE.
    pub fn post_recv(&mut self, wr: RecvWr) {
        self.rq.push_back(wr);
    }

    /// Post a send-side work request; may immediately emit packets.
    ///
    /// # Panics
    /// Panics unless the QP is in [`QpState::Rts`].
    pub fn post_send(&mut self, wr: SendWr, out: &mut QpOutput) {
        assert_eq!(
            self.state,
            QpState::Rts,
            "post_send on {:?} requires RTS (connect the QP first)",
            self.qpn
        );
        match self.cfg.transport {
            TransportType::Ud => self.post_send_ud(wr, out),
            TransportType::Rc => {
                self.sq.push_back(wr);
                self.pump(out);
            }
        }
    }

    fn post_send_ud(&mut self, wr: SendWr, out: &mut QpOutput) {
        assert!(
            wr.len <= self.cfg.mtu,
            "UD message of {} bytes exceeds MTU {}",
            wr.len,
            self.cfg.mtu
        );
        assert_eq!(wr.kind, SendKind::Send, "UD supports only Send");
        let dest = wr
            .ud_dest
            .or(self.remote)
            .expect("UD send requires a destination address");
        let msg_id = self.next_ud_msg_id;
        self.next_ud_msg_id += 1;
        out.packets.push(Packet {
            dst_lid: dest.0,
            src_lid: self.local_lid,
            dst_qpn: dest.1,
            src_qpn: self.qpn,
            opcode: Opcode::UdSend,
            psn: self.bump_psn(),
            payload: wr.len,
            msg_id,
            msg_len: wr.len,
            offset: 0,
            imm: wr.imm,
            count: 1,
            stride: 0,
            gap_ns: 0,
            data: wr.data.clone(),
        });
        // UD completes when the datagram has left the port (DMA done).
        out.tx_completions.push(Completion::SendDone {
            qpn: self.qpn,
            wr_id: wr.wr_id,
            kind: SendKind::Send,
            len: wr.len,
        });
    }

    fn bump_psn(&mut self) -> u32 {
        let p = self.next_psn;
        self.next_psn = self.next_psn.wrapping_add(1);
        p
    }

    /// Start queued RC messages while the window allows.
    pub fn pump(&mut self, out: &mut QpOutput) {
        while let Some(front) = self.sq.front() {
            let is_read = front.kind == SendKind::RdmaRead;
            if is_read {
                if self.inflight_reads.len() >= self.cfg.max_outstanding_reads {
                    break;
                }
            } else {
                let would_be_bytes = self.inflight_bytes + front.len as u64;
                let window_open = self.inflight.is_empty()
                    || (self.inflight.len() < self.cfg.max_inflight_msgs
                        && would_be_bytes <= self.cfg.max_inflight_bytes);
                if !window_open {
                    break;
                }
            }
            let wr = self.sq.pop_front().unwrap();
            self.start_message(wr, out);
        }
    }

    fn start_message(&mut self, wr: SendWr, out: &mut QpOutput) {
        match wr.kind {
            SendKind::RdmaRead => {
                let msg_id = self.next_read_msg_id;
                self.next_read_msg_id += 1;
                self.emit_read_request(msg_id, wr.len, wr.imm, out);
                self.inflight_reads.push_back(InflightSend { msg_id, wr });
            }
            SendKind::Send | SendKind::RdmaWrite => {
                let msg_id = self.next_send_msg_id;
                self.next_send_msg_id += 1;
                let remote = self.remote.expect("RC QP not connected");
                self.emit_fragments(msg_id, &wr, remote, out);
                self.inflight_bytes += wr.len as u64;
                self.inflight.push_back(InflightSend { msg_id, wr });
            }
        }
        self.request_arm(out);
    }

    fn emit_read_request(&mut self, msg_id: u64, len: u32, imm: u64, out: &mut QpOutput) {
        let remote = self.remote.expect("RC QP not connected");
        out.packets.push(Packet {
            dst_lid: remote.0,
            src_lid: self.local_lid,
            dst_qpn: remote.1,
            src_qpn: self.qpn,
            opcode: Opcode::RcReadRequest,
            psn: self.bump_psn(),
            payload: 0,
            msg_id,
            msg_len: len,
            offset: 0,
            imm,
            count: 1,
            stride: 0,
            gap_ns: 0,
            data: None,
        });
    }

    fn request_arm(&mut self, out: &mut QpOutput) {
        if !self.timer_armed {
            self.timer_armed = true;
            out.arm_retransmit = true;
        }
    }

    /// Ask the HCA to cancel the retransmission timer once nothing un-ACKed
    /// remains (the window is empty, so `pump` has also drained the send
    /// queue).
    fn maybe_disarm(&mut self, out: &mut QpOutput) {
        if self.timer_armed && self.inflight.is_empty() && self.inflight_reads.is_empty() {
            self.timer_armed = false;
            out.disarm_retransmit = true;
        }
    }

    /// The retransmission timer fired. Retransmits every un-ACKed message
    /// (go-back-N) if no ACK progress happened since the last firing.
    pub fn on_retransmit_timer(&mut self, out: &mut QpOutput) {
        self.timer_armed = false;
        if self.inflight.is_empty() && self.inflight_reads.is_empty() {
            return; // quiesced; timer dies
        }
        if self.progress_seq > self.last_fire_progress {
            // Progress since arming: just re-arm.
            self.last_fire_progress = self.progress_seq;
            self.request_arm(out);
            return;
        }
        self.retransmit_rounds += 1;
        let remote = self.remote.expect("RC QP not connected");
        let resend: Vec<(u64, SendWr)> = self
            .inflight
            .iter()
            .map(|m| (m.msg_id, m.wr.clone()))
            .collect();
        for (msg_id, wr) in resend {
            self.emit_fragments(msg_id, &wr, remote, out);
        }
        let reads: Vec<(u64, u32, u64)> = self
            .inflight_reads
            .iter()
            .map(|m| (m.msg_id, m.wr.len, m.wr.imm))
            .collect();
        for (msg_id, len, imm) in reads {
            self.emit_read_request(msg_id, len, imm, out);
        }
        self.request_arm(out);
    }

    fn emit_fragments(&mut self, msg_id: u64, wr: &SendWr, remote: (Lid, Qpn), out: &mut QpOutput) {
        let mtu = self.cfg.mtu;
        let count = (wr.len.max(1)).div_ceil(mtu).max(1);
        // Inline data rides in one of two modes: when its length equals the
        // message length it is the full payload and is sliced per fragment
        // (integrity tests); otherwise it is small ULP metadata (e.g. a TCP
        // or RPC header) attached whole to the final fragment.
        let integrity = wr.data.as_ref().is_some_and(|d| d.len() == wr.len as usize);
        let mut start_idx = 0;
        if self.coalesce {
            // Train members must be equal-size (full MTU), and a fragment
            // carrying whole metadata must stay out (train data is either
            // absent or sliced per member by `stride`).
            let metadata_last = wr.data.is_some() && !integrity;
            let mut train_len = (wr.len / mtu).min(count);
            if metadata_last && train_len == count {
                train_len -= 1;
            }
            if train_len >= self.cfg.coalesce_min_frags.max(2) {
                let position = Position::of(0, count);
                let opcode = match wr.kind {
                    SendKind::Send => Opcode::RcSend { position },
                    SendKind::RdmaWrite => Opcode::RcWrite { position },
                    SendKind::RdmaRead => unreachable!("reads emit a request"),
                };
                let data = match &wr.data {
                    Some(d) if integrity => Some(d.slice(0..(train_len * mtu) as usize)),
                    _ => None,
                };
                let psn = self.next_psn;
                self.next_psn = self.next_psn.wrapping_add(train_len);
                out.packets.push(Packet {
                    dst_lid: remote.0,
                    src_lid: self.local_lid,
                    dst_qpn: remote.1,
                    src_qpn: self.qpn,
                    opcode,
                    psn,
                    payload: mtu,
                    msg_id,
                    msg_len: wr.len,
                    offset: 0,
                    imm: wr.imm,
                    count: train_len,
                    stride: mtu,
                    gap_ns: 0,
                    data,
                });
                start_idx = train_len;
            }
        }
        for idx in start_idx..count {
            let offset = idx * mtu;
            let payload = (wr.len - offset).min(mtu);
            let position = Position::of(idx, count);
            let data = match &wr.data {
                Some(d) if integrity => Some(d.slice(offset as usize..(offset + payload) as usize)),
                Some(d) if position.is_last() => Some(d.clone()),
                _ => None,
            };
            let opcode = match wr.kind {
                SendKind::Send => Opcode::RcSend { position },
                SendKind::RdmaWrite => Opcode::RcWrite { position },
                SendKind::RdmaRead => unreachable!("reads emit a request"),
            };
            out.packets.push(Packet {
                dst_lid: remote.0,
                src_lid: self.local_lid,
                dst_qpn: remote.1,
                src_qpn: self.qpn,
                opcode,
                psn: self.bump_psn(),
                payload,
                msg_id,
                msg_len: wr.len,
                offset,
                imm: wr.imm,
                count: 1,
                stride: 0,
                gap_ns: 0,
                data,
            });
        }
    }

    /// Handle an incoming packet addressed to this QP.
    pub fn on_packet(&mut self, pkt: Packet, out: &mut QpOutput) {
        debug_assert!(
            self.state >= QpState::Rtr,
            "packet for {:?} before RTR",
            self.qpn
        );
        if pkt.is_train() {
            // Fragment trains are unpacked analytically: the handlers below
            // reproduce, counter for counter and ACK for ACK, what `count`
            // sequential per-fragment deliveries would have done.
            return match pkt.opcode {
                Opcode::RcSend { .. } => self.on_data_train(pkt, true, out),
                Opcode::RcWrite { .. } => self.on_data_train(pkt, false, out),
                Opcode::RcReadResponse { .. } => self.on_read_response_train(pkt, out),
                _ => unreachable!("only RC data opcodes form trains"),
            };
        }
        match pkt.opcode {
            Opcode::UdSend => self.on_ud(pkt, out),
            Opcode::RcAck => self.on_ack(pkt, out),
            Opcode::RcReadRequest => self.on_read_request(pkt, out),
            Opcode::RcSend { position } => self.on_data(pkt, position, true, out),
            Opcode::RcWrite { position } => self.on_data(pkt, position, false, out),
            Opcode::RcReadResponse { position } => self.on_read_response(pkt, position, out),
        }
    }

    fn on_ud(&mut self, pkt: Packet, out: &mut QpOutput) {
        match self.rq.pop_front() {
            Some(wr) => out.completions.push(Completion::RecvDone {
                qpn: self.qpn,
                wr_id: wr.wr_id,
                len: pkt.payload,
                imm: pkt.imm,
                src: (pkt.src_lid, pkt.src_qpn),
                data: pkt.data,
            }),
            None => self.ud_dropped += 1,
        }
    }

    fn on_data(&mut self, pkt: Packet, position: Position, is_send: bool, out: &mut QpOutput) {
        let src = (pkt.src_lid, pkt.src_qpn);
        // Go-back-N receive discipline: only the next expected message is
        // accepted; earlier ids are retransmitted duplicates (our ACK was
        // lost — re-ACK cumulatively), later ids mean an earlier message
        // was lost entirely (drop; the sender will retransmit in order).
        if pkt.msg_id < self.expected_msg_id {
            self.dup_fragments += 1;
            if position.is_last() {
                let ack = self.make_ack(self.expected_msg_id - 1, src);
                out.packets.push(ack);
            }
            return;
        }
        if pkt.msg_id > self.expected_msg_id {
            self.gap_drops += 1;
            if let Some(asm) = self.assembling.as_mut() {
                // The expected message can never finish cleanly now.
                asm.poisoned = true;
            }
            return;
        }
        let consumes_recv = is_send || pkt.imm != u64::MAX;
        if position.is_first() {
            // (Re)start assembly — a retransmitted First heals a poisoned one.
            self.assembling = Some(Assembly {
                msg_id: pkt.msg_id,
                msg_len: pkt.msg_len,
                received: 0,
                imm: pkt.imm,
                src,
                consumes_recv,
                data: BytesMut::new(),
                expected_offset: 0,
                poisoned: false,
            });
        }
        let Some(asm) = self.assembling.as_mut() else {
            // Mid-message fragment whose First was lost.
            self.gap_drops += 1;
            return;
        };
        if asm.poisoned || asm.expected_offset != pkt.offset {
            asm.poisoned = true;
            self.gap_drops += 1;
            return;
        }
        asm.received += pkt.payload;
        asm.expected_offset += pkt.payload;
        if let Some(d) = pkt.data.as_ref() {
            asm.data.extend_from_slice(d);
        }
        if position.is_last() {
            self.finish_assembly(out);
        }
    }

    /// The final fragment of the expected message arrived: deliver it.
    /// Shared by the per-fragment path and the train tail.
    fn finish_assembly(&mut self, out: &mut QpOutput) {
        let asm = self.assembling.take().unwrap();
        debug_assert_eq!(asm.received, asm.msg_len, "short message");
        self.expected_msg_id += 1;
        // Hardware-generated cumulative ACK for the whole message.
        let ack = self.make_ack(asm.msg_id, asm.src);
        out.packets.push(ack);
        if asm.consumes_recv {
            let wr = self.rq.pop_front().unwrap_or_else(|| {
                panic!(
                    "RC message on {:?} with no posted receive (ULP must pre-post)",
                    self.qpn
                )
            });
            let data = if asm.data.is_empty() {
                None
            } else {
                Some(asm.data.freeze())
            };
            out.completions.push(Completion::RecvDone {
                qpn: self.qpn,
                wr_id: wr.wr_id,
                len: asm.msg_len,
                imm: asm.imm,
                src: asm.src,
                data,
            });
        } else {
            self.rdma_bytes_received += asm.msg_len as u64;
            if self.cfg.notify_silent_writes {
                out.completions.push(Completion::WriteArrived {
                    qpn: self.qpn,
                    len: asm.msg_len,
                });
            }
        }
    }

    /// Receive a fragment train of Send/Write data: the analytic equivalent
    /// of `count` consecutive [`Qp::on_data`] calls. Train members are
    /// contiguous equal-size fragments of one message, so the go-back-N
    /// outcome is all-or-nothing: either every member extends the assembly,
    /// or every member takes the same dup/gap branch the per-fragment path
    /// would have taken.
    fn on_data_train(&mut self, pkt: Packet, is_send: bool, out: &mut QpOutput) {
        let n = pkt.count as u64;
        let src = (pkt.src_lid, pkt.src_qpn);
        if pkt.msg_id < self.expected_msg_id {
            // Retransmitted duplicates; re-ACK cumulatively if the train tail
            // is the message's Last fragment (as on_data does per fragment).
            self.dup_fragments += n;
            if pkt.tail_is_last() {
                let ack = self.make_ack(self.expected_msg_id - 1, src);
                out.packets.push(ack);
            }
            return;
        }
        if pkt.msg_id > self.expected_msg_id {
            self.gap_drops += n;
            if let Some(asm) = self.assembling.as_mut() {
                asm.poisoned = true;
            }
            return;
        }
        let consumes_recv = is_send || pkt.imm != u64::MAX;
        if pkt.offset == 0 {
            // Head is a First fragment: (re)start assembly.
            self.assembling = Some(Assembly {
                msg_id: pkt.msg_id,
                msg_len: pkt.msg_len,
                received: 0,
                imm: pkt.imm,
                src,
                consumes_recv,
                data: BytesMut::new(),
                expected_offset: 0,
                poisoned: false,
            });
        }
        let Some(asm) = self.assembling.as_mut() else {
            // Mid-message train whose First was lost: every member dropped.
            self.gap_drops += n;
            return;
        };
        if asm.poisoned || asm.expected_offset != pkt.offset {
            // The head mismatches, so every later member hits the poisoned
            // branch too.
            asm.poisoned = true;
            self.gap_drops += n;
            return;
        }
        let bytes = pkt.count * pkt.stride;
        asm.received += bytes;
        asm.expected_offset += bytes;
        if let Some(d) = pkt.data.as_ref() {
            asm.data.extend_from_slice(d);
        }
        if pkt.tail_is_last() {
            self.finish_assembly(out);
        }
    }

    fn make_ack(&mut self, msg_id: u64, dest: (Lid, Qpn)) -> Packet {
        Packet {
            dst_lid: dest.0,
            src_lid: self.local_lid,
            dst_qpn: dest.1,
            src_qpn: self.qpn,
            opcode: Opcode::RcAck,
            psn: 0,
            payload: 0,
            msg_id,
            msg_len: 0,
            offset: 0,
            imm: u64::MAX,
            count: 1,
            stride: 0,
            gap_ns: 0,
            data: None,
        }
    }

    fn on_ack(&mut self, pkt: Packet, out: &mut QpOutput) {
        // Cumulative: everything up to and including `msg_id` is delivered.
        let mut progressed = false;
        while let Some(front) = self.inflight.front() {
            if front.msg_id > pkt.msg_id {
                break;
            }
            let done = self.inflight.pop_front().unwrap();
            self.inflight_bytes -= done.wr.len as u64;
            out.completions.push(Completion::SendDone {
                qpn: self.qpn,
                wr_id: done.wr.wr_id,
                kind: done.wr.kind,
                len: done.wr.len,
            });
            progressed = true;
        }
        if progressed {
            self.progress_seq += 1;
            self.pump(out);
            self.maybe_disarm(out);
        }
        // Stale duplicate ACKs are ignored.
    }

    fn on_read_request(&mut self, pkt: Packet, out: &mut QpOutput) {
        // The responder HCA streams the data back without host involvement.
        let remote = (pkt.src_lid, pkt.src_qpn);
        let wr = SendWr {
            wr_id: 0,
            kind: SendKind::Send, // opcode overridden below
            len: pkt.msg_len,
            imm: u64::MAX,
            data: None,
            ud_dest: None,
        };
        let mtu = self.cfg.mtu;
        let count = (wr.len.max(1)).div_ceil(mtu).max(1);
        let mut start_idx = 0;
        if self.coalesce {
            let train_len = (wr.len / mtu).min(count);
            if train_len >= self.cfg.coalesce_min_frags.max(2) {
                let psn = self.next_psn;
                self.next_psn = self.next_psn.wrapping_add(train_len);
                out.packets.push(Packet {
                    dst_lid: remote.0,
                    src_lid: self.local_lid,
                    dst_qpn: remote.1,
                    src_qpn: self.qpn,
                    opcode: Opcode::RcReadResponse {
                        position: Position::of(0, count),
                    },
                    psn,
                    payload: mtu,
                    msg_id: pkt.msg_id,
                    msg_len: wr.len,
                    offset: 0,
                    imm: u64::MAX,
                    count: train_len,
                    stride: mtu,
                    gap_ns: 0,
                    data: None,
                });
                start_idx = train_len;
            }
        }
        for idx in start_idx..count {
            let offset = idx * mtu;
            let payload = (wr.len - offset).min(mtu);
            out.packets.push(Packet {
                dst_lid: remote.0,
                src_lid: self.local_lid,
                dst_qpn: remote.1,
                src_qpn: self.qpn,
                opcode: Opcode::RcReadResponse {
                    position: Position::of(idx, count),
                },
                psn: self.bump_psn(),
                payload,
                msg_id: pkt.msg_id,
                msg_len: wr.len,
                offset,
                imm: u64::MAX,
                count: 1,
                stride: 0,
                gap_ns: 0,
                data: None,
            });
        }
    }

    fn on_read_response(&mut self, pkt: Packet, position: Position, out: &mut QpOutput) {
        // Accept only responses for the oldest outstanding read; anything
        // else is a stale duplicate or a response racing a lost request
        // (the retransmission timer recovers both).
        let Some(front) = self.inflight_reads.front() else {
            self.dup_fragments += 1;
            return;
        };
        if pkt.msg_id != front.msg_id {
            self.dup_fragments += 1;
            return;
        }
        if position.is_first() {
            self.read_assembling = Some(Assembly {
                msg_id: pkt.msg_id,
                msg_len: pkt.msg_len,
                received: 0,
                imm: u64::MAX,
                src: (pkt.src_lid, pkt.src_qpn),
                consumes_recv: false,
                data: BytesMut::new(),
                expected_offset: 0,
                poisoned: false,
            });
        }
        let Some(asm) = self.read_assembling.as_mut() else {
            self.gap_drops += 1;
            return;
        };
        if asm.poisoned || asm.msg_id != pkt.msg_id || asm.expected_offset != pkt.offset {
            asm.poisoned = true;
            self.gap_drops += 1;
            return;
        }
        asm.received += pkt.payload;
        asm.expected_offset += pkt.payload;
        if position.is_last() {
            self.finish_read_assembly(out);
        }
    }

    /// The final read-response fragment arrived: complete the oldest read.
    /// Shared by the per-fragment path and the train tail.
    fn finish_read_assembly(&mut self, out: &mut QpOutput) {
        let asm = self.read_assembling.take().unwrap();
        debug_assert_eq!(asm.received, asm.msg_len);
        let done = self.inflight_reads.pop_front().unwrap();
        self.progress_seq += 1;
        out.completions.push(Completion::SendDone {
            qpn: self.qpn,
            wr_id: done.wr.wr_id,
            kind: SendKind::RdmaRead,
            len: done.wr.len,
        });
        self.pump(out);
        self.maybe_disarm(out);
    }

    /// Receive a read-response fragment train: the analytic equivalent of
    /// `count` consecutive [`Qp::on_read_response`] calls.
    fn on_read_response_train(&mut self, pkt: Packet, out: &mut QpOutput) {
        let n = pkt.count as u64;
        let stale = match self.inflight_reads.front() {
            None => true,
            Some(front) => pkt.msg_id != front.msg_id,
        };
        if stale {
            self.dup_fragments += n;
            return;
        }
        if pkt.offset == 0 {
            self.read_assembling = Some(Assembly {
                msg_id: pkt.msg_id,
                msg_len: pkt.msg_len,
                received: 0,
                imm: u64::MAX,
                src: (pkt.src_lid, pkt.src_qpn),
                consumes_recv: false,
                data: BytesMut::new(),
                expected_offset: 0,
                poisoned: false,
            });
        }
        let Some(asm) = self.read_assembling.as_mut() else {
            self.gap_drops += n;
            return;
        };
        if asm.poisoned || asm.msg_id != pkt.msg_id || asm.expected_offset != pkt.offset {
            asm.poisoned = true;
            self.gap_drops += n;
            return;
        }
        let bytes = pkt.count * pkt.stride;
        asm.received += bytes;
        asm.expected_offset += bytes;
        if pkt.tail_is_last() {
            self.finish_read_assembly(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_pair() -> (Qp, Qp) {
        let mut a = Qp::new(Qpn(10), QpConfig::rc(), Lid(1));
        let mut b = Qp::new(Qpn(20), QpConfig::rc(), Lid(2));
        a.connect((Lid(2), Qpn(20)));
        b.connect((Lid(1), Qpn(10)));
        (a, b)
    }

    /// Shuttle packets between two QPs until quiescent; returns completions
    /// per side.
    pub(super) fn run_to_quiescence(
        a: &mut Qp,
        b: &mut Qp,
        mut out_a: QpOutput,
    ) -> (Vec<Completion>, Vec<Completion>) {
        let mut comps_a = std::mem::take(&mut out_a.completions);
        let mut comps_b = Vec::new();
        let mut to_b: VecDeque<Packet> = out_a.packets.into();
        let mut to_a: VecDeque<Packet> = VecDeque::new();
        loop {
            let mut progressed = false;
            while let Some(p) = to_b.pop_front() {
                progressed = true;
                let mut out = QpOutput::default();
                b.on_packet(p, &mut out);
                comps_b.extend(out.completions);
                to_a.extend(out.packets);
            }
            while let Some(p) = to_a.pop_front() {
                progressed = true;
                let mut out = QpOutput::default();
                a.on_packet(p, &mut out);
                comps_a.extend(out.completions);
                to_b.extend(out.packets);
            }
            if !progressed {
                break;
            }
        }
        (comps_a, comps_b)
    }

    #[test]
    fn rc_send_completes_both_sides() {
        let (mut a, mut b) = rc_pair();
        b.post_recv(RecvWr { wr_id: 77 });
        let mut out = QpOutput::default();
        a.post_send(SendWr::send(5, 5000, 42), &mut out);
        // 5000 bytes at 2048 MTU -> 3 fragments.
        assert_eq!(out.packets.len(), 3);
        assert!(matches!(
            out.packets[0].opcode,
            Opcode::RcSend {
                position: Position::First
            }
        ));
        assert!(matches!(
            out.packets[2].opcode,
            Opcode::RcSend {
                position: Position::Last
            }
        ));
        let (ca, cb) = run_to_quiescence(&mut a, &mut b, out);
        assert_eq!(ca.len(), 1);
        assert!(matches!(
            ca[0],
            Completion::SendDone {
                wr_id: 5,
                len: 5000,
                ..
            }
        ));
        assert_eq!(cb.len(), 1);
        assert!(matches!(
            cb[0],
            Completion::RecvDone {
                wr_id: 77,
                len: 5000,
                imm: 42,
                ..
            }
        ));
        assert_eq!(a.inflight_msgs(), 0);
    }

    #[test]
    fn rc_window_blocks_seventeenth_message() {
        let (mut a, _b) = rc_pair();
        let mut out = QpOutput::default();
        for i in 0..20 {
            a.post_send(SendWr::send(i, 100, 0), &mut out);
        }
        // Only 16 messages' packets emitted; 4 queued.
        assert_eq!(out.packets.len(), 16);
        assert_eq!(a.pending_sends(), 4);
        assert_eq!(a.inflight_msgs(), 16);
    }

    #[test]
    fn rc_ack_opens_window() {
        let (mut a, mut b) = rc_pair();
        for _ in 0..20 {
            b.post_recv(RecvWr { wr_id: 0 });
        }
        let mut out = QpOutput::default();
        for i in 0..20 {
            a.post_send(SendWr::send(i, 100, 0), &mut out);
        }
        let (ca, cb) = run_to_quiescence(&mut a, &mut b, out);
        assert_eq!(ca.len(), 20);
        assert_eq!(cb.len(), 20);
        assert_eq!(a.pending_sends(), 0);
        assert_eq!(a.inflight_msgs(), 0);
    }

    #[test]
    fn rc_byte_cap_allows_single_oversized_message() {
        let mut a = Qp::new(
            Qpn(1),
            QpConfig {
                max_inflight_bytes: 1000,
                ..QpConfig::rc()
            },
            Lid(1),
        );
        a.connect((Lid(2), Qpn(2)));
        let mut out = QpOutput::default();
        a.post_send(SendWr::send(1, 5000, 0), &mut out); // > cap, but alone: allowed
        a.post_send(SendWr::send(2, 100, 0), &mut out); // blocked by cap
        assert_eq!(a.inflight_msgs(), 1);
        assert_eq!(a.pending_sends(), 1);
    }

    #[test]
    fn silent_rdma_write_does_not_consume_recv() {
        let (mut a, mut b) = rc_pair();
        b.post_recv(RecvWr { wr_id: 9 });
        let mut out = QpOutput::default();
        a.post_send(SendWr::rdma_write(1, 4096), &mut out);
        let (ca, cb) = run_to_quiescence(&mut a, &mut b, out);
        assert_eq!(ca.len(), 1); // sender-side completion
        assert!(cb.is_empty()); // silent at responder
        assert_eq!(b.rdma_bytes_received(), 4096);
        assert_eq!(b.posted_recvs(), 1);
    }

    #[test]
    fn rdma_write_with_imm_notifies_responder() {
        let (mut a, mut b) = rc_pair();
        b.post_recv(RecvWr { wr_id: 9 });
        let mut out = QpOutput::default();
        a.post_send(SendWr::rdma_write_imm(1, 4096, 1234), &mut out);
        let (_ca, cb) = run_to_quiescence(&mut a, &mut b, out);
        assert_eq!(cb.len(), 1);
        assert!(matches!(
            cb[0],
            Completion::RecvDone {
                imm: 1234,
                len: 4096,
                ..
            }
        ));
        assert_eq!(b.posted_recvs(), 0);
    }

    #[test]
    fn rdma_read_round_trip() {
        let (mut a, mut b) = rc_pair();
        let mut out = QpOutput::default();
        a.post_send(SendWr::rdma_read(3, 10_000), &mut out);
        assert_eq!(out.packets.len(), 1); // just the request
        let (ca, cb) = run_to_quiescence(&mut a, &mut b, out);
        assert!(cb.is_empty()); // responder host never involved
        assert_eq!(ca.len(), 1);
        assert!(matches!(
            ca[0],
            Completion::SendDone {
                wr_id: 3,
                kind: SendKind::RdmaRead,
                len: 10_000,
                ..
            }
        ));
    }

    #[test]
    fn read_credit_limits_outstanding_reads() {
        let (mut a, _b) = rc_pair();
        let mut out = QpOutput::default();
        for i in 0..6 {
            a.post_send(SendWr::rdma_read(i, 100), &mut out);
        }
        assert_eq!(out.packets.len(), 4); // max_outstanding_reads
        assert_eq!(a.pending_sends(), 2);
    }

    #[test]
    fn ud_send_is_fire_and_forget() {
        let mut a = Qp::new(Qpn(1), QpConfig::ud(), Lid(1));
        let mut out = QpOutput::default();
        a.post_send(SendWr::send(1, 2048, 7).to((Lid(2), Qpn(9))), &mut out);
        assert_eq!(out.packets.len(), 1);
        assert!(out.completions.is_empty());
        assert_eq!(out.tx_completions.len(), 1); // completes at wire-out
        assert!(matches!(out.packets[0].opcode, Opcode::UdSend));
        assert_eq!(out.packets[0].dst_qpn, Qpn(9));
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn ud_rejects_oversized() {
        let mut a = Qp::new(Qpn(1), QpConfig::ud(), Lid(1));
        let mut out = QpOutput::default();
        a.post_send(SendWr::send(1, 4096, 0).to((Lid(2), Qpn(9))), &mut out);
    }

    #[test]
    fn ud_without_recv_drops() {
        let mut b = Qp::new(Qpn(2), QpConfig::ud(), Lid(2));
        let mut out = QpOutput::default();
        b.on_packet(
            Packet {
                dst_lid: Lid(2),
                src_lid: Lid(1),
                dst_qpn: Qpn(2),
                src_qpn: Qpn(1),
                opcode: Opcode::UdSend,
                psn: 0,
                payload: 100,
                msg_id: 0,
                msg_len: 100,
                offset: 0,
                imm: 0,
                count: 1,
                stride: 0,
                gap_ns: 0,
                data: None,
            },
            &mut out,
        );
        assert!(out.completions.is_empty());
        assert_eq!(b.ud_dropped(), 1);
    }

    #[test]
    fn inline_data_reassembled_in_order() {
        let (mut a, mut b) = rc_pair();
        b.post_recv(RecvWr { wr_id: 0 });
        let payload: Bytes = (0..5000u32)
            .map(|i| (i % 251) as u8)
            .collect::<Vec<_>>()
            .into();
        let mut out = QpOutput::default();
        a.post_send(
            SendWr::send(1, 5000, 0).with_data(payload.clone()),
            &mut out,
        );
        let (_ca, cb) = run_to_quiescence(&mut a, &mut b, out);
        match &cb[0] {
            Completion::RecvDone { data: Some(d), .. } => assert_eq!(d, &payload),
            other => panic!("unexpected completion {other:?}"),
        }
    }

    #[test]
    fn zero_length_message_is_one_packet() {
        let (mut a, mut b) = rc_pair();
        b.post_recv(RecvWr { wr_id: 4 });
        let mut out = QpOutput::default();
        a.post_send(SendWr::send(1, 0, 11), &mut out);
        assert_eq!(out.packets.len(), 1);
        let (ca, cb) = run_to_quiescence(&mut a, &mut b, out);
        assert_eq!(ca.len(), 1);
        assert!(matches!(
            cb[0],
            Completion::RecvDone {
                len: 0,
                imm: 11,
                ..
            }
        ));
    }
}

#[cfg(test)]
mod reliability_tests {
    use super::tests::run_to_quiescence;
    use super::*;

    fn rc_pair() -> (Qp, Qp) {
        let mut a = Qp::new(Qpn(10), QpConfig::rc(), Lid(1));
        let mut b = Qp::new(Qpn(20), QpConfig::rc(), Lid(2));
        a.connect((Lid(2), Qpn(20)));
        b.connect((Lid(1), Qpn(10)));
        (a, b)
    }

    #[test]
    fn receiver_drops_messages_after_a_gap() {
        let (mut a, mut b) = rc_pair();
        b.post_recv(RecvWr { wr_id: 0 });
        b.post_recv(RecvWr { wr_id: 1 });
        let mut out = QpOutput::default();
        a.post_send(SendWr::send(0, 100, 0), &mut out);
        a.post_send(SendWr::send(1, 100, 0), &mut out);
        assert_eq!(out.packets.len(), 2);
        // Lose message 0 entirely; deliver message 1.
        let msg1 = out.packets.remove(1);
        let mut rx = QpOutput::default();
        b.on_packet(msg1, &mut rx);
        assert!(rx.completions.is_empty(), "out-of-order message delivered");
        assert!(rx.packets.is_empty(), "no ACK for a gapped message");
        assert_eq!(b.gap_drops(), 1);
    }

    #[test]
    fn duplicate_message_triggers_cumulative_reack() {
        let (mut a, mut b) = rc_pair();
        b.post_recv(RecvWr { wr_id: 0 });
        let mut out = QpOutput::default();
        a.post_send(SendWr::send(0, 100, 0), &mut out);
        let pkt = out.packets.pop().unwrap();
        let mut rx = QpOutput::default();
        b.on_packet(pkt.clone(), &mut rx);
        assert_eq!(rx.completions.len(), 1);
        assert_eq!(rx.packets.len(), 1); // the ACK
                                         // The same message arrives again (retransmitted because the ACK was
                                         // lost): no second delivery, but a fresh cumulative ACK.
        let mut rx2 = QpOutput::default();
        b.on_packet(pkt, &mut rx2);
        assert!(rx2.completions.is_empty());
        assert_eq!(rx2.packets.len(), 1);
        assert!(matches!(rx2.packets[0].opcode, Opcode::RcAck));
        assert_eq!(rx2.packets[0].msg_id, 0);
        assert_eq!(b.dup_fragments(), 1);
    }

    #[test]
    fn cumulative_ack_pops_multiple_messages() {
        let (mut a, _b) = rc_pair();
        let mut out = QpOutput::default();
        for i in 0..3 {
            a.post_send(SendWr::send(i, 100, 0), &mut out);
        }
        assert_eq!(a.inflight_msgs(), 3);
        // A single ACK covering msg 2 completes all three sends.
        let ack = Packet {
            dst_lid: Lid(1),
            src_lid: Lid(2),
            dst_qpn: Qpn(10),
            src_qpn: Qpn(20),
            opcode: Opcode::RcAck,
            psn: 0,
            payload: 0,
            msg_id: 2,
            msg_len: 0,
            offset: 0,
            imm: u64::MAX,
            count: 1,
            stride: 0,
            gap_ns: 0,
            data: None,
        };
        let mut rx = QpOutput::default();
        a.on_packet(ack, &mut rx);
        assert_eq!(rx.completions.len(), 3);
        assert_eq!(a.inflight_msgs(), 0);
    }

    #[test]
    fn poisoned_assembly_heals_on_retransmitted_first() {
        let (mut a, mut b) = rc_pair();
        b.post_recv(RecvWr { wr_id: 7 });
        let mut out = QpOutput::default();
        a.post_send(SendWr::send(0, 5000, 42), &mut out); // 3 fragments
        assert_eq!(out.packets.len(), 3);
        // Lose the middle fragment: deliver first and last only.
        let mut rx = QpOutput::default();
        b.on_packet(out.packets[0].clone(), &mut rx);
        b.on_packet(out.packets[2].clone(), &mut rx);
        assert!(rx.completions.is_empty(), "incomplete message delivered");
        assert_eq!(b.gap_drops(), 1);
        // Full retransmission heals it.
        let mut rx2 = QpOutput::default();
        for p in &out.packets {
            b.on_packet(p.clone(), &mut rx2);
        }
        assert_eq!(rx2.completions.len(), 1);
        assert!(matches!(
            rx2.completions[0],
            Completion::RecvDone {
                wr_id: 7,
                len: 5000,
                imm: 42,
                ..
            }
        ));
    }

    #[test]
    fn retransmit_timer_reemits_everything_unacked() {
        let (mut a, _b) = rc_pair();
        let mut out = QpOutput::default();
        a.post_send(SendWr::send(0, 3000, 0), &mut out); // 2 fragments
        a.post_send(SendWr::rdma_read(1, 100), &mut out); // 1 request
        assert!(out.arm_retransmit);
        // First firing with zero progress: full go-back-N retransmission.
        let mut rt = QpOutput::default();
        a.on_retransmit_timer(&mut rt);
        assert_eq!(rt.packets.len(), 3, "2 data fragments + 1 read request");
        assert!(rt.arm_retransmit, "timer must re-arm while unacked");
        assert_eq!(a.retransmit_rounds(), 1);
    }

    #[test]
    fn retransmit_timer_is_quiet_when_idle() {
        let (mut a, _b) = rc_pair();
        let mut out = QpOutput::default();
        a.on_retransmit_timer(&mut out);
        assert!(out.packets.is_empty());
        assert!(!out.arm_retransmit);
        assert_eq!(a.retransmit_rounds(), 0);
    }

    #[test]
    fn stale_ack_is_ignored() {
        let (mut a, _b) = rc_pair();
        let ack = Packet {
            dst_lid: Lid(1),
            src_lid: Lid(2),
            dst_qpn: Qpn(10),
            src_qpn: Qpn(20),
            opcode: Opcode::RcAck,
            psn: 0,
            payload: 0,
            msg_id: 5,
            msg_len: 0,
            offset: 0,
            imm: u64::MAX,
            count: 1,
            stride: 0,
            gap_ns: 0,
            data: None,
        };
        let mut out = QpOutput::default();
        a.on_packet(ack, &mut out); // nothing in flight: no panic, no effect
        assert!(out.completions.is_empty());
    }

    /// The whole first emission is lost; the RTO fires, the retransmitted
    /// copy delivers exactly once, and when the original copy finally limps
    /// in it is discarded as duplicates with one cumulative re-ACK (our ACK
    /// might have been the casualty).
    #[test]
    fn rto_retransmission_delivers_exactly_once() {
        let (mut a, mut b) = rc_pair();
        b.post_recv(RecvWr { wr_id: 9 });
        let mut out = QpOutput::default();
        a.post_send(SendWr::send(0, 5000, 7), &mut out); // 3 fragments
        assert!(out.arm_retransmit);
        let mut rt = QpOutput::default();
        a.on_retransmit_timer(&mut rt);
        assert_eq!(rt.packets.len(), 3, "go-back-N re-emits the whole message");
        assert_eq!(a.retransmit_rounds(), 1);
        let (ca, cb) = run_to_quiescence(&mut a, &mut b, rt);
        assert_eq!(ca.len(), 1);
        assert_eq!(cb.len(), 1);
        assert!(matches!(
            cb[0],
            Completion::RecvDone {
                wr_id: 9,
                len: 5000,
                imm: 7,
                ..
            }
        ));
        assert_eq!(a.inflight_msgs(), 0);
        // The delayed original arrives after delivery: pure duplicates.
        let mut rx = QpOutput::default();
        for p in &out.packets {
            b.on_packet(p.clone(), &mut rx);
        }
        assert!(rx.completions.is_empty(), "duplicate copy was delivered");
        assert_eq!(b.dup_fragments(), 3);
        let reacks = rx
            .packets
            .iter()
            .filter(|p| matches!(p.opcode, Opcode::RcAck))
            .count();
        assert_eq!(reacks, 1, "exactly one cumulative re-ACK, on the tail");
    }

    /// Losing the *First* fragment leaves no assembly to extend: the rest of
    /// the message must be ignored (counted as gap drops, never ACKed) until
    /// the retransmitted First restarts assembly.
    #[test]
    fn fragments_after_lost_first_are_ignored_until_retransmission() {
        let (mut a, mut b) = rc_pair();
        b.post_recv(RecvWr { wr_id: 3 });
        let mut out = QpOutput::default();
        a.post_send(SendWr::send(0, 5000, 1), &mut out); // 3 fragments
        assert_eq!(out.packets.len(), 3);
        let mut rx = QpOutput::default();
        b.on_packet(out.packets[1].clone(), &mut rx); // Middle, First lost
        b.on_packet(out.packets[2].clone(), &mut rx); // Last
        assert!(rx.completions.is_empty(), "headless message delivered");
        assert!(rx.packets.is_empty(), "ACKed a message with no First");
        assert_eq!(b.gap_drops(), 2);
        // The RTO re-emits from the First; assembly restarts and completes.
        let mut rt = QpOutput::default();
        a.on_retransmit_timer(&mut rt);
        let (ca, cb) = run_to_quiescence(&mut a, &mut b, rt);
        assert_eq!(ca.len(), 1);
        assert_eq!(cb.len(), 1);
        assert!(matches!(
            cb[0],
            Completion::RecvDone {
                wr_id: 3,
                len: 5000,
                imm: 1,
                ..
            }
        ));
    }

    /// Whole-fabric RTO exercise at a Longbow-class WAN delay: with a
    /// 100 µs one-way link and an RTO shorter than the RTT, every ACK loses
    /// the race at least once, so the timer genuinely fires mid-flight.
    /// Retransmissions show up as duplicates at the receiver, yet each
    /// message still delivers exactly once.
    #[test]
    fn wan_rtt_longer_than_rto_retransmits_but_delivers_once() {
        use crate::fabric::FabricBuilder;
        use crate::hca::HcaConfig;
        use crate::link::LinkConfig;
        use crate::perftest::{rc_qp_pair, BwConfig, BwPeer};
        use simcore::Rate;

        let msgs = 4u64;
        let mut builder = FabricBuilder::new(11);
        builder.set_coalescing(true); // independent of the process default
        let n1 = builder.add_hca(
            HcaConfig::default(),
            Box::new(BwPeer::sender(BwConfig::new(65536, msgs))),
        );
        let n2 = builder.add_hca(HcaConfig::default(), Box::new(BwPeer::receiver()));
        builder.link(
            n1.actor,
            n2.actor,
            LinkConfig {
                rate: Rate::from_gbps(8),
                latency: Dur::from_us(100),
                credit_packets: None,
            },
        );
        let mut f = builder.finish();
        let cfg = QpConfig {
            rto: Dur::from_us(50), // RTT is ~200 µs: the timer always fires
            ..QpConfig::rc()
        };
        let (qa, qb) = rc_qp_pair(&mut f, n1, n2, cfg);
        f.hca_mut(n1).ulp_mut::<BwPeer>().qpn = qa;
        f.hca_mut(n2).ulp_mut::<BwPeer>().qpn = qb;
        f.run();
        assert_eq!(
            f.hca(n2).ulp::<BwPeer>().received(),
            msgs,
            "each message must deliver exactly once despite retransmission"
        );
        let sender = f.hca(n1).core().qp(qa);
        let receiver = f.hca(n2).core().qp(qb);
        assert!(
            sender.retransmit_rounds() >= 1,
            "RTO below RTT must fire: {} rounds",
            sender.retransmit_rounds()
        );
        assert!(
            receiver.dup_fragments() > 0,
            "retransmitted fragments must be discarded as duplicates"
        );
        assert_eq!(receiver.gap_drops(), 0, "nothing was actually lost");
    }
}

#[cfg(test)]
mod state_machine_tests {
    use super::*;

    #[test]
    fn rc_walks_init_rtr_rts() {
        let mut q = Qp::new(Qpn(1), QpConfig::rc(), Lid(1));
        assert_eq!(q.state(), QpState::Init);
        q.modify_to_rtr((Lid(2), Qpn(2)));
        assert_eq!(q.state(), QpState::Rtr);
        q.modify_to_rts();
        assert_eq!(q.state(), QpState::Rts);
    }

    #[test]
    fn ud_is_born_ready() {
        let q = Qp::new(Qpn(1), QpConfig::ud(), Lid(1));
        assert_eq!(q.state(), QpState::Rts);
    }

    #[test]
    #[should_panic(expected = "requires RTS")]
    fn send_before_connect_panics() {
        let mut q = Qp::new(Qpn(1), QpConfig::rc(), Lid(1));
        let mut out = QpOutput::default();
        q.post_send(SendWr::send(1, 64, 0), &mut out);
    }

    #[test]
    #[should_panic(expected = "RTS requires RTR")]
    fn rts_without_rtr_panics() {
        let mut q = Qp::new(Qpn(1), QpConfig::rc(), Lid(1));
        q.modify_to_rts();
    }

    #[test]
    fn recvs_may_be_posted_in_init() {
        let mut q = Qp::new(Qpn(1), QpConfig::rc(), Lid(1));
        q.post_recv(RecvWr { wr_id: 0 });
        assert_eq!(q.posted_recvs(), 1);
        assert_eq!(q.state(), QpState::Init);
    }
}
