//! Upper-layer-protocol hook: how MPI, IPoIB, NFS, and benchmark drivers sit
//! on an HCA.

use crate::hca::HcaCore;
use crate::verbs::Completion;
use simcore::{ActorId, Ctx};
use std::any::Any;

/// An upper-layer protocol running on one HCA (one per node).
///
/// The ULP is invoked by the [`crate::hca::HcaActor`] with mutable access to
/// the HCA core so it can post work requests in response to completions —
/// mirroring how real ULPs drive verbs from completion handlers.
pub trait Ulp: Any + Send {
    /// Called once at simulation start (time zero).
    fn start(&mut self, _hca: &mut HcaCore, _ctx: &mut Ctx<'_>) {}

    /// A completion-queue entry is ready.
    fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion);

    /// A ULP-armed timer fired (tokens below [`crate::hca::START_TOKEN`]).
    fn on_timer(&mut self, _hca: &mut HcaCore, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// A non-fabric message arrived from another actor (driver coordination,
    /// software-level channels between node ULPs, ...).
    fn on_user(
        &mut self,
        _hca: &mut HcaCore,
        _ctx: &mut Ctx<'_>,
        _from: ActorId,
        _msg: Box<dyn Any>,
    ) {
    }
}

/// A ULP that ignores everything — for pure-fabric tests and passive nodes.
pub struct NullUlp;

impl Ulp for NullUlp {
    fn on_completion(&mut self, _hca: &mut HcaCore, _ctx: &mut Ctx<'_>, _c: Completion) {}
}
