//! # mpisim — an MVAPICH2-like MPI library over the simulated fabric
//!
//! Implements the MPI machinery the paper's Sections 3.4–3.6 exercise:
//!
//! * **Point-to-point protocols** ([`proto`]): the *eager* protocol (copy
//!   into pre-registered buffers, send immediately — sender completes
//!   locally) for messages up to the rendezvous threshold, and the
//!   *rendezvous* protocol (RTS → CTS → zero-copy RDMA write → FIN) above
//!   it. The threshold defaults to MVAPICH2's 8 KB and is tunable — raising
//!   it to 64 KB over a 10 ms WAN link is exactly the Figure 9 optimization.
//! * **Message coalescing** ([`proto`]): optional batching of small sends,
//!   one of the paper's proposed WAN optimizations.
//! * **Collectives** ([`coll`]): broadcast (binomial for small messages,
//!   scatter + ring-allgather for large, like MVAPICH2), the WAN-aware
//!   *hierarchical* broadcast of Figure 11, dissemination barrier,
//!   recursive-doubling allreduce, and pairwise alltoall — all expanded
//!   statically into point-to-point operation scripts.
//! * **SPMD scripts** ([`script`]): each rank runs an operation list
//!   (send/recv/windows/compute/markers) driven by completion events — the
//!   substrate for the OSU benchmarks and the NAS skeletons.
//! * **Job builder** ([`world`]): lays ranks out across the two clusters of
//!   the cluster-of-clusters topology and wires the QP mesh.
//! * **OSU-style benchmarks** ([`mod@bench`]): `osu_latency`, `osu_bw`,
//!   `osu_bibw`, multi-pair message rate, and the paper's modified
//!   `osu_bcast` (root waits for the ACK of the farthest process).

//! ```
//! use mpisim::bench::{osu_latency, wan_pair};
//! use simcore::Dur;
//!
//! // Two ranks, one per cluster, 100 us (20 km) apart.
//! let lat = osu_latency(wan_pair(Dur::from_us(100)), 4, 10);
//! assert!(lat > 100.0 && lat < 130.0, "one-way latency {lat} us");
//! ```

pub mod bench;
pub mod coll;
pub mod patterns;
pub mod proto;
pub mod script;
pub mod wire;
pub mod world;

pub use proto::{MpiConfig, MpiEvent, P2p, ReqId};
pub use script::{Op, ScriptRunner};
pub use world::{JobSpec, MpiJob, MpiProcess};
