//! Synthetic communication-pattern generator: parameterized SPMD workloads
//! beyond the NAS skeletons, for studying how a pattern's *shape* determines
//! its WAN tolerance (the paper's central application-level lesson).
//!
//! Every pattern compiles to per-rank [`Op`] scripts via [`Pattern::ops`],
//! so they run on the same engine, can be profiled with the same traffic
//! matrix, and can be described in scenario JSON.

use crate::coll::{self, TagAlloc};
use crate::script::Op;
use simcore::Dur;

/// A parameterized SPMD communication pattern.
#[derive(Clone, Debug)]
pub enum Pattern {
    /// 2-D nearest-neighbor halo exchange on a `rows x cols` process grid
    /// (stencil codes: WRF-like weather, CFD).
    Halo2d {
        /// Process-grid rows.
        rows: usize,
        /// Process-grid columns.
        cols: usize,
        /// Halo face size in bytes.
        face_bytes: u32,
        /// Iterations.
        iters: u32,
        /// Compute per iteration, microseconds.
        compute_us: u64,
    },
    /// Master-worker task farming: rank 0 scatters tasks, workers return
    /// results (parameter sweeps, rendering).
    MasterWorker {
        /// Task payload bytes (master → worker).
        task_bytes: u32,
        /// Result payload bytes (worker → master).
        result_bytes: u32,
        /// Tasks per worker.
        tasks_per_worker: u32,
        /// Worker compute time per task, microseconds.
        compute_us: u64,
    },
    /// Ring shift: every rank passes a block to its right neighbor each
    /// iteration (pipelines, systolic patterns).
    Ring {
        /// Block size in bytes.
        block_bytes: u32,
        /// Iterations.
        iters: u32,
    },
    /// Bulk-synchronous random sparse exchange: each rank exchanges with
    /// `degree` deterministic pseudo-random partners per superstep, then
    /// barriers (graph analytics).
    SparseRandom {
        /// Partners per superstep.
        degree: usize,
        /// Message bytes per partner.
        msg_bytes: u32,
        /// Supersteps.
        supersteps: u32,
        /// Pattern seed (same seed → same partner graph on every rank).
        seed: u64,
    },
}

impl Pattern {
    /// Human label.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Halo2d { .. } => "halo2d",
            Pattern::MasterWorker { .. } => "master_worker",
            Pattern::Ring { .. } => "ring",
            Pattern::SparseRandom { .. } => "sparse_random",
        }
    }

    /// Ranks this pattern requires, if it constrains the count.
    pub fn required_ranks(&self) -> Option<usize> {
        match self {
            Pattern::Halo2d { rows, cols, .. } => Some(rows * cols),
            _ => None,
        }
    }

    /// Serialize to a JSON value: `{"pattern": "<name>", ...fields}` — the
    /// internally-tagged layout scenario files use.
    pub fn to_value(&self) -> minijson::Value {
        use minijson::{obj, Value};
        match *self {
            Pattern::Halo2d {
                rows,
                cols,
                face_bytes,
                iters,
                compute_us,
            } => obj([
                ("pattern", Value::from("halo2d")),
                ("rows", Value::from(rows)),
                ("cols", Value::from(cols)),
                ("face_bytes", Value::from(face_bytes)),
                ("iters", Value::from(iters)),
                ("compute_us", Value::from(compute_us)),
            ]),
            Pattern::MasterWorker {
                task_bytes,
                result_bytes,
                tasks_per_worker,
                compute_us,
            } => obj([
                ("pattern", Value::from("master_worker")),
                ("task_bytes", Value::from(task_bytes)),
                ("result_bytes", Value::from(result_bytes)),
                ("tasks_per_worker", Value::from(tasks_per_worker)),
                ("compute_us", Value::from(compute_us)),
            ]),
            Pattern::Ring { block_bytes, iters } => obj([
                ("pattern", Value::from("ring")),
                ("block_bytes", Value::from(block_bytes)),
                ("iters", Value::from(iters)),
            ]),
            Pattern::SparseRandom {
                degree,
                msg_bytes,
                supersteps,
                seed,
            } => obj([
                ("pattern", Value::from("sparse_random")),
                ("degree", Value::from(degree)),
                ("msg_bytes", Value::from(msg_bytes)),
                ("supersteps", Value::from(supersteps)),
                ("seed", Value::from(seed)),
            ]),
        }
    }

    /// Parse the tagged JSON layout produced by [`Pattern::to_value`].
    pub fn from_value(v: &minijson::Value) -> Result<Pattern, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(|f| f.as_u64())
                .ok_or_else(|| format!("pattern: missing or non-integer field {name:?}"))
        };
        let tag = v
            .get("pattern")
            .and_then(|t| t.as_str())
            .ok_or("pattern: missing \"pattern\" tag")?;
        match tag {
            "halo2d" => Ok(Pattern::Halo2d {
                rows: field("rows")? as usize,
                cols: field("cols")? as usize,
                face_bytes: field("face_bytes")? as u32,
                iters: field("iters")? as u32,
                compute_us: field("compute_us")?,
            }),
            "master_worker" => Ok(Pattern::MasterWorker {
                task_bytes: field("task_bytes")? as u32,
                result_bytes: field("result_bytes")? as u32,
                tasks_per_worker: field("tasks_per_worker")? as u32,
                compute_us: field("compute_us")?,
            }),
            "ring" => Ok(Pattern::Ring {
                block_bytes: field("block_bytes")? as u32,
                iters: field("iters")? as u32,
            }),
            "sparse_random" => Ok(Pattern::SparseRandom {
                degree: field("degree")? as usize,
                msg_bytes: field("msg_bytes")? as u32,
                supersteps: field("supersteps")? as u32,
                seed: field("seed")?,
            }),
            other => Err(format!("unknown pattern kind {other:?}")),
        }
    }

    /// Compile the per-rank script (wrapped in start/end marks 0/1).
    pub fn ops(&self, rank: usize, nranks: usize) -> Vec<Op> {
        let mut tags = TagAlloc::default();
        let mut ops = vec![Op::Mark { id: 0 }];
        ops.extend(coll::barrier(nranks, rank, tags.take()));
        match *self {
            Pattern::Halo2d {
                rows,
                cols,
                face_bytes,
                iters,
                compute_us,
            } => {
                assert_eq!(rows * cols, nranks, "halo2d needs rows*cols ranks");
                let (r, c) = (rank / cols, rank % cols);
                let at = |rr: usize, cc: usize| rr * cols + cc;
                let up = at((r + rows - 1) % rows, c);
                let down = at((r + 1) % rows, c);
                let left = at(r, (c + cols - 1) % cols);
                let right = at(r, (c + 1) % cols);
                for _ in 0..iters {
                    if compute_us > 0 {
                        ops.push(Op::Compute {
                            dur: Dur::from_us(compute_us),
                        });
                    }
                    let t = tags.take();
                    // Vertical then horizontal exchange (torus).
                    if rows > 1 {
                        ops.push(Op::Concurrent(vec![
                            Op::Exchange {
                                to: up,
                                from: down,
                                len: face_bytes,
                                tag: t,
                                count: 1,
                            },
                            Op::Exchange {
                                to: down,
                                from: up,
                                len: face_bytes,
                                tag: t + 1,
                                count: 1,
                            },
                        ]));
                    }
                    if cols > 1 {
                        ops.push(Op::Concurrent(vec![
                            Op::Exchange {
                                to: left,
                                from: right,
                                len: face_bytes,
                                tag: t + 2,
                                count: 1,
                            },
                            Op::Exchange {
                                to: right,
                                from: left,
                                len: face_bytes,
                                tag: t + 3,
                                count: 1,
                            },
                        ]));
                    }
                }
            }
            Pattern::MasterWorker {
                task_bytes,
                result_bytes,
                tasks_per_worker,
                compute_us,
            } => {
                assert!(nranks >= 2, "master-worker needs at least one worker");
                for round in 0..tasks_per_worker {
                    let tag = 10_000 + round;
                    if rank == 0 {
                        // Scatter this round's tasks, then collect results.
                        let sends: Vec<Op> = (1..nranks)
                            .map(|w| Op::Send {
                                to: w,
                                len: task_bytes,
                                tag,
                            })
                            .collect();
                        ops.push(Op::Concurrent(sends));
                        let recvs: Vec<Op> = (1..nranks)
                            .map(|w| Op::Recv {
                                from: w,
                                tag: tag + 100_000,
                            })
                            .collect();
                        ops.push(Op::Concurrent(recvs));
                    } else {
                        ops.push(Op::Recv { from: 0, tag });
                        if compute_us > 0 {
                            ops.push(Op::Compute {
                                dur: Dur::from_us(compute_us),
                            });
                        }
                        ops.push(Op::Send {
                            to: 0,
                            len: result_bytes,
                            tag: tag + 100_000,
                        });
                    }
                }
            }
            Pattern::Ring { block_bytes, iters } => {
                let right = (rank + 1) % nranks;
                let left = (rank + nranks - 1) % nranks;
                for _ in 0..iters {
                    let t = tags.take();
                    ops.push(Op::Exchange {
                        to: right,
                        from: left,
                        len: block_bytes,
                        tag: t,
                        count: 1,
                    });
                }
            }
            Pattern::SparseRandom {
                degree,
                msg_bytes,
                supersteps,
                seed,
            } => {
                for step in 0..supersteps {
                    // Deterministic partner set, identical on all ranks:
                    // partner k of rank r in step s is r xor h(s, k).
                    let children: Vec<Op> = (0..degree)
                        .filter_map(|k| {
                            let h = splitmix(seed ^ ((step as u64) << 32) ^ k as u64);
                            let offset = 1 + (h as usize) % (nranks - 1);
                            let partner = (rank + offset) % nranks;
                            let back = (rank + nranks - offset) % nranks;
                            (partner != rank).then_some(Op::Exchange {
                                to: partner,
                                from: back,
                                len: msg_bytes,
                                tag: 50_000 + step * 64 + k as u32,
                                count: 1,
                            })
                        })
                        .collect();
                    ops.push(Op::Concurrent(children));
                    ops.extend(coll::barrier(nranks, rank, tags.take()));
                }
            }
        }
        ops.push(Op::Mark { id: 1 });
        ops
    }
}

/// SplitMix64 — deterministic hash for partner selection.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{JobSpec, MpiJob};

    fn run_pattern(p: &Pattern, ranks_a: usize, ranks_b: usize) -> f64 {
        let spec = JobSpec::two_clusters(ranks_a, ranks_b, Dur::from_us(100));
        let mut job = MpiJob::build(spec, |rank, n| p.ops(rank, n));
        job.run();
        let n = ranks_a + ranks_b;
        let t0 = (0..n)
            .map(|r| job.process(r).runner.mark(0).unwrap())
            .min()
            .unwrap();
        let t1 = (0..n)
            .map(|r| job.process(r).runner.mark(1).unwrap())
            .max()
            .unwrap();
        t1.since(t0).as_secs_f64()
    }

    #[test]
    fn halo2d_completes_and_balances() {
        let p = Pattern::Halo2d {
            rows: 4,
            cols: 4,
            face_bytes: 16384,
            iters: 5,
            compute_us: 100,
        };
        let t = run_pattern(&p, 8, 8);
        assert!(t > 0.0);
    }

    #[test]
    fn master_worker_completes() {
        let p = Pattern::MasterWorker {
            task_bytes: 65536,
            result_bytes: 1024,
            tasks_per_worker: 3,
            compute_us: 500,
        };
        let t = run_pattern(&p, 4, 4);
        assert!(t > 0.0);
    }

    #[test]
    fn ring_and_sparse_complete() {
        let ring = Pattern::Ring {
            block_bytes: 32768,
            iters: 10,
        };
        assert!(run_pattern(&ring, 3, 3) > 0.0);
        let sparse = Pattern::SparseRandom {
            degree: 3,
            msg_bytes: 4096,
            supersteps: 4,
            seed: 7,
        };
        assert!(run_pattern(&sparse, 4, 4) > 0.0);
    }

    #[test]
    fn sparse_partner_graph_is_consistent_across_ranks() {
        // Exchange symmetry: if rank r sends to p at (step, k), then p's
        // receive-partner arithmetic must name r.
        let p = Pattern::SparseRandom {
            degree: 4,
            msg_bytes: 64,
            supersteps: 3,
            seed: 99,
        };
        // Just run it on the engine — MpiJob::run panics on any mismatch.
        assert!(run_pattern(&p, 5, 5) > 0.0);
    }

    #[test]
    fn required_ranks_enforced() {
        let p = Pattern::Halo2d {
            rows: 2,
            cols: 3,
            face_bytes: 64,
            iters: 1,
            compute_us: 0,
        };
        assert_eq!(p.required_ranks(), Some(6));
    }

    #[test]
    fn json_round_trip() {
        let p = Pattern::Ring {
            block_bytes: 100,
            iters: 2,
        };
        let j = p.to_value().to_compact();
        let back = Pattern::from_value(&minijson::Value::parse(&j).unwrap()).unwrap();
        assert_eq!(back.name(), "ring");
        match back {
            Pattern::Ring { block_bytes, iters } => {
                assert_eq!((block_bytes, iters), (100, 2));
            }
            other => panic!("wrong variant {other:?}"),
        }
    }
}
