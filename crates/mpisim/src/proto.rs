//! The MPI point-to-point engine: eager and rendezvous protocols, matching,
//! and optional small-message coalescing.
//!
//! ## Protocol trade-off (the heart of Figure 9)
//!
//! *Eager* sends copy the user buffer into pre-registered bounce buffers and
//! push the data immediately; `MPI_Send` completes as soon as the local copy
//! is done, so a stream of eager messages fills the WAN pipe subject only to
//! the RC transport window. *Rendezvous* avoids the copies (zero-copy RDMA
//! write) but pays an RTS/CTS handshake — one extra WAN round-trip — before
//! any data moves, and holds the send hostage until the transfer completes.
//! On a LAN the handshake is microseconds and rendezvous wins for large
//! messages; over a 10 ms WAN the handshake is ruinous for medium messages,
//! which is why the paper tunes the threshold from 8 KB to 64 KB.

use crate::wire::{MpiWire, BATCH_HEADER_BYTES, BATCH_ITEM_BYTES, CTRL_BYTES, EAGER_HEADER_BYTES};
use ibfabric::hca::HcaCore;
use ibfabric::qp::{QpConfig, Qpn};
use ibfabric::verbs::{Completion, RecvWr, SendWr};
use simcore::{Ctx, Dur, Rate, SerialResource};
use std::collections::{HashMap, VecDeque};

/// Identifier of a nonblocking MPI request.
pub type ReqId = u64;

/// A completed request, surfaced to the script runner.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MpiEvent {
    /// The request that finished.
    pub req: ReqId,
}

/// Timer token the owning ULP must route to [`P2p::on_timer`]: deferred
/// copy completions.
pub const TOKEN_COPY: u64 = 10;
/// Timer token the owning ULP must route to [`P2p::on_timer`]: coalescing
/// flush deadline.
pub const TOKEN_FLUSH: u64 = 11;

/// Small-message coalescing parameters (a paper-proposed WAN optimization).
#[derive(Copy, Clone, Debug)]
pub struct CoalesceConfig {
    /// Only messages up to this size are batched.
    pub max_msg: u32,
    /// Flush a peer's batch once it holds this many payload bytes.
    pub flush_bytes: u32,
    /// Flush all batches this long after the first unflushed message.
    pub flush_delay: Dur,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            max_msg: 1024,
            flush_bytes: 16384,
            flush_delay: Dur::from_us(10),
        }
    }
}

/// Which rendezvous data-movement scheme large messages use — the three
/// MVAPICH2 designs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RndvProtocol {
    /// RTS → CTS → sender RDMA-writes → FIN (zero-copy, default).
    Rput,
    /// RTS → receiver RDMA-reads → DONE (zero-copy; bounded by the QP's
    /// outstanding-read credits, which matters over long pipes).
    Rget,
    /// RTS → CTS → data packetized through the eager channel (copy-based
    /// fallback for unregistered buffers).
    R3,
}

/// MPI library configuration.
#[derive(Copy, Clone, Debug)]
pub struct MpiConfig {
    /// Messages at or below this size use the eager protocol (MVAPICH2
    /// default: 8 KB). The Figure 9 tuning raises it to 64 KB over the WAN.
    pub eager_threshold: u32,
    /// Rendezvous data-movement scheme for larger messages.
    pub rndv_protocol: RndvProtocol,
    /// Chunk size for the R3 packetized path.
    pub r3_chunk: u32,
    /// Memcpy rate for eager bounce-buffer copies.
    pub copy_rate: Rate,
    /// Software overhead per MPI call.
    pub sw_overhead: Dur,
    /// Transport parameters for the per-peer RC QPs.
    pub qp: QpConfig,
    /// Optional small-message coalescing.
    pub coalescing: Option<CoalesceConfig>,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            eager_threshold: 8192,
            rndv_protocol: RndvProtocol::Rput,
            r3_chunk: 16384,
            copy_rate: Rate::from_ps_per_byte(250), // ~4 GB/s memcpy
            sw_overhead: Dur::from_ns(200),
            qp: QpConfig::rc(),
            coalescing: None,
        }
    }
}

impl MpiConfig {
    /// The Figure 9 "tuned" configuration: 64 KB rendezvous threshold.
    pub fn wan_tuned() -> Self {
        MpiConfig {
            eager_threshold: 65536,
            ..MpiConfig::default()
        }
    }
}

struct Posted {
    src: usize,
    tag: u32,
    req: ReqId,
}

enum UnexpectedKind {
    Eager,
    Rts(u32),
}

struct Unexpected {
    src: usize,
    tag: u32,
    len: u32,
    kind: UnexpectedKind,
}

struct RndvOut {
    req: ReqId,
    peer: usize,
    tag: u32,
    len: u32,
}

enum WrPurpose {
    /// RPUT: sender-side RDMA write; ACK completes the MPI send.
    RndvWrite(ReqId),
    /// RGET: receiver-side RDMA read; completion finishes the MPI recv.
    RgetRead { rndv: u32, peer: usize },
}

#[derive(Default)]
struct Batch {
    items: Vec<(u32, u32)>,
    bytes: u32,
}

/// Per-process point-to-point engine.
pub struct P2p {
    rank: usize,
    nranks: usize,
    cfg: MpiConfig,
    qpn_of_peer: Vec<Option<Qpn>>,
    peer_of_qpn: HashMap<u32, usize>,
    next_req: ReqId,
    next_rndv: u32,
    next_wr: u64,
    posted: VecDeque<Posted>,
    unexpected: VecDeque<Unexpected>,
    rndv_out: HashMap<u32, RndvOut>,
    rndv_in: HashMap<u32, ReqId>,
    wr_purpose: HashMap<u64, WrPurpose>,
    cpu: SerialResource,
    deferred: VecDeque<ReqId>,
    events: Vec<MpiEvent>,
    batches: Vec<Batch>,
    flush_armed: bool,
    bytes_sent: u64,
    msgs_sent: u64,
    send_size_log2: [u64; 33],
    bytes_to_peer: Vec<u64>,
}

impl P2p {
    /// Engine for `rank` of `nranks` with `cfg`.
    pub fn new(rank: usize, nranks: usize, cfg: MpiConfig) -> Self {
        P2p {
            rank,
            nranks,
            cfg,
            qpn_of_peer: vec![None; nranks],
            peer_of_qpn: HashMap::new(),
            next_req: 1,
            next_rndv: 1,
            next_wr: 1,
            posted: VecDeque::new(),
            unexpected: VecDeque::new(),
            rndv_out: HashMap::new(),
            rndv_in: HashMap::new(),
            wr_purpose: HashMap::new(),
            cpu: SerialResource::new(Rate::INFINITE),
            deferred: VecDeque::new(),
            events: Vec::new(),
            batches: (0..nranks).map(|_| Batch::default()).collect(),
            flush_armed: false,
            bytes_sent: 0,
            msgs_sent: 0,
            send_size_log2: [0; 33],
            bytes_to_peer: vec![0; nranks],
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }
    /// Communicator size.
    pub fn nranks(&self) -> usize {
        self.nranks
    }
    /// Configuration in effect.
    pub fn config(&self) -> &MpiConfig {
        &self.cfg
    }
    /// Payload bytes passed to `isend` so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }
    /// Messages passed to `isend` so far.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    /// Histogram of sent message sizes: bucket `i` counts messages with
    /// `len` in `[2^i, 2^(i+1))` (bucket 0 includes zero-length). Used to
    /// reproduce the paper's message-size-distribution profiling of the NAS
    /// codes (Section 3.5).
    pub fn send_size_histogram(&self) -> &[u64; 33] {
        &self.send_size_log2
    }

    /// Payload bytes sent to each peer — one row of the job's
    /// communication matrix.
    pub fn bytes_to_peers(&self) -> &[u64] {
        &self.bytes_to_peer
    }

    /// Register the QP connected to `peer`.
    pub fn set_peer_qp(&mut self, peer: usize, qpn: Qpn) {
        self.qpn_of_peer[peer] = Some(qpn);
        self.peer_of_qpn.insert(qpn.0, peer);
    }

    /// Pre-post the receive pools on every connected QP. Call once at start.
    pub fn setup_recv_pools(&mut self, hca: &mut HcaCore) {
        for qpn in self.qpn_of_peer.iter().flatten() {
            for _ in 0..64 {
                hca.post_recv(*qpn, RecvWr { wr_id: 0 });
            }
        }
    }

    /// Drain completion events produced since the last call.
    pub fn take_events(&mut self) -> Vec<MpiEvent> {
        std::mem::take(&mut self.events)
    }

    fn fresh_req(&mut self) -> ReqId {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    fn qpn(&self, peer: usize) -> Qpn {
        self.qpn_of_peer[peer].unwrap_or_else(|| panic!("no QP to peer {peer}"))
    }

    fn defer_done(&mut self, ctx: &mut Ctx<'_>, req: ReqId, at: simcore::Time) {
        self.deferred.push_back(req);
        ctx.timer_at(at, TOKEN_COPY);
    }

    /// Nonblocking send of `len` bytes to `to` with `tag`.
    pub fn isend(
        &mut self,
        hca: &mut HcaCore,
        ctx: &mut Ctx<'_>,
        to: usize,
        tag: u32,
        len: u32,
    ) -> ReqId {
        assert_ne!(to, self.rank, "self-sends are delivered via shared memory");
        let req = self.fresh_req();
        self.bytes_sent += len as u64;
        self.msgs_sent += 1;
        let bucket = if len == 0 {
            0
        } else {
            32 - len.leading_zeros() as usize
        };
        self.send_size_log2[bucket] += 1;
        self.bytes_to_peer[to] += len as u64;
        if let Some(c) = self.cfg.coalescing {
            if len <= c.max_msg {
                self.coalesce(hca, ctx, to, tag, len, req, c);
                return req;
            }
        }
        if len <= self.cfg.eager_threshold {
            // Eager: copy to bounce buffer, send, complete locally.
            let work = self.cfg.sw_overhead + self.cfg.copy_rate.tx_time(len as u64);
            let (_, fin) = self.cpu.reserve_dur(ctx.now(), work);
            let wr = SendWr::send(0, len + EAGER_HEADER_BYTES, 0)
                .with_meta(MpiWire::Eager { tag, len }.encode());
            hca.post_send_after(ctx, self.qpn(to), wr, fin);
            self.defer_done(ctx, req, fin);
        } else {
            // Rendezvous: RTS now; data moves after CTS.
            let (_, fin) = self.cpu.reserve_dur(ctx.now(), self.cfg.sw_overhead);
            let rndv = self.next_rndv;
            self.next_rndv += 1;
            let wr =
                SendWr::send(0, CTRL_BYTES, 0).with_meta(MpiWire::Rts { tag, len, rndv }.encode());
            hca.post_send_after(ctx, self.qpn(to), wr, fin);
            self.rndv_out.insert(
                rndv,
                RndvOut {
                    req,
                    peer: to,
                    tag,
                    len,
                },
            );
        }
        req
    }

    #[allow(clippy::too_many_arguments)]
    fn coalesce(
        &mut self,
        hca: &mut HcaCore,
        ctx: &mut Ctx<'_>,
        to: usize,
        tag: u32,
        len: u32,
        req: ReqId,
        c: CoalesceConfig,
    ) {
        let work = self.cfg.sw_overhead + self.cfg.copy_rate.tx_time(len as u64);
        let (_, fin) = self.cpu.reserve_dur(ctx.now(), work);
        self.defer_done(ctx, req, fin); // buffered: completes locally
        let batch = &mut self.batches[to];
        batch.items.push((tag, len));
        batch.bytes += len;
        if batch.bytes >= c.flush_bytes {
            self.flush_batch(hca, ctx, to);
        } else if !self.flush_armed {
            self.flush_armed = true;
            ctx.timer(c.flush_delay, TOKEN_FLUSH);
        }
    }

    fn flush_batch(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, peer: usize) {
        let batch = std::mem::take(&mut self.batches[peer]);
        if batch.items.is_empty() {
            return;
        }
        let wire_len =
            batch.bytes + BATCH_HEADER_BYTES + BATCH_ITEM_BYTES * batch.items.len() as u32;
        let wr =
            SendWr::send(0, wire_len, 0).with_meta(MpiWire::Batch { items: batch.items }.encode());
        hca.post_send_after(ctx, self.qpn(peer), wr, ctx.now());
    }

    /// Nonblocking receive matching `(from, tag)`.
    pub fn irecv(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, from: usize, tag: u32) -> ReqId {
        let req = self.fresh_req();
        // Match against the unexpected queue first (FIFO per (src, tag)).
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|u| u.src == from && u.tag == tag)
        {
            let u = self.unexpected.remove(pos).unwrap();
            match u.kind {
                UnexpectedKind::Eager => {
                    let work = self.cfg.copy_rate.tx_time(u.len as u64);
                    let (_, fin) = self.cpu.reserve_dur(ctx.now(), work);
                    self.defer_done(ctx, req, fin);
                }
                UnexpectedKind::Rts(rndv) => {
                    self.begin_rndv_receive(hca, ctx, u.src, rndv, u.len, req);
                }
            }
        } else {
            self.posted.push_back(Posted {
                src: from,
                tag,
                req,
            });
        }
        req
    }

    fn send_cts(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, peer: usize, rndv: u32) {
        let wr = SendWr::send(0, CTRL_BYTES, 0).with_meta(MpiWire::Cts { rndv }.encode());
        hca.post_send_after(ctx, self.qpn(peer), wr, ctx.now());
    }

    /// Receiver-side reaction to a matched RTS, per rendezvous protocol.
    #[allow(clippy::too_many_arguments)]
    fn begin_rndv_receive(
        &mut self,
        hca: &mut HcaCore,
        ctx: &mut Ctx<'_>,
        peer: usize,
        rndv: u32,
        len: u32,
        req: ReqId,
    ) {
        self.rndv_in.insert(rndv, req);
        match self.cfg.rndv_protocol {
            RndvProtocol::Rput | RndvProtocol::R3 => self.send_cts(hca, ctx, peer, rndv),
            RndvProtocol::Rget => {
                // Zero-copy pull: RDMA-read the payload from the sender.
                let wr_id = self.next_wr;
                self.next_wr += 1;
                self.wr_purpose
                    .insert(wr_id, WrPurpose::RgetRead { rndv, peer });
                hca.post_send(ctx, self.qpn(peer), SendWr::rdma_read(wr_id, len));
            }
        }
    }

    fn deliver_eager(&mut self, ctx: &mut Ctx<'_>, src: usize, tag: u32, len: u32) {
        if let Some(pos) = self
            .posted
            .iter()
            .position(|p| p.src == src && p.tag == tag)
        {
            let p = self.posted.remove(pos).unwrap();
            let work = self.cfg.copy_rate.tx_time(len as u64);
            let (_, fin) = self.cpu.reserve_dur(ctx.now(), work);
            self.defer_done(ctx, p.req, fin);
        } else {
            self.unexpected.push_back(Unexpected {
                src,
                tag,
                len,
                kind: UnexpectedKind::Eager,
            });
        }
    }

    /// Feed an HCA completion into the protocol engine. Drain
    /// [`P2p::take_events`] afterwards.
    pub fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
        match c {
            Completion::RecvDone { qpn, data, .. } => {
                hca.post_recv(qpn, RecvWr { wr_id: 0 });
                let src = *self
                    .peer_of_qpn
                    .get(&qpn.0)
                    .unwrap_or_else(|| panic!("completion on unknown {qpn:?}"));
                let wire = MpiWire::decode(&data.expect("MPI message without header"));
                self.on_wire(hca, ctx, src, wire);
            }
            Completion::SendDone { wr_id, .. } => match self.wr_purpose.remove(&wr_id) {
                Some(WrPurpose::RndvWrite(req)) => {
                    // RPUT: zero-copy transfer fully ACKed; MPI_Send completes.
                    self.events.push(MpiEvent { req });
                }
                Some(WrPurpose::RgetRead { rndv, peer }) => {
                    // RGET: our RDMA read returned; the recv completes and
                    // the sender learns via DONE.
                    let req = self
                        .rndv_in
                        .remove(&rndv)
                        .expect("RGET read for unknown rendezvous");
                    self.events.push(MpiEvent { req });
                    let done =
                        SendWr::send(0, CTRL_BYTES, 0).with_meta(MpiWire::Done { rndv }.encode());
                    hca.post_send_after(ctx, self.qpn(peer), done, ctx.now());
                }
                None => {}
            },
            Completion::WriteArrived { .. } => {
                unreachable!("MPI rendezvous writes are silent; FIN carries completion")
            }
        }
    }

    fn on_wire(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, src: usize, wire: MpiWire) {
        match wire {
            MpiWire::Eager { tag, len } => self.deliver_eager(ctx, src, tag, len),
            MpiWire::Batch { items } => {
                for (tag, len) in items {
                    self.deliver_eager(ctx, src, tag, len);
                }
            }
            MpiWire::Rts { tag, len, rndv } => {
                if let Some(pos) = self
                    .posted
                    .iter()
                    .position(|p| p.src == src && p.tag == tag)
                {
                    let p = self.posted.remove(pos).unwrap();
                    self.begin_rndv_receive(hca, ctx, src, rndv, len, p.req);
                } else {
                    self.unexpected.push_back(Unexpected {
                        src,
                        tag,
                        len,
                        kind: UnexpectedKind::Rts(rndv),
                    });
                }
            }
            MpiWire::Cts { rndv } => {
                let out = self
                    .rndv_out
                    .remove(&rndv)
                    .expect("CTS for unknown rendezvous");
                let qpn = self.qpn(out.peer);
                match self.cfg.rndv_protocol {
                    RndvProtocol::Rput => {
                        // Zero-copy RDMA write of the payload, then an
                        // ordered FIN.
                        let wr_id = self.next_wr;
                        self.next_wr += 1;
                        self.wr_purpose.insert(wr_id, WrPurpose::RndvWrite(out.req));
                        hca.post_send(ctx, qpn, SendWr::rdma_write(wr_id, out.len));
                        let fin = SendWr::send(0, CTRL_BYTES, 0).with_meta(
                            MpiWire::Fin {
                                rndv,
                                tag: out.tag,
                                len: out.len,
                            }
                            .encode(),
                        );
                        hca.post_send(ctx, qpn, fin);
                    }
                    RndvProtocol::R3 => {
                        // Packetized path: chunk the payload through the
                        // send channel, paying the bounce-buffer copies.
                        let chunk = self.cfg.r3_chunk.max(1);
                        let chunks = out.len.div_ceil(chunk).max(1);
                        let mut fin = ctx.now();
                        for i in 0..chunks {
                            let this = (out.len - i * chunk).min(chunk);
                            let work = self.cfg.copy_rate.tx_time(this as u64);
                            let (_, f) = self.cpu.reserve_dur(ctx.now(), work);
                            fin = f;
                            let wr = SendWr::send(0, this + EAGER_HEADER_BYTES, 0).with_meta(
                                MpiWire::R3Data {
                                    rndv,
                                    len: this,
                                    last: i + 1 == chunks,
                                }
                                .encode(),
                            );
                            hca.post_send_after(ctx, qpn, wr, f);
                        }
                        // Buffer reusable once the last chunk is copied out.
                        self.defer_done(ctx, out.req, fin);
                    }
                    RndvProtocol::Rget => {
                        unreachable!("RGET receivers pull; they never send CTS")
                    }
                }
            }
            MpiWire::Fin { rndv, .. } => {
                let req = self
                    .rndv_in
                    .remove(&rndv)
                    .expect("FIN for unknown rendezvous");
                // Data already landed (FIN is ordered behind the RDMA write).
                self.events.push(MpiEvent { req });
            }
            MpiWire::Done { rndv } => {
                // RGET: the receiver finished pulling; the send completes.
                let out = self
                    .rndv_out
                    .remove(&rndv)
                    .expect("DONE for unknown rendezvous");
                self.events.push(MpiEvent { req: out.req });
            }
            MpiWire::R3Data { rndv, len, last } => {
                // Copy the chunk out of the bounce buffer; the recv
                // completes at the final chunk's copy.
                let work = self.cfg.copy_rate.tx_time(len as u64);
                let (_, fin) = self.cpu.reserve_dur(ctx.now(), work);
                if last {
                    let req = self
                        .rndv_in
                        .remove(&rndv)
                        .expect("R3 data for unknown rendezvous");
                    self.defer_done(ctx, req, fin);
                }
            }
        }
    }

    /// Route a ULP timer with [`TOKEN_COPY`] or [`TOKEN_FLUSH`] here.
    pub fn on_timer(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_COPY => {
                let req = self
                    .deferred
                    .pop_front()
                    .expect("copy timer with empty deferred queue");
                self.events.push(MpiEvent { req });
            }
            TOKEN_FLUSH => {
                self.flush_armed = false;
                for peer in 0..self.nranks {
                    if !self.batches[peer].items.is_empty() {
                        self.flush_batch(hca, ctx, peer);
                    }
                }
            }
            other => panic!("unknown proto timer token {other}"),
        }
    }
}
