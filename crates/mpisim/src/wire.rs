//! MPI wire-protocol headers riding on IB messages.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Wire overhead of an eager MPI message (envelope + bookkeeping).
pub const EAGER_HEADER_BYTES: u32 = 48;
/// Wire size of a rendezvous control message (RTS/CTS/FIN).
pub const CTRL_BYTES: u32 = 64;
/// Wire overhead of a coalesced batch, plus per-item envelope.
pub const BATCH_HEADER_BYTES: u32 = 32;
/// Per-item envelope inside a coalesced batch.
pub const BATCH_ITEM_BYTES: u32 = 16;

/// MPI protocol messages exchanged between rank pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpiWire {
    /// Eager data: the payload rides in the same IB message.
    Eager {
        /// MPI tag.
        tag: u32,
        /// Payload length.
        len: u32,
    },
    /// Rendezvous request-to-send.
    Rts {
        /// MPI tag.
        tag: u32,
        /// Payload length.
        len: u32,
        /// Rendezvous transaction id.
        rndv: u32,
    },
    /// Rendezvous clear-to-send (receiver's buffer is ready).
    Cts {
        /// Rendezvous transaction id.
        rndv: u32,
    },
    /// Rendezvous finish marker, ordered after the RDMA-written data.
    Fin {
        /// Rendezvous transaction id.
        rndv: u32,
        /// MPI tag (for receiver-side accounting).
        tag: u32,
        /// Payload length.
        len: u32,
    },
    /// A coalesced batch of small eager messages.
    Batch {
        /// (tag, len) of each packed message, in order.
        items: Vec<(u32, u32)>,
    },
    /// RGET rendezvous: receiver finished RDMA-reading the data.
    Done {
        /// Rendezvous transaction id.
        rndv: u32,
    },
    /// R3 rendezvous: one packetized data chunk sent through the eager
    /// channel (copy-based, no RDMA).
    R3Data {
        /// Rendezvous transaction id.
        rndv: u32,
        /// Chunk payload length.
        len: u32,
        /// True on the final chunk.
        last: bool,
    },
}

impl MpiWire {
    /// Serialize for [`ibfabric::SendWr::with_meta`].
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        match self {
            MpiWire::Eager { tag, len } => {
                b.put_u8(0);
                b.put_u32(*tag);
                b.put_u32(*len);
            }
            MpiWire::Rts { tag, len, rndv } => {
                b.put_u8(1);
                b.put_u32(*tag);
                b.put_u32(*len);
                b.put_u32(*rndv);
            }
            MpiWire::Cts { rndv } => {
                b.put_u8(2);
                b.put_u32(*rndv);
            }
            MpiWire::Fin { rndv, tag, len } => {
                b.put_u8(3);
                b.put_u32(*rndv);
                b.put_u32(*tag);
                b.put_u32(*len);
            }
            MpiWire::Batch { items } => {
                b.put_u8(4);
                b.put_u32(items.len() as u32);
                for (tag, len) in items {
                    b.put_u32(*tag);
                    b.put_u32(*len);
                }
            }
            MpiWire::Done { rndv } => {
                b.put_u8(5);
                b.put_u32(*rndv);
            }
            MpiWire::R3Data { rndv, len, last } => {
                b.put_u8(6);
                b.put_u32(*rndv);
                b.put_u32(*len);
                b.put_u8(u8::from(*last));
            }
        }
        b.freeze()
    }

    /// Deserialize; panics on malformed input (simulation invariant).
    pub fn decode(mut buf: &[u8]) -> Self {
        let kind = buf.get_u8();
        match kind {
            0 => MpiWire::Eager {
                tag: buf.get_u32(),
                len: buf.get_u32(),
            },
            1 => MpiWire::Rts {
                tag: buf.get_u32(),
                len: buf.get_u32(),
                rndv: buf.get_u32(),
            },
            2 => MpiWire::Cts {
                rndv: buf.get_u32(),
            },
            3 => MpiWire::Fin {
                rndv: buf.get_u32(),
                tag: buf.get_u32(),
                len: buf.get_u32(),
            },
            4 => {
                let n = buf.get_u32() as usize;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push((buf.get_u32(), buf.get_u32()));
                }
                MpiWire::Batch { items }
            }
            5 => MpiWire::Done {
                rndv: buf.get_u32(),
            },
            6 => MpiWire::R3Data {
                rndv: buf.get_u32(),
                len: buf.get_u32(),
                last: buf.get_u8() != 0,
            },
            other => panic!("unknown MPI wire kind {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for w in [
            MpiWire::Eager { tag: 7, len: 4096 },
            MpiWire::Rts {
                tag: 1,
                len: 1 << 20,
                rndv: 42,
            },
            MpiWire::Cts { rndv: 42 },
            MpiWire::Fin {
                rndv: 42,
                tag: 1,
                len: 1 << 20,
            },
            MpiWire::Batch {
                items: vec![(1, 10), (2, 20), (3, 30)],
            },
            MpiWire::Done { rndv: 9 },
            MpiWire::R3Data {
                rndv: 9,
                len: 16384,
                last: true,
            },
        ] {
            assert_eq!(MpiWire::decode(&w.encode()), w);
        }
    }

    #[test]
    #[should_panic(expected = "unknown MPI wire kind")]
    fn rejects_bad_kind() {
        MpiWire::decode(&[9, 0, 0, 0, 0]);
    }
}
