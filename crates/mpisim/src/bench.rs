//! OSU-microbenchmark-style drivers (the paper uses OMB throughout
//! Section 3.4): latency, bandwidth, bidirectional bandwidth, multi-pair
//! message rate, and the modified broadcast benchmark.

use crate::coll::{self, TagAlloc};
use crate::proto::MpiConfig;
use crate::script::{Op, ScriptRunner};
use crate::world::{JobSpec, MpiJob};
use simcore::Dur;

const TAG_DATA: u32 = 1;
const TAG_SYNC: u32 = 2;
const MARK_START: u32 = 0;
const MARK_END: u32 = 1;

fn span_us(runner: &ScriptRunner) -> f64 {
    let t0 = runner.mark(MARK_START).expect("missing start mark");
    let t1 = runner.mark(MARK_END).expect("missing end mark");
    t1.since(t0).as_us_f64()
}

/// `osu_latency`: ping-pong between rank 0 (cluster A) and rank 1 (cluster
/// B); returns one-way latency in microseconds.
pub fn osu_latency(spec: JobSpec, size: u32, iters: u32) -> f64 {
    assert_eq!(spec.nranks(), 2);
    let mut job = MpiJob::build(spec, |rank, _| {
        let mut ops = vec![Op::Mark { id: MARK_START }];
        for _ in 0..iters {
            if rank == 0 {
                ops.push(Op::Send {
                    to: 1,
                    len: size,
                    tag: TAG_DATA,
                });
                ops.push(Op::Recv {
                    from: 1,
                    tag: TAG_DATA,
                });
            } else {
                ops.push(Op::Recv {
                    from: 0,
                    tag: TAG_DATA,
                });
                ops.push(Op::Send {
                    to: 0,
                    len: size,
                    tag: TAG_DATA,
                });
            }
        }
        ops.push(Op::Mark { id: MARK_END });
        ops
    });
    job.run();
    span_us(&job.process(0).runner) / (2.0 * iters as f64)
}

/// `osu_bw`: rank 0 streams windows of `window` messages to rank 1, with a
/// 4-byte sync reply per window. Returns MillionBytes/s.
pub fn osu_bw(spec: JobSpec, size: u32, window: u32, iters: u32) -> f64 {
    assert_eq!(spec.nranks(), 2);
    let mut job = MpiJob::build(spec, |rank, _| {
        let mut ops = vec![Op::Mark { id: MARK_START }];
        for _ in 0..iters {
            if rank == 0 {
                ops.push(Op::SendWindow {
                    to: 1,
                    len: size,
                    tag: TAG_DATA,
                    count: window,
                });
                ops.push(Op::Recv {
                    from: 1,
                    tag: TAG_SYNC,
                });
            } else {
                ops.push(Op::RecvWindow {
                    from: 0,
                    tag: TAG_DATA,
                    count: window,
                });
                ops.push(Op::Send {
                    to: 0,
                    len: 4,
                    tag: TAG_SYNC,
                });
            }
        }
        ops.push(Op::Mark { id: MARK_END });
        ops
    });
    job.run();
    let bytes = size as f64 * window as f64 * iters as f64;
    bytes / (span_us(&job.process(0).runner) * 1e-6) / 1e12 * 1e6
}

/// `osu_bibw`: both ranks stream windows at each other simultaneously.
/// Returns aggregate MillionBytes/s.
pub fn osu_bibw(spec: JobSpec, size: u32, window: u32, iters: u32) -> f64 {
    assert_eq!(spec.nranks(), 2);
    let mut job = MpiJob::build(spec, |rank, _| {
        let peer = 1 - rank;
        let mut ops = vec![Op::Mark { id: MARK_START }];
        for _ in 0..iters {
            ops.push(Op::Exchange {
                to: peer,
                from: peer,
                len: size,
                tag: TAG_DATA,
                count: window,
            });
            ops.push(Op::Exchange {
                to: peer,
                from: peer,
                len: 4,
                tag: TAG_SYNC,
                count: 1,
            });
        }
        ops.push(Op::Mark { id: MARK_END });
        ops
    });
    job.run();
    let bytes = 2.0 * size as f64 * window as f64 * iters as f64;
    bytes / (span_us(&job.process(0).runner) * 1e-6) / 1e12 * 1e6
}

/// Multi-pair aggregate message rate (`osu_mbw_mr`-style): `pairs` processes
/// on cluster A each stream windows to a partner on cluster B. Returns
/// million messages per second, aggregated over pairs.
pub fn msg_rate(spec: JobSpec, pairs: usize, size: u32, window: u32, iters: u32) -> f64 {
    assert_eq!(spec.ranks_a, pairs);
    assert_eq!(spec.ranks_b, pairs);
    let mut job = MpiJob::build(spec, |rank, n| {
        let pairs = n / 2;
        let mut ops = vec![Op::Mark { id: MARK_START }];
        for _ in 0..iters {
            if rank < pairs {
                let partner = rank + pairs;
                ops.push(Op::SendWindow {
                    to: partner,
                    len: size,
                    tag: TAG_DATA,
                    count: window,
                });
                ops.push(Op::Recv {
                    from: partner,
                    tag: TAG_SYNC,
                });
            } else {
                let partner = rank - pairs;
                ops.push(Op::RecvWindow {
                    from: partner,
                    tag: TAG_DATA,
                    count: window,
                });
                ops.push(Op::Send {
                    to: partner,
                    len: 4,
                    tag: TAG_SYNC,
                });
            }
        }
        ops.push(Op::Mark { id: MARK_END });
        ops
    });
    job.run();
    // Aggregate: total messages over the global wall-clock span.
    let t0 = (0..pairs)
        .map(|r| job.process(r).runner.mark(MARK_START).unwrap())
        .min()
        .unwrap();
    let t1 = (0..pairs)
        .map(|r| job.process(r).runner.mark(MARK_END).unwrap())
        .max()
        .unwrap();
    let msgs = pairs as f64 * window as f64 * iters as f64;
    msgs / t1.since(t0).as_secs_f64() / 1e6
}

/// The paper's modified `osu_bcast`: the root broadcasts and waits for an
/// ACK from the pre-selected farthest process (the last rank, deepest in the
/// remote cluster), then proceeds to the next iteration. Returns the mean
/// per-broadcast latency at the root, in microseconds.
pub fn osu_bcast(spec: JobSpec, size: u32, iters: u32, hierarchical: bool) -> f64 {
    let split = spec.ranks_a;
    let mut job = MpiJob::build(spec, |rank, n| {
        let root = 0usize;
        let designated = n - 1;
        let mut tags = TagAlloc::default();
        let mut ops = vec![Op::Mark { id: MARK_START }];
        for _ in 0..iters {
            let tag = tags.take();
            if hierarchical {
                ops.extend(coll::bcast_hierarchical(n, rank, root, split, size, tag));
            } else {
                let members: Vec<usize> = (0..n).collect();
                ops.extend(coll::bcast(&members, rank, root, size, tag));
            }
            if rank == root {
                ops.push(Op::Recv {
                    from: designated,
                    tag: tag + TAG_SYNC,
                });
            } else if rank == designated {
                ops.push(Op::Send {
                    to: root,
                    len: 4,
                    tag: tag + TAG_SYNC,
                });
            }
        }
        ops.push(Op::Mark { id: MARK_END });
        ops
    });
    job.run();
    span_us(&job.process(0).runner) / iters as f64
}

/// Allreduce latency benchmark: `iters` back-to-back allreduces of `len`
/// bytes over all ranks, flat (recursive doubling) or hierarchical
/// (WAN-aware). Returns mean per-operation latency in microseconds at
/// rank 0.
pub fn allreduce_latency(spec: JobSpec, len: u32, iters: u32, hierarchical: bool) -> f64 {
    let split = spec.ranks_a;
    let mut job = MpiJob::build(spec, |rank, n| {
        let mut tags = TagAlloc::default();
        let mut ops = vec![Op::Mark { id: MARK_START }];
        for _ in 0..iters {
            let tag = tags.take();
            if hierarchical {
                ops.extend(coll::allreduce_hierarchical(n, rank, split, len, tag));
            } else {
                ops.extend(coll::allreduce(n, rank, len, tag));
            }
        }
        ops.push(Op::Mark { id: MARK_END });
        ops
    });
    job.run();
    span_us(&job.process(0).runner) / iters as f64
}

/// Which collective a [`collective_latency`] run measures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CollKind {
    /// Dissemination barrier.
    Barrier,
    /// Recursive-doubling allreduce.
    Allreduce,
    /// Concurrent pairwise alltoall.
    Alltoall,
    /// Ring allgather.
    AllgatherRing,
    /// Recursive-doubling allgather.
    AllgatherRd,
}

/// Mean per-operation latency (µs at rank 0) of `iters` back-to-back
/// collectives of `len` bytes over all ranks.
pub fn collective_latency(spec: JobSpec, kind: CollKind, len: u32, iters: u32) -> f64 {
    let mut job = MpiJob::build(spec, |rank, n| {
        let members: Vec<usize> = (0..n).collect();
        let mut tags = TagAlloc::default();
        let mut ops = vec![Op::Mark { id: MARK_START }];
        for _ in 0..iters {
            let tag = tags.take();
            match kind {
                CollKind::Barrier => ops.extend(coll::barrier(n, rank, tag)),
                CollKind::Allreduce => ops.extend(coll::allreduce(n, rank, len, tag)),
                CollKind::Alltoall => ops.extend(coll::alltoall(n, rank, len, tag)),
                CollKind::AllgatherRing => {
                    ops.extend(coll::allgather_ring(&members, rank, len, tag))
                }
                CollKind::AllgatherRd => ops.extend(coll::allgather_rd(&members, rank, len, tag)),
            }
        }
        ops.push(Op::Mark { id: MARK_END });
        ops
    });
    job.run();
    span_us(&job.process(0).runner) / iters as f64
}

/// Convenience two-rank spec across the WAN.
pub fn wan_pair(delay: Dur) -> JobSpec {
    JobSpec::two_clusters(1, 1, delay)
}

/// Convenience two-rank spec with a tuned/tunable MPI config.
pub fn wan_pair_with(delay: Dur, mpi: MpiConfig) -> JobSpec {
    JobSpec::two_clusters(1, 1, delay).with_mpi(mpi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_reflects_wan_delay() {
        let lan = osu_latency(wan_pair(Dur::ZERO), 4, 20);
        let wan = osu_latency(wan_pair(Dur::from_us(100)), 4, 20);
        assert!(
            (wan - lan - 100.0).abs() < 5.0,
            "one-way latency should grow by the delay: lan {lan}, wan {wan}"
        );
    }

    #[test]
    fn bw_peaks_near_sdr_for_large_messages() {
        let bw = osu_bw(wan_pair(Dur::ZERO), 1 << 20, 8, 8);
        assert!(bw > 850.0 && bw < 1000.0, "bw {bw}");
    }

    #[test]
    fn bibw_roughly_doubles_bw() {
        let bw = osu_bw(wan_pair(Dur::ZERO), 1 << 18, 8, 8);
        let bibw = osu_bibw(wan_pair(Dur::ZERO), 1 << 18, 8, 8);
        assert!(
            bibw > 1.5 * bw,
            "bidirectional ({bibw}) should approach 2x unidirectional ({bw})"
        );
    }

    #[test]
    fn tuned_threshold_helps_medium_messages_at_high_delay() {
        // 8 KB messages at 10 ms delay: eager (64 KB threshold) avoids the
        // per-window rendezvous handshake — the Figure 9 effect.
        let delay = Dur::from_ms(10);
        let original = osu_bw(wan_pair_with(delay, MpiConfig::default()), 16384, 64, 3);
        let tuned = osu_bw(wan_pair_with(delay, MpiConfig::wan_tuned()), 16384, 64, 3);
        assert!(
            tuned > 1.2 * original,
            "tuned ({tuned}) should beat original ({original}) by >20%"
        );
    }

    #[test]
    fn message_rate_scales_with_pairs() {
        let delay = Dur::from_us(10);
        let r4 = msg_rate(JobSpec::two_clusters(4, 4, delay), 4, 64, 32, 4);
        let r16 = msg_rate(JobSpec::two_clusters(16, 16, delay), 16, 64, 32, 4);
        assert!(
            r16 > 2.5 * r4,
            "16 pairs ({r16}) should far out-rate 4 pairs ({r4})"
        );
    }

    #[test]
    fn hierarchical_bcast_beats_flat_at_delay() {
        let spec = JobSpec::two_clusters(8, 8, Dur::from_us(100));
        let flat = osu_bcast(spec, 131072, 3, false);
        let hier = osu_bcast(spec, 131072, 3, true);
        assert!(
            hier < flat,
            "hierarchical ({hier} us) must beat flat ({flat} us)"
        );
    }

    #[test]
    fn collective_latencies_order_sensibly() {
        let spec = JobSpec::two_clusters(4, 4, Dur::from_us(100));
        let barrier = collective_latency(spec, CollKind::Barrier, 4, 3);
        let allreduce = collective_latency(spec, CollKind::Allreduce, 8, 3);
        let alltoall = collective_latency(spec, CollKind::Alltoall, 8192, 3);
        // With a block layout, recursive doubling crosses the WAN only in
        // its top round; the dissemination barrier's shifted partners cross
        // in several rounds — so the "cheap" barrier is actually slower.
        assert!(barrier > allreduce, "{barrier} vs {allreduce}");
        // An 8 KB alltoall moves the most data of the three.
        assert!(alltoall > allreduce, "{alltoall} vs {allreduce}");
    }

    #[test]
    fn rd_allgather_needs_the_tuned_threshold_to_beat_the_ring() {
        // A subtle WAN interaction: recursive doubling has log(n) rounds
        // (vs n-1 for the ring) but its top round carries n/2 * len bytes —
        // past the 8 KB default threshold that message goes rendezvous and
        // pays extra WAN round trips, losing to the eager ring. Raising the
        // threshold (the paper's Figure 9 tuning) restores the win.
        let spec = JobSpec::two_clusters(4, 4, Dur::from_ms(1));
        let ring = collective_latency(spec, CollKind::AllgatherRing, 4096, 2);
        let rd_default = collective_latency(spec, CollKind::AllgatherRd, 4096, 2);
        assert!(
            rd_default > ring,
            "default threshold: rd {rd_default} vs ring {ring}"
        );
        let tuned = spec.with_mpi(MpiConfig::wan_tuned());
        let rd_tuned = collective_latency(tuned, CollKind::AllgatherRd, 4096, 2);
        assert!(
            rd_tuned < 0.7 * ring,
            "tuned threshold: rd {rd_tuned} vs ring {ring}"
        );
    }

    #[test]
    fn hierarchical_allreduce_beats_flat_for_large_payloads() {
        // For tiny payloads both algorithms pay exactly one WAN round trip
        // (the flat top round crosses concurrently), so they tie; for large
        // payloads the flat algorithm ships every rank's vector across the
        // WAN while the hierarchical one ships exactly two.
        let spec = JobSpec::two_clusters(8, 8, Dur::from_us(100));
        let flat_small = allreduce_latency(spec, 8, 3, false);
        let hier_small = allreduce_latency(spec, 8, 3, true);
        let ratio = flat_small / hier_small;
        assert!(
            (0.7..1.4).contains(&ratio),
            "small: flat {flat_small} hier {hier_small}"
        );

        let flat_big = allreduce_latency(spec, 262_144, 3, false);
        let hier_big = allreduce_latency(spec, 262_144, 3, true);
        assert!(
            hier_big < 0.75 * flat_big,
            "hierarchical ({hier_big} us) must beat flat ({flat_big} us) at 256K"
        );
    }

    #[test]
    fn small_bcast_comparable_between_algorithms() {
        // Small messages use the binomial tree either way: one WAN crossing.
        let spec = JobSpec::two_clusters(8, 8, Dur::from_us(100));
        let flat = osu_bcast(spec, 64, 5, false);
        let hier = osu_bcast(spec, 64, 5, true);
        let ratio = flat / hier;
        assert!(
            (0.6..1.7).contains(&ratio),
            "small-message bcast should be comparable: flat {flat}, hier {hier}"
        );
    }
}

#[cfg(test)]
mod rndv_protocol_tests {
    use super::*;
    use crate::proto::RndvProtocol;

    fn bw_with(protocol: RndvProtocol, size: u32, delay: Dur) -> f64 {
        let cfg = MpiConfig {
            rndv_protocol: protocol,
            ..MpiConfig::default()
        };
        osu_bw(wan_pair_with(delay, cfg), size, 16, 4)
    }

    #[test]
    fn all_rendezvous_protocols_transfer_correctly() {
        for p in [RndvProtocol::Rput, RndvProtocol::Rget, RndvProtocol::R3] {
            let bw = bw_with(p, 1 << 20, Dur::ZERO);
            assert!(bw > 100.0, "{p:?} bandwidth {bw}");
        }
    }

    #[test]
    fn zero_copy_beats_r3_on_lan() {
        let rput = bw_with(RndvProtocol::Rput, 1 << 20, Dur::ZERO);
        let r3 = bw_with(RndvProtocol::R3, 1 << 20, Dur::ZERO);
        assert!(
            rput > r3,
            "zero-copy RPUT ({rput}) should beat copy-based R3 ({r3})"
        );
    }

    #[test]
    fn rget_read_credits_bind_at_high_delay() {
        // RGET is limited to 4 outstanding reads (IB initiator depth);
        // RPUT can keep 16 writes in flight — a real WAN difference.
        let delay = Dur::from_ms(10);
        let rput = bw_with(RndvProtocol::Rput, 262_144, delay);
        let rget = bw_with(RndvProtocol::Rget, 262_144, delay);
        assert!(
            rput > 1.5 * rget,
            "RPUT ({rput}) should outrun credit-bound RGET ({rget}) at 10 ms"
        );
    }

    #[test]
    fn latency_agrees_across_protocols_for_small_messages() {
        // Below the threshold all protocols are eager: identical latency.
        let l_rput = osu_latency(
            wan_pair_with(Dur::from_us(100), MpiConfig::default()),
            64,
            10,
        );
        let cfg = MpiConfig {
            rndv_protocol: RndvProtocol::Rget,
            ..MpiConfig::default()
        };
        let l_rget = osu_latency(wan_pair_with(Dur::from_us(100), cfg), 64, 10);
        assert_eq!(l_rput.to_bits(), l_rget.to_bits());
    }
}
