//! Collective communication algorithms, expanded statically into per-rank
//! point-to-point operation scripts.
//!
//! MVAPICH2-style broadcast: binomial tree for small messages, binomial
//! scatter + ring allgather (van de Geijn) for large ones. Over a block
//! rank distribution (ranks 0..split on cluster A, the rest on cluster B)
//! the ring repeatedly drags the WAN link into the critical path — the
//! paper's motivation for the **hierarchical** (WAN-aware) broadcast that
//! crosses the WAN exactly once and runs the regular algorithm inside each
//! cluster ([`bcast_hierarchical`], Figure 11).

use crate::script::Op;

/// Message size at which broadcast switches from binomial to
/// scatter+allgather (MVAPICH2-like).
pub const BCAST_LARGE_THRESHOLD: u32 = 8192;

/// Tag stride reserved per collective instance; callers hand out bases via
/// [`TagAlloc`].
pub const TAG_STRIDE: u32 = 4096;

/// Simple allocator for collective tag ranges, advanced identically on every
/// rank (SPMD scripts execute the same collective sequence).
#[derive(Clone, Copy, Debug)]
pub struct TagAlloc {
    next: u32,
}

impl TagAlloc {
    /// Start allocating at `base` (keep user tags below it).
    pub fn new(base: u32) -> Self {
        TagAlloc { next: base }
    }

    /// Reserve a fresh tag range for one collective instance.
    pub fn take(&mut self) -> u32 {
        let t = self.next;
        self.next += TAG_STRIDE;
        t
    }
}

impl Default for TagAlloc {
    fn default() -> Self {
        TagAlloc::new(1 << 20)
    }
}

fn index_of(members: &[usize], rank: usize) -> usize {
    members
        .iter()
        .position(|&m| m == rank)
        .expect("rank not in collective member list")
}

/// Binomial-tree broadcast over `members` rooted at `root` (global ranks).
/// Returns the ops for `me`. The farthest subtree is served first, so a
/// block two-cluster layout incurs exactly one WAN crossing.
pub fn bcast_binomial(members: &[usize], me: usize, root: usize, len: u32, tag: u32) -> Vec<Op> {
    let n = members.len();
    let vroot = index_of(members, root);
    let vme = (index_of(members, me) + n - vroot) % n;
    let mut ops = Vec::new();
    // Receive phase: find the bit at which we receive.
    let mut mask = 1usize;
    while mask < n {
        if vme & mask != 0 {
            let from = members[(vme - mask + vroot) % n];
            ops.push(Op::Recv { from, tag });
            break;
        }
        mask <<= 1;
    }
    // Send phase: descending masks below our receive bit.
    mask >>= 1;
    while mask > 0 {
        if vme + mask < n {
            let to = members[(vme + mask + vroot) % n];
            ops.push(Op::Send { to, len, tag });
        }
        mask >>= 1;
    }
    ops
}

/// Scatter + ring-allgather broadcast (MVAPICH2's large-message algorithm).
/// Requires a power-of-two member count (all the paper's configurations are).
pub fn bcast_scatter_ring(
    members: &[usize],
    me: usize,
    root: usize,
    len: u32,
    tag: u32,
) -> Vec<Op> {
    let n = members.len();
    assert!(
        n.is_power_of_two(),
        "scatter+ring requires power-of-two ranks"
    );
    if n == 1 {
        return Vec::new();
    }
    let chunk = len.div_ceil(n as u32).max(1);
    let vroot = index_of(members, root);
    let vme = (index_of(members, me) + n - vroot) % n;
    let at = |v: usize| members[(v + vroot) % n];
    let mut ops = Vec::new();
    // Recursive-halving binomial scatter: at step `m`, holders (vrank % 2m
    // == 0) ship the upper half of their range (m chunks) to vrank + m.
    let mut m = n / 2;
    while m >= 1 {
        let step_tag = tag + (n / 2 / m).trailing_zeros();
        if vme.is_multiple_of(2 * m) {
            ops.push(Op::Send {
                to: at(vme + m),
                len: chunk * m as u32,
                tag: step_tag,
            });
        } else if vme % (2 * m) == m {
            ops.push(Op::Recv {
                from: at(vme - m),
                tag: step_tag,
            });
        }
        m /= 2;
    }
    // Ring allgather: n-1 steps of simultaneous send-right / recv-left.
    let right = at((vme + 1) % n);
    let left = at((vme + n - 1) % n);
    let ring_base = tag + 32;
    for step in 0..(n - 1) as u32 {
        ops.push(Op::Exchange {
            to: right,
            from: left,
            len: chunk,
            tag: ring_base + step,
            count: 1,
        });
    }
    ops
}

/// Size-adaptive broadcast over `members` (binomial below
/// [`BCAST_LARGE_THRESHOLD`], scatter+ring at or above it).
pub fn bcast(members: &[usize], me: usize, root: usize, len: u32, tag: u32) -> Vec<Op> {
    if len < BCAST_LARGE_THRESHOLD || !members.len().is_power_of_two() {
        bcast_binomial(members, me, root, len, tag)
    } else {
        bcast_scatter_ring(members, me, root, len, tag)
    }
}

/// WAN-aware hierarchical broadcast (the paper's Figure 11 optimization):
/// the root forwards the full message to the remote cluster's leader over
/// the WAN exactly once, then each cluster broadcasts internally.
///
/// `split` is the first rank of cluster B (ranks `0..split` are cluster A).
pub fn bcast_hierarchical(
    nranks: usize,
    me: usize,
    root: usize,
    split: usize,
    len: u32,
    tag: u32,
) -> Vec<Op> {
    assert!(root < nranks && me < nranks && split > 0 && split < nranks);
    let cluster_a: Vec<usize> = (0..split).collect();
    let cluster_b: Vec<usize> = (split..nranks).collect();
    let root_in_a = root < split;
    let (my_cluster, remote_leader) = if root_in_a {
        (if me < split { &cluster_a } else { &cluster_b }, split)
    } else {
        (if me < split { &cluster_a } else { &cluster_b }, 0)
    };
    let mut ops = Vec::new();
    // One WAN crossing: root -> remote leader.
    if me == root {
        ops.push(Op::Send {
            to: remote_leader,
            len,
            tag,
        });
    } else if me == remote_leader {
        ops.push(Op::Recv { from: root, tag });
    }
    // Intra-cluster broadcast; the local root is the paper's leader.
    let local_root = if (me < split) == root_in_a {
        root
    } else {
        remote_leader
    };
    ops.extend(bcast(my_cluster, me, local_root, len, tag + 1024));
    ops
}

/// Dissemination barrier over all `nranks` (4-byte tokens).
pub fn barrier(nranks: usize, me: usize, tag: u32) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut k = 1usize;
    let mut round = 0u32;
    while k < nranks {
        let to = (me + k) % nranks;
        let from = (me + nranks - k) % nranks;
        ops.push(Op::Exchange {
            to,
            from,
            len: 4,
            tag: tag + round,
            count: 1,
        });
        k <<= 1;
        round += 1;
    }
    ops
}

/// Recursive-doubling allreduce of `len` bytes (power-of-two ranks). With a
/// block two-cluster layout, the top round crosses the WAN on every rank —
/// which is what makes small-allreduce-heavy codes (CG) delay-sensitive.
pub fn allreduce(nranks: usize, me: usize, len: u32, tag: u32) -> Vec<Op> {
    assert!(
        nranks.is_power_of_two(),
        "recursive doubling needs 2^k ranks"
    );
    let mut ops = Vec::new();
    let mut k = 1usize;
    let mut round = 0u32;
    while k < nranks {
        let partner = me ^ k;
        ops.push(Op::Exchange {
            to: partner,
            from: partner,
            len,
            tag: tag + round,
            count: 1,
        });
        k <<= 1;
        round += 1;
    }
    ops
}

/// Binomial-tree reduce to `root`: the mirror image of the binomial
/// broadcast (leaves send first, interior ranks combine and forward).
pub fn reduce_binomial(members: &[usize], me: usize, root: usize, len: u32, tag: u32) -> Vec<Op> {
    let n = members.len();
    let vroot = index_of(members, root);
    let vme = (index_of(members, me) + n - vroot) % n;
    let mut ops = Vec::new();
    // Receive phase (children arrive smallest-mask first), then one send to
    // the parent — exactly the bcast schedule reversed.
    let mut mask = 1usize;
    while mask < n {
        if vme & mask != 0 {
            let parent = members[(vme - mask + vroot) % n];
            ops.push(Op::Send {
                to: parent,
                len,
                tag,
            });
            break;
        }
        if vme + mask < n {
            let child = members[(vme + mask + vroot) % n];
            ops.push(Op::Recv { from: child, tag });
        }
        mask <<= 1;
    }
    ops
}

/// Binomial scatter from `root`: each rank ends with `chunk` bytes
/// (power-of-two ranks; the scatter half of the large-message broadcast,
/// exposed as a standalone collective).
pub fn scatter(members: &[usize], me: usize, root: usize, chunk: u32, tag: u32) -> Vec<Op> {
    let n = members.len();
    assert!(n.is_power_of_two(), "binomial scatter needs 2^k ranks");
    let vroot = index_of(members, root);
    let vme = (index_of(members, me) + n - vroot) % n;
    let at = |v: usize| members[(v + vroot) % n];
    let mut ops = Vec::new();
    let mut m = n / 2;
    while m >= 1 {
        let step_tag = tag + (n / 2 / m).trailing_zeros();
        if vme.is_multiple_of(2 * m) {
            ops.push(Op::Send {
                to: at(vme + m),
                len: chunk * m as u32,
                tag: step_tag,
            });
        } else if vme % (2 * m) == m {
            ops.push(Op::Recv {
                from: at(vme - m),
                tag: step_tag,
            });
        }
        m /= 2;
    }
    ops
}

/// Binomial gather to `root` (the reverse of [`scatter`]).
pub fn gather(members: &[usize], me: usize, root: usize, chunk: u32, tag: u32) -> Vec<Op> {
    let n = members.len();
    assert!(n.is_power_of_two(), "binomial gather needs 2^k ranks");
    let vroot = index_of(members, root);
    let vme = (index_of(members, me) + n - vroot) % n;
    let at = |v: usize| members[(v + vroot) % n];
    let mut ops = Vec::new();
    let mut m = 1usize;
    while m < n {
        let step_tag = tag + m.trailing_zeros();
        if vme % (2 * m) == m {
            ops.push(Op::Send {
                to: at(vme - m),
                len: chunk * m as u32,
                tag: step_tag,
            });
            break;
        } else if vme.is_multiple_of(2 * m) {
            ops.push(Op::Recv {
                from: at(vme + m),
                tag: step_tag,
            });
        }
        m <<= 1;
    }
    ops
}

/// Ring allgather: `chunk` bytes contributed per rank, `n-1` steps of
/// simultaneous send-right / receive-left.
pub fn allgather_ring(members: &[usize], me: usize, chunk: u32, tag: u32) -> Vec<Op> {
    let n = members.len();
    if n <= 1 {
        return Vec::new();
    }
    let vme = index_of(members, me);
    let right = members[(vme + 1) % n];
    let left = members[(vme + n - 1) % n];
    (0..(n - 1) as u32)
        .map(|step| Op::Exchange {
            to: right,
            from: left,
            len: chunk,
            tag: tag + step,
            count: 1,
        })
        .collect()
}

/// Recursive-doubling allgather: message doubles each round (power-of-two
/// ranks). Fewer, larger transfers than the ring — better over high-latency
/// links, another WAN-relevant algorithm choice.
pub fn allgather_rd(members: &[usize], me: usize, chunk: u32, tag: u32) -> Vec<Op> {
    let n = members.len();
    assert!(n.is_power_of_two(), "recursive doubling needs 2^k ranks");
    let vme = index_of(members, me);
    let mut ops = Vec::new();
    let mut k = 1usize;
    let mut round = 0u32;
    while k < n {
        let partner = members[vme ^ k];
        ops.push(Op::Exchange {
            to: partner,
            from: partner,
            len: chunk * k as u32,
            tag: tag + round,
            count: 1,
        });
        k <<= 1;
        round += 1;
    }
    ops
}

/// WAN-aware hierarchical allreduce (the paper's stated future work on
/// collectives, implemented here): binomial reduce to each cluster's
/// leader, a single leader-to-leader WAN exchange, then an intra-cluster
/// broadcast — two WAN messages total instead of one per rank.
pub fn allreduce_hierarchical(
    nranks: usize,
    me: usize,
    split: usize,
    len: u32,
    tag: u32,
) -> Vec<Op> {
    assert!(split > 0 && split < nranks);
    let cluster_a: Vec<usize> = (0..split).collect();
    let cluster_b: Vec<usize> = (split..nranks).collect();
    let (my_cluster, my_leader, other_leader) = if me < split {
        (&cluster_a, 0usize, split)
    } else {
        (&cluster_b, split, 0usize)
    };
    let mut ops = reduce_binomial(my_cluster, me, my_leader, len, tag);
    if me == my_leader {
        ops.push(Op::Exchange {
            to: other_leader,
            from: other_leader,
            len,
            tag: tag + 512,
            count: 1,
        });
    }
    ops.extend(bcast_binomial(my_cluster, me, my_leader, len, tag + 1024));
    ops
}

/// Pairwise-exchange alltoall: `len_per_pair` bytes to every other rank
/// (power-of-two ranks). Heavy WAN serialization with a block layout —
/// the communication core of the IS and FT skeletons.
pub fn alltoall(nranks: usize, me: usize, len_per_pair: u32, tag: u32) -> Vec<Op> {
    assert!(
        nranks.is_power_of_two(),
        "pairwise exchange needs 2^k ranks"
    );
    let mut children = Vec::new();
    for step in 1..nranks {
        let partner = me ^ step;
        children.push(Op::Exchange {
            to: partner,
            from: partner,
            len: len_per_pair,
            tag: tag + step as u32,
            count: 1,
        });
    }
    // All pairs posted at once (MVAPICH2 posts every isend/irecv and waits),
    // so rendezvous handshakes to different partners overlap — one WAN RTT
    // per alltoall rather than one per partner.
    vec![Op::Concurrent(children)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Abstract executor: runs per-rank scripts with buffered sends and
    /// blocking receives; returns true if all scripts finish (no deadlock,
    /// full matching).
    fn run_abstract(scripts: &[Vec<Op>]) -> bool {
        let n = scripts.len();
        let mut pc = vec![0usize; n];
        // In-flight bag: (from, to, tag) -> queued message count.
        let mut bag: HashMap<(usize, usize, u32), u32> = HashMap::new();
        // For Exchange ops partially satisfied: remaining recvs per rank.
        let mut want: Vec<Option<(usize, u32, u32)>> = vec![None; n];
        loop {
            let mut progress = false;
            for r in 0..n {
                loop {
                    if let Some((from, tag, remaining)) = want[r] {
                        let mut rem = remaining;
                        while rem > 0 {
                            let e = bag.entry((from, r, tag)).or_default();
                            if *e == 0 {
                                break;
                            }
                            *e -= 1;
                            rem -= 1;
                        }
                        if rem == 0 {
                            want[r] = None;
                            progress = true;
                        } else {
                            want[r] = Some((from, tag, rem));
                            break;
                        }
                    }
                    if pc[r] >= scripts[r].len() {
                        break;
                    }
                    match scripts[r][pc[r]].clone() {
                        Op::Send { to, tag, .. } => {
                            *bag.entry((r, to, tag)).or_default() += 1;
                        }
                        Op::SendWindow { to, tag, count, .. } => {
                            *bag.entry((r, to, tag)).or_default() += count;
                        }
                        Op::Recv { from, tag } => {
                            want[r] = Some((from, tag, 1));
                        }
                        Op::RecvWindow { from, tag, count } => {
                            want[r] = Some((from, tag, count));
                        }
                        Op::Exchange {
                            to,
                            from,
                            tag,
                            count,
                            ..
                        } => {
                            *bag.entry((r, to, tag)).or_default() += count;
                            want[r] = Some((from, tag, count));
                        }
                        Op::Compute { .. } | Op::Mark { .. } => {}
                        Op::Concurrent(_) => {
                            unreachable!("scripts are flattened before run_abstract")
                        }
                    }
                    pc[r] += 1;
                    progress = true;
                }
            }
            if pc
                .iter()
                .enumerate()
                .all(|(r, &p)| p >= scripts[r].len() && want[r].is_none())
            {
                return bag.values().all(|&v| v == 0);
            }
            if !progress {
                return false;
            }
        }
    }

    /// Flatten `Concurrent` groups for the abstract executor: sequential
    /// processing is sound here because every group's pairings are
    /// symmetric per step on all ranks.
    fn flatten(ops: Vec<Op>) -> Vec<Op> {
        let mut v = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                Op::Concurrent(children) => v.extend(children),
                other => v.push(other),
            }
        }
        v
    }

    fn scripts_for<F: Fn(usize) -> Vec<Op>>(n: usize, f: F) -> Vec<Vec<Op>> {
        (0..n).map(|r| flatten(f(r))).collect()
    }

    #[test]
    fn binomial_bcast_completes_all_roots() {
        for n in [2usize, 3, 5, 8, 16, 64] {
            let members: Vec<usize> = (0..n).collect();
            for root in [0, n / 2, n - 1] {
                let s = scripts_for(n, |r| bcast_binomial(&members, r, root, 1024, 5));
                assert!(run_abstract(&s), "binomial n={n} root={root}");
            }
        }
    }

    #[test]
    fn binomial_bcast_every_nonroot_receives_once() {
        let n = 32;
        let members: Vec<usize> = (0..n).collect();
        for r in 0..n {
            let ops = bcast_binomial(&members, r, 3, 64, 9);
            let recvs = ops.iter().filter(|o| matches!(o, Op::Recv { .. })).count();
            assert_eq!(recvs, usize::from(r != 3), "rank {r}");
        }
    }

    #[test]
    fn scatter_ring_completes() {
        for n in [2usize, 4, 8, 32, 128] {
            let members: Vec<usize> = (0..n).collect();
            let s = scripts_for(n, |r| bcast_scatter_ring(&members, r, 0, 1 << 17, 100));
            assert!(run_abstract(&s), "scatter_ring n={n}");
        }
    }

    #[test]
    fn scatter_ring_nonzero_root_completes() {
        let n = 16;
        let members: Vec<usize> = (0..n).collect();
        let s = scripts_for(n, |r| bcast_scatter_ring(&members, r, 5, 1 << 16, 100));
        assert!(run_abstract(&s));
    }

    #[test]
    fn hierarchical_bcast_completes() {
        for (n, split) in [(8usize, 4usize), (128, 64), (16, 8)] {
            for root in [0, split, n - 1] {
                let s = scripts_for(n, |r| bcast_hierarchical(n, r, root, split, 131072, 7));
                assert!(run_abstract(&s), "hier n={n} split={split} root={root}");
            }
        }
    }

    #[test]
    fn hierarchical_crosses_wan_once() {
        let n = 128;
        let split = 64;
        let mut wan_messages = 0;
        for r in 0..n {
            for op in bcast_hierarchical(n, r, 0, split, 131072, 7) {
                if let Op::Send { to, .. } = op {
                    if (r < split) != (to < split) {
                        wan_messages += 1;
                    }
                }
                if let Op::Exchange { to, .. } = op {
                    if (r < split) != (to < split) {
                        wan_messages += 1;
                    }
                }
            }
        }
        assert_eq!(
            wan_messages, 1,
            "hierarchical bcast must cross the WAN once"
        );
    }

    #[test]
    fn flat_large_bcast_crosses_wan_many_times() {
        let n = 128;
        let split = 64;
        let members: Vec<usize> = (0..n).collect();
        let mut wan_messages = 0;
        for r in 0..n {
            for op in bcast_scatter_ring(&members, r, 0, 131072, 7) {
                match op {
                    Op::Send { to, .. } if (r < split) != (to < split) => wan_messages += 1,
                    Op::Exchange { to, .. } if (r < split) != (to < split) => wan_messages += 1,
                    _ => {}
                }
            }
        }
        assert!(
            wan_messages > 50,
            "ring allgather should cross the WAN repeatedly, got {wan_messages}"
        );
    }

    #[test]
    fn barrier_completes() {
        for n in [2usize, 3, 7, 8, 64] {
            let s = scripts_for(n, |r| barrier(n, r, 50));
            assert!(run_abstract(&s), "barrier n={n}");
        }
    }

    #[test]
    fn allreduce_completes() {
        for n in [2usize, 4, 64] {
            let s = scripts_for(n, |r| allreduce(n, r, 8, 60));
            assert!(run_abstract(&s), "allreduce n={n}");
        }
    }

    #[test]
    fn alltoall_completes_and_is_symmetric() {
        let n = 16;
        let s = scripts_for(n, |r| alltoall(n, r, 1 << 15, 70));
        assert!(run_abstract(&s));
        // Every rank exchanges with every other exactly once.
        for (r, ops) in s.iter().enumerate() {
            let partners: Vec<usize> = ops
                .iter()
                .filter_map(|o| match o {
                    Op::Exchange { to, .. } => Some(*to),
                    _ => None,
                })
                .collect();
            let mut sorted = partners.clone();
            sorted.sort_unstable();
            let expect: Vec<usize> = (0..n).filter(|&x| x != r).collect();
            assert_eq!(sorted, expect);
        }
    }

    #[test]
    fn reduce_completes_all_roots() {
        for n in [2usize, 3, 8, 17, 64] {
            let members: Vec<usize> = (0..n).collect();
            for root in [0, n / 2, n - 1] {
                let s = scripts_for(n, |r| reduce_binomial(&members, r, root, 1024, 5));
                assert!(run_abstract(&s), "reduce n={n} root={root}");
            }
        }
    }

    #[test]
    fn reduce_root_sends_nothing() {
        let members: Vec<usize> = (0..16).collect();
        let ops = reduce_binomial(&members, 3, 3, 64, 9);
        assert!(ops.iter().all(|o| matches!(o, Op::Recv { .. })));
    }

    #[test]
    fn scatter_and_gather_complete() {
        for n in [2usize, 8, 32] {
            let members: Vec<usize> = (0..n).collect();
            for root in [0, n - 1] {
                let s = scripts_for(n, |r| scatter(&members, r, root, 4096, 5));
                assert!(run_abstract(&s), "scatter n={n} root={root}");
                let g = scripts_for(n, |r| gather(&members, r, root, 4096, 5));
                assert!(run_abstract(&g), "gather n={n} root={root}");
            }
        }
    }

    #[test]
    fn allgathers_complete() {
        for n in [2usize, 4, 16] {
            let members: Vec<usize> = (0..n).collect();
            let ring = scripts_for(n, |r| allgather_ring(&members, r, 1024, 5));
            assert!(run_abstract(&ring), "ring n={n}");
            let rd = scripts_for(n, |r| allgather_rd(&members, r, 1024, 5));
            assert!(run_abstract(&rd), "rd n={n}");
        }
        // Odd counts work for the ring.
        let members: Vec<usize> = (0..5).collect();
        let ring = scripts_for(5, |r| allgather_ring(&members, r, 1024, 5));
        assert!(run_abstract(&ring));
    }

    #[test]
    fn allgather_rd_moves_fewer_messages_than_ring() {
        let members: Vec<usize> = (0..16).collect();
        let ring_msgs = allgather_ring(&members, 0, 1024, 5).len();
        let rd_msgs = allgather_rd(&members, 0, 1024, 5).len();
        assert_eq!(ring_msgs, 15);
        assert_eq!(rd_msgs, 4);
    }

    #[test]
    fn hierarchical_allreduce_completes_and_crosses_twice() {
        for (n, split) in [(8usize, 4usize), (16, 8), (64, 32)] {
            let s = scripts_for(n, |r| allreduce_hierarchical(n, r, split, 8, 7));
            assert!(run_abstract(&s), "hier allreduce n={n}");
        }
        // Exactly one cross-WAN exchange per leader (2 WAN messages total).
        let n = 16;
        let split = 8;
        let mut wan = 0;
        for r in 0..n {
            for op in allreduce_hierarchical(n, r, split, 8, 7) {
                match op {
                    Op::Send { to, .. } if (r < split) != (to < split) => wan += 1,
                    Op::Exchange { to, .. } if (r < split) != (to < split) => wan += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(wan, 2, "one leader exchange each way");
    }

    #[test]
    fn flat_allreduce_crosses_wan_per_rank() {
        let n = 16;
        let split = 8;
        let mut wan = 0;
        for r in 0..n {
            for op in allreduce(n, r, 8, 7) {
                if let Op::Exchange { to, .. } = op {
                    if (r < split) != (to < split) {
                        wan += 1;
                    }
                }
            }
        }
        assert_eq!(wan, n, "recursive doubling crosses once per rank");
    }

    #[test]
    fn tag_alloc_strides() {
        let mut t = TagAlloc::new(1000);
        assert_eq!(t.take(), 1000);
        assert_eq!(t.take(), 1000 + TAG_STRIDE);
    }

    #[test]
    fn adaptive_bcast_picks_algorithm() {
        let members: Vec<usize> = (0..8).collect();
        // Small: binomial (root sends log n messages max).
        let small = bcast(&members, 0, 0, 64, 5);
        assert!(small.len() <= 3);
        // Large: scatter+ring (root does scatter sends + 7 ring exchanges).
        let large = bcast(&members, 0, 0, 1 << 20, 5);
        assert!(large.iter().any(|o| matches!(o, Op::Exchange { .. })));
    }
}
