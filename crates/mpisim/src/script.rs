//! SPMD operation scripts: each rank executes a flat list of operations,
//! advancing as its nonblocking requests complete.

use crate::proto::{P2p, ReqId};
use ibfabric::hca::HcaCore;
use simcore::{Ctx, Dur, Time};
use std::collections::HashSet;

/// Timer token the owning ULP must route to [`ScriptRunner::on_compute_done`].
pub const TOKEN_COMPUTE: u64 = 1;

/// One operation in a rank's script. Collectives are pre-expanded into these
/// by [`crate::coll`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Blocking send: completes when the buffer is reusable (eager: after
    /// the local copy; rendezvous: when the transfer is ACKed).
    Send {
        /// Destination rank.
        to: usize,
        /// Payload bytes.
        len: u32,
        /// Match tag.
        tag: u32,
    },
    /// Blocking receive.
    Recv {
        /// Source rank.
        from: usize,
        /// Match tag.
        tag: u32,
    },
    /// `count` isends followed by a waitall (the OSU bandwidth-test window).
    SendWindow {
        /// Destination rank.
        to: usize,
        /// Payload bytes per message.
        len: u32,
        /// Match tag.
        tag: u32,
        /// Messages in the window.
        count: u32,
    },
    /// `count` irecvs followed by a waitall.
    RecvWindow {
        /// Source rank.
        from: usize,
        /// Match tag.
        tag: u32,
        /// Messages in the window.
        count: u32,
    },
    /// `count` isends to `to` **and** `count` irecvs from `from`, issued
    /// together then waited together — the deadlock-free exchange used by
    /// collectives and the bidirectional bandwidth test.
    Exchange {
        /// Destination rank for the sends.
        to: usize,
        /// Source rank for the receives.
        from: usize,
        /// Payload bytes per message.
        len: u32,
        /// Match tag.
        tag: u32,
        /// Messages per direction.
        count: u32,
    },
    /// Issue every child operation's requests at once, then wait for all of
    /// them (children must be request-issuing ops, not `Compute`/`Mark`).
    /// Used for alltoall, where MVAPICH2 posts all isend/irecv pairs and
    /// waits — overlapping every rendezvous handshake.
    Concurrent(Vec<Op>),
    /// Spin the CPU for a fixed time (models application compute phases).
    Compute {
        /// Virtual compute time.
        dur: Dur,
    },
    /// Record the current virtual time under `id` (benchmark timestamps).
    Mark {
        /// Marker id.
        id: u32,
    },
}

/// Executes a rank's script against the protocol engine.
pub struct ScriptRunner {
    ops: Vec<Op>,
    pc: usize,
    waiting: HashSet<ReqId>,
    computing: bool,
    /// Timestamps recorded by [`Op::Mark`], in execution order.
    pub marks: Vec<(u32, Time)>,
}

impl ScriptRunner {
    /// Runner for the given operation list.
    pub fn new(ops: Vec<Op>) -> Self {
        ScriptRunner {
            ops,
            pc: 0,
            waiting: HashSet::new(),
            computing: false,
            marks: Vec::new(),
        }
    }

    /// True once every operation has completed.
    pub fn finished(&self) -> bool {
        self.pc >= self.ops.len() && self.waiting.is_empty() && !self.computing
    }

    /// Index of the next unissued operation (diagnostics).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Timestamp recorded for marker `id` (first occurrence).
    pub fn mark(&self, id: u32) -> Option<Time> {
        self.marks.iter().find(|(m, _)| *m == id).map(|&(_, t)| t)
    }

    /// All timestamps recorded for marker `id`.
    pub fn marks_for(&self, id: u32) -> Vec<Time> {
        self.marks
            .iter()
            .filter(|(m, _)| *m == id)
            .map(|&(_, t)| t)
            .collect()
    }

    /// A request completed.
    pub fn note_done(&mut self, req: ReqId) {
        let was = self.waiting.remove(&req);
        debug_assert!(was, "completion for request we are not waiting on");
    }

    /// The [`Op::Compute`] timer fired.
    pub fn on_compute_done(&mut self) {
        debug_assert!(self.computing);
        self.computing = false;
    }

    /// Issue operations until one blocks or the script ends.
    pub fn advance(&mut self, proto: &mut P2p, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        while self.waiting.is_empty() && !self.computing && self.pc < self.ops.len() {
            let op = self.ops[self.pc].clone();
            self.pc += 1;
            match op {
                Op::Compute { dur } => {
                    self.computing = true;
                    ctx.timer(dur, TOKEN_COMPUTE);
                }
                Op::Mark { id } => {
                    self.marks.push((id, ctx.now()));
                }
                other => self.issue(proto, hca, ctx, other),
            }
        }
    }

    /// Issue a request-bearing op's requests into the waiting set.
    fn issue(&mut self, proto: &mut P2p, hca: &mut HcaCore, ctx: &mut Ctx<'_>, op: Op) {
        match op {
            Op::Send { to, len, tag } => {
                let r = proto.isend(hca, ctx, to, tag, len);
                self.waiting.insert(r);
            }
            Op::Recv { from, tag } => {
                let r = proto.irecv(hca, ctx, from, tag);
                self.waiting.insert(r);
            }
            Op::SendWindow {
                to,
                len,
                tag,
                count,
            } => {
                for _ in 0..count {
                    let r = proto.isend(hca, ctx, to, tag, len);
                    self.waiting.insert(r);
                }
            }
            Op::RecvWindow { from, tag, count } => {
                for _ in 0..count {
                    let r = proto.irecv(hca, ctx, from, tag);
                    self.waiting.insert(r);
                }
            }
            Op::Exchange {
                to,
                from,
                len,
                tag,
                count,
            } => {
                for _ in 0..count {
                    let r = proto.irecv(hca, ctx, from, tag);
                    self.waiting.insert(r);
                    let s = proto.isend(hca, ctx, to, tag, len);
                    self.waiting.insert(s);
                }
            }
            Op::Concurrent(children) => {
                for child in children {
                    assert!(
                        !matches!(
                            child,
                            Op::Compute { .. } | Op::Mark { .. } | Op::Concurrent(_)
                        ),
                        "Concurrent children must be request-issuing ops"
                    );
                    self.issue(proto, hca, ctx, child);
                }
            }
            Op::Compute { .. } | Op::Mark { .. } => unreachable!("handled in advance"),
        }
    }
}

/// Repeat a block of ops `times` times (flattened).
pub fn repeat(body: &[Op], times: usize) -> Vec<Op> {
    let mut v = Vec::with_capacity(body.len() * times);
    for _ in 0..times {
        v.extend_from_slice(body);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_flattens() {
        let body = [
            Op::Mark { id: 1 },
            Op::Compute {
                dur: Dur::from_us(1),
            },
        ];
        let v = repeat(&body, 3);
        assert_eq!(v.len(), 6);
        assert_eq!(v[4], Op::Mark { id: 1 });
    }

    #[test]
    fn finished_accounts_for_waits() {
        let mut r = ScriptRunner::new(vec![]);
        assert!(r.finished());
        r.waiting.insert(7);
        assert!(!r.finished());
        r.note_done(7);
        assert!(r.finished());
    }
}
