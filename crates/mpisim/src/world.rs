//! MPI job construction: lays ranks across the cluster-of-clusters topology
//! and wires the QP mesh.

use crate::proto::{MpiConfig, P2p, TOKEN_COPY, TOKEN_FLUSH};
use crate::script::{Op, ScriptRunner, TOKEN_COMPUTE};
use ibfabric::fabric::{EngineProfile, Fabric, FabricBuilder, NodeHandle};
use ibfabric::hca::{HcaConfig, HcaCore};
use ibfabric::link::LinkConfig;
use ibfabric::perftest::rc_qp_pair;
use ibfabric::ulp::Ulp;
use ibfabric::verbs::Completion;
use obsidian::LongbowPair;
use simcore::{Ctx, Dur, Time};

/// One MPI rank: protocol engine + script interpreter, running as a ULP.
pub struct MpiProcess {
    /// This process's rank.
    pub rank: usize,
    /// Point-to-point engine.
    pub proto: P2p,
    /// Script interpreter.
    pub runner: ScriptRunner,
    finished_at: Option<Time>,
}

impl MpiProcess {
    /// A rank executing `ops`.
    pub fn new(rank: usize, nranks: usize, cfg: MpiConfig, ops: Vec<Op>) -> Self {
        MpiProcess {
            rank,
            proto: P2p::new(rank, nranks, cfg),
            runner: ScriptRunner::new(ops),
            finished_at: None,
        }
    }

    /// Virtual time at which this rank's script completed.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    fn pump(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        for ev in self.proto.take_events() {
            self.runner.note_done(ev.req);
        }
        self.runner.advance(&mut self.proto, hca, ctx);
        if self.runner.finished() && self.finished_at.is_none() {
            self.finished_at = Some(ctx.now());
        }
    }
}

impl Ulp for MpiProcess {
    fn start(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        self.proto.setup_recv_pools(hca);
        self.pump(hca, ctx);
    }

    fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
        self.proto.on_completion(hca, ctx, c);
        self.pump(hca, ctx);
    }

    fn on_timer(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_COMPUTE => self.runner.on_compute_done(),
            TOKEN_COPY | TOKEN_FLUSH => self.proto.on_timer(hca, ctx, token),
            other => panic!("unknown timer token {other}"),
        }
        self.pump(hca, ctx);
    }
}

/// Where a job's ranks live and how far apart the clusters are.
#[derive(Copy, Clone, Debug)]
pub struct JobSpec {
    /// Ranks on cluster A (ranks `0..ranks_a`).
    pub ranks_a: usize,
    /// Ranks on cluster B (ranks `ranks_a..ranks_a+ranks_b`); 0 = single
    /// cluster, no WAN link.
    pub ranks_b: usize,
    /// One-way WAN wire delay emulated by the Longbow pair.
    pub delay: Dur,
    /// MPI library configuration.
    pub mpi: MpiConfig,
    /// Host adapter parameters.
    pub hca: HcaConfig,
    /// Engine seed.
    pub seed: u64,
    /// Engine execution profile (coalescing, partition mode).
    pub profile: EngineProfile,
}

impl JobSpec {
    /// A two-cluster job with `ranks_a + ranks_b` ranks and default stacks.
    pub fn two_clusters(ranks_a: usize, ranks_b: usize, delay: Dur) -> Self {
        JobSpec {
            ranks_a,
            ranks_b,
            delay,
            mpi: MpiConfig::default(),
            hca: HcaConfig::default(),
            seed: 42,
            profile: EngineProfile::default(),
        }
    }

    /// Total rank count.
    pub fn nranks(&self) -> usize {
        self.ranks_a + self.ranks_b
    }

    /// Replace the MPI configuration.
    pub fn with_mpi(mut self, mpi: MpiConfig) -> Self {
        self.mpi = mpi;
        self
    }

    /// Replace the engine execution profile.
    pub fn with_profile(mut self, profile: EngineProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Replace the engine seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A built MPI job, ready to run.
pub struct MpiJob {
    /// The underlying fabric (exposes the engine).
    pub fabric: Fabric,
    nodes: Vec<NodeHandle>,
}

impl MpiJob {
    /// Build the job: one node per rank, block rank distribution across the
    /// two clusters, Longbow pair between the cluster switches, full RC QP
    /// mesh. `program(rank, nranks)` produces each rank's script.
    pub fn build<F: Fn(usize, usize) -> Vec<Op>>(spec: JobSpec, program: F) -> Self {
        let n = spec.nranks();
        assert!(n >= 1, "need at least one rank");
        let mut b = FabricBuilder::with_profile(spec.seed, spec.profile);
        let mut nodes = Vec::with_capacity(n);
        for rank in 0..n {
            let ops = program(rank, n);
            let ulp = Box::new(MpiProcess::new(rank, n, spec.mpi, ops));
            nodes.push(b.add_hca(spec.hca, ulp));
        }
        let sw_a = b.add_switch();
        for node in nodes.iter().take(spec.ranks_a) {
            b.link(node.actor, sw_a, LinkConfig::ddr_lan());
        }
        if spec.ranks_b > 0 {
            let sw_b = b.add_switch();
            for node in nodes.iter().skip(spec.ranks_a) {
                b.link(node.actor, sw_b, LinkConfig::ddr_lan());
            }
            LongbowPair::insert(&mut b, sw_a, sw_b, spec.delay);
        }
        let mut fabric = b.finish();
        // Full RC mesh: one connected QP pair per rank pair.
        for i in 0..n {
            for j in (i + 1)..n {
                let (qi, qj) = rc_qp_pair(&mut fabric, nodes[i], nodes[j], spec.mpi.qp);
                fabric
                    .hca_mut(nodes[i])
                    .ulp_mut::<MpiProcess>()
                    .proto
                    .set_peer_qp(j, qi);
                fabric
                    .hca_mut(nodes[j])
                    .ulp_mut::<MpiProcess>()
                    .proto
                    .set_peer_qp(i, qj);
            }
        }
        MpiJob { fabric, nodes }
    }

    /// Run to completion; returns the final virtual time and asserts every
    /// rank's script finished (deadlock check).
    pub fn run(&mut self) -> Time {
        let t = self.fabric.run();
        for (rank, node) in self.nodes.iter().enumerate() {
            let p = self.fabric.hca(*node).ulp::<MpiProcess>();
            assert!(
                p.runner.finished(),
                "rank {rank} deadlocked at op {} of its script",
                p.runner.pc()
            );
        }
        t
    }

    /// Borrow a rank's process state (marks, counters) after a run.
    pub fn process(&self, rank: usize) -> &MpiProcess {
        self.fabric.hca(self.nodes[rank]).ulp::<MpiProcess>()
    }

    /// The job's communication matrix: `matrix[i][j]` = payload bytes rank
    /// `i` sent to rank `j` (the profiling view the paper uses to explain
    /// application WAN behaviour).
    pub fn traffic_matrix(&self) -> Vec<Vec<u64>> {
        (0..self.nodes.len())
            .map(|r| self.process(r).proto.bytes_to_peers().to_vec())
            .collect()
    }

    /// Bytes that crossed the WAN link (sender and receiver on different
    /// clusters), given the rank split.
    pub fn wan_bytes(&self, split: usize) -> u64 {
        self.traffic_matrix()
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .filter(move |(j, _)| (i < split) != (*j < split))
                    .map(|(_, &b)| b)
            })
            .sum()
    }

    /// Latest finish time across ranks (job completion).
    pub fn job_finished_at(&self) -> Time {
        (0..self.nodes.len())
            .filter_map(|r| self.process(r).finished_at())
            .max()
            .unwrap_or(Time::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::repeat;

    #[test]
    fn two_rank_ping_pong_runs() {
        let spec = JobSpec::two_clusters(1, 1, Dur::from_us(10));
        let mut job = MpiJob::build(spec, |rank, _| {
            let body = if rank == 0 {
                vec![
                    Op::Send {
                        to: 1,
                        len: 8,
                        tag: 1,
                    },
                    Op::Recv { from: 1, tag: 2 },
                ]
            } else {
                vec![
                    Op::Recv { from: 0, tag: 1 },
                    Op::Send {
                        to: 0,
                        len: 8,
                        tag: 2,
                    },
                ]
            };
            repeat(&body, 10)
        });
        let t = job.run();
        // 10 round trips across a 10 us WAN: at least 200 us.
        assert!(t >= Time::from_us(200), "finished too fast: {t}");
        assert_eq!(job.process(0).proto.msgs_sent(), 10);
    }

    #[test]
    fn rendezvous_send_crosses_threshold() {
        let spec = JobSpec::two_clusters(1, 1, Dur::ZERO);
        let mut job = MpiJob::build(spec, |rank, _| {
            if rank == 0 {
                vec![Op::Send {
                    to: 1,
                    len: 1 << 20,
                    tag: 1,
                }]
            } else {
                vec![Op::Recv { from: 0, tag: 1 }]
            }
        });
        job.run();
        assert_eq!(job.process(1).proto.msgs_sent(), 0);
        assert_eq!(job.process(0).proto.bytes_sent(), 1 << 20);
    }

    #[test]
    fn single_cluster_without_wan() {
        let spec = JobSpec::two_clusters(4, 0, Dur::ZERO);
        let mut job = MpiJob::build(spec, |rank, n| crate::coll::barrier(n, rank, 10));
        job.run();
        // Note: the engine's final event is the (idle) RC retransmission
        // timer, so measure the job's completion time instead.
        let t = job.job_finished_at();
        assert!(t < Time::from_ms(1), "LAN barrier should be fast: {t}");
    }

    #[test]
    fn compute_op_advances_time() {
        let spec = JobSpec::two_clusters(1, 0, Dur::ZERO);
        let mut job = MpiJob::build(spec, |_, _| {
            vec![
                Op::Mark { id: 0 },
                Op::Compute {
                    dur: Dur::from_ms(3),
                },
                Op::Mark { id: 1 },
            ]
        });
        job.run();
        let p = job.process(0);
        let d = p.runner.mark(1).unwrap() - p.runner.mark(0).unwrap();
        assert_eq!(d, Dur::from_ms(3));
    }

    #[test]
    fn collective_bcast_end_to_end() {
        // 8+8 ranks, 128 KB bcast: hierarchical must beat flat at 1 ms delay.
        fn bcast_time(hier: bool) -> Dur {
            let spec = JobSpec::two_clusters(8, 8, Dur::from_ms(1));
            let mut job = MpiJob::build(spec, |rank, n| {
                let mut ops = vec![Op::Mark { id: 0 }];
                if hier {
                    ops.extend(crate::coll::bcast_hierarchical(n, rank, 0, 8, 131072, 100));
                } else {
                    let members: Vec<usize> = (0..n).collect();
                    ops.extend(crate::coll::bcast(&members, rank, 0, 131072, 100));
                }
                ops.push(Op::Mark { id: 1 });
                ops
            });
            job.run();
            // Completion = when the slowest rank finishes.
            (0..16)
                .map(|r| {
                    let p = job.process(r);
                    p.runner.mark(1).unwrap() - p.runner.mark(0).unwrap()
                })
                .max()
                .unwrap()
        }
        let flat = bcast_time(false);
        let hier = bcast_time(true);
        assert!(
            hier < flat,
            "hierarchical ({hier}) must beat flat ({flat}) at 1 ms delay"
        );
    }

    #[test]
    fn traffic_matrix_counts_wan_bytes() {
        let spec = JobSpec::two_clusters(2, 2, Dur::from_us(10));
        let mut job = MpiJob::build(spec, |rank, _| {
            if rank == 0 {
                vec![
                    Op::Send {
                        to: 1,
                        len: 100,
                        tag: 1,
                    }, // intra-cluster
                    Op::Send {
                        to: 2,
                        len: 200,
                        tag: 2,
                    }, // WAN
                ]
            } else if rank == 1 {
                vec![Op::Recv { from: 0, tag: 1 }]
            } else if rank == 2 {
                vec![Op::Recv { from: 0, tag: 2 }]
            } else {
                vec![]
            }
        });
        job.run();
        let m = job.traffic_matrix();
        assert_eq!(m[0][1], 100);
        assert_eq!(m[0][2], 200);
        assert_eq!(job.wan_bytes(2), 200);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn deadlock_is_detected() {
        let spec = JobSpec::two_clusters(2, 0, Dur::ZERO);
        let mut job = MpiJob::build(spec, |rank, _| {
            if rank == 0 {
                vec![Op::Recv { from: 1, tag: 9 }]
            } else {
                vec![]
            }
        });
        job.run();
    }
}
