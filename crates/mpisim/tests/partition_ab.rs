//! Serial-vs-partitioned A/B for the MPI stack: the domain engine must be
//! invisible in every result, across the paper's full delay sweep (the d=0
//! point has the narrowest lookahead and stresses the window protocol most).
//!
//! The engine choice rides on each `JobSpec`'s [`EngineProfile`] — no
//! process-global mode, so the A/B legs cannot interfere with each other or
//! with concurrently running tests.

use ibfabric::fabric::EngineProfile;
use mpisim::bench::{osu_bw, wan_pair_with};
use mpisim::proto::MpiConfig;
use simcore::Dur;

fn bw(delay_us: u64, size: u32, profile: EngineProfile) -> f64 {
    let spec = wan_pair_with(Dur::from_us(delay_us), MpiConfig::default()).with_profile(profile);
    osu_bw(spec, size, 8, 2)
}

#[test]
fn osu_bw_matches_serial_across_delays() {
    for d in [0, 10, 100, 1000, 10000] {
        let serial = bw(d, 4096, EngineProfile::serial());
        let partitioned = bw(d, 4096, EngineProfile::forced());
        assert_eq!(serial, partitioned, "osu_bw diverged at {d}us delay");
    }
}

#[test]
fn osu_bw_rendezvous_sizes_match_serial() {
    for (d, size, window) in [
        (0, 65536, 64),
        (10000, 65536, 64),
        (10000, 1 << 20, 8),
        (10000, 4 << 20, 2),
    ] {
        let spec = wan_pair_with(Dur::from_us(d), MpiConfig::default())
            .with_profile(EngineProfile::serial());
        let serial = osu_bw(spec, size, window, 3);
        let spec = wan_pair_with(Dur::from_us(d), MpiConfig::default())
            .with_profile(EngineProfile::forced());
        let partitioned = osu_bw(spec, size, window, 3);
        assert_eq!(serial, partitioned, "osu_bw diverged at {d}us/{size}B");
    }
}
