//! Serial-vs-partitioned A/B for the MPI stack: the domain engine must be
//! invisible in every result, across the paper's full delay sweep (the d=0
//! point has the narrowest lookahead and stresses the window protocol most).

use ibfabric::fabric::{partition_mode, set_partition_mode, PartitionMode};
use mpisim::bench::{osu_bw, wan_pair_with};
use mpisim::proto::MpiConfig;
use simcore::Dur;

/// Restore the previous partition mode on drop (panic-safe).
struct ModeGuard(PartitionMode);

impl ModeGuard {
    fn set(mode: PartitionMode) -> Self {
        let prev = partition_mode();
        set_partition_mode(mode);
        ModeGuard(prev)
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        set_partition_mode(self.0);
    }
}

fn bw(delay_us: u64, size: u32, mode: PartitionMode) -> f64 {
    let _m = ModeGuard::set(mode);
    let spec = wan_pair_with(Dur::from_us(delay_us), MpiConfig::default());
    osu_bw(spec, size, 8, 2)
}

#[test]
fn osu_bw_matches_serial_across_delays() {
    for d in [0, 10, 100, 1000, 10000] {
        let serial = bw(d, 4096, PartitionMode::Off);
        let partitioned = bw(d, 4096, PartitionMode::Force);
        assert_eq!(serial, partitioned, "osu_bw diverged at {d}us delay");
    }
}

#[test]
fn osu_bw_rendezvous_sizes_match_serial() {
    for (d, size, window) in [
        (0, 65536, 64),
        (10000, 65536, 64),
        (10000, 1 << 20, 8),
        (10000, 4 << 20, 2),
    ] {
        let _m = ModeGuard::set(PartitionMode::Off);
        let spec = wan_pair_with(Dur::from_us(d), MpiConfig::default());
        let serial = osu_bw(spec, size, window, 3);
        drop(_m);
        let _m = ModeGuard::set(PartitionMode::Force);
        let spec = wan_pair_with(Dur::from_us(d), MpiConfig::default());
        let partitioned = osu_bw(spec, size, window, 3);
        assert_eq!(serial, partitioned, "osu_bw diverged at {d}us/{size}B");
    }
}
