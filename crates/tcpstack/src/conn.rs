//! The TCP connection state machine.

/// TCP/IP header bytes per segment (IPv4 20 + TCP 20 + options 12).
pub const TCP_IP_HEADER: u32 = 52;

/// The "default" socket-buffer / window size used when the experiments do
/// not override it — the paper notes the default window is ">1M" and shows
/// it performing well in most cases.
pub const DEFAULT_WINDOW: u64 = 1 << 20;

/// Connection parameters.
#[derive(Copy, Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (bytes of payload per segment). Derive it from
    /// the carrier MTU with [`TcpConfig::for_mtu`].
    pub mss: u32,
    /// Flow-control window: maximum un-ACKed bytes in flight. This is the
    /// "TCP window size" swept in Figure 6(a).
    pub window: u64,
    /// Initial congestion window in segments (slow start begins here).
    pub init_cwnd_segments: u64,
    /// Slow-start threshold in bytes: below it cwnd doubles per RTT, above
    /// it grows linearly (congestion avoidance). Defaults to half the
    /// flow-control window, like a fresh Linux connection bounded by its
    /// socket buffer.
    pub ssthresh: u64,
    /// Send a pure ACK after this many data segments (2 = standard
    /// delayed-ACK-off behaviour).
    pub ack_every: u32,
}

impl TcpConfig {
    /// Config for a carrier with the given link MTU (payload = MTU − 52).
    pub fn for_mtu(mtu: u32) -> Self {
        assert!(mtu > TCP_IP_HEADER, "MTU too small for TCP/IP headers");
        TcpConfig {
            mss: mtu - TCP_IP_HEADER,
            window: DEFAULT_WINDOW,
            init_cwnd_segments: 10,
            ssthresh: DEFAULT_WINDOW / 2,
            ack_every: 2,
        }
    }

    /// Override the flow-control window (ssthresh follows at half of it).
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window;
        self.ssthresh = window / 2;
        self
    }
}

/// A TCP segment as handed to the carrier. `len` is payload bytes; the wire
/// size adds [`TCP_IP_HEADER`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TcpSegment {
    /// First sequence number covered by this segment.
    pub seq: u64,
    /// Payload length (0 for a pure ACK).
    pub len: u32,
    /// Cumulative acknowledgment (next byte expected from the peer).
    pub ack: u64,
}

impl TcpSegment {
    /// Bytes this segment occupies on an IP link.
    pub fn wire_bytes(&self) -> u64 {
        self.len as u64 + TCP_IP_HEADER as u64
    }
    /// True if this segment carries no payload.
    pub fn is_pure_ack(&self) -> bool {
        self.len == 0
    }
}

/// One direction-pair TCP connection endpoint.
///
/// Drive it with [`TcpConn::app_send`] (application enqueues bytes),
/// [`TcpConn::poll_tx`] (carrier drains eligible segments), and
/// [`TcpConn::on_segment`] (carrier delivers a peer segment). The endpoint
/// never retransmits: the carrier is lossless and ordered.
#[derive(Debug, Clone)]
pub struct TcpConn {
    cfg: TcpConfig,
    // Send side.
    snd_una: u64,
    snd_nxt: u64,
    app_bytes: u64,
    cwnd: u64,
    // Receive side.
    rcv_nxt: u64,
    segs_since_ack: u32,
    ack_pending: bool,
    delivered: u64,
}

impl TcpConn {
    /// Fresh established connection (the model skips the three-way handshake;
    /// benchmark connections are warm).
    pub fn new(cfg: TcpConfig) -> Self {
        TcpConn {
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            app_bytes: 0,
            cwnd: cfg.init_cwnd_segments * cfg.mss as u64,
            rcv_nxt: 0,
            segs_since_ack: 0,
            ack_pending: false,
            delivered: 0,
        }
    }

    /// Configuration in effect.
    pub fn config(&self) -> TcpConfig {
        self.cfg
    }

    /// Application enqueues `bytes` for transmission.
    pub fn app_send(&mut self, bytes: u64) {
        self.app_bytes += bytes;
    }

    /// Bytes the peer application has been handed in order so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Bytes acknowledged by the peer (send-side progress).
    pub fn acked(&self) -> u64 {
        self.snd_una
    }

    /// Un-ACKed bytes currently in flight.
    pub fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current effective window (min of flow-control window and cwnd).
    pub fn effective_window(&self) -> u64 {
        self.cfg.window.min(self.cwnd)
    }

    /// True if the sender still has bytes queued or in flight.
    pub fn send_pending(&self) -> bool {
        self.snd_una < self.app_bytes
    }

    /// Yield the next segment eligible for transmission, if any: data while
    /// the window allows, else a pending pure ACK.
    pub fn poll_tx(&mut self) -> Option<TcpSegment> {
        let window_edge = self.snd_una + self.effective_window();
        let limit = self.app_bytes.min(window_edge);
        if self.snd_nxt < limit {
            let len = (limit - self.snd_nxt).min(self.cfg.mss as u64) as u32;
            let seg = TcpSegment {
                seq: self.snd_nxt,
                len,
                ack: self.rcv_nxt,
            };
            self.snd_nxt += len as u64;
            // Data segments piggyback the ACK.
            self.segs_since_ack = 0;
            self.ack_pending = false;
            return Some(seg);
        }
        if self.ack_pending {
            self.ack_pending = false;
            self.segs_since_ack = 0;
            return Some(TcpSegment {
                seq: self.snd_nxt,
                len: 0,
                ack: self.rcv_nxt,
            });
        }
        None
    }

    /// Deliver a peer segment; returns bytes newly handed to the application.
    ///
    /// After calling this, drain [`TcpConn::poll_tx`] — the ACK may have
    /// opened the window, and received data may require a pure ACK.
    pub fn on_segment(&mut self, seg: TcpSegment) -> u64 {
        // ACK processing (cumulative).
        if seg.ack > self.snd_una {
            let acked = seg.ack - self.snd_una;
            self.snd_una = seg.ack;
            // No loss ever occurs on the lossless fabric, so the flow-
            // control window is the final bound; cwnd still ramps
            // realistically: exponential in slow start, then one MSS per
            // RTT's worth of ACKs in congestion avoidance.
            let mss = self.cfg.mss as u64;
            let grow = if self.cwnd < self.cfg.ssthresh {
                acked.min(mss) // slow start: +MSS per ACK
            } else {
                // Congestion avoidance: +MSS per cwnd of acked bytes.
                (acked.min(mss) * mss / self.cwnd.max(1)).max(1)
            };
            self.cwnd = self
                .cwnd
                .saturating_add(grow)
                .min(self.cfg.window.max(self.cwnd));
        }
        // Data processing (carrier is in-order and lossless).
        let mut newly = 0;
        if seg.len > 0 {
            debug_assert_eq!(seg.seq, self.rcv_nxt, "carrier must preserve order");
            self.rcv_nxt += seg.len as u64;
            self.delivered += seg.len as u64;
            newly = seg.len as u64;
            self.segs_since_ack += 1;
            if self.segs_since_ack >= self.cfg.ack_every {
                self.ack_pending = true;
            }
        }
        newly
    }

    /// Force a pure ACK on the next [`TcpConn::poll_tx`] (used by carriers at
    /// quiescence to flush the final partial-delayed ACK).
    pub fn force_ack(&mut self) {
        if self.segs_since_ack > 0 {
            self.ack_pending = true;
        }
    }

    /// True if data segments have arrived that no ACK has covered yet — the
    /// condition under which a real stack arms the delayed-ACK timer.
    pub fn ack_outstanding(&self) -> bool {
        self.segs_since_ack > 0 || self.ack_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::for_mtu(2048)
    }

    /// Run both directions to quiescence with an in-memory lossless pipe.
    fn pump(a: &mut TcpConn, b: &mut TcpConn) {
        loop {
            let mut progress = false;
            while let Some(s) = a.poll_tx() {
                progress = true;
                b.on_segment(s);
            }
            while let Some(s) = b.poll_tx() {
                progress = true;
                a.on_segment(s);
            }
            if !progress {
                a.force_ack();
                b.force_ack();
                if a.poll_tx().is_none() && b.poll_tx().is_none() {
                    break;
                }
                // force_ack produced something: feed it through.
                // (loop continues because poll_tx consumed it — redo)
            }
        }
        // Final ACK flush.
        a.force_ack();
        if let Some(s) = a.poll_tx() {
            b.on_segment(s);
        }
        b.force_ack();
        if let Some(s) = b.poll_tx() {
            a.on_segment(s);
        }
    }

    #[test]
    fn mss_from_mtu() {
        assert_eq!(cfg().mss, 2048 - 52);
        assert_eq!(TcpConfig::for_mtu(65536).mss, 65484);
    }

    #[test]
    fn transfers_all_bytes() {
        let mut a = TcpConn::new(cfg());
        let mut b = TcpConn::new(cfg());
        a.app_send(1_000_000);
        pump(&mut a, &mut b);
        assert_eq!(b.delivered(), 1_000_000);
        assert_eq!(a.acked(), 1_000_000);
        assert!(!a.send_pending());
    }

    #[test]
    fn window_bounds_inflight() {
        let mut a = TcpConn::new(cfg().with_window(10_000));
        a.cwnd = u64::MAX / 2; // isolate the flow-control window
        a.app_send(1_000_000);
        let mut sent = 0;
        while let Some(s) = a.poll_tx() {
            sent += s.len as u64;
        }
        assert!(sent <= 10_000, "sent {sent}");
        assert_eq!(a.inflight(), sent);
    }

    #[test]
    fn slow_start_limits_initial_burst() {
        let mut a = TcpConn::new(cfg());
        a.app_send(10_000_000);
        let mut burst = 0;
        while let Some(s) = a.poll_tx() {
            burst += s.len as u64;
        }
        // Initial flight bounded by init cwnd (10 segments).
        assert_eq!(burst, 10 * (2048 - 52));
    }

    #[test]
    fn congestion_avoidance_slows_growth_past_ssthresh() {
        let mut cfg = cfg().with_window(1 << 20);
        cfg.init_cwnd_segments = 1; // start inside slow start
        cfg.ssthresh = 4 * cfg.mss as u64;
        let mut a = TcpConn::new(cfg);
        a.app_send(10_000_000);
        // Ack segment-by-segment; record cwnd growth per ack below and
        // above ssthresh.
        let mut growth_below = 0u64;
        let mut growth_above = 0u64;
        for _ in 0..40 {
            let Some(seg) = a.poll_tx() else { break };
            let before = a.effective_window();
            let acked = seg.seq + seg.len as u64;
            a.on_segment(TcpSegment {
                seq: 0,
                len: 0,
                ack: acked,
            });
            let after = a.effective_window();
            if before < cfg.ssthresh {
                growth_below = growth_below.max(after - before);
            } else {
                growth_above = growth_above.max(after - before);
            }
        }
        assert!(growth_below >= cfg.mss as u64, "{growth_below}");
        assert!(
            growth_above < cfg.mss as u64 / 2,
            "CA growth per ack must be sub-MSS: {growth_above}"
        );
    }

    #[test]
    fn cwnd_grows_on_acks() {
        let mut a = TcpConn::new(cfg());
        let w0 = a.effective_window();
        a.app_send(1_000_000);
        let seg = a.poll_tx().unwrap();
        // Peer acks it.
        a.on_segment(TcpSegment {
            seq: 0,
            len: 0,
            ack: seg.seq + seg.len as u64,
        });
        assert!(a.effective_window() > w0);
    }

    #[test]
    fn acks_are_cumulative_and_piggybacked() {
        let mut a = TcpConn::new(cfg());
        let mut b = TcpConn::new(cfg());
        a.app_send(5000);
        b.app_send(5000);
        pump(&mut a, &mut b);
        assert_eq!(a.delivered(), 5000);
        assert_eq!(b.delivered(), 5000);
        assert_eq!(a.acked(), 5000);
        assert_eq!(b.acked(), 5000);
    }

    #[test]
    fn pure_ack_every_two_segments() {
        let mut rx = TcpConn::new(cfg());
        let mss = cfg().mss as u64;
        // Two back-to-back data segments trigger one pure ACK.
        rx.on_segment(TcpSegment {
            seq: 0,
            len: cfg().mss,
            ack: 0,
        });
        assert!(rx.poll_tx().is_none(), "no ACK after first segment");
        rx.on_segment(TcpSegment {
            seq: mss,
            len: cfg().mss,
            ack: 0,
        });
        let ack = rx.poll_tx().expect("ACK after second segment");
        assert!(ack.is_pure_ack());
        assert_eq!(ack.ack, 2 * mss);
    }

    #[test]
    fn ack_outstanding_tracks_unacked_arrivals() {
        let mut rx = TcpConn::new(cfg());
        assert!(!rx.ack_outstanding());
        rx.on_segment(TcpSegment {
            seq: 0,
            len: 100,
            ack: 0,
        });
        assert!(rx.ack_outstanding());
        rx.force_ack();
        let ack = rx.poll_tx().unwrap();
        assert!(ack.is_pure_ack());
        assert!(!rx.ack_outstanding());
    }

    #[test]
    fn zero_window_never_sends() {
        let mut a = TcpConn::new(cfg().with_window(0));
        a.app_send(100);
        assert!(a.poll_tx().is_none());
    }

    #[test]
    fn wire_bytes_include_headers() {
        let s = TcpSegment {
            seq: 0,
            len: 1000,
            ack: 0,
        };
        assert_eq!(s.wire_bytes(), 1052);
    }
}
