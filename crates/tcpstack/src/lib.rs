//! # tcpstack — sliding-window TCP model
//!
//! A byte-counting TCP state machine: sequence/ACK arithmetic, a configurable
//! flow-control window (the paper's Figure 6(a) knob), slow-start ramping,
//! MSS segmentation, and cumulative acknowledgments. It carries byte *counts*
//! rather than payloads — the underlying network (IPoIB over the simulated
//! IB fabric) is lossless and in-order, so no retransmission machinery is
//! required; what matters for the WAN study is exactly the window/RTT
//! throughput bound and the per-packet costs the MSS implies.
//!
//! The state machine is transport-agnostic: [`TcpConn::poll_tx`] yields
//! segments whenever the window allows, and the carrier (the `ipoib` crate)
//! decides when they physically leave. Parallel-stream experiments simply
//! instantiate several connections.
//!
//! ```
//! use tcpstack::{TcpConfig, TcpConn};
//!
//! let cfg = TcpConfig::for_mtu(2048).with_window(64 << 10);
//! let mut tx = TcpConn::new(cfg);
//! let mut rx = TcpConn::new(cfg);
//! tx.app_send(10_000);
//! // Lossless in-order carrier: shuttle segments until quiescent.
//! loop {
//!     let mut moved = false;
//!     while let Some(seg) = tx.poll_tx() { rx.on_segment(seg); moved = true; }
//!     while let Some(seg) = rx.poll_tx() { tx.on_segment(seg); moved = true; }
//!     if !moved { break; }
//! }
//! assert_eq!(rx.delivered(), 10_000);
//! ```

pub mod conn;

pub use conn::{TcpConfig, TcpConn, TcpSegment, DEFAULT_WINDOW, TCP_IP_HEADER};
