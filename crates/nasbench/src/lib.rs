//! # nasbench — NAS Parallel Benchmark communication skeletons
//!
//! Class-B-shaped communication skeletons for the three NAS codes the paper
//! runs across the WAN in Section 3.5 (Figure 12): **IS**, **FT**, and
//! **CG**, on 64 ranks split 32+32 across the two clusters.
//!
//! The paper attributes the WAN behaviour of each code entirely to its
//! message-size mix, which it obtained by profiling:
//!
//! * **IS** — bucket-count allreduce + key alltoall: ~100% large messages;
//!   bandwidth-bound, tolerant of delay.
//! * **FT** — transpose alltoall dominates (~83% large messages); tolerant.
//! * **CG** — row-group reductions and transpose exchanges, all messages
//!   under 1 MB with many small ones; latency-bound, degrades markedly.
//!
//! The skeletons reproduce those mixes over the simulated MPI. Problem
//! sizes are scaled down from true class B by a constant factor
//! ([`DATA_SCALE`]) to keep packet-level simulation tractable; the scaling
//! preserves each code's message-size *class* and its compute:communication
//! ratio, which are what determine the figure's shape.

use mpisim::coll::{self, TagAlloc};
use mpisim::script::Op;
use mpisim::world::{JobSpec, MpiJob};
use simcore::{Dur, Time};

/// Divisor applied to the true class-B data volumes (documented
/// substitution: keeps simulations packet-level yet fast; compute times are
/// scaled identically so ratios are preserved).
pub const DATA_SCALE: u32 = 4;

/// ```
/// use nasbench::{profile, NasBenchmark};
///
/// // CG's message mix is dominated by small messages (paper Section 3.5).
/// let p = profile(NasBenchmark::Cg, 2, 2);
/// assert!(p.small > 0.5);
/// ```
#[doc(hidden)]
pub struct _DoctestAnchor;

/// Which NAS code to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NasBenchmark {
    /// Integer Sort.
    Is,
    /// 3-D FFT.
    Ft,
    /// Conjugate Gradient.
    Cg,
    /// Embarrassingly Parallel (extension; not in the paper's Figure 12).
    Ep,
    /// MultiGrid V-cycle (extension; not in the paper's Figure 12).
    Mg,
}

impl NasBenchmark {
    /// The paper's three codes, figure order.
    pub const ALL: [NasBenchmark; 3] = [NasBenchmark::Is, NasBenchmark::Ft, NasBenchmark::Cg];

    /// All five implemented codes (paper's three + EP and MG extensions).
    pub const ALL_EXTENDED: [NasBenchmark; 5] = [
        NasBenchmark::Is,
        NasBenchmark::Ft,
        NasBenchmark::Cg,
        NasBenchmark::Ep,
        NasBenchmark::Mg,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NasBenchmark::Is => "IS",
            NasBenchmark::Ft => "FT",
            NasBenchmark::Cg => "CG",
            NasBenchmark::Ep => "EP",
            NasBenchmark::Mg => "MG",
        }
    }
}

/// Per-code class-B-shaped parameters (after [`DATA_SCALE`]).
#[derive(Copy, Clone, Debug)]
pub struct NasParams {
    /// Timed iterations.
    pub iterations: u32,
    /// Alltoall payload per rank pair (IS keys / FT transpose), bytes.
    pub alltoall_per_pair: u32,
    /// Allreduce payload (IS bucket counts / CG dot products), bytes.
    pub allreduce_len: u32,
    /// Allreduces per iteration.
    pub allreduces_per_iter: u32,
    /// Transpose point-to-point exchange length (CG), bytes; 0 = none.
    pub exchange_len: u32,
    /// Exchanges per iteration (CG).
    pub exchanges_per_iter: u32,
    /// MG-style multilevel halo exchange: finest-level message size
    /// (halves per level down to 64 B); 0 = none.
    pub halo_base_len: u32,
    /// Grid levels for the halo exchange (MG).
    pub halo_levels: u32,
    /// Compute time per iteration.
    pub compute_per_iter: Dur,
}

impl NasParams {
    /// Class-B-shaped parameters for `bench` on 64 ranks (scaled by
    /// [`DATA_SCALE`]).
    pub fn class_b(bench: NasBenchmark) -> Self {
        match bench {
            // IS class B: 2^25 keys * 4 B across 64 ranks => 2 MB/rank,
            // 32 KB per pair; 1 KB-bucket allreduce; light compute.
            NasBenchmark::Is => NasParams {
                iterations: 10,
                alltoall_per_pair: 32_768 / DATA_SCALE,
                allreduce_len: 4096,
                allreduces_per_iter: 1,
                exchange_len: 0,
                exchanges_per_iter: 0,
                halo_base_len: 0,
                halo_levels: 0,
                compute_per_iter: Dur::from_ms(60 / DATA_SCALE as u64),
            },
            // FT class B: 512x256x256 complex grid => 8 MB/rank transpose,
            // 128 KB per pair; heavy FFT compute.
            NasBenchmark::Ft => NasParams {
                iterations: 6,
                alltoall_per_pair: 524_288 / DATA_SCALE, // scaled 128 KB
                allreduce_len: 16,
                allreduces_per_iter: 1,
                exchange_len: 0,
                exchanges_per_iter: 0,
                halo_base_len: 0,
                halo_levels: 0,
                compute_per_iter: Dur::from_ms(400 / DATA_SCALE as u64),
            },
            // CG class B: 75000-row matrix on an 8x8 grid => ~75 KB row
            // segments exchanged with the transpose partner + two 8-byte
            // dot-product allreduces per iteration.
            NasBenchmark::Cg => NasParams {
                iterations: 25,
                alltoall_per_pair: 0,
                allreduce_len: 8,
                allreduces_per_iter: 2,
                exchange_len: 300_000 / DATA_SCALE, // scaled 75 KB
                exchanges_per_iter: 2,
                halo_base_len: 0,
                halo_levels: 0,
                compute_per_iter: Dur::from_ms(40 / DATA_SCALE as u64),
            },
            // EP class B: pure compute; one tiny reduction at the end
            // (modeled as one per "iteration" with a single iteration).
            NasBenchmark::Ep => NasParams {
                iterations: 1,
                alltoall_per_pair: 0,
                allreduce_len: 64,
                allreduces_per_iter: 1,
                exchange_len: 0,
                exchanges_per_iter: 0,
                halo_base_len: 0,
                halo_levels: 0,
                compute_per_iter: Dur::from_ms(2000 / DATA_SCALE as u64),
            },
            // MG class B: V-cycles with nearest-neighbor halo exchanges
            // whose sizes halve per grid level, plus a residual-norm
            // allreduce — a mix of medium and small messages.
            NasBenchmark::Mg => NasParams {
                iterations: 12,
                alltoall_per_pair: 0,
                allreduce_len: 8,
                allreduces_per_iter: 1,
                exchange_len: 0,
                exchanges_per_iter: 0,
                halo_base_len: 131_072 / DATA_SCALE, // finest-level face
                halo_levels: 8,
                compute_per_iter: Dur::from_ms(60 / DATA_SCALE as u64),
            },
        }
    }
}

/// CG's transpose partner on a `side x side` process grid.
fn transpose_partner(rank: usize, side: usize) -> usize {
    let (row, col) = (rank / side, rank % side);
    col * side + row
}

/// Build the per-rank script for `bench` on `nranks` ranks.
pub fn program(bench: NasBenchmark, rank: usize, nranks: usize) -> Vec<Op> {
    let p = NasParams::class_b(bench);
    let mut tags = TagAlloc::default();
    let mut ops = vec![Op::Mark { id: 0 }];
    // Startup barrier (NPB does a warm-up + barrier before timing).
    ops.extend(coll::barrier(nranks, rank, tags.take()));
    for _ in 0..p.iterations {
        if !p.compute_per_iter.is_zero() {
            ops.push(Op::Compute {
                dur: p.compute_per_iter,
            });
        }
        for _ in 0..p.allreduces_per_iter {
            ops.extend(coll::allreduce(nranks, rank, p.allreduce_len, tags.take()));
        }
        if p.alltoall_per_pair > 0 {
            ops.extend(coll::alltoall(
                nranks,
                rank,
                p.alltoall_per_pair,
                tags.take(),
            ));
        }
        if p.halo_base_len > 0 {
            // 1-D ring halo: exchange with both neighbors at every level of
            // the V-cycle, message size halving per level (MG).
            let right = (rank + 1) % nranks;
            let left = (rank + nranks - 1) % nranks;
            for level in 0..p.halo_levels {
                let len = (p.halo_base_len >> level).max(64);
                let tag = tags.take();
                ops.push(Op::Exchange {
                    to: right,
                    from: left,
                    len,
                    tag,
                    count: 1,
                });
                ops.push(Op::Exchange {
                    to: left,
                    from: right,
                    len,
                    tag: tag + 1,
                    count: 1,
                });
            }
        }
        if p.exchange_len > 0 {
            let side = (nranks as f64).sqrt() as usize;
            assert_eq!(side * side, nranks, "CG needs a square process grid");
            let partner = transpose_partner(rank, side);
            for _ in 0..p.exchanges_per_iter {
                let tag = tags.take();
                if partner == rank {
                    // Diagonal ranks exchange with themselves: local copy.
                    continue;
                }
                ops.push(Op::Exchange {
                    to: partner,
                    from: partner,
                    len: p.exchange_len,
                    tag,
                    count: 1,
                });
            }
        }
    }
    ops.push(Op::Mark { id: 1 });
    ops
}

/// The message-size mix a code sends — the paper's Section 3.5 profiling,
/// which explains each benchmark's WAN tolerance.
#[derive(Copy, Clone, Debug, Default)]
pub struct SizeProfile {
    /// Fraction of messages under 1 KB.
    pub small: f64,
    /// Fraction between 1 KB and 16 KB.
    pub medium: f64,
    /// Fraction at or above 16 KB.
    pub large: f64,
    /// Total messages profiled.
    pub messages: u64,
}

/// Profile the message-size distribution of `bench` on a LAN run of
/// `ranks_a + ranks_b` ranks (rank 0's sends, like the paper's profiling).
pub fn profile(bench: NasBenchmark, ranks_a: usize, ranks_b: usize) -> SizeProfile {
    let spec = JobSpec::two_clusters(ranks_a, ranks_b, Dur::ZERO);
    let mut job = MpiJob::build(spec, |rank, n| program(bench, rank, n));
    job.run();
    let hist = *job.process(0).proto.send_size_histogram();
    let small: u64 = hist[..10].iter().sum();
    let medium: u64 = hist[10..14].iter().sum();
    let large: u64 = hist[14..].iter().sum();
    let total = (small + medium + large).max(1);
    SizeProfile {
        small: small as f64 / total as f64,
        medium: medium as f64 / total as f64,
        large: large as f64 / total as f64,
        messages: total,
    }
}

/// Result of one NAS run.
#[derive(Copy, Clone, Debug)]
pub struct NasResult {
    /// Which code ran.
    pub benchmark: NasBenchmark,
    /// One-way WAN delay emulated.
    pub delay_us: u64,
    /// Timed-section execution time, seconds (max across ranks).
    pub time_secs: f64,
}

/// Run `bench` on `ranks_a + ranks_b` ranks across the WAN with the given
/// one-way delay, using the default job spec (seed 42, default engine
/// profile).
pub fn run(bench: NasBenchmark, ranks_a: usize, ranks_b: usize, delay: Dur) -> NasResult {
    run_spec(bench, JobSpec::two_clusters(ranks_a, ranks_b, delay))
}

/// Run `bench` on an explicit [`JobSpec`] — callers threading a run context
/// set the spec's seed and engine profile before passing it in.
pub fn run_spec(bench: NasBenchmark, spec: JobSpec) -> NasResult {
    let delay = spec.delay;
    let n = spec.nranks();
    let mut job = MpiJob::build(spec, |rank, n| program(bench, rank, n));
    job.run();
    let t0 = (0..n)
        .map(|r| job.process(r).runner.mark(0).unwrap())
        .min()
        .unwrap_or(Time::ZERO);
    let t1 = (0..n)
        .map(|r| job.process(r).runner.mark(1).unwrap())
        .max()
        .unwrap_or(Time::ZERO);
    NasResult {
        benchmark: bench,
        delay_us: delay.as_ns() / 1000,
        time_secs: t1.since(t0).as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_partner_is_involutive() {
        for side in [2usize, 4, 8] {
            for r in 0..side * side {
                assert_eq!(transpose_partner(transpose_partner(r, side), side), r);
            }
        }
    }

    #[test]
    fn programs_complete_on_lan() {
        // Small 8-rank single-cluster runs of all three codes.
        for bench in NasBenchmark::ALL {
            if bench == NasBenchmark::Cg {
                continue; // CG needs a square grid; 9 is not a power of two.
            }
            let res = run(bench, 8, 0, Dur::ZERO);
            assert!(res.time_secs > 0.0, "{bench:?}");
        }
        // CG with 4 ranks (2x2 grid).
        let res = run(NasBenchmark::Cg, 4, 0, Dur::ZERO);
        assert!(res.time_secs > 0.0);
    }

    #[test]
    fn is_messages_are_large_cg_messages_small() {
        // Profile the message-size mix (the paper's Section 3.5 analysis).
        let spec = JobSpec::two_clusters(8, 8, Dur::ZERO);
        let mut job = MpiJob::build(spec, |rank, n| program(NasBenchmark::Is, rank, n));
        job.run();
        let hist = *job.process(0).proto.send_size_histogram();
        let big: u64 = hist[14..].iter().sum(); // >= 16 KB
        let small: u64 = hist[..8].iter().sum(); // < 256 B
        assert!(big > 0, "IS must send large messages");
        // IS: alltoall dominates; small messages only from barrier/allreduce.
        let large_bytes_dominate = big >= small;
        assert!(large_bytes_dominate, "IS mix: big {big} small {small}");

        let spec = JobSpec::two_clusters(8, 8, Dur::ZERO);
        let mut job = MpiJob::build(spec, |rank, n| program(NasBenchmark::Cg, rank, n));
        job.run();
        let hist = *job.process(0).proto.send_size_histogram();
        let small: u64 = hist[..8].iter().sum();
        assert!(
            small > 20,
            "CG must be dominated by small messages: {small}"
        );
        let over_1m: u64 = hist[20..].iter().sum();
        assert_eq!(over_1m, 0, "CG sends nothing at or above 1 MB");
    }

    #[test]
    fn profiles_match_paper_characterization() {
        // "IS and FT involve a high percentage of large messages while CG
        // has a high percentage of small and medium messages."
        let is = profile(NasBenchmark::Is, 8, 8);
        let ft = profile(NasBenchmark::Ft, 8, 8);
        let cg = profile(NasBenchmark::Cg, 4, 0);
        assert!(is.large > 0.3, "IS large fraction {}", is.large);
        assert!(ft.large > 0.3, "FT large fraction {}", ft.large);
        assert!(cg.small > 0.5, "CG small fraction {}", cg.small);
        assert!(
            (is.small + is.medium + is.large - 1.0).abs() < 1e-9,
            "fractions sum to 1"
        );
    }

    #[test]
    fn ep_is_delay_immune_and_mg_sits_between() {
        let ep0 = run(NasBenchmark::Ep, 4, 4, Dur::ZERO).time_secs;
        let ep10 = run(NasBenchmark::Ep, 4, 4, Dur::from_ms(10)).time_secs;
        assert!(
            ep10 / ep0 < 1.15,
            "EP must be nearly delay-immune: {}x",
            ep10 / ep0
        );

        let mg0 = run(NasBenchmark::Mg, 8, 8, Dur::ZERO).time_secs;
        let mg1 = run(NasBenchmark::Mg, 8, 8, Dur::from_ms(1)).time_secs;
        let cg0 = run(NasBenchmark::Cg, 8, 8, Dur::ZERO).time_secs;
        let cg1 = run(NasBenchmark::Cg, 8, 8, Dur::from_ms(1)).time_secs;
        let mg_slow = mg1 / mg0;
        let cg_slow = cg1 / cg0;
        assert!(mg_slow > 1.05, "MG halos feel the WAN: {mg_slow}x");
        assert!(
            mg_slow < cg_slow * 1.5,
            "MG ({mg_slow}x) should not degrade wildly beyond CG ({cg_slow}x)"
        );
    }

    #[test]
    fn cg_degrades_more_than_ft_with_delay() {
        // 8+8 ranks keeps this test quick; the full 32+32 figure runs in the
        // bench harness.
        let cg0 = run(NasBenchmark::Cg, 8, 8, Dur::ZERO).time_secs;
        let cg10 = run(NasBenchmark::Cg, 8, 8, Dur::from_ms(10)).time_secs;
        let ft0 = run(NasBenchmark::Ft, 8, 8, Dur::ZERO).time_secs;
        let ft10 = run(NasBenchmark::Ft, 8, 8, Dur::from_ms(10)).time_secs;
        let cg_slowdown = cg10 / cg0;
        let ft_slowdown = ft10 / ft0;
        assert!(
            cg_slowdown > 2.0 * ft_slowdown,
            "CG ({cg_slowdown:.2}x) must degrade far more than FT ({ft_slowdown:.2}x)"
        );
    }

    #[test]
    fn is_and_ft_tolerate_moderate_delay() {
        for bench in [NasBenchmark::Is, NasBenchmark::Ft] {
            let t0 = run(bench, 8, 8, Dur::ZERO).time_secs;
            let t1ms = run(bench, 8, 8, Dur::from_us(1000)).time_secs;
            assert!(
                t1ms < 1.5 * t0,
                "{} should tolerate 1 ms (200 km): {t0:.3}s -> {t1ms:.3}s",
                bench.name()
            );
        }
    }
}
