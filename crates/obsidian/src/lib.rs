//! # obsidian — Longbow XR InfiniBand range-extender model
//!
//! The Obsidian Longbow XR extends an InfiniBand fabric across WAN distances.
//! A pair of Longbows forms a point-to-point long-haul link; in the paper's
//! "basic switch mode" the pair appears to the subnet manager as a two-ported
//! switch, unifying the two cluster subnets transparently except for the
//! added wire latency. The devices carry IB traffic at **SDR rate (8 Gb/s
//! data)** over the WAN even when the clusters are DDR internally — the reason
//! the paper's NFS LAN-to-WAN comparison drops ~36%.
//!
//! The XR's signature feature — the one the whole paper leans on — is its
//! **web-configurable packet delay**, used to emulate WAN separation: each
//! microsecond of one-way delay corresponds to ~200 m of fiber (5 µs/km).
//! [`wire_delay_for_km`] reproduces Table 1 of the paper.
//!
//! ```
//! use obsidian::wire_delay_for_km;
//! use simcore::Dur;
//! assert_eq!(wire_delay_for_km(1000), Dur::from_us(5000)); // Table 1 row 4
//! ```

use ibfabric::fabric::{FabricBuilder, PortAttach};
use ibfabric::link::{CreditMsg, EgressPort, LinkConfig};
use ibfabric::packet::Packet;
use rand::Rng as _;
use simcore::{Actor, ActorId, Ctx, Dur, Rate};
use std::any::Any;

/// Speed-of-light-in-fiber wire delay for an emulated distance, one way:
/// 5 µs per km, exactly the paper's Table 1 mapping.
pub fn wire_delay_for_km(km: u64) -> Dur {
    Dur::from_us(5 * km)
}

/// Inverse of [`wire_delay_for_km`]: emulated distance for a delay setting.
pub fn km_for_wire_delay(delay: Dur) -> u64 {
    delay.as_ns() / 5_000
}

/// Static parameters of one Longbow XR unit.
#[derive(Copy, Clone, Debug)]
pub struct LongbowConfig {
    /// Transit latency through one unit (the pair adds ~5 µs total to
    /// small-message latency, per Section 3.2.1).
    pub transit_latency: Dur,
    /// Additional delay this unit injects per forwarded packet. For a pair
    /// emulating one-way wire delay `D`, each unit is configured with `D/2`
    /// so a full crossing accumulates `D` in each direction.
    pub injected_delay: Dur,
    /// Packet-loss probability in parts per million (long-haul bit errors /
    /// optical impairments; 0 = pristine link). Losses exercise the RC
    /// go-back-N retransmission machinery.
    pub loss_per_million: u32,
}

impl Default for LongbowConfig {
    fn default() -> Self {
        LongbowConfig {
            transit_latency: Dur::from_ns(2500),
            injected_delay: Dur::ZERO,
            loss_per_million: 0,
        }
    }
}

/// One Longbow XR unit: a transparent two-port store-and-forward bridge.
///
/// Packets entering either port leave through the other after the transit
/// latency plus the configured injected delay. Serialization rates are
/// carried by the attached links (the WAN cable runs at SDR).
pub struct Longbow {
    cfg: LongbowConfig,
    ports: [Option<EgressPort>; 2],
    forwarded: u64,
    dropped: u64,
}

impl Longbow {
    /// New unit with `cfg`.
    pub fn new(cfg: LongbowConfig) -> Self {
        Longbow {
            cfg,
            ports: [None, None],
            forwarded: 0,
            dropped: 0,
        }
    }

    /// Reconfigure the injected delay (the "web interface" knob).
    pub fn set_injected_delay(&mut self, d: Dur) {
        self.cfg.injected_delay = d;
    }

    /// Current configuration.
    pub fn config(&self) -> LongbowConfig {
        self.cfg
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets dropped by injected loss so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl PortAttach for Longbow {
    fn attach_port(&mut self, idx: usize, egress: EgressPort) {
        assert!(idx < 2, "Longbows are two-ported");
        assert!(self.ports[idx].is_none(), "port {idx} already attached");
        self.ports[idx] = Some(egress);
    }

    /// A packet entering either port leaves no earlier than the transit
    /// latency plus the injected WAN delay after the ingress event — this is
    /// the store-and-forward floor the partitioned engine uses as lookahead
    /// when the WAN cable forms a domain boundary. (Credit returns bypass
    /// the store-and-forward path; the fabric builder accounts for those
    /// separately by dropping this term on credited cables.)
    fn forward_lookahead(&self) -> Option<Dur> {
        Some(self.cfg.transit_latency + self.cfg.injected_delay)
    }
}

impl Longbow {
    /// Ingress side for a message from neighbor `from`; egress is the other
    /// port.
    fn ingress_idx(&self, from: ActorId) -> usize {
        let in0 = self.ports[0].as_ref().map(|p| p.peer) == Some(from);
        debug_assert!(
            in0 || self.ports[1].as_ref().map(|p| p.peer) == Some(from),
            "packet from an actor on neither port"
        );
        if in0 {
            0
        } else {
            1
        }
    }
}

impl Actor for Longbow {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: ActorId, pkt: Packet) {
        let in_idx = self.ingress_idx(from);
        let out_idx = 1 - in_idx;
        // Deep internal buffers: the ingress credit returns immediately.
        if self.ports[in_idx].as_ref().is_some_and(|p| p.credited()) {
            debug_assert_eq!(pkt.count, 1, "trains never cross credited links");
            let latency = self.ports[in_idx].as_ref().unwrap().config().latency;
            ctx.send(from, Box::new(CreditMsg), latency);
        }
        // The transit + injected delay shifts every train member uniformly,
        // so a train crosses the unit with its gap intact.
        let ready = ctx.now() + self.cfg.transit_latency + self.cfg.injected_delay;
        if self.cfg.loss_per_million > 0 {
            // Loss is rolled per fragment, so trains must de-coalesce here:
            // each member gets its own dice roll at its own arrival instant.
            // (Fabrics with lossy Longbows disable coalescing entirely —
            // see `LongbowPair::insert_with` — so this loop normally sees
            // only single packets.)
            let gap = Dur::from_ns(pkt.gap_ns);
            for k in 0..pkt.count {
                let member = pkt.frag(k);
                if ctx.rng().gen_range(0..1_000_000u32) < self.cfg.loss_per_million {
                    self.dropped += 1;
                    continue;
                }
                let port = self.ports[out_idx]
                    .as_mut()
                    .expect("Longbow egress port not attached");
                self.forwarded += 1;
                let peer = port.peer;
                if let Some((arrival, m)) = port.transmit(ready + gap * k as u64, member) {
                    ctx.send_at(peer, m, arrival);
                }
            }
            return;
        }
        let port = self.ports[out_idx]
            .as_mut()
            .expect("Longbow egress port not attached");
        self.forwarded += pkt.count as u64;
        let peer = port.peer;
        port.transmit_seq(ready, pkt, &mut |arrival, p| ctx.send_at(peer, p, arrival));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, msg: Box<dyn Any>) {
        msg.downcast::<CreditMsg>()
            .expect("Longbow received an unexpected control message");
        let in_idx = self.ingress_idx(from);
        let now = ctx.now();
        let port = self.ports[in_idx]
            .as_mut()
            .expect("credit on unattached port");
        if let Some((arrival, pkt)) = port.credit_returned(now) {
            let peer = port.peer;
            ctx.send_at(peer, pkt, arrival);
        }
    }
}

/// The WAN cable between two Longbows: SDR data rate, negligible intrinsic
/// propagation (distance is emulated with injected delay, as in the paper).
pub fn wan_cable() -> LinkConfig {
    LinkConfig {
        rate: Rate::from_gbps(8),
        latency: Dur::from_ns(100),
        credit_packets: None,
    }
}

/// The short local cable from a cluster's core switch into its Longbow.
/// The Longbow's IB side runs at SDR 4x.
pub fn local_cable() -> LinkConfig {
    LinkConfig {
        rate: Rate::from_gbps(8),
        latency: Dur::from_ns(100),
        credit_packets: None,
    }
}

/// Handles to an installed Longbow pair.
#[derive(Copy, Clone, Debug)]
pub struct LongbowPair {
    /// Unit attached to cluster A's switch.
    pub a: ActorId,
    /// Unit attached to cluster B's switch.
    pub b: ActorId,
}

impl LongbowPair {
    /// Insert a Longbow pair between two cluster switches, emulating a
    /// one-way WAN wire delay of `delay` (use [`wire_delay_for_km`]).
    ///
    /// Each unit injects `delay/2` per forwarded packet, so a full crossing
    /// accumulates `delay` in each direction — RTT grows by `2 * delay`,
    /// matching how the paper's router delay knob emulates distance.
    pub fn insert(
        builder: &mut FabricBuilder,
        switch_a: ActorId,
        switch_b: ActorId,
        delay: Dur,
    ) -> LongbowPair {
        Self::insert_with(
            builder,
            switch_a,
            switch_b,
            LongbowConfig {
                injected_delay: delay / 2,
                ..LongbowConfig::default()
            },
        )
    }

    /// Insert a Longbow pair whose WAN cable has only `credits` receive
    /// buffers per direction — a *shallow-buffered* range extender.
    ///
    /// Here the emulated distance is carried as true wire propagation on
    /// the WAN cable (instead of router-injected delay), so the link-level
    /// credit loop spans the full round trip exactly as it would on real
    /// fiber. With too few credits the transmitter stalls waiting for
    /// credit returns and the long pipe cannot fill: sustainable bandwidth
    /// is `credits × packet_size / RTT`. This is precisely why the real
    /// Longbow XR ships with very deep buffers.
    pub fn insert_shallow(
        builder: &mut FabricBuilder,
        switch_a: ActorId,
        switch_b: ActorId,
        delay: Dur,
        credits: usize,
    ) -> LongbowPair {
        let cfg = LongbowConfig::default(); // no injected delay
        let a = builder.add_bridge(Box::new(Longbow::new(cfg)));
        let b = builder.add_bridge(Box::new(Longbow::new(cfg)));
        let wan = LinkConfig {
            rate: Rate::from_gbps(8),
            latency: Dur::from_ns(100) + delay, // distance as real propagation
            credit_packets: Some(credits),
        };
        builder.link(switch_a, a, local_cable());
        builder.link(a, b, wan);
        builder.link(b, switch_b, local_cable());
        LongbowPair { a, b }
    }

    /// Insert a Longbow pair with full control over the unit configuration
    /// (delay, transit latency, and injected WAN packet loss).
    pub fn insert_with(
        builder: &mut FabricBuilder,
        switch_a: ActorId,
        switch_b: ActorId,
        cfg: LongbowConfig,
    ) -> LongbowPair {
        if cfg.loss_per_million > 0 {
            // Random per-fragment loss draws from the engine RNG in arrival
            // order; batching a train's rolls at its head would interleave
            // differently with other traffic's rolls. Keep lossy fabrics on
            // the per-fragment path so results match bit for bit.
            builder.disable_coalescing();
            // Same reasoning one level up: the partitioned engine gives each
            // domain its own RNG, which would reorder loss draws relative to
            // the serial run. Lossy fabrics always run serially.
            builder.disable_partitioning();
        }
        let a = builder.add_bridge(Box::new(Longbow::new(cfg)));
        let b = builder.add_bridge(Box::new(Longbow::new(cfg)));
        builder.link(switch_a, a, local_cable());
        builder.link(a, b, wan_cable());
        builder.link(b, switch_b, local_cable());
        LongbowPair { a, b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfabric::hca::HcaConfig;
    use ibfabric::perftest::{rc_qp_pair, BwConfig, BwPeer, LatMode, PingPong};
    use ibfabric::qp::QpConfig;

    /// Two single-node "clusters" joined by a Longbow pair.
    fn cluster_pair(
        delay: Dur,
        ulp_a: Box<dyn ibfabric::Ulp>,
        ulp_b: Box<dyn ibfabric::Ulp>,
    ) -> (ibfabric::Fabric, ibfabric::NodeHandle, ibfabric::NodeHandle) {
        cluster_pair_with(
            ibfabric::fabric::EngineProfile::default(),
            delay,
            ulp_a,
            ulp_b,
        )
    }

    /// [`cluster_pair`] with an explicit engine profile (A/B tests pin the
    /// serial or forced-partitioned engine per fabric, no global state).
    fn cluster_pair_with(
        profile: ibfabric::fabric::EngineProfile,
        delay: Dur,
        ulp_a: Box<dyn ibfabric::Ulp>,
        ulp_b: Box<dyn ibfabric::Ulp>,
    ) -> (ibfabric::Fabric, ibfabric::NodeHandle, ibfabric::NodeHandle) {
        let mut b = FabricBuilder::with_profile(11, profile);
        let n1 = b.add_hca(HcaConfig::default(), ulp_a);
        let n2 = b.add_hca(HcaConfig::default(), ulp_b);
        let sw_a = b.add_switch();
        let sw_b = b.add_switch();
        b.link(n1.actor, sw_a, LinkConfig::ddr_lan());
        b.link(n2.actor, sw_b, LinkConfig::ddr_lan());
        LongbowPair::insert(&mut b, sw_a, sw_b, delay);
        let f = b.finish();
        (f, n1, n2)
    }

    #[test]
    fn table1_delay_distance_mapping() {
        assert_eq!(wire_delay_for_km(1), Dur::from_us(5));
        assert_eq!(wire_delay_for_km(20), Dur::from_us(100));
        assert_eq!(wire_delay_for_km(200), Dur::from_us(1000));
        assert_eq!(wire_delay_for_km(2000), Dur::from_us(10000));
        assert_eq!(km_for_wire_delay(Dur::from_us(5000)), 1000);
    }

    fn latency_through_pair(delay: Dur) -> f64 {
        let (mut f, a, b) = cluster_pair(
            delay,
            Box::new(PingPong::new(LatMode::SendRc, true, 4, 50)),
            Box::new(PingPong::new(LatMode::SendRc, false, 4, 50)),
        );
        let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<PingPong>().qpn = qa;
        f.hca_mut(b).ulp_mut::<PingPong>().qpn = qb;
        f.run();
        f.hca(a).ulp::<PingPong>().mean_latency_us()
    }

    #[test]
    fn pair_adds_about_5us_at_zero_delay() {
        // Back-to-back baseline.
        let mut bb = FabricBuilder::new(1);
        let n1 = bb.add_hca(
            HcaConfig::default(),
            Box::new(PingPong::new(LatMode::SendRc, true, 4, 50)),
        );
        let n2 = bb.add_hca(
            HcaConfig::default(),
            Box::new(PingPong::new(LatMode::SendRc, false, 4, 50)),
        );
        bb.link(n1.actor, n2.actor, LinkConfig::ddr_lan());
        let mut f = bb.finish();
        let (qa, qb) = rc_qp_pair(&mut f, n1, n2, QpConfig::rc());
        f.hca_mut(n1).ulp_mut::<PingPong>().qpn = qa;
        f.hca_mut(n2).ulp_mut::<PingPong>().qpn = qb;
        f.run();
        let base = f.hca(n1).ulp::<PingPong>().mean_latency_us();

        let wan = latency_through_pair(Dur::ZERO);
        let added = wan - base;
        assert!(
            (3.5..8.0).contains(&added),
            "pair should add ~5us, added {added} (base {base}, wan {wan})"
        );
    }

    #[test]
    fn injected_delay_appears_in_latency() {
        let l0 = latency_through_pair(Dur::ZERO);
        let l100 = latency_through_pair(Dur::from_us(100));
        let l1000 = latency_through_pair(Dur::from_us(1000));
        // One-way latency should grow by almost exactly the injected delay.
        assert!((l100 - l0 - 100.0).abs() < 2.0, "l100 {l100} l0 {l0}");
        assert!((l1000 - l0 - 1000.0).abs() < 2.0, "l1000 {l1000}");
    }

    #[test]
    fn wan_throttles_to_sdr() {
        // Large RC messages through the pair: SDR (1000 MB/s) bound even
        // though both cluster links are DDR.
        let (mut f, a, b) = cluster_pair(
            Dur::ZERO,
            Box::new(BwPeer::sender(BwConfig::new(1 << 20, 64))),
            Box::new(BwPeer::receiver()),
        );
        let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
        f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
        f.run();
        let bw = f.hca(a).ulp::<BwPeer>().bandwidth_mbs();
        assert!(bw > 900.0 && bw < 1000.0, "bw {bw}");
    }

    #[test]
    fn ud_bandwidth_is_delay_invariant() {
        fn ud_bw(delay: Dur) -> f64 {
            let (mut f, a, b) = cluster_pair(
                delay,
                Box::new(BwPeer::sender(BwConfig::new(2048, 2000))),
                Box::new(BwPeer::receiver()),
            );
            let qa = f.hca_mut(a).core_mut().create_qp(QpConfig::ud());
            let qb = f.hca_mut(b).core_mut().create_qp(QpConfig::ud());
            {
                let u = f.hca_mut(a).ulp_mut::<BwPeer>();
                u.qpn = qa;
                u.peer = Some((b.lid, qb));
            }
            f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
            f.run();
            // Receiver-side: UD senders get no feedback from the WAN.
            f.hca(b).ulp::<BwPeer>().rx_bandwidth_mbs()
        }
        let b0 = ud_bw(Dur::ZERO);
        let b10ms = ud_bw(Dur::from_ms(10));
        assert!((b0 - b10ms).abs() < 5.0, "UD bw {b0} vs {b10ms}");
        assert!(b0 > 900.0, "UD peak {b0}");
    }

    #[test]
    fn shallow_buffers_throttle_the_long_pipe() {
        // UD streaming across a 1 ms (200 km) WAN: deep buffers sustain the
        // SDR rate; 16 credits cap throughput at ~credits * pkt / RTT.
        fn ud_bw_with(credits: Option<usize>) -> f64 {
            let mut builder = FabricBuilder::new(29);
            let n1 = builder.add_hca(
                HcaConfig::default(),
                Box::new(BwPeer::sender(BwConfig::new(2048, 3000))),
            );
            let n2 = builder.add_hca(HcaConfig::default(), Box::new(BwPeer::receiver()));
            let sw_a = builder.add_switch();
            let sw_b = builder.add_switch();
            builder.link(n1.actor, sw_a, LinkConfig::ddr_lan());
            builder.link(n2.actor, sw_b, LinkConfig::ddr_lan());
            match credits {
                Some(c) => {
                    LongbowPair::insert_shallow(&mut builder, sw_a, sw_b, Dur::from_ms(1), c);
                }
                None => {
                    LongbowPair::insert(&mut builder, sw_a, sw_b, Dur::from_ms(1));
                }
            }
            let mut f = builder.finish();
            let qa = f.hca_mut(n1).core_mut().create_qp(QpConfig::ud());
            let qb = f.hca_mut(n2).core_mut().create_qp(QpConfig::ud());
            {
                let u = f.hca_mut(n1).ulp_mut::<BwPeer>();
                u.qpn = qa;
                u.peer = Some((n2.lid, qb));
            }
            f.hca_mut(n2).ulp_mut::<BwPeer>().qpn = qb;
            f.run();
            f.hca(n2).ulp::<BwPeer>().rx_bandwidth_mbs()
        }
        let deep = ud_bw_with(None);
        let shallow = ud_bw_with(Some(16));
        let roomy = ud_bw_with(Some(4096));
        assert!(deep > 900.0, "deep buffers: {deep}");
        // 16 credits * ~2118 B / ~2 ms RTT ~ 17 MB/s.
        assert!(shallow < 30.0, "16 credits: {shallow}");
        assert!(roomy > 0.9 * deep, "4096 credits: {roomy} vs {deep}");
    }

    #[test]
    fn rc_survives_wan_packet_loss() {
        // A lossy long-haul link: every message still arrives exactly once
        // thanks to go-back-N retransmission.
        let mut builder = FabricBuilder::new(23);
        let n1 = builder.add_hca(
            HcaConfig::default(),
            Box::new(BwPeer::sender(BwConfig::new(4096, 200))),
        );
        let n2 = builder.add_hca(HcaConfig::default(), Box::new(BwPeer::receiver()));
        let sw_a = builder.add_switch();
        let sw_b = builder.add_switch();
        builder.link(n1.actor, sw_a, LinkConfig::ddr_lan());
        builder.link(n2.actor, sw_b, LinkConfig::ddr_lan());
        let pair = LongbowPair::insert_with(
            &mut builder,
            sw_a,
            sw_b,
            LongbowConfig {
                injected_delay: Dur::from_us(50),
                loss_per_million: 20_000, // 2% WAN loss
                ..LongbowConfig::default()
            },
        );
        let mut f = builder.finish();
        let qp = QpConfig {
            rto: Dur::from_ms(2),
            ..QpConfig::rc()
        };
        let (qa, qb) = rc_qp_pair(&mut f, n1, n2, qp);
        f.hca_mut(n1).ulp_mut::<BwPeer>().qpn = qa;
        f.hca_mut(n2).ulp_mut::<BwPeer>().qpn = qb;
        f.run();
        assert_eq!(f.hca(n2).ulp::<BwPeer>().received(), 200);
        let retx = f.hca(n1).core().qp(qa).retransmit_rounds();
        assert!(retx > 0, "2% loss must trigger retransmissions");
        // The loss-recovery counters must surface at every layer: the units
        // record what they dropped, and the receiving QP records both the
        // go-back-N casualties (gap_drops) and the duplicates the 50 us
        // one-way delay makes inevitable (retransmissions racing in-flight
        // ACKs).
        let dropped = f.engine.actor::<Longbow>(pair.a).dropped()
            + f.engine.actor::<Longbow>(pair.b).dropped();
        assert!(dropped > 0, "2% loss over 800 fragments must drop some");
        let rx_qp = f.hca(n2).core().qp(qb);
        assert!(
            rx_qp.gap_drops() > 0,
            "lost fragments must strand later ones"
        );
        assert!(
            rx_qp.dup_fragments() > 0,
            "go-back-N under WAN delay must re-deliver some fragments"
        );
    }

    #[test]
    fn wan_fabric_yields_a_two_domain_plan() {
        let (f, _a, _b) = cluster_pair(
            Dur::from_ms(1),
            Box::new(PingPong::new(LatMode::SendRc, true, 4, 10)),
            Box::new(PingPong::new(LatMode::SendRc, false, 4, 10)),
        );
        let plan = f.domain_plan().expect("Longbow WAN fabric must split");
        assert_eq!(plan.domains, 2);
        // Lookahead per direction: WAN cable latency (100 ns) + transit
        // (2.5 us) + injected delay (delay/2 = 500 us).
        let expect = Dur::from_ns(100) + Dur::from_ns(2500) + Dur::from_us(500);
        assert_eq!(plan.min_lookahead(), Some(expect));
        // The two HCAs sit on opposite sides of the cut.
        assert_ne!(plan.domain_of[0], plan.domain_of[1]);
    }

    #[test]
    fn wan_plan_promises_tails_only_on_serialized_uncredited_cuts() {
        // The standard Longbow pair: exactly one uncredited WAN cable per
        // direction, so both directions carry the wire-tail promise.
        let (f, _a, _b) = cluster_pair(
            Dur::from_ms(1),
            Box::new(PingPong::new(LatMode::SendRc, true, 4, 10)),
            Box::new(PingPong::new(LatMode::SendRc, false, 4, 10)),
        );
        let plan = f.domain_plan().expect("Longbow WAN fabric must split");
        let (da, db) = (plan.domain_of[0] as usize, plan.domain_of[1] as usize);
        assert!(plan.tail_safe_dir(da, db) && plan.tail_safe_dir(db, da));

        // A shallow-buffered (credited) WAN cable returns CreditMsgs at bare
        // cable latency, bypassing the egress port's serialization — the
        // promise must be withheld in both directions.
        let mut b = FabricBuilder::new(3);
        let n1 = b.add_hca(
            HcaConfig::default(),
            Box::new(BwPeer::sender(BwConfig::new(4096, 4))),
        );
        let n2 = b.add_hca(HcaConfig::default(), Box::new(BwPeer::receiver()));
        let sw_a = b.add_switch();
        let sw_b = b.add_switch();
        b.link(n1.actor, sw_a, LinkConfig::ddr_lan());
        b.link(n2.actor, sw_b, LinkConfig::ddr_lan());
        LongbowPair::insert_shallow(&mut b, sw_a, sw_b, Dur::from_ms(1), 16);
        let f = b.finish();
        let plan = f.domain_plan().expect("shallow WAN fabric still splits");
        let (da, db) = (plan.domain_of[0] as usize, plan.domain_of[1] as usize);
        assert!(!plan.tail_safe_dir(da, db) && !plan.tail_safe_dir(db, da));
    }

    /// `PartitionMode::Auto`: serial on one core, partitioned for a dense
    /// WAN stream once cores are available — with identical observables.
    #[test]
    fn auto_mode_follows_cores_and_density() {
        use ibfabric::fabric::EngineProfile;
        use simcore::domain::set_test_assume_cores;

        fn bw_run(profile: EngineProfile) -> (ibfabric::fabric::FabricReport, bool) {
            let (mut f, a, b) = cluster_pair_with(
                profile,
                Dur::from_ms(1),
                Box::new(BwPeer::sender(BwConfig::new(65536, 512))),
                Box::new(BwPeer::receiver()),
            );
            let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
            f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
            f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
            f.run();
            (f.report(), f.domain_report().is_some())
        }

        // One core: Auto must stay serial — it can never beat serial there.
        set_test_assume_cores(1);
        let (rep_serial, par) = bw_run(EngineProfile::default());
        assert!(!par, "Auto on 1 core must run serially");

        // Plenty of cores and a dense streaming workload: the probe commits
        // to the partitioned engine, and every observable (the report minus
        // execution-strategy fields) is unchanged.
        set_test_assume_cores(8);
        let (rep_auto, par) = bw_run(EngineProfile::default());
        set_test_assume_cores(0);
        assert!(par, "Auto with spare cores must partition a dense stream");
        assert_eq!(rep_serial, rep_auto, "Auto must not change observables");
    }

    #[test]
    fn lossy_fabric_never_partitions() {
        let mut builder = FabricBuilder::new(5);
        let n1 = builder.add_hca(
            HcaConfig::default(),
            Box::new(BwPeer::sender(BwConfig::new(4096, 10))),
        );
        let n2 = builder.add_hca(HcaConfig::default(), Box::new(BwPeer::receiver()));
        let sw_a = builder.add_switch();
        let sw_b = builder.add_switch();
        builder.link(n1.actor, sw_a, LinkConfig::ddr_lan());
        builder.link(n2.actor, sw_b, LinkConfig::ddr_lan());
        LongbowPair::insert_with(
            &mut builder,
            sw_a,
            sw_b,
            LongbowConfig {
                loss_per_million: 1000,
                ..LongbowConfig::default()
            },
        );
        let f = builder.finish();
        assert!(
            f.domain_plan().is_none(),
            "random loss must force the serial engine (shared RNG order)"
        );
    }

    /// Full-stack A/B: the same WAN ping-pong run on the partitioned and the
    /// serial engine must agree on every virtual-time observable.
    #[test]
    fn partitioned_run_matches_serial_bit_for_bit() {
        use ibfabric::fabric::EngineProfile;

        fn run_mode(
            profile: EngineProfile,
        ) -> (f64, simcore::Time, ibfabric::fabric::FabricReport, bool) {
            let (mut f, a, b) = cluster_pair_with(
                profile,
                Dur::from_us(200),
                Box::new(PingPong::new(LatMode::SendRc, true, 256, 40)),
                Box::new(PingPong::new(LatMode::SendRc, false, 256, 40)),
            );
            let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
            f.hca_mut(a).ulp_mut::<PingPong>().qpn = qa;
            f.hca_mut(b).ulp_mut::<PingPong>().qpn = qb;
            let end = f.run();
            let lat = f.hca(a).ulp::<PingPong>().mean_latency_us();
            let report = f.report();
            let partitioned = f.domain_report().is_some();
            (lat, end, report, partitioned)
        }

        let (lat_s, end_s, rep_s, par_s) = run_mode(EngineProfile::serial());
        let (lat_p, end_p, rep_p, par_p) = run_mode(EngineProfile::forced());
        assert!(!par_s, "Off must run serially");
        assert!(par_p, "Force with a plan must partition");
        assert_eq!(rep_p.domains, 2);
        // `sync_rounds` now counts true blocking episodes, which the batched
        // protocol may avoid entirely (and the cooperative executor always
        // does); amortization shows up as windows advanced without blocking.
        assert!(
            rep_p.engine_counters.sync_rounds_saved > 0,
            "batched windows must advance without blocking: {rep_p:?}"
        );
        assert_eq!(lat_s, lat_p, "latency must be bit-identical");
        assert_eq!(end_s, end_p, "quiescence time must be bit-identical");
        assert_eq!(
            (rep_s.hca_packets_sent, rep_s.hca_packets_received),
            (rep_p.hca_packets_sent, rep_p.hca_packets_received),
        );
        assert_eq!(
            rep_s.engine_counters.events_processed, rep_p.engine_counters.events_processed,
            "both engines must dispatch the same events"
        );
    }

    #[test]
    fn rc_medium_messages_collapse_with_delay() {
        fn rc_bw(delay: Dur, size: u32, iters: u64) -> f64 {
            let (mut f, a, b) = cluster_pair(
                delay,
                Box::new(BwPeer::sender(BwConfig::new(size, iters))),
                Box::new(BwPeer::receiver()),
            );
            let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
            f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
            f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
            f.run();
            f.hca(a).ulp::<BwPeer>().bandwidth_mbs()
        }
        // 64 KB at 10 ms delay: 16-message window over a 20 ms RTT pipe.
        let collapsed = rc_bw(Dur::from_ms(10), 65536, 96);
        assert!(collapsed < 100.0, "64K @ 10ms should collapse: {collapsed}");
        // 4 MB at 10 ms delay recovers most of the SDR line rate.
        let recovered = rc_bw(Dur::from_ms(10), 1 << 22, 64);
        assert!(recovered > 700.0, "4M @ 10ms should recover: {recovered}");
        // 64 KB with no delay is near line rate.
        let lan = rc_bw(Dur::ZERO, 65536, 400);
        assert!(lan > 900.0, "64K @ 0 delay: {lan}");
    }
}
