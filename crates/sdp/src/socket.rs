//! The SDP socket: stream semantics over one RC QP, with credit-managed
//! BCopy buffers and SrcAvail/RDMA-read ZCopy.

use crate::wire::{SdpWire, BSDH_BYTES, SDP_CTRL_BYTES};
use ibfabric::hca::HcaCore;
use ibfabric::qp::Qpn;
use ibfabric::verbs::{Completion, RecvWr, SendKind, SendWr};
use simcore::{Ctx, Dur, Rate, SerialResource};
use std::collections::{HashMap, VecDeque};

/// SDP socket parameters.
#[derive(Copy, Clone, Debug)]
pub struct SdpConfig {
    /// Private receive-buffer size (BCopy granularity).
    pub buf_size: u32,
    /// Private-buffer credits granted by the receiver.
    pub send_credits: u32,
    /// Application sends at or above this size use the ZCopy path.
    pub zcopy_threshold: u32,
    /// Memcpy rate for BCopy copies (both sides).
    pub copy_rate: Rate,
    /// Return credits after this many drained buffers.
    pub credit_batch: u32,
}

impl Default for SdpConfig {
    fn default() -> Self {
        SdpConfig {
            buf_size: 8192,
            send_credits: 16,
            zcopy_threshold: 65536,
            copy_rate: Rate::from_ps_per_byte(250),
            credit_batch: 4,
        }
    }
}

/// Events surfaced to the owning application.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SdpEvent {
    /// Bytes arrived in order at the receiver.
    Delivered(u64),
    /// A ZCopy send was fully pulled by the peer.
    ZcopyComplete(u64),
}

/// One SDP socket endpoint (embed in a ULP; forward completions here).
pub struct SdpSocket {
    cfg: SdpConfig,
    /// The RC QP carrying this socket (set after QP creation).
    pub qpn: Qpn,
    // --- send side ---
    credits: u32,
    bcopy_queue: VecDeque<u32>,
    cpu: SerialResource,
    next_srcavail: u32,
    zcopy_outstanding: HashMap<u32, u64>,
    // --- receive side ---
    drained_since_credit: u32,
    read_of_wr: HashMap<u64, (u32, u64)>,
    next_wr: u64,
    delivered: u64,
}

impl SdpSocket {
    /// A fresh socket.
    pub fn new(cfg: SdpConfig) -> Self {
        SdpSocket {
            cfg,
            qpn: Qpn(0),
            credits: cfg.send_credits,
            bcopy_queue: VecDeque::new(),
            cpu: SerialResource::new(Rate::INFINITE),
            next_srcavail: 1,
            zcopy_outstanding: HashMap::new(),
            drained_since_credit: 0,
            read_of_wr: HashMap::new(),
            next_wr: 1,
            delivered: 0,
        }
    }

    /// Bytes delivered in order to this endpoint.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Pre-post the receive pool. Call once at start.
    pub fn setup(&mut self, hca: &mut HcaCore) {
        for _ in 0..2048 {
            hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
        }
    }

    /// Application `send()` of one message of `len` bytes: BCopy below the
    /// threshold, ZCopy (SrcAvail) at or above it.
    pub fn app_send(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, len: u32) {
        if len >= self.cfg.zcopy_threshold {
            let id = self.next_srcavail;
            self.next_srcavail += 1;
            self.zcopy_outstanding.insert(id, len as u64);
            let wr = SendWr::send(0, SDP_CTRL_BYTES, 0)
                .with_meta(SdpWire::SrcAvail { id, len }.encode());
            hca.post_send(ctx, self.qpn, wr);
        } else {
            // Chunk into private buffers and push through the credit gate.
            let mut remaining = len;
            while remaining > 0 {
                let piece = remaining.min(self.cfg.buf_size);
                self.bcopy_queue.push_back(piece);
                remaining -= piece;
            }
            self.pump_bcopy(hca, ctx);
        }
    }

    fn pump_bcopy(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        while self.credits > 0 {
            let Some(piece) = self.bcopy_queue.pop_front() else {
                break;
            };
            self.credits -= 1;
            // Copy into the private buffer, then send.
            let (_, ready) = self
                .cpu
                .reserve_dur(ctx.now(), self.cfg.copy_rate.tx_time(piece as u64));
            let wr = SendWr::send(0, piece + BSDH_BYTES, 0)
                .with_meta(SdpWire::Data { len: piece }.encode());
            hca.post_send_after(ctx, self.qpn, wr, ready);
        }
    }

    fn on_data(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, len: u32) -> SdpEvent {
        // Copy out of the private buffer; the freed buffer's credit returns
        // once the copy is done (batched).
        let (_, fin) = self
            .cpu
            .reserve_dur(ctx.now(), self.cfg.copy_rate.tx_time(len as u64));
        self.delivered += len as u64;
        self.drained_since_credit += 1;
        if self.drained_since_credit >= self.cfg.credit_batch {
            let n = self.drained_since_credit;
            self.drained_since_credit = 0;
            let wr =
                SendWr::send(0, SDP_CTRL_BYTES, 0).with_meta(SdpWire::CreditUpdate { n }.encode());
            hca.post_send_after(ctx, self.qpn, wr, fin);
        }
        SdpEvent::Delivered(len as u64)
    }

    /// Feed an HCA completion belonging to this socket's QP. Returns an
    /// application-visible event, if any.
    pub fn on_completion(
        &mut self,
        hca: &mut HcaCore,
        ctx: &mut Ctx<'_>,
        c: &Completion,
    ) -> Option<SdpEvent> {
        match c {
            Completion::RecvDone { qpn, data, .. } if *qpn == self.qpn => {
                hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
                match SdpWire::decode(data.as_ref().expect("SDP message without header")) {
                    SdpWire::Data { len } => Some(self.on_data(hca, ctx, len)),
                    SdpWire::CreditUpdate { n } => {
                        self.credits += n;
                        self.pump_bcopy(hca, ctx);
                        None
                    }
                    SdpWire::SrcAvail { id, len } => {
                        // Pull the advertised bytes with one RDMA read.
                        let wr_id = self.next_wr;
                        self.next_wr += 1;
                        self.read_of_wr.insert(wr_id, (id, len as u64));
                        hca.post_send(ctx, self.qpn, SendWr::rdma_read(wr_id, len));
                        None
                    }
                    SdpWire::RdmaRdCompl { id } => {
                        let len = self
                            .zcopy_outstanding
                            .remove(&id)
                            .expect("RdmaRdCompl for unknown SrcAvail");
                        Some(SdpEvent::ZcopyComplete(len))
                    }
                }
            }
            Completion::SendDone {
                qpn, wr_id, kind, ..
            } if *qpn == self.qpn && *kind == SendKind::RdmaRead => {
                // Our pull of a SrcAvail finished: data delivered, tell peer.
                let (id, len) = self
                    .read_of_wr
                    .remove(wr_id)
                    .expect("read completion for unknown pull");
                self.delivered += len;
                let wr = SendWr::send(0, SDP_CTRL_BYTES, 0)
                    .with_meta(SdpWire::RdmaRdCompl { id }.encode());
                hca.post_send(ctx, self.qpn, wr);
                Some(SdpEvent::Delivered(len))
            }
            Completion::SendDone { qpn, .. } if *qpn == self.qpn => None,
            _ => None,
        }
    }

    /// Current send credits (diagnostics).
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Copy work accumulated (utilization diagnostics).
    pub fn copy_busy(&self) -> Dur {
        self.cpu.busy_time()
    }
}
