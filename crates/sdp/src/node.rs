//! TTCP-style SDP streaming endpoint (the reference-\[19\] workload).

use crate::socket::{SdpConfig, SdpEvent, SdpSocket};
use ibfabric::hca::HcaCore;
use ibfabric::ulp::Ulp;
use ibfabric::verbs::Completion;
use simcore::{Ctx, Time};

/// An SDP node: streams `count` application messages of `msg_size` bytes to
/// its peer (sender role), or sinks them (receiver role).
pub struct SdpNode {
    /// The socket (set `socket.qpn` after QP creation).
    pub socket: SdpSocket,
    msg_size: u32,
    to_send: u64,
    first_byte_at: Option<Time>,
    last_byte_at: Option<Time>,
}

impl SdpNode {
    /// A sender of `count` messages of `msg_size` bytes.
    pub fn sender(cfg: SdpConfig, msg_size: u32, count: u64) -> Self {
        SdpNode {
            socket: SdpSocket::new(cfg),
            msg_size,
            to_send: count,
            first_byte_at: None,
            last_byte_at: None,
        }
    }

    /// A pure receiver.
    pub fn receiver(cfg: SdpConfig) -> Self {
        SdpNode {
            socket: SdpSocket::new(cfg),
            msg_size: 0,
            to_send: 0,
            first_byte_at: None,
            last_byte_at: None,
        }
    }

    /// Bytes delivered to this endpoint.
    pub fn delivered(&self) -> u64 {
        self.socket.delivered()
    }

    /// Receive-side goodput in MB/s.
    pub fn throughput_mbs(&self) -> f64 {
        let (Some(t0), Some(t1)) = (self.first_byte_at, self.last_byte_at) else {
            return 0.0;
        };
        let d = t1.since(t0);
        if d.is_zero() {
            return 0.0;
        }
        self.delivered() as f64 / d.as_secs_f64() / 1e6
    }
}

impl Ulp for SdpNode {
    fn start(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        self.socket.setup(hca);
        for _ in 0..self.to_send {
            self.socket.app_send(hca, ctx, self.msg_size);
        }
    }

    fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
        if let Some(SdpEvent::Delivered(_)) = self.socket.on_completion(hca, ctx, &c) {
            if self.first_byte_at.is_none() {
                self.first_byte_at = Some(ctx.now());
            }
            self.last_byte_at = Some(ctx.now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfabric::fabric::{Fabric, FabricBuilder, NodeHandle};
    use ibfabric::hca::HcaConfig;
    use ibfabric::link::LinkConfig;
    use ibfabric::perftest::rc_qp_pair;
    use ibfabric::qp::QpConfig;
    use obsidian::LongbowPair;
    use simcore::Dur;

    fn wan_pair(
        delay: Dur,
        tx: Box<SdpNode>,
        rx: Box<SdpNode>,
    ) -> (Fabric, NodeHandle, NodeHandle) {
        let mut b = FabricBuilder::new(19);
        let a = b.add_hca(HcaConfig::default(), tx);
        let c = b.add_hca(HcaConfig::default(), rx);
        let sw_a = b.add_switch();
        let sw_b = b.add_switch();
        b.link(a.actor, sw_a, LinkConfig::ddr_lan());
        b.link(c.actor, sw_b, LinkConfig::ddr_lan());
        LongbowPair::insert(&mut b, sw_a, sw_b, delay);
        let mut f = b.finish();
        let (qa, qb) = rc_qp_pair(&mut f, a, c, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<SdpNode>().socket.qpn = qa;
        f.hca_mut(c).ulp_mut::<SdpNode>().socket.qpn = qb;
        (f, a, c)
    }

    fn run_stream(delay: Dur, msg_size: u32, count: u64) -> f64 {
        let (mut f, _a, c) = wan_pair(
            delay,
            Box::new(SdpNode::sender(SdpConfig::default(), msg_size, count)),
            Box::new(SdpNode::receiver(SdpConfig::default())),
        );
        f.run();
        let rx = f.hca(c).ulp::<SdpNode>();
        assert_eq!(rx.delivered(), msg_size as u64 * count, "exact delivery");
        rx.throughput_mbs()
    }

    #[test]
    fn bcopy_delivers_and_peaks_near_wire() {
        // 32 KB messages stay below the ZCopy threshold.
        let bw = run_stream(Dur::ZERO, 32768, 600);
        assert!(bw > 850.0 && bw < 1000.0, "SDP bcopy peak {bw}");
    }

    #[test]
    fn zcopy_delivers_large_messages() {
        let bw = run_stream(Dur::ZERO, 1 << 20, 48);
        assert!(bw > 850.0, "SDP zcopy peak {bw}");
    }

    #[test]
    fn bcopy_credit_loop_throttles_on_the_wan() {
        // 16 credits x 8 KB over a 2 ms RTT: ~64 MB/s ceiling.
        let bw = run_stream(Dur::from_ms(1), 32768, 400);
        assert!(bw < 100.0, "bcopy at 1 ms should be credit-bound: {bw}");
    }

    #[test]
    fn zcopy_rides_through_moderate_delay() {
        // Large pulls keep the pipe fuller than the bcopy credit loop.
        let bcopy = run_stream(Dur::from_ms(1), 32768, 200);
        let zcopy = run_stream(Dur::from_ms(1), 1 << 20, 32);
        assert!(
            zcopy > 3.0 * bcopy,
            "zcopy ({zcopy}) should far outrun bcopy ({bcopy}) at 1 ms"
        );
    }

    #[test]
    fn sdp_beats_ipoib_latency_class_costs() {
        // SDP's only per-message costs are copies; a 32 KB stream on the
        // LAN should clear the IPoIB-UD host-processing ceiling (~470).
        let bw = run_stream(Dur::ZERO, 32768, 400);
        assert!(bw > 600.0, "SDP should beat the IPoIB-UD cap: {bw}");
    }
}
