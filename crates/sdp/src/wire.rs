//! SDP wire messages (BSDH-framed in real SDP; metadata here).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Wire overhead of an SDP data message (the BSDH header).
pub const BSDH_BYTES: u32 = 16;
/// Wire size of a standalone control message (credit update / SrcAvail /
/// RdmaRdCompl).
pub const SDP_CTRL_BYTES: u32 = 48;

/// SDP protocol messages.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SdpWire {
    /// BCopy data: `len` payload bytes in one private buffer.
    Data {
        /// Payload length (≤ the negotiated buffer size).
        len: u32,
    },
    /// Receiver returns `n` private-buffer credits.
    CreditUpdate {
        /// Credits returned.
        n: u32,
    },
    /// ZCopy: the sender advertises `len` bytes for the receiver to pull.
    SrcAvail {
        /// Advertisement id.
        id: u32,
        /// Bytes available.
        len: u32,
    },
    /// ZCopy: the receiver finished the RDMA read of advertisement `id`.
    RdmaRdCompl {
        /// Advertisement id.
        id: u32,
    },
}

impl SdpWire {
    /// Serialize for [`ibfabric::SendWr::with_meta`].
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(9);
        match self {
            SdpWire::Data { len } => {
                b.put_u8(0);
                b.put_u32(*len);
            }
            SdpWire::CreditUpdate { n } => {
                b.put_u8(1);
                b.put_u32(*n);
            }
            SdpWire::SrcAvail { id, len } => {
                b.put_u8(2);
                b.put_u32(*id);
                b.put_u32(*len);
            }
            SdpWire::RdmaRdCompl { id } => {
                b.put_u8(3);
                b.put_u32(*id);
            }
        }
        b.freeze()
    }

    /// Deserialize; panics on malformed input (simulation invariant).
    pub fn decode(mut buf: &[u8]) -> Self {
        match buf.get_u8() {
            0 => SdpWire::Data { len: buf.get_u32() },
            1 => SdpWire::CreditUpdate { n: buf.get_u32() },
            2 => SdpWire::SrcAvail {
                id: buf.get_u32(),
                len: buf.get_u32(),
            },
            3 => SdpWire::RdmaRdCompl { id: buf.get_u32() },
            other => panic!("unknown SDP message kind {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for w in [
            SdpWire::Data { len: 8192 },
            SdpWire::CreditUpdate { n: 8 },
            SdpWire::SrcAvail {
                id: 3,
                len: 1 << 20,
            },
            SdpWire::RdmaRdCompl { id: 3 },
        ] {
            assert_eq!(SdpWire::decode(&w.encode()), w);
        }
    }
}
