//! # sdp — Sockets Direct Protocol over the simulated fabric
//!
//! SDP gives sockets applications the InfiniBand fast path without a TCP
//! stack: stream semantics carried directly on an RC QP. The paper's
//! related work (Prescott & Taylor, reference \[19\]) characterized the same
//! Obsidian Longbows with TTCP over SDP/IB; this crate adds that comparison
//! point next to IPoIB.
//!
//! Two data paths, as in real SDP:
//!
//! * **BCopy** (buffer copy): the sender copies user bytes into a pool of
//!   pre-registered 8 KB private buffers and sends each as an RC message;
//!   the pool is credit-managed by the receiver, which returns credits as
//!   the application drains data. Cheap for small/medium transfers, but
//!   the credit loop spans the WAN round trip.
//! * **ZCopy** (`SrcAvail`): above a threshold the sender instead
//!   advertises the source buffer and the receiver pulls it with one RDMA
//!   read, then acknowledges with `RdmaRdCompl` — zero copies, one
//!   round trip per advertisement, bounded by the QP's outstanding-read
//!   credits.
//!
//! Compared to IPoIB+TCP, SDP skips the per-packet TCP/IP stack costs
//! entirely — which is exactly what the WAN comparison (`extE`) shows.

pub mod node;
pub mod socket;
pub mod wire;

pub use node::SdpNode;
pub use socket::{SdpConfig, SdpEvent, SdpSocket};
pub use wire::SdpWire;
