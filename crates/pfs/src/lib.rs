//! # pfs — a Lustre-like parallel filesystem over the simulated fabric
//!
//! The paper closes by naming *parallel file-systems* as the next context
//! for IB range extension, and its related work (\[6\], Carter et al.)
//! evaluated Lustre over InfiniBand WAN on DOE's UltraScience Net. This
//! crate supplies that substrate: a metadata server (MDS), `N` object
//! storage servers (OSSes), and clients that stripe file I/O across them —
//! Lustre's architecture reduced to what the WAN question needs.
//!
//! A file read proceeds exactly as in Lustre's happy path:
//!
//! 1. `open` RPC to the MDS returns the striping layout (one small WAN
//!    round trip),
//! 2. the client issues stripe-sized read RPCs round-robin across the
//!    OSSes, keeping `rpcs_in_flight` outstanding per OSS,
//! 3. each OSS pushes its stripe back with chunked RDMA writes and an
//!    ordered reply (the same RPC/RDMA data path as `nfssim`, but with a
//!    1 MB default transfer size).
//!
//! The WAN story this substrate exists to tell: **striping is the
//! filesystem-level version of the paper's parallel-streams optimization.**
//! A single OSS behaves like single-stream NFS and starves on long pipes;
//! striping across 8 OSSes keeps 8 independent RC windows in flight and
//! recovers most of the link (extension experiment `extF`).

pub mod client;
pub mod experiment;
pub mod server;
pub mod wire;

pub use client::{PfsClient, PfsClientConfig};
pub use experiment::{run_striped_read, PfsSetup, PfsThroughput};
pub use server::{MdsServer, OssServer, OssServerConfig};
pub use wire::{PfsMsg, MDS_RPC_BYTES, OSS_RPC_BYTES, PFS_RDMA_CHUNK, PFS_REPLY_BYTES};
