//! The metadata server and object storage servers.

use crate::wire::{PfsMsg, PFS_RDMA_CHUNK, PFS_REPLY_BYTES};
use ibfabric::hca::HcaCore;
use ibfabric::qp::Qpn;
use ibfabric::ulp::Ulp;
use ibfabric::verbs::{Completion, RecvWr, SendWr};
use simcore::{Ctx, Dur, Rate, SerialResource};

/// The metadata server: answers `open` with the file layout. One QP per
/// client (register with [`MdsServer::add_client_qp`]).
pub struct MdsServer {
    qpns: Vec<Qpn>,
    stripe_count: u32,
    cpu: SerialResource,
    op_cpu: Dur,
    opens_served: u64,
}

impl MdsServer {
    /// An MDS advertising files striped over `stripe_count` OSSes.
    pub fn new(stripe_count: u32) -> Self {
        MdsServer {
            qpns: Vec::new(),
            stripe_count,
            cpu: SerialResource::new(Rate::INFINITE),
            op_cpu: Dur::from_us(20),
            opens_served: 0,
        }
    }

    /// Register a client-facing QP (call during setup).
    pub fn add_client_qp(&mut self, qpn: Qpn) {
        self.qpns.push(qpn);
    }

    /// Opens served.
    pub fn opens_served(&self) -> u64 {
        self.opens_served
    }
}

impl Ulp for MdsServer {
    fn start(&mut self, hca: &mut HcaCore, _ctx: &mut Ctx<'_>) {
        for &q in &self.qpns {
            for _ in 0..64 {
                hca.post_recv(q, RecvWr { wr_id: 0 });
            }
        }
    }

    fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
        if let Completion::RecvDone { qpn, data, .. } = c {
            hca.post_recv(qpn, RecvWr { wr_id: 0 });
            match PfsMsg::decode(&data.expect("PFS RPC without header")) {
                PfsMsg::Open { xid } => {
                    self.opens_served += 1;
                    let (_, ready) = self.cpu.reserve_dur(ctx.now(), self.op_cpu);
                    let reply = SendWr::send(0, PFS_REPLY_BYTES, 0).with_meta(
                        PfsMsg::OpenReply {
                            xid,
                            stripe_count: self.stripe_count,
                        }
                        .encode(),
                    );
                    hca.post_send_after(ctx, qpn, reply, ready);
                }
                other => panic!("MDS received {other:?}"),
            }
        }
    }
}

/// OSS cost model.
#[derive(Copy, Clone, Debug)]
pub struct OssServerConfig {
    /// Fixed CPU per read RPC (lock service, extent lookup).
    pub op_cpu: Dur,
    /// Backend storage streaming rate (cached/striped spindles or flash;
    /// generous so the WAN stays the story).
    pub storage_rate: Rate,
}

impl Default for OssServerConfig {
    fn default() -> Self {
        OssServerConfig {
            op_cpu: Dur::from_us(40),
            storage_rate: Rate::from_mbytes_per_sec(2000),
        }
    }
}

/// One object storage server: serves extent reads with chunked RDMA writes
/// plus an ordered reply, per client QP.
pub struct OssServer {
    cfg: OssServerConfig,
    qpns: Vec<Qpn>,
    cpu: SerialResource,
    storage: SerialResource,
    bytes_served: u64,
}

impl OssServer {
    /// A fresh OSS.
    pub fn new(cfg: OssServerConfig) -> Self {
        OssServer {
            cfg,
            qpns: Vec::new(),
            cpu: SerialResource::new(Rate::INFINITE),
            storage: SerialResource::new(cfg.storage_rate),
            bytes_served: 0,
        }
    }

    /// Register a client-facing QP (call during setup).
    pub fn add_client_qp(&mut self, qpn: Qpn) {
        self.qpns.push(qpn);
    }

    /// Bytes pushed to clients so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }
}

impl Ulp for OssServer {
    fn start(&mut self, hca: &mut HcaCore, _ctx: &mut Ctx<'_>) {
        for &q in &self.qpns {
            for _ in 0..256 {
                hca.post_recv(q, RecvWr { wr_id: 0 });
            }
        }
    }

    fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
        if let Completion::RecvDone { qpn, data, .. } = c {
            hca.post_recv(qpn, RecvWr { wr_id: 0 });
            match PfsMsg::decode(&data.expect("PFS RPC without header")) {
                PfsMsg::Read { xid, len } => {
                    self.bytes_served += len as u64;
                    // RPC service + backend streaming, then RDMA push.
                    let (_, cpu_done) = self.cpu.reserve_dur(ctx.now(), self.cfg.op_cpu);
                    let (_, ready) = self.storage.reserve(cpu_done, len as u64);
                    let chunks = len.div_ceil(PFS_RDMA_CHUNK);
                    for i in 0..chunks {
                        let this = (len - i * PFS_RDMA_CHUNK).min(PFS_RDMA_CHUNK);
                        hca.post_send_after(ctx, qpn, SendWr::rdma_write(0, this), ready);
                    }
                    let reply = SendWr::send(0, PFS_REPLY_BYTES, 0)
                        .with_meta(PfsMsg::ReadReply { xid }.encode());
                    hca.post_send_after(ctx, qpn, reply, ready);
                }
                other => panic!("OSS received {other:?}"),
            }
        }
    }
}
