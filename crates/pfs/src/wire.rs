//! PFS RPC wire messages.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Wire size of an MDS open/close RPC.
pub const MDS_RPC_BYTES: u32 = 256;
/// Wire size of an OSS read call.
pub const OSS_RPC_BYTES: u32 = 160;
/// Wire size of a reply header.
pub const PFS_REPLY_BYTES: u32 = 128;
/// OSS bulk data moves in RDMA chunks of this size (Lustre's 1 MB bulk
/// window is carried as LNET fragments; we model the RDMA transfer unit).
pub const PFS_RDMA_CHUNK: u32 = 65536;

/// PFS protocol messages.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PfsMsg {
    /// Client → MDS: open a file, asking for its layout.
    Open {
        /// Request id.
        xid: u64,
    },
    /// MDS → client: layout (stripe count rides in the reply).
    OpenReply {
        /// Request id.
        xid: u64,
        /// Number of OSSes the file stripes over.
        stripe_count: u32,
    },
    /// Client → OSS: read one stripe-sized extent.
    Read {
        /// Request id.
        xid: u64,
        /// Extent length.
        len: u32,
    },
    /// OSS → client: the RDMA-written extent for `xid` is complete.
    ReadReply {
        /// Request id.
        xid: u64,
    },
}

impl PfsMsg {
    /// Serialize for [`ibfabric::SendWr::with_meta`].
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(13);
        match self {
            PfsMsg::Open { xid } => {
                b.put_u8(0);
                b.put_u64(*xid);
            }
            PfsMsg::OpenReply { xid, stripe_count } => {
                b.put_u8(1);
                b.put_u64(*xid);
                b.put_u32(*stripe_count);
            }
            PfsMsg::Read { xid, len } => {
                b.put_u8(2);
                b.put_u64(*xid);
                b.put_u32(*len);
            }
            PfsMsg::ReadReply { xid } => {
                b.put_u8(3);
                b.put_u64(*xid);
            }
        }
        b.freeze()
    }

    /// Deserialize; panics on malformed input (simulation invariant).
    pub fn decode(mut buf: &[u8]) -> Self {
        match buf.get_u8() {
            0 => PfsMsg::Open { xid: buf.get_u64() },
            1 => PfsMsg::OpenReply {
                xid: buf.get_u64(),
                stripe_count: buf.get_u32(),
            },
            2 => PfsMsg::Read {
                xid: buf.get_u64(),
                len: buf.get_u32(),
            },
            3 => PfsMsg::ReadReply { xid: buf.get_u64() },
            other => panic!("unknown PFS message kind {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for m in [
            PfsMsg::Open { xid: 1 },
            PfsMsg::OpenReply {
                xid: 1,
                stripe_count: 8,
            },
            PfsMsg::Read {
                xid: 2,
                len: 1 << 20,
            },
            PfsMsg::ReadReply { xid: 2 },
        ] {
            assert_eq!(PfsMsg::decode(&m.encode()), m);
        }
    }
}
