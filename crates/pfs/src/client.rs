//! The PFS client: open at the MDS, then stripe reads across the OSSes.

use crate::wire::{PfsMsg, MDS_RPC_BYTES, OSS_RPC_BYTES};
use ibfabric::hca::HcaCore;
use ibfabric::qp::Qpn;
use ibfabric::ulp::Ulp;
use ibfabric::verbs::{Completion, RecvWr, SendWr};
use simcore::{Ctx, Time};

/// Client workload parameters.
#[derive(Copy, Clone, Debug)]
pub struct PfsClientConfig {
    /// Bytes per stripe-read RPC (Lustre default transfer: 1 MB).
    pub stripe_size: u32,
    /// Total stripes to read (file size / stripe size).
    pub stripes: u64,
    /// Concurrent read RPCs kept in flight per OSS (Lustre's
    /// `max_rpcs_in_flight`).
    pub rpcs_in_flight: usize,
}

/// The client ULP. Set `mds_qpn` and `oss_qpns` after QP creation.
pub struct PfsClient {
    cfg: PfsClientConfig,
    /// QP to the metadata server.
    pub mds_qpn: Qpn,
    /// QPs to each object storage server, stripe order.
    pub oss_qpns: Vec<Qpn>,
    next_xid: u64,
    issued: u64,
    completed: u64,
    opened_at: Option<Time>,
    started: Option<Time>,
    finished: Option<Time>,
}

impl PfsClient {
    /// A client that will read `cfg.stripes` stripes.
    pub fn new(cfg: PfsClientConfig) -> Self {
        PfsClient {
            cfg,
            mds_qpn: Qpn(0),
            oss_qpns: Vec::new(),
            next_xid: 1,
            issued: 0,
            completed: 0,
            opened_at: None,
            started: None,
            finished: None,
        }
    }

    /// Stripes fully read.
    pub fn stripes_done(&self) -> u64 {
        self.completed
    }

    /// Virtual time of the MDS open round trip completing.
    pub fn opened_at(&self) -> Option<Time> {
        self.opened_at
    }

    /// Aggregate read throughput in MB/s (excluding the open).
    pub fn throughput_mbs(&self) -> f64 {
        let (Some(t0), Some(t1)) = (self.started, self.finished) else {
            return 0.0;
        };
        let d = t1.since(t0);
        if d.is_zero() {
            return 0.0;
        }
        (self.completed as f64 * self.cfg.stripe_size as f64) / d.as_secs_f64() / 1e6
    }

    fn issue_read(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, qpn: Qpn) {
        if self.issued >= self.cfg.stripes {
            return;
        }
        self.issued += 1;
        let xid = self.next_xid;
        self.next_xid += 1;
        let call = SendWr::send(0, OSS_RPC_BYTES, 0).with_meta(
            PfsMsg::Read {
                xid,
                len: self.cfg.stripe_size,
            }
            .encode(),
        );
        hca.post_send(ctx, qpn, call);
    }
}

impl Ulp for PfsClient {
    fn start(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        for _ in 0..64 {
            hca.post_recv(self.mds_qpn, RecvWr { wr_id: 0 });
        }
        for &q in &self.oss_qpns {
            for _ in 0..256 {
                hca.post_recv(q, RecvWr { wr_id: 0 });
            }
        }
        // One open round trip to learn the layout, as in Lustre.
        let open = SendWr::send(0, MDS_RPC_BYTES, 0).with_meta(PfsMsg::Open { xid: 0 }.encode());
        hca.post_send(ctx, self.mds_qpn, open);
    }

    fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
        if let Completion::RecvDone { qpn, data, .. } = c {
            hca.post_recv(qpn, RecvWr { wr_id: 0 });
            match PfsMsg::decode(&data.expect("PFS RPC without header")) {
                PfsMsg::OpenReply { stripe_count, .. } => {
                    assert_eq!(
                        stripe_count as usize,
                        self.oss_qpns.len(),
                        "layout must match the wired OSSes"
                    );
                    self.opened_at = Some(ctx.now());
                    self.started = Some(ctx.now());
                    // Fill every OSS's pipeline.
                    for i in 0..self.oss_qpns.len() {
                        for _ in 0..self.cfg.rpcs_in_flight {
                            let q = self.oss_qpns[i];
                            self.issue_read(hca, ctx, q);
                        }
                    }
                }
                PfsMsg::ReadReply { .. } => {
                    self.completed += 1;
                    if self.completed == self.cfg.stripes {
                        self.finished = Some(ctx.now());
                    }
                    // Keep the pipeline of the OSS that just freed a slot full.
                    self.issue_read(hca, ctx, qpn);
                }
                other => panic!("client received {other:?}"),
            }
        }
    }
}
