//! Striped-read experiment assembly: storage cluster (MDS + OSSes) on one
//! side of the WAN, client on the other.

use crate::client::{PfsClient, PfsClientConfig};
use crate::server::{MdsServer, OssServer, OssServerConfig};
use ibfabric::fabric::{EngineProfile, FabricBuilder};
use ibfabric::hca::HcaConfig;
use ibfabric::link::LinkConfig;
use ibfabric::perftest::rc_qp_pair;
use ibfabric::qp::QpConfig;
use obsidian::LongbowPair;
use simcore::Dur;

/// RC window on the OSS bulk QPs (Lustre bulk RPCs pipeline deeply).
pub const PFS_QP_WINDOW: usize = 32;

/// One striped-read experiment.
#[derive(Copy, Clone, Debug)]
pub struct PfsSetup {
    /// Number of object storage servers the file stripes over.
    pub stripe_count: usize,
    /// Stripe/RPC size in bytes (Lustre default 1 MB).
    pub stripe_size: u32,
    /// File size in bytes.
    pub file_size: u64,
    /// Concurrent RPCs per OSS.
    pub rpcs_in_flight: usize,
    /// One-way WAN delay; `None` puts the client inside the storage cluster.
    pub delay: Option<Dur>,
    /// Engine execution profile (coalescing, partition mode).
    pub profile: EngineProfile,
    /// Engine seed.
    pub seed: u64,
}

impl PfsSetup {
    /// A quick-running default: 64 MB file in 1 MB stripes, 2 RPCs deep.
    pub fn quick(stripe_count: usize, delay: Option<Dur>) -> Self {
        PfsSetup {
            stripe_count,
            stripe_size: 1 << 20,
            file_size: 64 << 20,
            rpcs_in_flight: 2,
            delay,
            profile: EngineProfile::default(),
            seed: 67,
        }
    }
}

/// Measured result.
#[derive(Copy, Clone, Debug)]
pub struct PfsThroughput {
    /// Aggregate read throughput, MB/s.
    pub mbs: f64,
    /// Stripes completed.
    pub stripes: u64,
    /// Virtual microseconds spent on the open round trip.
    pub open_us: f64,
}

/// Run one striped read and return the client-observed throughput.
pub fn run_striped_read(setup: PfsSetup) -> PfsThroughput {
    assert!(setup.stripe_count >= 1);
    let stripes = setup.file_size / setup.stripe_size as u64;
    let client_cfg = PfsClientConfig {
        stripe_size: setup.stripe_size,
        stripes,
        rpcs_in_flight: setup.rpcs_in_flight,
    };

    let mut b = FabricBuilder::with_profile(setup.seed, setup.profile);
    let client = b.add_hca(HcaConfig::default(), Box::new(PfsClient::new(client_cfg)));
    let mds = b.add_hca(
        HcaConfig::default(),
        Box::new(MdsServer::new(setup.stripe_count as u32)),
    );
    let osses: Vec<_> = (0..setup.stripe_count)
        .map(|_| {
            b.add_hca(
                HcaConfig::default(),
                Box::new(OssServer::new(OssServerConfig::default())),
            )
        })
        .collect();

    let storage_switch = b.add_switch();
    b.link(mds.actor, storage_switch, LinkConfig::ddr_lan());
    for oss in &osses {
        b.link(oss.actor, storage_switch, LinkConfig::ddr_lan());
    }
    match setup.delay {
        None => {
            // Client inside the storage cluster (the LAN baseline).
            b.link(client.actor, storage_switch, LinkConfig::ddr_lan());
        }
        Some(delay) => {
            let client_switch = b.add_switch();
            b.link(client.actor, client_switch, LinkConfig::ddr_lan());
            LongbowPair::insert(&mut b, client_switch, storage_switch, delay);
        }
    }
    let mut f = b.finish();

    let qp_cfg = QpConfig::rc().with_window(PFS_QP_WINDOW);
    let (qc_mds, qmds) = rc_qp_pair(&mut f, client, mds, qp_cfg);
    f.hca_mut(client).ulp_mut::<PfsClient>().mds_qpn = qc_mds;
    f.hca_mut(mds).ulp_mut::<MdsServer>().add_client_qp(qmds);
    for oss in &osses {
        let (qc, qo) = rc_qp_pair(&mut f, client, *oss, qp_cfg);
        f.hca_mut(client).ulp_mut::<PfsClient>().oss_qpns.push(qc);
        f.hca_mut(*oss).ulp_mut::<OssServer>().add_client_qp(qo);
    }

    f.run();
    let c = f.hca(client).ulp::<PfsClient>();
    assert_eq!(c.stripes_done(), stripes, "client did not finish the file");
    PfsThroughput {
        mbs: c.throughput_mbs(),
        stripes,
        open_us: c.opened_at().map(|t| t.as_us_f64()).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_complete_and_open_pays_one_rtt() {
        let r = run_striped_read(PfsSetup::quick(4, Some(Dur::from_ms(1))));
        assert_eq!(r.stripes, 64);
        // The open round trip crosses the 1 ms WAN twice.
        assert!(r.open_us > 2000.0 && r.open_us < 2300.0, "{}", r.open_us);
    }

    #[test]
    fn striping_recovers_wan_bandwidth() {
        // The filesystem-level parallel-streams story: one OSS starves on a
        // 10 ms pipe; eight stripe targets recover most of it.
        let one = run_striped_read(PfsSetup::quick(1, Some(Dur::from_ms(10)))).mbs;
        let eight = {
            let mut s = PfsSetup::quick(8, Some(Dur::from_ms(10)));
            s.file_size = 128 << 20;
            run_striped_read(s).mbs
        };
        assert!(
            eight > 4.0 * one,
            "8 stripes ({eight}) must recover over 1 ({one}) at 10 ms"
        );
    }

    #[test]
    fn lan_aggregate_reaches_ddr_class_rates() {
        let r = run_striped_read(PfsSetup::quick(4, None));
        assert!(r.mbs > 1500.0, "LAN striped read {}", r.mbs);
    }

    #[test]
    fn deeper_rpc_pipelines_help_on_the_wan() {
        let shallow = {
            let mut s = PfsSetup::quick(2, Some(Dur::from_ms(1)));
            s.rpcs_in_flight = 1;
            run_striped_read(s).mbs
        };
        let deep = {
            let mut s = PfsSetup::quick(2, Some(Dur::from_ms(1)));
            s.rpcs_in_flight = 4;
            run_striped_read(s).mbs
        };
        assert!(
            deep > 1.3 * shallow,
            "4 RPCs in flight ({deep}) over 1 ({shallow})"
        );
    }
}
