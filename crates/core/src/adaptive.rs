//! WAN-adaptive protocol tuning — the paper's suggestion that "mechanisms
//! like adaptive tuning of MPI protocol ... are likely to yield the best
//! performance" since WAN separations are dynamic.
//!
//! The rendezvous protocol trades two bounce-buffer copies (eager) for an
//! RTS/CTS handshake (one extra round trip). Eager copy cost for an
//! `L`-byte message is `2 L / copy_rate`; the handshake costs ~1.5 RTT.
//! Rendezvous only wins when the copies cost more than the handshake, so
//! the break-even threshold grows linearly with RTT.

use mpisim::bench::osu_latency;
use mpisim::proto::MpiConfig;
use mpisim::world::JobSpec;
use simcore::{Dur, Rate};

/// Pick a rendezvous threshold for the measured round-trip time.
///
/// `copy_rate` is the eager bounce-buffer memcpy rate. The result is
/// clamped to `[8 KB, 1 MB]`: 8 KB is the MVAPICH2 LAN default, and above
/// 1 MB registration-cache effects (not modeled) favor rendezvous anyway.
pub fn adaptive_threshold(rtt: Dur, copy_rate: Rate) -> u32 {
    if rtt <= Dur::from_us(50) {
        // Intra-cluster regime: keep the MVAPICH2 LAN default, where
        // rendezvous also buys registration-cache and memory benefits.
        return 8 << 10;
    }
    let handshake_ns = rtt.as_ns() as f64 * 1.5;
    let ns_per_byte = copy_rate.ps_per_byte() as f64 / 1000.0;
    let breakeven = handshake_ns / (2.0 * ns_per_byte);
    (breakeven as u32).clamp(8 << 10, 1 << 20)
}

/// An [`MpiConfig`] tuned for the measured RTT.
pub fn adaptive_config(rtt: Dur) -> MpiConfig {
    let base = MpiConfig::default();
    MpiConfig {
        eager_threshold: adaptive_threshold(rtt, base.copy_rate),
        ..base
    }
}

/// Measure the small-message RTT across a WAN pair (what an adaptive
/// implementation would probe at startup), then return the tuned config.
pub fn probe_and_tune(delay: Dur) -> MpiConfig {
    let spec = JobSpec::two_clusters(1, 1, delay);
    let one_way_us = osu_latency(spec, 4, 10);
    adaptive_config(Dur::from_us_f64(2.0 * one_way_us))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_rtt_keeps_mvapich_default() {
        let cfg = adaptive_config(Dur::from_us(10));
        assert_eq!(cfg.eager_threshold, 8 << 10);
    }

    #[test]
    fn threshold_grows_with_rtt() {
        let base = MpiConfig::default();
        let t_100us = adaptive_threshold(Dur::from_us(200), base.copy_rate);
        let t_10ms = adaptive_threshold(Dur::from_ms(20), base.copy_rate);
        assert!(t_10ms > t_100us, "{t_10ms} vs {t_100us}");
        assert_eq!(t_10ms, 1 << 20); // clamped at 1 MB for a 10 ms WAN
    }

    #[test]
    fn probe_detects_wan() {
        let lan = probe_and_tune(Dur::ZERO);
        let wan = probe_and_tune(Dur::from_ms(10));
        assert!(wan.eager_threshold > lan.eager_threshold);
        assert!(wan.eager_threshold >= 64 << 10, "{}", wan.eager_threshold);
    }
}
