//! NFS experiments: Figure 13.

use crate::config::RunConfig;
use crate::results::{Figure, Series};
use crate::sweep::parallel_map;
use crate::Fidelity;
use nfssim::{run_read_experiment, NfsSetup, Transport};
use simcore::Dur;

/// Client stream (thread) counts on the Figure 13 x-axis.
pub const NFS_STREAMS: [usize; 4] = [1, 2, 4, 8];

fn setup(cfg: &RunConfig, t: Transport, threads: usize, delay: Option<Dur>) -> NfsSetup {
    let mut s = NfsSetup::scaled(t, threads, delay);
    if cfg.fidelity == Fidelity::Quick {
        s.file_size = 16 << 20;
    }
    s.profile = cfg.engine();
    s.seed = cfg.seed_for(s.seed);
    s
}

/// Figure 13(a): NFS/RDMA read throughput vs client streams — LAN baseline
/// plus each WAN delay.
pub fn fig13a_nfs_rdma(cfg: &RunConfig) -> Figure {
    let mut fig = Figure::new(
        "fig13a",
        "NFS/RDMA read throughput: LAN vs WAN delays",
        "streams",
        "MB/s",
    );
    let delays: [(String, Option<Dur>); 5] = [
        ("LAN".to_string(), None),
        ("0usec".to_string(), Some(Dur::ZERO)),
        ("10usec".to_string(), Some(Dur::from_us(10))),
        ("100usec".to_string(), Some(Dur::from_us(100))),
        ("1000usec".to_string(), Some(Dur::from_us(1000))),
    ];
    let pts: Vec<(usize, usize)> = (0..delays.len())
        .flat_map(|di| NFS_STREAMS.iter().map(move |&n| (di, n)))
        .collect();
    let res = parallel_map(cfg, pts, |(di, n)| {
        let t = run_read_experiment(setup(cfg, Transport::Rdma, n, delays[di].1));
        (di, n, t.mbs)
    });
    for (di, (label, _)) in delays.iter().enumerate() {
        let mut s = Series::new(label.clone());
        for &(rdi, n, mbs) in &res {
            if rdi == di {
                s.push(n as f64, mbs);
            }
        }
        fig.series.push(s);
    }
    fig
}

/// Figure 13(b)/(c): the three transports compared at one delay
/// (100 µs for panel b, 1000 µs for panel c).
pub fn fig13_transport_comparison(cfg: &RunConfig, delay_us: u64) -> Figure {
    let mut fig = Figure::new(
        format!("fig13-{delay_us}us"),
        format!("NFS read throughput at {delay_us} us delay"),
        "streams",
        "MB/s",
    );
    let transports = [Transport::Rdma, Transport::IpoibRc, Transport::IpoibUd];
    let pts: Vec<(Transport, usize)> = transports
        .iter()
        .flat_map(|&t| NFS_STREAMS.iter().map(move |&n| (t, n)))
        .collect();
    let res = parallel_map(cfg, pts, |(t, n)| {
        let r = run_read_experiment(setup(cfg, t, n, Some(Dur::from_us(delay_us))));
        (t, n, r.mbs)
    });
    for &t in &transports {
        let mut s = Series::new(t.label());
        for &(rt, n, mbs) in &res {
            if rt == t {
                s.push(n as f64, mbs);
            }
        }
        fig.series.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13a_lan_beats_wan() {
        let f = fig13a_nfs_rdma(&RunConfig::default());
        let lan = f.series("LAN").unwrap().y_at(8.0).unwrap();
        let wan0 = f.series("0usec").unwrap().y_at(8.0).unwrap();
        let wan1000 = f.series("1000usec").unwrap().y_at(8.0).unwrap();
        assert!(wan0 < lan, "SDR WAN ({wan0}) below DDR LAN ({lan})");
        assert!(wan1000 < 0.2 * wan0, "sharp drop at 1 ms: {wan1000}");
    }

    #[test]
    fn fig13_crossover_between_panels() {
        let b = fig13_transport_comparison(&RunConfig::default(), 100);
        let rdma_b = b.series("RDMA").unwrap().y_at(8.0).unwrap();
        let rc_b = b.series("IPoIB-RC").unwrap().y_at(8.0).unwrap();
        let ud_b = b.series("IPoIB-UD").unwrap().y_at(8.0).unwrap();
        assert!(
            rdma_b > rc_b && rc_b > ud_b,
            "panel b: {rdma_b} {rc_b} {ud_b}"
        );

        let c = fig13_transport_comparison(&RunConfig::default(), 1000);
        let rdma_c = c.series("RDMA").unwrap().y_at(8.0).unwrap();
        let rc_c = c.series("IPoIB-RC").unwrap().y_at(8.0).unwrap();
        assert!(
            rc_c > rdma_c,
            "panel c: IPoIB-RC ({rc_c}) over RDMA ({rdma_c})"
        );
    }
}
