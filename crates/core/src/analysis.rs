//! Figure analysis helpers: extract the quantities the paper's narrative is
//! built on — where curves cross, where performance halves, how big an
//! optimization's win is.

use crate::results::Series;

/// The first x at which `s` falls below `fraction` of its peak y
/// (log-linear interpolation between samples). `None` if it never does.
///
/// For delay-axis figures this answers "at what separation does this
/// protocol lose (1 - fraction) of its performance?".
pub fn degradation_point(s: &Series, fraction: f64) -> Option<f64> {
    let peak = s.peak();
    if peak <= 0.0 {
        return None;
    }
    let threshold = peak * fraction;
    let mut prev: Option<(f64, f64)> = None;
    for &(x, y) in &s.points {
        if y < threshold {
            if let Some((px, py)) = prev {
                if py > threshold && x > px {
                    // Linear interpolation in x.
                    let t = (py - threshold) / (py - y);
                    return Some(px + t * (x - px));
                }
            }
            return Some(x);
        }
        prev = Some((x, y));
    }
    None
}

/// The x at which series `a` stops beating series `b` (first sampled x
/// where `a < b` after a region where `a >= b`), linearly interpolated.
/// `None` if no crossover exists in the sampled range.
pub fn crossover(a: &Series, b: &Series) -> Option<f64> {
    let mut prev: Option<(f64, f64, f64)> = None;
    for &(x, ya) in &a.points {
        let yb = b.y_at(x)?;
        if let Some((px, pa, pb)) = prev {
            if pa >= pb && ya < yb {
                // Interpolate where the difference crosses zero.
                let d0 = pa - pb;
                let d1 = ya - yb;
                let t = d0 / (d0 - d1);
                return Some(px + t * (x - px));
            }
        }
        prev = Some((x, ya, yb));
    }
    None
}

/// The ratio `a(x) / b(x)` at a sampled x (how much better `a` is).
pub fn improvement_at(a: &Series, b: &Series, x: f64) -> Option<f64> {
    let ya = a.y_at(x)?;
    let yb = b.y_at(x)?;
    if yb == 0.0 {
        return None;
    }
    Some(ya / yb)
}

/// Geometric-mean ratio of `a` over `b` across all common x (overall win).
pub fn mean_improvement(a: &Series, b: &Series) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0;
    for &(x, ya) in &a.points {
        if let Some(yb) = b.y_at(x) {
            if ya > 0.0 && yb > 0.0 {
                log_sum += (ya / yb).ln();
                n += 1;
            }
        }
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pts: &[(f64, f64)]) -> Series {
        let mut s = Series::new("t");
        for &(x, y) in pts {
            s.push(x, y);
        }
        s
    }

    #[test]
    fn degradation_point_interpolates() {
        let s = series(&[(0.0, 100.0), (10.0, 100.0), (20.0, 40.0)]);
        // Half peak (50) crossed between x=10 (y=100) and x=20 (y=40):
        // t = 50/60 of the way.
        let x = degradation_point(&s, 0.5).unwrap();
        assert!((x - (10.0 + 10.0 * 50.0 / 60.0)).abs() < 1e-9, "{x}");
    }

    #[test]
    fn degradation_point_none_when_flat() {
        let s = series(&[(0.0, 100.0), (10.0, 99.0)]);
        assert_eq!(degradation_point(&s, 0.5), None);
    }

    #[test]
    fn crossover_finds_the_flip() {
        let a = series(&[(0.0, 10.0), (1.0, 8.0), (2.0, 2.0)]);
        let b = series(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]);
        let x = crossover(&a, &b).unwrap();
        // a-b goes 3 -> -3 between x=1 and x=2: crossing at 1.5.
        assert!((x - 1.5).abs() < 1e-9, "{x}");
    }

    #[test]
    fn crossover_none_when_always_ahead() {
        let a = series(&[(0.0, 10.0), (1.0, 9.0)]);
        let b = series(&[(0.0, 5.0), (1.0, 5.0)]);
        assert_eq!(crossover(&a, &b), None);
    }

    #[test]
    fn improvements() {
        let a = series(&[(1.0, 20.0), (2.0, 40.0)]);
        let b = series(&[(1.0, 10.0), (2.0, 10.0)]);
        assert_eq!(improvement_at(&a, &b, 1.0), Some(2.0));
        let g = mean_improvement(&a, &b).unwrap();
        assert!((g - (2.0f64 * 4.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn nfs_crossover_from_real_figure() {
        // End-to-end: the Figure 13 RDMA-vs-IPoIB-RC crossover lands
        // between 100 us and 1000 us, as the paper reports.
        use crate::config::RunConfig;
        let cfg = RunConfig::default();
        let rdma_pts: Vec<(f64, f64)> = [100u64, 1000]
            .iter()
            .map(|&d| {
                let f = crate::nfs_exp::fig13_transport_comparison(&cfg, d);
                (d as f64, f.series("RDMA").unwrap().y_at(8.0).unwrap())
            })
            .collect();
        let rc_pts: Vec<(f64, f64)> = [100u64, 1000]
            .iter()
            .map(|&d| {
                let f = crate::nfs_exp::fig13_transport_comparison(&cfg, d);
                (d as f64, f.series("IPoIB-RC").unwrap().y_at(8.0).unwrap())
            })
            .collect();
        let x = crossover(&series(&rdma_pts), &series(&rc_pts)).unwrap();
        assert!((100.0..1000.0).contains(&x), "crossover at {x} us");
    }
}
