//! MPI experiments: Figures 8–11.

use crate::config::RunConfig;
use crate::results::{Figure, Series};
use crate::sweep::parallel_map;
use crate::{Fidelity, PAPER_DELAYS_US};
use mpisim::bench::{msg_rate, osu_bcast, osu_bibw, osu_bw, wan_pair_with};
use mpisim::proto::MpiConfig;
use mpisim::world::JobSpec;
use simcore::Dur;

/// Apply the run context to a job spec: engine profile plus the config's
/// seed offset over the spec's canonical seed.
fn contextualize(spec: JobSpec, cfg: &RunConfig) -> JobSpec {
    let seed = cfg.seed_for(spec.seed);
    spec.with_profile(cfg.engine()).with_seed(seed)
}

/// Message sizes for the Figure 8 bandwidth sweep.
pub const MPI_BW_SIZES: [u32; 10] = [
    64,
    256,
    1024,
    4096,
    8192,
    16384,
    65536,
    262_144,
    1 << 20,
    4 << 20,
];

fn bw_params(fidelity: Fidelity, size: u32) -> (u32, u32) {
    // (window, iters): keep the byte budget bounded for huge messages.
    let window = ((8u32 << 20) / size.max(1)).clamp(2, 64);
    let iters = fidelity.iters(3, 12) as u32;
    (window, iters)
}

/// Figure 8: MPI bandwidth (a) / bidirectional bandwidth (b) vs message
/// size, one series per WAN delay. MVAPICH2 defaults (8 KB rendezvous
/// threshold).
pub fn fig8_mpi_bandwidth(cfg: &RunConfig, bidir: bool) -> Figure {
    let (id, title) = if bidir {
        ("fig8b", "MPI bidirectional bandwidth (MVAPICH2 defaults)")
    } else {
        ("fig8a", "MPI bandwidth (MVAPICH2 defaults)")
    };
    let mut fig = Figure::new(id, title, "msg_bytes", "MillionBytes/s");
    let pts: Vec<(u64, u32)> = PAPER_DELAYS_US
        .iter()
        .flat_map(|&d| MPI_BW_SIZES.iter().map(move |&s| (d, s)))
        .collect();
    let res = parallel_map(cfg, pts, |(d, size)| {
        let (window, iters) = bw_params(cfg.fidelity, size);
        let spec = contextualize(wan_pair_with(Dur::from_us(d), MpiConfig::default()), cfg);
        let bw = if bidir {
            osu_bibw(spec, size, window, iters)
        } else {
            osu_bw(spec, size, window, iters)
        };
        (d, size, bw)
    });
    for &d in &PAPER_DELAYS_US {
        let label = if d == 0 {
            "MVAPICH-no-delay".to_string()
        } else {
            format!("MVAPICH-{d}us-delay")
        };
        let mut s = Series::new(label);
        for &(rd, size, bw) in &res {
            if rd == d {
                s.push(size as f64, bw);
            }
        }
        fig.series.push(s);
    }
    fig
}

/// Sizes for the Figure 9 threshold-tuning comparison.
pub const FIG9_SIZES: [u32; 7] = [1024, 2048, 4096, 8192, 16384, 32768, 65536];

/// Figure 9: MPI bandwidth (a) / bidirectional bandwidth (b) at 10 ms delay
/// with the default 8 KB rendezvous threshold versus the WAN-tuned 64 KB
/// threshold.
pub fn fig9_threshold_tuning(cfg: &RunConfig, bidir: bool) -> Figure {
    let (id, title) = if bidir {
        ("fig9b", "MPI bidir bandwidth at 10 ms: threshold 8K vs 64K")
    } else {
        ("fig9a", "MPI bandwidth at 10 ms: threshold 8K vs 64K")
    };
    let mut fig = Figure::new(id, title, "msg_bytes", "MillionBytes/s");
    let delay = Dur::from_ms(10);
    let configs: [(&str, MpiConfig); 2] = [
        ("thresh-8k-original", MpiConfig::default()),
        ("thresh-64k-tuned", MpiConfig::wan_tuned()),
    ];
    let pts: Vec<(&str, MpiConfig, u32)> = configs
        .iter()
        .flat_map(|&(l, c)| FIG9_SIZES.iter().map(move |&s| (l, c, s)))
        .collect();
    let res = parallel_map(cfg, pts, |(l, c, size)| {
        let (window, iters) = bw_params(cfg.fidelity, size);
        let spec = contextualize(wan_pair_with(delay, c), cfg);
        let bw = if bidir {
            osu_bibw(spec, size, window, iters)
        } else {
            osu_bw(spec, size, window, iters)
        };
        (l, size, bw)
    });
    for &(label, _) in &configs {
        let mut s = Series::new(label);
        for &(l, size, bw) in &res {
            if l == label {
                s.push(size as f64, bw);
            }
        }
        fig.series.push(s);
    }
    fig
}

/// Pair counts for the Figure 10 message-rate sweep.
pub const FIG10_PAIRS: [usize; 3] = [4, 8, 16];
/// Message sizes for Figure 10.
pub const FIG10_SIZES: [u32; 7] = [1, 16, 256, 1024, 4096, 16384, 32768];
/// The three delays of Figure 10's panels.
pub const FIG10_DELAYS_US: [u64; 3] = [10, 1000, 10000];

/// Figure 10, one panel: aggregate multi-pair message rate vs message size
/// at the given delay, one series per pair count.
pub fn fig10_message_rate(cfg: &RunConfig, delay_us: u64) -> Figure {
    let mut fig = Figure::new(
        format!("fig10-{delay_us}us"),
        format!("Multi-pair message rate, {delay_us} us delay"),
        "msg_bytes",
        "MillionMessages/s",
    );
    let pts: Vec<(usize, u32)> = FIG10_PAIRS
        .iter()
        .flat_map(|&p| FIG10_SIZES.iter().map(move |&s| (p, s)))
        .collect();
    let res = parallel_map(cfg, pts, |(pairs, size)| {
        let window = 64;
        let iters = cfg.fidelity.iters(2, 8) as u32;
        let spec = contextualize(
            JobSpec::two_clusters(pairs, pairs, Dur::from_us(delay_us)),
            cfg,
        );
        (pairs, size, msg_rate(spec, pairs, size, window, iters))
    });
    for &p in &FIG10_PAIRS {
        let mut s = Series::new(format!("{p}-pairs"));
        for &(rp, size, rate) in &res {
            if rp == p {
                s.push(size as f64, rate);
            }
        }
        fig.series.push(s);
    }
    fig
}

/// Broadcast message sizes for Figure 11.
pub const FIG11_SIZES: [u32; 7] = [256, 2048, 8192, 16384, 32768, 65536, 131_072];
/// The three delays of Figure 11's panels.
pub const FIG11_DELAYS_US: [u64; 3] = [10, 100, 1000];

/// Figure 11, one panel: broadcast latency of the original (flat MVAPICH2)
/// algorithm vs the WAN-aware hierarchical one, at the given delay.
/// The paper uses 64 processes per cluster; `Quick` fidelity uses 16+16.
pub fn fig11_bcast(cfg: &RunConfig, delay_us: u64) -> Figure {
    let per_cluster = match cfg.fidelity {
        Fidelity::Quick => 16,
        Fidelity::Full => 64,
    };
    let mut fig = Figure::new(
        format!("fig11-{delay_us}us"),
        format!(
            "MPI_Bcast latency over IB WAN, {delay_us} us delay, {} procs",
            2 * per_cluster
        ),
        "msg_bytes",
        "latency_us",
    );
    let pts: Vec<(bool, u32)> = [false, true]
        .iter()
        .flat_map(|&h| FIG11_SIZES.iter().map(move |&s| (h, s)))
        .collect();
    let res = parallel_map(cfg, pts, |(hier, size)| {
        let iters = cfg.fidelity.iters(2, 6) as u32;
        let spec = contextualize(
            JobSpec::two_clusters(per_cluster, per_cluster, Dur::from_us(delay_us)),
            cfg,
        );
        (hier, size, osu_bcast(spec, size, iters, hier))
    });
    for (hier, label) in [(false, "original"), (true, "modified")] {
        let mut s = Series::new(label);
        for &(h, size, lat) in &res {
            if h == hier {
                s.push(size as f64, lat);
            }
        }
        fig.series.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_peak_and_rendezvous_dip() {
        let f = fig8_mpi_bandwidth(&RunConfig::default(), false);
        let peak = f.series("MVAPICH-no-delay").unwrap().peak();
        assert!(peak > 900.0, "MPI peak {peak}");
        // Medium messages above the 8 KB threshold are hit hard at 10 ms.
        let d = f.series("MVAPICH-10000us-delay").unwrap();
        let k16 = d.y_at(16384.0).unwrap();
        assert!(k16 < 50.0, "16K at 10ms should be depressed: {k16}");
    }

    #[test]
    fn fig9_tuning_improves_medium_sizes() {
        let f = fig9_threshold_tuning(&RunConfig::default(), false);
        let orig = f.series("thresh-8k-original").unwrap();
        let tuned = f.series("thresh-64k-tuned").unwrap();
        let o16 = orig.y_at(16384.0).unwrap();
        let t16 = tuned.y_at(16384.0).unwrap();
        assert!(
            t16 > 1.2 * o16,
            "tuned ({t16}) must beat original ({o16}) at 16K"
        );
        // Below the original threshold both configurations agree.
        let o1 = orig.y_at(1024.0).unwrap();
        let t1 = tuned.y_at(1024.0).unwrap();
        assert!((o1 - t1).abs() / o1 < 0.1, "1K: {o1} vs {t1}");
    }

    #[test]
    fn fig10_rate_scales_with_pairs() {
        let f = fig10_message_rate(&RunConfig::default(), 10);
        let r4 = f.series("4-pairs").unwrap().y_at(1.0).unwrap();
        let r16 = f.series("16-pairs").unwrap().y_at(1.0).unwrap();
        assert!(r16 > 2.0 * r4, "16 pairs {r16} vs 4 pairs {r4}");
    }

    #[test]
    fn fig11_hierarchical_wins_large_messages() {
        let f = fig11_bcast(&RunConfig::default(), 100);
        let orig = f.series("original").unwrap();
        let modi = f.series("modified").unwrap();
        let o = orig.y_at(131072.0).unwrap();
        let m = modi.y_at(131072.0).unwrap();
        assert!(m < o, "modified ({m}) must beat original ({o}) at 128K");
        // Small messages comparable (both binomial, one WAN crossing).
        let o_small = orig.y_at(256.0).unwrap();
        let m_small = modi.y_at(256.0).unwrap();
        let ratio = o_small / m_small;
        assert!((0.5..2.0).contains(&ratio), "small: {o_small} vs {m_small}");
    }
}
