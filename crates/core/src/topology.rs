//! Cluster-of-clusters topology helpers (the paper's Figure 1/2 setup).
//!
//! Every helper takes the run's [`RunConfig`] plus the experiment's
//! canonical seed: the config supplies the engine profile (coalescing,
//! partition mode) and may offset the seed, so the same topology code
//! serves the default run, `--serial`/`--no-coalescing` A/B runs, and
//! seed-shifted robustness sweeps without any global state.

use crate::config::RunConfig;
use ibfabric::fabric::{Fabric, FabricBuilder, NodeHandle};
use ibfabric::hca::HcaConfig;
use ibfabric::link::LinkConfig;
use ibfabric::ulp::Ulp;
use obsidian::{LongbowConfig, LongbowPair};
use simcore::Dur;

/// Two single-node clusters joined by a Longbow pair emulating `delay`
/// (one node from each cluster, as in the paper's point-to-point WAN
/// microbenchmarks). Returns `(fabric, node_a, node_b)`.
pub fn wan_node_pair(
    cfg: &RunConfig,
    seed: u64,
    delay: Dur,
    ulp_a: Box<dyn Ulp>,
    ulp_b: Box<dyn Ulp>,
) -> (Fabric, NodeHandle, NodeHandle) {
    let mut b = FabricBuilder::with_profile(cfg.seed_for(seed), cfg.engine());
    let a = b.add_hca(HcaConfig::default(), ulp_a);
    let n2 = b.add_hca(HcaConfig::default(), ulp_b);
    let sw_a = b.add_switch();
    let sw_b = b.add_switch();
    b.link(a.actor, sw_a, LinkConfig::ddr_lan());
    b.link(n2.actor, sw_b, LinkConfig::ddr_lan());
    LongbowPair::insert(&mut b, sw_a, sw_b, delay);
    (b.finish(), a, n2)
}

/// Like [`wan_node_pair`], but with packet loss injected on the WAN link
/// (parts per million) — exercises the RC retransmission machinery.
pub fn wan_node_pair_lossy(
    cfg: &RunConfig,
    seed: u64,
    delay: Dur,
    loss_per_million: u32,
    ulp_a: Box<dyn Ulp>,
    ulp_b: Box<dyn Ulp>,
) -> (Fabric, NodeHandle, NodeHandle) {
    let mut b = FabricBuilder::with_profile(cfg.seed_for(seed), cfg.engine());
    let a = b.add_hca(HcaConfig::default(), ulp_a);
    let n2 = b.add_hca(HcaConfig::default(), ulp_b);
    let sw_a = b.add_switch();
    let sw_b = b.add_switch();
    b.link(a.actor, sw_a, LinkConfig::ddr_lan());
    b.link(n2.actor, sw_b, LinkConfig::ddr_lan());
    LongbowPair::insert_with(
        &mut b,
        sw_a,
        sw_b,
        LongbowConfig {
            injected_delay: delay / 2,
            loss_per_million,
            ..LongbowConfig::default()
        },
    );
    (b.finish(), a, n2)
}

/// Two nodes cabled back-to-back on the DDR LAN (the paper's baseline for
/// the Figure 3 latency comparison).
pub fn lan_node_pair(
    cfg: &RunConfig,
    seed: u64,
    ulp_a: Box<dyn Ulp>,
    ulp_b: Box<dyn Ulp>,
) -> (Fabric, NodeHandle, NodeHandle) {
    let mut b = FabricBuilder::with_profile(cfg.seed_for(seed), cfg.engine());
    let a = b.add_hca(HcaConfig::default(), ulp_a);
    let n2 = b.add_hca(HcaConfig::default(), ulp_b);
    b.link(a.actor, n2.actor, LinkConfig::ddr_lan());
    (b.finish(), a, n2)
}

/// A full cluster-of-clusters fabric: `nodes_a + nodes_b` HCAs on two
/// DDR clusters joined by a Longbow pair. Generic over per-node ULPs.
pub fn cluster_of_clusters<F>(
    cfg: &RunConfig,
    seed: u64,
    nodes_a: usize,
    nodes_b: usize,
    delay: Dur,
    mut ulp_for: F,
) -> (Fabric, Vec<NodeHandle>)
where
    F: FnMut(usize) -> Box<dyn Ulp>,
{
    let mut b = FabricBuilder::with_profile(cfg.seed_for(seed), cfg.engine());
    let mut nodes = Vec::with_capacity(nodes_a + nodes_b);
    for i in 0..nodes_a + nodes_b {
        nodes.push(b.add_hca(HcaConfig::default(), ulp_for(i)));
    }
    let sw_a = b.add_switch();
    for n in nodes.iter().take(nodes_a) {
        b.link(n.actor, sw_a, LinkConfig::ddr_lan());
    }
    if nodes_b > 0 {
        let sw_b = b.add_switch();
        for n in nodes.iter().skip(nodes_a) {
            b.link(n.actor, sw_b, LinkConfig::ddr_lan());
        }
        LongbowPair::insert(&mut b, sw_a, sw_b, delay);
    }
    (b.finish(), nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfabric::ulp::NullUlp;

    #[test]
    fn builders_produce_expected_node_counts() {
        let cfg = RunConfig::default();
        let (f, _a, _b) = wan_node_pair(
            &cfg,
            1,
            Dur::from_us(10),
            Box::new(NullUlp),
            Box::new(NullUlp),
        );
        assert_eq!(f.nodes().len(), 2);
        let (f2, nodes) = cluster_of_clusters(&cfg, 1, 3, 2, Dur::ZERO, |_| Box::new(NullUlp));
        assert_eq!(nodes.len(), 5);
        assert_eq!(f2.nodes().len(), 5);
    }
}
