//! The explicit run context threaded from the CLI down to the engine.
//!
//! A [`RunConfig`] carries every knob that used to live in process-global
//! mutable state (`set_default_coalescing`, `set_partition_mode`,
//! `IBWAN_SERIAL`): fidelity, fragment-train coalescing, the partitioned
//! engine choice, a seed offset, and the sweep worker budget. Binaries parse
//! their flags into one config up front, and everything below — registry
//! entries, `Scenario::run`, the topology helpers, `FabricBuilder` — takes
//! it (or the [`EngineProfile`] derived from it) as an argument. Flag order
//! can no longer matter and concurrent runs with different configs cannot
//! interfere.

use crate::Fidelity;
pub use ibfabric::fabric::{EngineProfile, PartitionMode};

/// Everything that parameterizes one experiment run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Iteration-count scale (`Quick` for CI, `Full` for recorded numbers).
    pub fidelity: Fidelity,
    /// Fragment-train coalescing on the wire path (`--no-coalescing` clears
    /// it). A/B-invisible in every virtual-time observable.
    pub coalescing: bool,
    /// Serial vs partitioned engine (`--serial` pins `Off`). Also
    /// A/B-invisible.
    pub partition: PartitionMode,
    /// Additive offset applied to every experiment's canonical seed via
    /// [`RunConfig::seed_for`]. The default `0` reproduces the recorded
    /// goldens bit-for-bit; any other value shifts the whole run onto a
    /// different deterministic trajectory.
    pub seed: u64,
    /// Cap on sweep worker threads (`None` = derive from the machine).
    pub workers: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            fidelity: Fidelity::Quick,
            coalescing: true,
            partition: PartitionMode::Auto,
            seed: 0,
            workers: None,
        }
    }
}

impl RunConfig {
    /// The default config at `Full` fidelity.
    pub fn full() -> Self {
        RunConfig {
            fidelity: Fidelity::Full,
            ..RunConfig::default()
        }
    }

    /// The engine profile to build fabrics with under this config.
    pub fn engine(&self) -> EngineProfile {
        EngineProfile {
            coalescing: self.coalescing,
            partition: self.partition,
        }
    }

    /// Offset an experiment's canonical seed by the config's seed. With the
    /// default `seed: 0` this is the identity, so the historical hardcoded
    /// seeds (and therefore the golden outputs) are preserved exactly.
    pub fn seed_for(&self, canonical: u64) -> u64 {
        canonical.wrapping_add(self.seed)
    }

    /// Apply the `IBWAN_SERIAL=1` environment alias: the env-var twin of
    /// `--serial`, for harnesses that cannot pass flags through. Called by
    /// binaries once at startup, never by the library — the library layer
    /// only ever sees the resulting config.
    pub fn with_env_aliases(mut self) -> Self {
        if std::env::var_os("IBWAN_SERIAL").is_some_and(|v| v == "1") {
            self.partition = PartitionMode::Off;
        }
        self
    }

    /// Canonical one-line description, the digest input. Excludes `workers`:
    /// the worker budget affects wall clock only, never results, so two runs
    /// differing only in `workers` share a digest.
    pub fn describe(&self) -> String {
        format!(
            "fidelity={} coalescing={} partition={} seed={}",
            self.fidelity.name(),
            self.coalescing,
            partition_name(self.partition),
            self.seed,
        )
    }

    /// FNV-1a 64-bit digest of [`RunConfig::describe`], hex-encoded. Stamped
    /// into every figure's provenance block so a golden mismatch can be
    /// traced to a config mismatch at a glance.
    pub fn digest(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.describe().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        format!("{hash:016x}")
    }
}

/// Stable lowercase name for a partition mode (provenance / describe).
pub fn partition_name(mode: PartitionMode) -> &'static str {
    match mode {
        PartitionMode::Auto => "auto",
        PartitionMode::Off => "off",
        PartitionMode::Force => "force",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preserves_canonical_seeds() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.seed_for(42), 42);
        assert_eq!(cfg.seed_for(17), 17);
        let offset = RunConfig {
            seed: 5,
            ..RunConfig::default()
        };
        assert_eq!(offset.seed_for(42), 47);
    }

    #[test]
    fn digest_distinguishes_configs_but_not_workers() {
        let base = RunConfig::default();
        let serial = RunConfig {
            partition: PartitionMode::Off,
            ..base
        };
        let nocoal = RunConfig {
            coalescing: false,
            ..base
        };
        let budgeted = RunConfig {
            workers: Some(3),
            ..base
        };
        assert_ne!(base.digest(), serial.digest());
        assert_ne!(base.digest(), nocoal.digest());
        assert_ne!(serial.digest(), nocoal.digest());
        assert_eq!(
            base.digest(),
            budgeted.digest(),
            "workers is wall-clock only"
        );
        assert_eq!(base.digest().len(), 16, "fixed-width hex");
    }

    #[test]
    fn engine_profile_mirrors_config() {
        let cfg = RunConfig {
            coalescing: false,
            partition: PartitionMode::Force,
            ..RunConfig::default()
        };
        let p = cfg.engine();
        assert!(!p.coalescing);
        assert_eq!(p.partition, PartitionMode::Force);
    }
}
