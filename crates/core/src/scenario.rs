//! Declarative experiment scenarios: a JSON-serializable description of a
//! cluster-of-clusters topology plus a workload, runnable with one call —
//! the `ibwan-sim` binary's input format.
//!
//! ```
//! use ibwan_core::scenario::{Scenario, Topology, Workload};
//! use ibwan_core::RunConfig;
//!
//! let s = Scenario {
//!     name: "quick-check".into(),
//!     seed: 1,
//!     topology: Topology { delay_us: 1000, loss_ppm: 0 },
//!     workload: Workload::MpiLatency { size: 4, iters: 10 },
//! };
//! let r = s.run(&RunConfig::default());
//! assert_eq!(r.unit, "us");
//! assert!(r.value > 1000.0); // one-way latency exceeds the wire delay
//! ```

use crate::config::RunConfig;
use crate::topology::{wan_node_pair, wan_node_pair_lossy};
use ibfabric::perftest::{rc_qp_pair, ud_qp_pair, BwConfig, BwPeer, LatMode, PingPong};
use ibfabric::qp::QpConfig;
use ipoib::node::{IpoibConfig, IpoibMode, IpoibNode};
use mpisim::bench as mpibench;
use mpisim::proto::{MpiConfig, RndvProtocol};
use mpisim::world::JobSpec;
use nasbench::NasBenchmark;
use nfssim::{run_read_experiment, NfsSetup, Transport as NfsTransport};
use simcore::Dur;
use tcpstack::TcpConfig;

/// The WAN separating the two clusters.
#[derive(Copy, Clone, Debug)]
pub struct Topology {
    /// One-way emulated wire delay in microseconds (5 µs ≈ 1 km).
    pub delay_us: u64,
    /// WAN packet loss, parts per million (verbs workloads only).
    pub loss_ppm: u32,
}

/// Which benchmark to run across the WAN.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Verbs-level ping-pong latency (`ib_send_lat`-style).
    VerbsLatency {
        /// "send_rc", "send_ud", or "write_rc".
        mode: String,
        /// Message size in bytes.
        size: u32,
        /// Ping-pong rounds.
        iters: u32,
    },
    /// Verbs-level streaming bandwidth (`ib_send_bw`-style).
    VerbsBandwidth {
        /// "rc" or "ud".
        transport: String,
        /// Message size.
        size: u32,
        /// Messages to stream.
        iters: u64,
    },
    /// IPoIB/TCP throughput (iperf-style).
    Ipoib {
        /// "ud" or "rc".
        mode: String,
        /// IP MTU (2048 for UD; up to 65536 for RC).
        mtu: u32,
        /// TCP window bytes.
        window: u64,
        /// Parallel TCP streams.
        streams: usize,
        /// Bytes per stream.
        bytes_per_stream: u64,
    },
    /// MPI one-way latency.
    MpiLatency {
        /// Message size.
        size: u32,
        /// Rounds.
        iters: u32,
    },
    /// MPI streaming bandwidth with a tunable rendezvous setup.
    MpiBandwidth {
        /// Message size.
        size: u32,
        /// Messages per window.
        window: u32,
        /// Windows.
        iters: u32,
        /// Eager/rendezvous threshold in bytes (0 = MVAPICH2 default 8 K).
        eager_threshold: u32,
        /// "rput" (default), "rget", or "r3".
        rndv_protocol: String,
    },
    /// MPI broadcast latency across two clusters.
    MpiBcast {
        /// Ranks per cluster.
        ranks_per_cluster: usize,
        /// Message size.
        size: u32,
        /// Iterations.
        iters: u32,
        /// Use the WAN-aware hierarchical algorithm.
        hierarchical: bool,
    },
    /// Multi-pair aggregate message rate.
    MessageRate {
        /// Communicating pairs (one rank per cluster each).
        pairs: usize,
        /// Message size.
        size: u32,
        /// Window per pair.
        window: u32,
        /// Iterations.
        iters: u32,
    },
    /// A NAS class-B skeleton across the two clusters.
    Nas {
        /// "is", "ft", or "cg".
        benchmark: String,
        /// Ranks per cluster.
        ranks_per_cluster: usize,
    },
    /// A parameterized synthetic communication pattern (see
    /// [`mpisim::patterns::Pattern`]).
    MpiPattern {
        /// Ranks per cluster.
        ranks_per_cluster: usize,
        /// The pattern description.
        spec: mpisim::patterns::Pattern,
    },
    /// NFS read/write throughput.
    Nfs {
        /// "rdma", "ipoib_rc", or "ipoib_ud".
        transport: String,
        /// Client threads.
        threads: usize,
        /// File size in MiB.
        file_mib: u64,
        /// Write instead of read.
        write: bool,
    },
}

impl Workload {
    /// Serialize to the internally-tagged JSON layout (`"kind"` tag,
    /// snake_case variant names) scenario files use.
    pub fn to_value(&self) -> minijson::Value {
        use minijson::{obj, Value};
        match self {
            Workload::VerbsLatency { mode, size, iters } => obj([
                ("kind", Value::from("verbs_latency")),
                ("mode", Value::from(mode.clone())),
                ("size", Value::from(*size)),
                ("iters", Value::from(*iters)),
            ]),
            Workload::VerbsBandwidth {
                transport,
                size,
                iters,
            } => obj([
                ("kind", Value::from("verbs_bandwidth")),
                ("transport", Value::from(transport.clone())),
                ("size", Value::from(*size)),
                ("iters", Value::from(*iters)),
            ]),
            Workload::Ipoib {
                mode,
                mtu,
                window,
                streams,
                bytes_per_stream,
            } => obj([
                ("kind", Value::from("ipoib")),
                ("mode", Value::from(mode.clone())),
                ("mtu", Value::from(*mtu)),
                ("window", Value::from(*window)),
                ("streams", Value::from(*streams)),
                ("bytes_per_stream", Value::from(*bytes_per_stream)),
            ]),
            Workload::MpiLatency { size, iters } => obj([
                ("kind", Value::from("mpi_latency")),
                ("size", Value::from(*size)),
                ("iters", Value::from(*iters)),
            ]),
            Workload::MpiBandwidth {
                size,
                window,
                iters,
                eager_threshold,
                rndv_protocol,
            } => obj([
                ("kind", Value::from("mpi_bandwidth")),
                ("size", Value::from(*size)),
                ("window", Value::from(*window)),
                ("iters", Value::from(*iters)),
                ("eager_threshold", Value::from(*eager_threshold)),
                ("rndv_protocol", Value::from(rndv_protocol.clone())),
            ]),
            Workload::MpiBcast {
                ranks_per_cluster,
                size,
                iters,
                hierarchical,
            } => obj([
                ("kind", Value::from("mpi_bcast")),
                ("ranks_per_cluster", Value::from(*ranks_per_cluster)),
                ("size", Value::from(*size)),
                ("iters", Value::from(*iters)),
                ("hierarchical", Value::from(*hierarchical)),
            ]),
            Workload::MessageRate {
                pairs,
                size,
                window,
                iters,
            } => obj([
                ("kind", Value::from("message_rate")),
                ("pairs", Value::from(*pairs)),
                ("size", Value::from(*size)),
                ("window", Value::from(*window)),
                ("iters", Value::from(*iters)),
            ]),
            Workload::Nas {
                benchmark,
                ranks_per_cluster,
            } => obj([
                ("kind", Value::from("nas")),
                ("benchmark", Value::from(benchmark.clone())),
                ("ranks_per_cluster", Value::from(*ranks_per_cluster)),
            ]),
            Workload::MpiPattern {
                ranks_per_cluster,
                spec,
            } => obj([
                ("kind", Value::from("mpi_pattern")),
                ("ranks_per_cluster", Value::from(*ranks_per_cluster)),
                ("spec", spec.to_value()),
            ]),
            Workload::Nfs {
                transport,
                threads,
                file_mib,
                write,
            } => obj([
                ("kind", Value::from("nfs")),
                ("transport", Value::from(transport.clone())),
                ("threads", Value::from(*threads)),
                ("file_mib", Value::from(*file_mib)),
                ("write", Value::from(*write)),
            ]),
        }
    }

    /// Parse the tagged JSON layout produced by [`Workload::to_value`].
    pub fn from_value(v: &minijson::Value) -> Result<Workload, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(|f| f.as_u64())
                .ok_or_else(|| format!("workload: missing or non-integer field {key:?}"))
        };
        let num_or = |key: &str, default: u64| match v.get(key) {
            None => Ok(default),
            Some(f) => f
                .as_u64()
                .ok_or_else(|| format!("workload: bad field {key:?}")),
        };
        let text = |key: &str| {
            v.get(key)
                .and_then(|f| f.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("workload: missing string field {key:?}"))
        };
        let flag = |key: &str| match v.get(key) {
            None => Ok(false),
            Some(f) => f
                .as_bool()
                .ok_or_else(|| format!("workload: bad flag {key:?}")),
        };
        let kind = v
            .get("kind")
            .and_then(|k| k.as_str())
            .ok_or("workload: missing \"kind\" tag")?;
        match kind {
            "verbs_latency" => Ok(Workload::VerbsLatency {
                mode: text("mode")?,
                size: num("size")? as u32,
                iters: num("iters")? as u32,
            }),
            "verbs_bandwidth" => Ok(Workload::VerbsBandwidth {
                transport: text("transport")?,
                size: num("size")? as u32,
                iters: num("iters")?,
            }),
            "ipoib" => Ok(Workload::Ipoib {
                mode: text("mode")?,
                mtu: num("mtu")? as u32,
                window: num("window")?,
                streams: num("streams")? as usize,
                bytes_per_stream: num("bytes_per_stream")?,
            }),
            "mpi_latency" => Ok(Workload::MpiLatency {
                size: num("size")? as u32,
                iters: num("iters")? as u32,
            }),
            "mpi_bandwidth" => Ok(Workload::MpiBandwidth {
                size: num("size")? as u32,
                window: num("window")? as u32,
                iters: num("iters")? as u32,
                eager_threshold: num_or("eager_threshold", 0)? as u32,
                rndv_protocol: match v.get("rndv_protocol") {
                    None => String::new(),
                    Some(p) => p.as_str().ok_or("workload: bad rndv_protocol")?.to_string(),
                },
            }),
            "mpi_bcast" => Ok(Workload::MpiBcast {
                ranks_per_cluster: num("ranks_per_cluster")? as usize,
                size: num("size")? as u32,
                iters: num("iters")? as u32,
                hierarchical: flag("hierarchical")?,
            }),
            "message_rate" => Ok(Workload::MessageRate {
                pairs: num("pairs")? as usize,
                size: num("size")? as u32,
                window: num("window")? as u32,
                iters: num("iters")? as u32,
            }),
            "nas" => Ok(Workload::Nas {
                benchmark: text("benchmark")?,
                ranks_per_cluster: num("ranks_per_cluster")? as usize,
            }),
            "mpi_pattern" => Ok(Workload::MpiPattern {
                ranks_per_cluster: num("ranks_per_cluster")? as usize,
                spec: mpisim::patterns::Pattern::from_value(
                    v.get("spec").ok_or("workload: missing \"spec\"")?,
                )?,
            }),
            "nfs" => Ok(Workload::Nfs {
                transport: text("transport")?,
                threads: num("threads")? as usize,
                file_mib: num("file_mib")?,
                write: flag("write")?,
            }),
            other => Err(format!("unknown workload kind {other:?}")),
        }
    }
}

/// A complete runnable experiment description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name.
    pub name: String,
    /// Deterministic engine seed.
    pub seed: u64,
    /// The WAN configuration.
    pub topology: Topology,
    /// The benchmark.
    pub workload: Workload,
}

fn default_seed() -> u64 {
    42
}

/// The scalar outcome of a scenario.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// What was measured ("latency", "bandwidth", ...).
    pub metric: String,
    /// The value.
    pub value: f64,
    /// The unit ("us", "MB/s", "Mmsg/s", "s").
    pub unit: String,
}

impl ScenarioResult {
    /// Serialize to a JSON value (for `ibwan-sim --json`).
    pub fn to_value(&self) -> minijson::Value {
        use minijson::{obj, Value};
        obj([
            ("name", Value::from(self.name.clone())),
            ("metric", Value::from(self.metric.clone())),
            ("value", Value::Num(self.value)),
            ("unit", Value::from(self.unit.clone())),
        ])
    }
}

impl Scenario {
    /// Parse a scenario from JSON. Missing `seed` defaults to 42; missing
    /// topology fields default to 0 — the same defaults the original
    /// serde-derived format accepted.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let v = minijson::Value::parse(json)?;
        let name = v
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| "scenario: missing \"name\"".to_string())?
            .to_string();
        let seed = match v.get("seed") {
            None => default_seed(),
            Some(s) => s.as_u64().ok_or_else(|| "scenario: bad seed".to_string())?,
        };
        let topo = v
            .get("topology")
            .ok_or_else(|| "scenario: missing \"topology\"".to_string())?;
        let opt_u64 = |obj: &minijson::Value, key: &str| -> Result<u64, String> {
            match obj.get(key) {
                None => Ok(0),
                Some(f) => f
                    .as_u64()
                    .ok_or_else(|| format!("scenario: bad field {key:?}")),
            }
        };
        let topology = Topology {
            delay_us: opt_u64(topo, "delay_us")?,
            loss_ppm: opt_u64(topo, "loss_ppm")? as u32,
        };
        let workload = Workload::from_value(
            v.get("workload")
                .ok_or_else(|| "scenario: missing \"workload\"".to_string())?,
        )?;
        Ok(Scenario {
            name,
            seed,
            topology,
            workload,
        })
    }

    /// Serialize to pretty JSON (for `ibwan-sim --example`).
    pub fn to_json(&self) -> String {
        use minijson::{obj, Value};
        obj([
            ("name", Value::from(self.name.clone())),
            ("seed", Value::from(self.seed)),
            (
                "topology",
                obj([
                    ("delay_us", Value::from(self.topology.delay_us)),
                    ("loss_ppm", Value::from(self.topology.loss_ppm)),
                ]),
            ),
            ("workload", self.workload.to_value()),
        ])
        .to_pretty()
    }

    /// Run the scenario and return its headline number.
    ///
    /// The config supplies the engine profile: each `Fabric::run` consults
    /// the domain plan its builder computed and the config's
    /// [`PartitionMode`], so WAN scenarios may execute on the partitioned
    /// engine while LAN scenarios stay serial. Results are identical either
    /// way (golden A/B tests in `bench`); pass a config with
    /// `PartitionMode::Off` for apples-to-apples timing comparisons
    /// (`repro --serial`, `perf`'s serial column).
    ///
    /// [`PartitionMode`]: ibfabric::fabric::PartitionMode
    pub fn run(&self, cfg: &RunConfig) -> ScenarioResult {
        let delay = Dur::from_us(self.topology.delay_us);
        let loss = self.topology.loss_ppm;
        // MPI-family workloads historically run on the spec's canonical
        // seed (42), not the scenario seed; preserve that (plus the
        // config's offset) so recorded outputs stay bit-identical.
        let contextualize = |spec: JobSpec| -> JobSpec {
            let seed = cfg.seed_for(spec.seed);
            spec.with_profile(cfg.engine()).with_seed(seed)
        };
        let result = |metric: &str, value: f64, unit: &str| ScenarioResult {
            name: self.name.clone(),
            metric: metric.into(),
            value,
            unit: unit.into(),
        };
        match &self.workload {
            Workload::VerbsLatency { mode, size, iters } => {
                let m = match mode.as_str() {
                    "send_rc" => LatMode::SendRc,
                    "send_ud" => LatMode::SendUd,
                    "write_rc" => LatMode::WriteRc,
                    other => panic!("unknown latency mode {other:?}"),
                };
                let mk = |init| Box::new(PingPong::new(m, init, *size, *iters));
                let (mut f, a, b) =
                    wan_node_pair_lossy(cfg, self.seed, delay, loss, mk(true), mk(false));
                match m {
                    LatMode::SendUd => {
                        assert_eq!(loss, 0, "UD has no retransmission; lossy latency undefined");
                        let (qa, qb) = ud_qp_pair(&mut f, a, b, QpConfig::ud());
                        let u = f.hca_mut(a).ulp_mut::<PingPong>();
                        u.qpn = qa;
                        u.peer = Some((b.lid, qb));
                        let v = f.hca_mut(b).ulp_mut::<PingPong>();
                        v.qpn = qb;
                        v.peer = Some((a.lid, qa));
                    }
                    LatMode::SendRc | LatMode::WriteRc => {
                        let qp = if m == LatMode::WriteRc {
                            QpConfig::rc().with_write_notify()
                        } else {
                            QpConfig::rc()
                        };
                        let (qa, qb) = rc_qp_pair(&mut f, a, b, qp);
                        f.hca_mut(a).ulp_mut::<PingPong>().qpn = qa;
                        f.hca_mut(b).ulp_mut::<PingPong>().qpn = qb;
                    }
                }
                f.run();
                result(
                    "latency",
                    f.hca(a).ulp::<PingPong>().mean_latency_us(),
                    "us",
                )
            }
            Workload::VerbsBandwidth {
                transport,
                size,
                iters,
            } => {
                let ud = match transport.as_str() {
                    "ud" => true,
                    "rc" => false,
                    other => panic!("unknown transport {other:?}"),
                };
                let (mut f, a, b) = wan_node_pair_lossy(
                    cfg,
                    self.seed,
                    delay,
                    loss,
                    Box::new(BwPeer::sender(BwConfig::new(*size, *iters))),
                    Box::new(BwPeer::receiver()),
                );
                if ud {
                    assert_eq!(loss, 0, "UD drops under loss; bandwidth undefined");
                    let (qa, qb) = ud_qp_pair(&mut f, a, b, QpConfig::ud());
                    let u = f.hca_mut(a).ulp_mut::<BwPeer>();
                    u.qpn = qa;
                    u.peer = Some((b.lid, qb));
                    f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
                } else {
                    let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
                    f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
                    f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
                }
                f.run();
                let bw = if ud {
                    f.hca(b).ulp::<BwPeer>().rx_bandwidth_mbs()
                } else {
                    f.hca(a).ulp::<BwPeer>().bandwidth_mbs()
                };
                result("bandwidth", bw, "MB/s")
            }
            Workload::Ipoib {
                mode,
                mtu,
                window,
                streams,
                bytes_per_stream,
            } => {
                assert_eq!(loss, 0, "IPoIB workload models a pristine WAN");
                let ipoib = match mode.as_str() {
                    "ud" => IpoibConfig::ud(),
                    "rc" => IpoibConfig::rc(*mtu),
                    other => panic!("unknown IPoIB mode {other:?}"),
                };
                let mut tcp = TcpConfig::for_mtu(ipoib.mtu).with_window(*window);
                tcp.init_cwnd_segments = 1 << 20;
                let tx = Box::new(IpoibNode::sender(ipoib, tcp, *streams, *bytes_per_stream));
                let rx = Box::new(IpoibNode::receiver(ipoib, tcp, *streams, *bytes_per_stream));
                let (mut f, a, b) = wan_node_pair(cfg, self.seed, delay, tx, rx);
                let qa = f.hca_mut(a).core_mut().create_qp(ipoib.qp_config());
                let qb = f.hca_mut(b).core_mut().create_qp(ipoib.qp_config());
                if ipoib.mode == IpoibMode::Rc {
                    f.hca_mut(a).core_mut().connect(qa, (b.lid, qb));
                    f.hca_mut(b).core_mut().connect(qb, (a.lid, qa));
                }
                {
                    let u = f.hca_mut(a).ulp_mut::<IpoibNode>();
                    u.port.qpn = qa;
                    u.port.peer = Some((b.lid, qb));
                }
                {
                    let u = f.hca_mut(b).ulp_mut::<IpoibNode>();
                    u.port.qpn = qb;
                    u.port.peer = Some((a.lid, qa));
                }
                f.run();
                result(
                    "throughput",
                    f.hca(b).ulp::<IpoibNode>().throughput_mbs(),
                    "MB/s",
                )
            }
            Workload::MpiLatency { size, iters } => {
                assert_eq!(loss, 0, "MPI workloads model a pristine WAN");
                let spec = contextualize(JobSpec::two_clusters(1, 1, delay));
                result("latency", mpibench::osu_latency(spec, *size, *iters), "us")
            }
            Workload::MpiBandwidth {
                size,
                window,
                iters,
                eager_threshold,
                rndv_protocol,
            } => {
                assert_eq!(loss, 0, "MPI workloads model a pristine WAN");
                let mut mpi = MpiConfig::default();
                if *eager_threshold > 0 {
                    mpi.eager_threshold = *eager_threshold;
                }
                mpi.rndv_protocol = match rndv_protocol.as_str() {
                    "" | "rput" => RndvProtocol::Rput,
                    "rget" => RndvProtocol::Rget,
                    "r3" => RndvProtocol::R3,
                    other => panic!("unknown rendezvous protocol {other:?}"),
                };
                let spec = contextualize(JobSpec::two_clusters(1, 1, delay).with_mpi(mpi));
                result(
                    "bandwidth",
                    mpibench::osu_bw(spec, *size, *window, *iters),
                    "MB/s",
                )
            }
            Workload::MpiBcast {
                ranks_per_cluster,
                size,
                iters,
                hierarchical,
            } => {
                assert_eq!(loss, 0, "MPI workloads model a pristine WAN");
                let spec = contextualize(JobSpec::two_clusters(
                    *ranks_per_cluster,
                    *ranks_per_cluster,
                    delay,
                ));
                result(
                    "bcast_latency",
                    mpibench::osu_bcast(spec, *size, *iters, *hierarchical),
                    "us",
                )
            }
            Workload::MessageRate {
                pairs,
                size,
                window,
                iters,
            } => {
                assert_eq!(loss, 0, "MPI workloads model a pristine WAN");
                let spec = contextualize(JobSpec::two_clusters(*pairs, *pairs, delay));
                result(
                    "message_rate",
                    mpibench::msg_rate(spec, *pairs, *size, *window, *iters),
                    "Mmsg/s",
                )
            }
            Workload::Nas {
                benchmark,
                ranks_per_cluster,
            } => {
                assert_eq!(loss, 0, "NAS workloads model a pristine WAN");
                let bench = match benchmark.as_str() {
                    "is" => NasBenchmark::Is,
                    "ft" => NasBenchmark::Ft,
                    "cg" => NasBenchmark::Cg,
                    "ep" => NasBenchmark::Ep,
                    "mg" => NasBenchmark::Mg,
                    other => panic!("unknown NAS benchmark {other:?}"),
                };
                let spec = contextualize(JobSpec::two_clusters(
                    *ranks_per_cluster,
                    *ranks_per_cluster,
                    delay,
                ));
                let r = nasbench::run_spec(bench, spec);
                result("time", r.time_secs, "s")
            }
            Workload::MpiPattern {
                ranks_per_cluster,
                spec,
            } => {
                assert_eq!(loss, 0, "MPI workloads model a pristine WAN");
                if let Some(req) = spec.required_ranks() {
                    assert_eq!(
                        req,
                        2 * ranks_per_cluster,
                        "pattern {} needs exactly {req} ranks",
                        spec.name()
                    );
                }
                let js = contextualize(JobSpec::two_clusters(
                    *ranks_per_cluster,
                    *ranks_per_cluster,
                    delay,
                ));
                let mut job = mpisim::world::MpiJob::build(js, |rank, n| spec.ops(rank, n));
                job.run();
                let n = 2 * ranks_per_cluster;
                let t0 = (0..n)
                    .filter_map(|r| job.process(r).runner.mark(0))
                    .min()
                    .expect("pattern records marks");
                let t1 = (0..n)
                    .filter_map(|r| job.process(r).runner.mark(1))
                    .max()
                    .expect("pattern records marks");
                result("time", t1.since(t0).as_secs_f64(), "s")
            }
            Workload::Nfs {
                transport,
                threads,
                file_mib,
                write,
            } => {
                assert_eq!(loss, 0, "NFS workloads model a pristine WAN");
                let t = match transport.as_str() {
                    "rdma" => NfsTransport::Rdma,
                    "ipoib_rc" => NfsTransport::IpoibRc,
                    "ipoib_ud" => NfsTransport::IpoibUd,
                    other => panic!("unknown NFS transport {other:?}"),
                };
                let mut s = NfsSetup::scaled(t, *threads, Some(delay));
                s.file_size = file_mib << 20;
                s.write = *write;
                s.profile = cfg.engine();
                s.seed = cfg.seed_for(s.seed);
                result("throughput", run_read_experiment(s).mbs, "MB/s")
            }
        }
    }
}

/// A ready-made example scenario (what `ibwan-sim --example` prints).
pub fn example_scenario() -> Scenario {
    Scenario {
        name: "mpi-bw-200km-tuned".into(),
        seed: 42,
        topology: Topology {
            delay_us: 1000,
            loss_ppm: 0,
        },
        workload: Workload::MpiBandwidth {
            size: 16384,
            window: 64,
            iters: 4,
            eager_threshold: 65536,
            rndv_protocol: "rput".into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let s = example_scenario();
        let j = s.to_json();
        let back = Scenario::from_json(&j).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.topology.delay_us, 1000);
    }

    #[test]
    fn defaults_fill_in() {
        let j = r#"{
            "name": "minimal",
            "topology": { "delay_us": 10 },
            "workload": { "kind": "mpi_latency", "size": 4, "iters": 5 }
        }"#;
        let s = Scenario::from_json(j).unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.topology.loss_ppm, 0);
        let r = s.run(&RunConfig::default());
        assert_eq!(r.unit, "us");
        assert!(r.value > 10.0 && r.value < 40.0, "{}", r.value);
    }

    #[test]
    fn verbs_bandwidth_scenario_runs_with_loss() {
        let s = Scenario {
            name: "lossy".into(),
            seed: 7,
            topology: Topology {
                delay_us: 50,
                loss_ppm: 10_000,
            },
            workload: Workload::VerbsBandwidth {
                transport: "rc".into(),
                size: 4096,
                iters: 100,
            },
        };
        let r = s.run(&RunConfig::default());
        assert!(r.value > 0.0);
    }

    #[test]
    fn nfs_scenario_runs() {
        let s = Scenario {
            name: "nfs".into(),
            seed: 1,
            topology: Topology {
                delay_us: 100,
                loss_ppm: 0,
            },
            workload: Workload::Nfs {
                transport: "rdma".into(),
                threads: 4,
                file_mib: 8,
                write: false,
            },
        };
        let r = s.run(&RunConfig::default());
        assert_eq!(r.unit, "MB/s");
        assert!(r.value > 10.0);
    }

    #[test]
    fn pattern_scenario_runs_from_json() {
        let j = r#"{
            "name": "halo",
            "topology": { "delay_us": 100 },
            "workload": {
                "kind": "mpi_pattern",
                "ranks_per_cluster": 4,
                "spec": {
                    "pattern": "halo2d",
                    "rows": 2, "cols": 4,
                    "face_bytes": 8192, "iters": 3, "compute_us": 50
                }
            }
        }"#;
        let s = Scenario::from_json(j).unwrap();
        let r = s.run(&RunConfig::default());
        assert_eq!(r.unit, "s");
        assert!(r.value > 0.0);
    }

    /// One instance of every [`Workload`] variant, for the round-trip sweep.
    fn every_workload_variant() -> Vec<Workload> {
        vec![
            Workload::VerbsLatency {
                mode: "send_rc".into(),
                size: 4,
                iters: 50,
            },
            Workload::VerbsBandwidth {
                transport: "ud".into(),
                size: 2048,
                iters: 1000,
            },
            Workload::Ipoib {
                mode: "rc".into(),
                mtu: 16384,
                window: 1 << 20,
                streams: 4,
                bytes_per_stream: 8 << 20,
            },
            Workload::MpiLatency {
                size: 64,
                iters: 20,
            },
            Workload::MpiBandwidth {
                size: 65536,
                window: 32,
                iters: 8,
                eager_threshold: 1 << 17,
                rndv_protocol: "rget".into(),
            },
            Workload::MpiBcast {
                ranks_per_cluster: 8,
                size: 4096,
                iters: 10,
                hierarchical: true,
            },
            Workload::MessageRate {
                pairs: 3,
                size: 128,
                window: 64,
                iters: 100,
            },
            Workload::Nas {
                benchmark: "ft".into(),
                ranks_per_cluster: 8,
            },
            Workload::MpiPattern {
                ranks_per_cluster: 4,
                spec: mpisim::patterns::Pattern::Halo2d {
                    rows: 2,
                    cols: 4,
                    face_bytes: 8192,
                    iters: 3,
                    compute_us: 50,
                },
            },
            Workload::Nfs {
                transport: "ipoib_rc".into(),
                threads: 16,
                file_mib: 256,
                write: true,
            },
        ]
    }

    /// Property-style sweep: every variant must survive
    /// `to_value → print → parse → from_value` with an identical printed
    /// form (printed JSON is the canonical comparison — field order is
    /// insertion order, so equality is exact, and `Workload` itself has no
    /// `PartialEq`).
    #[test]
    fn every_workload_variant_round_trips_through_json() {
        for w in every_workload_variant() {
            let printed = w.to_value().to_pretty();
            let parsed = minijson::Value::parse(&printed)
                .unwrap_or_else(|e| panic!("unparsable print of {w:?}: {e}"));
            let back = Workload::from_value(&parsed)
                .unwrap_or_else(|e| panic!("round-trip rejected {w:?}: {e}"));
            assert_eq!(
                back.to_value().to_pretty(),
                printed,
                "round trip changed the serialized form of {w:?}"
            );
        }
    }

    /// A whole scenario wrapping each variant must round-trip through
    /// `Scenario::to_json`/`from_json` the same way.
    #[test]
    fn every_scenario_round_trips_through_json() {
        for (i, w) in every_workload_variant().into_iter().enumerate() {
            let s = Scenario {
                name: format!("variant-{i}"),
                seed: 10 + i as u64,
                topology: Topology {
                    delay_us: 100 * i as u64,
                    loss_ppm: if i % 2 == 0 { 0 } else { 500 },
                },
                workload: w,
            };
            let j = s.to_json();
            let back = Scenario::from_json(&j).unwrap_or_else(|e| panic!("{j}\nrejected: {e}"));
            assert_eq!(back.to_json(), j, "scenario {i} changed across round trip");
            assert_eq!(back.seed, s.seed);
            assert_eq!(back.topology.delay_us, s.topology.delay_us);
            assert_eq!(back.topology.loss_ppm, s.topology.loss_ppm);
        }
    }

    /// Malformed workloads must come back as readable `Err`s naming the
    /// offending field — never panics, never silent defaults for required
    /// fields.
    #[test]
    fn malformed_workloads_are_rejected_with_field_names() {
        let cases: &[(&str, &str)] = &[
            // No kind tag at all.
            (r#"{ "size": 4 }"#, "kind"),
            // Unknown kind.
            (r#"{ "kind": "quantum_teleport" }"#, "quantum_teleport"),
            // Missing required numeric field.
            (r#"{ "kind": "mpi_latency", "size": 4 }"#, "iters"),
            // Wrong type: string where a number is required.
            (
                r#"{ "kind": "mpi_latency", "size": "big", "iters": 5 }"#,
                "size",
            ),
            // Wrong type: number where a string is required.
            (
                r#"{ "kind": "verbs_latency", "mode": 7, "size": 4, "iters": 5 }"#,
                "mode",
            ),
            // Wrong type: non-boolean flag.
            (
                r#"{ "kind": "nfs", "transport": "rdma", "threads": 1, "file_mib": 8, "write": "yes" }"#,
                "write",
            ),
            // Negative numbers are not valid u64 fields.
            (
                r#"{ "kind": "mpi_latency", "size": -4, "iters": 5 }"#,
                "size",
            ),
            // mpi_pattern without its spec.
            (
                r#"{ "kind": "mpi_pattern", "ranks_per_cluster": 4 }"#,
                "spec",
            ),
            // mpi_pattern with a bogus pattern name inside the spec.
            (
                r#"{ "kind": "mpi_pattern", "ranks_per_cluster": 4, "spec": { "pattern": "moebius" } }"#,
                "moebius",
            ),
        ];
        for (json, expect) in cases {
            let v = minijson::Value::parse(json).expect("test JSON must parse");
            match Workload::from_value(&v) {
                Ok(w) => panic!("malformed workload accepted: {json} -> {w:?}"),
                Err(e) => assert!(
                    e.contains(expect),
                    "error for {json} should name {expect:?}, got: {e}"
                ),
            }
        }
    }

    /// Malformed scenario envelopes fail the same way.
    #[test]
    fn malformed_scenarios_are_rejected() {
        let missing_name =
            r#"{ "topology": {}, "workload": { "kind": "mpi_latency", "size": 4, "iters": 5 } }"#;
        assert!(Scenario::from_json(missing_name)
            .unwrap_err()
            .contains("name"));
        let missing_topology =
            r#"{ "name": "x", "workload": { "kind": "mpi_latency", "size": 4, "iters": 5 } }"#;
        assert!(Scenario::from_json(missing_topology)
            .unwrap_err()
            .contains("topology"));
        let bad_seed = r#"{ "name": "x", "seed": "abc", "topology": {}, "workload": { "kind": "mpi_latency", "size": 4, "iters": 5 } }"#;
        assert!(Scenario::from_json(bad_seed).unwrap_err().contains("seed"));
        assert!(Scenario::from_json("not json at all").is_err());
    }

    #[test]
    #[should_panic(expected = "unknown NAS benchmark")]
    fn bad_benchmark_name_panics() {
        let s = Scenario {
            name: "bad".into(),
            seed: 1,
            topology: Topology {
                delay_us: 0,
                loss_ppm: 0,
            },
            workload: Workload::Nas {
                benchmark: "lu".into(),
                ranks_per_cluster: 4,
            },
        };
        s.run(&RunConfig::default());
    }
}
