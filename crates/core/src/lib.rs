//! # ibwan-core — the cluster-of-clusters experiment framework
//!
//! This crate ties the substrates together and reproduces every table and
//! figure of *Performance of HPC Middleware over InfiniBand WAN*
//! (Narravula et al., ICPP 2008):
//!
//! | Experiment | Function | Paper reference |
//! |---|---|---|
//! | Delay ↔ distance | [`verbs::table1`] | Table 1 |
//! | Verbs latency | [`verbs::fig3_latency`] | Figure 3 |
//! | Verbs UD bandwidth | [`verbs::fig4_ud_bandwidth`] | Figure 4 |
//! | Verbs RC bandwidth | [`verbs::fig5_rc_bandwidth`] | Figure 5 |
//! | IPoIB-UD throughput | [`ipoib_exp::fig6_ipoib_ud`] | Figure 6 |
//! | IPoIB-RC throughput | [`ipoib_exp::fig7_ipoib_rc`] | Figure 7 |
//! | MPI bandwidth | [`mpi_exp::fig8_mpi_bandwidth`] | Figure 8 |
//! | MPI threshold tuning | [`mpi_exp::fig9_threshold_tuning`] | Figure 9 |
//! | Multi-pair message rate | [`mpi_exp::fig10_message_rate`] | Figure 10 |
//! | Broadcast optimization | [`mpi_exp::fig11_bcast`] | Figure 11 |
//! | NAS benchmarks | [`nas_exp::fig12_nas`] | Figure 12 |
//! | NFS read throughput | [`nfs_exp::fig13a_nfs_rdma`] | Figure 13 |
//!
//! Plus extension experiments the paper implies but does not plot:
//! [`ext_exp::ext_nfs_write`], [`ext_exp::ext_rndv_protocols`], and
//! [`ext_exp::ext_hierarchical_allreduce`].
//!
//! Each experiment returns a [`results::Figure`] — labeled series of
//! `(x, y)` points — that the `bench` crate's `repro` binary prints in the
//! paper's units. Experiments accept a [`Fidelity`] knob: `Quick` for CI
//! and tests, `Full` for the recorded `EXPERIMENTS.md` numbers.
//!
//! The paper's proposed optimizations all have first-class switches here:
//! rendezvous-threshold tuning and WAN-adaptive selection ([`adaptive`]),
//! parallel streams (Figures 6/7/10), message coalescing
//! (`mpisim::proto::CoalesceConfig`), and hierarchical collectives
//! (Figure 11).

pub mod adaptive;
pub mod analysis;
pub mod calibration;
pub mod config;
pub mod ext_exp;
pub mod ipoib_exp;
pub mod mpi_exp;
pub mod nas_exp;
pub mod nfs_exp;
pub mod planner;
pub mod registry;
pub mod results;
pub mod runner;
pub mod scenario;
pub mod sweep;
pub mod topology;
pub mod verbs;

pub use config::{EngineProfile, PartitionMode, RunConfig};
pub use registry::{catalog, Experiment};
pub use results::{Figure, Series};
pub use topology::{lan_node_pair, wan_node_pair};

/// How much simulated work to spend per data point.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Fidelity {
    /// Small iteration counts: seconds per figure; used by tests.
    Quick,
    /// The counts used for the recorded `EXPERIMENTS.md` numbers.
    Full,
}

impl Fidelity {
    /// Scale an iteration count.
    pub fn iters(self, quick: u64, full: u64) -> u64 {
        match self {
            Fidelity::Quick => quick,
            Fidelity::Full => full,
        }
    }

    /// Stable lowercase name (provenance blocks, config digests).
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Quick => "quick",
            Fidelity::Full => "full",
        }
    }
}

/// The WAN one-way delays the paper sweeps (µs): 0 plus Table 1's
/// 10 µs (2 km), 100 µs (20 km), 1 ms (200 km), 10 ms (2000 km).
pub const PAPER_DELAYS_US: [u64; 5] = [0, 10, 100, 1000, 10000];
