//! Verbs-level experiments: Table 1 and Figures 3–5.

use crate::config::RunConfig;
use crate::results::{Figure, Series};
use crate::sweep::parallel_map;
use crate::topology::{lan_node_pair, wan_node_pair};
use crate::{Fidelity, PAPER_DELAYS_US};
use ibfabric::perftest::{rc_qp_pair, ud_qp_pair, BwConfig, BwPeer, LatMode, PingPong};
use ibfabric::qp::QpConfig;
use ibfabric::verbs::SendKind;
use obsidian::km_for_wire_delay;
use simcore::Dur;

/// Table 1: emulated-distance ↔ injected-delay mapping.
pub fn table1() -> Figure {
    let mut fig = Figure::new(
        "table1",
        "Delay overhead corresponding to wire length",
        "distance_km",
        "delay_us",
    );
    let mut s = Series::new("one-way-delay");
    for km in [1u64, 20, 200, 2000] {
        let d = obsidian::wire_delay_for_km(km);
        s.push(km as f64, d.as_us_f64());
        debug_assert_eq!(km_for_wire_delay(d), km);
    }
    fig.series.push(s);
    fig
}

/// Message sizes for the latency test (bytes).
const LAT_SIZES: [u32; 6] = [1, 4, 16, 64, 256, 1024];

fn run_latency(cfg: &RunConfig, through_wan: bool, mode: LatMode, size: u32, iters: u32) -> f64 {
    let a_ulp = Box::new(PingPong::new(mode, true, size, iters));
    let b_ulp = Box::new(PingPong::new(mode, false, size, iters));
    let (mut f, a, b) = if through_wan {
        wan_node_pair(cfg, 31, Dur::ZERO, a_ulp, b_ulp)
    } else {
        lan_node_pair(cfg, 31, a_ulp, b_ulp)
    };
    match mode {
        LatMode::SendUd => {
            let (qa, qb) = ud_qp_pair(&mut f, a, b, QpConfig::ud());
            {
                let u = f.hca_mut(a).ulp_mut::<PingPong>();
                u.qpn = qa;
                u.peer = Some((b.lid, qb));
            }
            {
                let u = f.hca_mut(b).ulp_mut::<PingPong>();
                u.qpn = qb;
                u.peer = Some((a.lid, qa));
            }
        }
        LatMode::SendRc | LatMode::WriteRc => {
            let qp = if mode == LatMode::WriteRc {
                QpConfig::rc().with_write_notify()
            } else {
                QpConfig::rc()
            };
            let (qa, qb) = rc_qp_pair(&mut f, a, b, qp);
            f.hca_mut(a).ulp_mut::<PingPong>().qpn = qa;
            f.hca_mut(b).ulp_mut::<PingPong>().qpn = qb;
        }
    }
    f.run();
    f.hca(a).ulp::<PingPong>().mean_latency_us()
}

/// Figure 3: verbs small-message latency for Send/Recv UD, Send/Recv RC,
/// and RDMA-Write RC through the Longbow pair (0 injected delay), plus the
/// back-to-back Send/Recv RC baseline.
pub fn fig3_latency(cfg: &RunConfig) -> Figure {
    let iters = cfg.fidelity.iters(50, 500) as u32;
    let mut fig = Figure::new(
        "fig3",
        "Verbs-level latency (through Longbows at 0 delay vs back-to-back)",
        "msg_bytes",
        "latency_us",
    );
    let variants: [(&str, bool, LatMode); 4] = [
        ("SendRecv/UD", true, LatMode::SendUd),
        ("SendRecv/RC", true, LatMode::SendRc),
        ("RDMAWrite/RC", true, LatMode::WriteRc),
        ("BackToBack-SR/RC", false, LatMode::SendRc),
    ];
    let results = parallel_map(
        cfg,
        variants
            .iter()
            .flat_map(|&(label, wan, mode)| LAT_SIZES.iter().map(move |&s| (label, wan, mode, s)))
            .collect::<Vec<_>>(),
        |(label, wan, mode, size)| (label, size, run_latency(cfg, wan, mode, size, iters)),
    );
    for &(label, _, _) in &variants {
        let mut s = Series::new(label);
        for &(l, size, lat) in &results {
            if l == label {
                s.push(size as f64, lat);
            }
        }
        fig.series.push(s);
    }
    fig
}

/// How many messages to push for a bandwidth point at `size` bytes.
fn bw_iters(fidelity: Fidelity, size: u32) -> u64 {
    let budget: u64 = fidelity.iters(8 << 20, 64 << 20);
    (budget / size.max(1) as u64).clamp(48, fidelity.iters(2000, 20000))
}

struct BwPoint {
    delay_us: u64,
    size: u32,
    bidir: bool,
    ud: bool,
}

fn run_bw_point(cfg: &RunConfig, p: &BwPoint) -> f64 {
    let iters = bw_iters(cfg.fidelity, p.size);
    let mk = |tx: bool| -> Box<BwPeer> {
        if tx {
            let mut cfg = BwConfig::new(p.size, iters);
            cfg.kind = SendKind::Send;
            Box::new(BwPeer::sender(cfg))
        } else {
            Box::new(BwPeer::receiver())
        }
    };
    let (mut f, a, b) = wan_node_pair(cfg, 33, Dur::from_us(p.delay_us), mk(true), mk(p.bidir));
    if p.ud {
        let (qa, qb) = ud_qp_pair(&mut f, a, b, QpConfig::ud());
        {
            let u = f.hca_mut(a).ulp_mut::<BwPeer>();
            u.qpn = qa;
            u.peer = Some((b.lid, qb));
        }
        {
            let u = f.hca_mut(b).ulp_mut::<BwPeer>();
            u.qpn = qb;
            u.peer = Some((a.lid, qa));
        }
    } else {
        let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
        f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
    }
    f.run();
    if p.ud {
        // UD senders get no transport feedback: measure at the receivers,
        // where the SDR WAN rate is visible.
        let fwd = f.hca(b).ulp::<BwPeer>().rx_bandwidth_mbs();
        if p.bidir {
            fwd + f.hca(a).ulp::<BwPeer>().rx_bandwidth_mbs()
        } else {
            fwd
        }
    } else {
        let fwd = f.hca(a).ulp::<BwPeer>().bandwidth_mbs();
        if p.bidir {
            fwd + f.hca(b).ulp::<BwPeer>().bandwidth_mbs()
        } else {
            fwd
        }
    }
}

fn bw_figure(
    cfg: &RunConfig,
    id: &str,
    title: &str,
    sizes: &[u32],
    ud: bool,
    bidir: bool,
) -> Figure {
    let mut fig = Figure::new(id, title, "msg_bytes", "MillionBytes/s");
    let points: Vec<BwPoint> = PAPER_DELAYS_US
        .iter()
        .flat_map(|&d| {
            sizes.iter().map(move |&s| BwPoint {
                delay_us: d,
                size: s,
                bidir,
                ud,
            })
        })
        .collect();
    let results = parallel_map(cfg, points, |p| (p.delay_us, p.size, run_bw_point(cfg, &p)));
    for &d in &PAPER_DELAYS_US {
        let label = if d == 0 {
            "no-delay".to_string()
        } else {
            format!("{d}us-delay")
        };
        let mut s = Series::new(label);
        for &(delay, size, bw) in &results {
            if delay == d {
                s.push(size as f64, bw);
            }
        }
        fig.series.push(s);
    }
    fig
}

/// Message sizes for the UD bandwidth sweep (bounded by the 2 KB MTU).
pub const UD_SIZES: [u32; 7] = [32, 64, 128, 256, 512, 1024, 2048];
/// Message sizes for the RC bandwidth sweep (to 4 MB, like Figure 5).
pub const RC_SIZES: [u32; 10] = [
    256,
    1024,
    4096,
    16384,
    65536,
    262_144,
    1 << 20,
    2 << 20,
    4 << 20,
    8192,
];

/// Figure 4: verbs UD bandwidth (a) and bidirectional bandwidth (b) vs
/// message size, one series per WAN delay.
pub fn fig4_ud_bandwidth(cfg: &RunConfig, bidir: bool) -> Figure {
    let (id, title) = if bidir {
        ("fig4b", "Verbs UD bidirectional bandwidth")
    } else {
        ("fig4a", "Verbs UD bandwidth")
    };
    bw_figure(cfg, id, title, &UD_SIZES, true, bidir)
}

/// Figure 5: verbs RC bandwidth (a) and bidirectional bandwidth (b) vs
/// message size, one series per WAN delay.
pub fn fig5_rc_bandwidth(cfg: &RunConfig, bidir: bool) -> Figure {
    let mut sizes = RC_SIZES;
    sizes.sort_unstable();
    let (id, title) = if bidir {
        ("fig5b", "Verbs RC bidirectional bandwidth")
    } else {
        ("fig5a", "Verbs RC bandwidth")
    };
    bw_figure(cfg, id, title, &sizes, false, bidir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let t = table1();
        let s = &t.series[0];
        assert_eq!(s.y_at(1.0), Some(5.0));
        assert_eq!(s.y_at(20.0), Some(100.0));
        assert_eq!(s.y_at(200.0), Some(1000.0));
        assert_eq!(s.y_at(2000.0), Some(10000.0));
    }

    #[test]
    fn fig3_longbows_add_latency_and_rdma_wins() {
        let f = fig3_latency(&RunConfig::default());
        let wan = f.series("SendRecv/RC").unwrap().y_at(4.0).unwrap();
        let lan = f.series("BackToBack-SR/RC").unwrap().y_at(4.0).unwrap();
        assert!(wan - lan > 3.5 && wan - lan < 8.0, "wan {wan} lan {lan}");
        let write = f.series("RDMAWrite/RC").unwrap().y_at(4.0).unwrap();
        assert!(
            write < wan,
            "RDMA write {write} should beat send/recv {wan}"
        );
    }

    #[test]
    fn fig4_ud_is_delay_invariant_at_peak() {
        let f = fig4_ud_bandwidth(&RunConfig::default(), false);
        let peak0 = f.series("no-delay").unwrap().y_at(2048.0).unwrap();
        let peak10ms = f.series("10000us-delay").unwrap().y_at(2048.0).unwrap();
        assert!((peak0 - 967.0).abs() < 15.0, "UD peak {peak0}");
        assert!((peak0 - peak10ms).abs() < 5.0, "{peak0} vs {peak10ms}");
    }

    #[test]
    fn fig5_rc_medium_collapse_large_recovery() {
        let f = fig5_rc_bandwidth(&RunConfig::default(), false);
        let no_delay = f.series("no-delay").unwrap();
        assert!(no_delay.peak() > 940.0, "RC peak {}", no_delay.peak());
        let d10ms = f.series("10000us-delay").unwrap();
        let k64 = d10ms.y_at(65536.0).unwrap();
        let m4 = d10ms.y_at((4 << 20) as f64).unwrap();
        assert!(k64 < 100.0, "64K at 10ms should collapse: {k64}");
        assert!(m4 > 500.0, "4M at 10ms should recover: {m4}");
    }
}
