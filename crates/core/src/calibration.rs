//! Calibration suite: verifies every constant this reproduction anchors to
//! the paper's prose numbers, by measurement. Run it after touching any
//! timing constant; `examples/` and CI tests call it too.

use crate::config::RunConfig;
use crate::topology::{lan_node_pair, wan_node_pair};
use ibfabric::perftest::{rc_qp_pair, ud_qp_pair, BwConfig, BwPeer, LatMode, PingPong};
use ibfabric::qp::QpConfig;
use mpisim::bench::{osu_bw, wan_pair};
use simcore::Dur;

/// One calibration check: a measured value against the paper's number.
#[derive(Clone, Debug)]
pub struct Check {
    /// What is being verified.
    pub name: String,
    /// The paper's value.
    pub paper: f64,
    /// What the simulation measures.
    pub measured: f64,
    /// Acceptable relative deviation (fraction).
    pub tolerance: f64,
    /// Unit for display.
    pub unit: String,
}

impl Check {
    /// True if the measured value is within tolerance of the paper's.
    pub fn ok(&self) -> bool {
        if self.paper == 0.0 {
            return self.measured == 0.0;
        }
        ((self.measured - self.paper) / self.paper).abs() <= self.tolerance
    }

    /// One-line rendering.
    pub fn render(&self) -> String {
        format!(
            "{:<44} paper {:>9.1} {unit:<5} measured {:>9.1} {unit:<5} [{}]",
            self.name,
            self.paper,
            self.measured,
            if self.ok() { "ok" } else { "OFF" },
            unit = self.unit,
        )
    }
}

fn verbs_bw(cfg: &RunConfig, ud: bool, size: u32, iters: u64) -> f64 {
    let (mut f, a, b) = wan_node_pair(
        cfg,
        61,
        Dur::ZERO,
        Box::new(BwPeer::sender(BwConfig::new(size, iters))),
        Box::new(BwPeer::receiver()),
    );
    if ud {
        let (qa, qb) = ud_qp_pair(&mut f, a, b, QpConfig::ud());
        {
            let u = f.hca_mut(a).ulp_mut::<BwPeer>();
            u.qpn = qa;
            u.peer = Some((b.lid, qb));
        }
        f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
        f.run();
        f.hca(b).ulp::<BwPeer>().rx_bandwidth_mbs()
    } else {
        let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
        f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
        f.run();
        f.hca(a).ulp::<BwPeer>().bandwidth_mbs()
    }
}

fn send_latency(cfg: &RunConfig, through_wan: bool, iters: u32) -> f64 {
    let mk = |init| Box::new(PingPong::new(LatMode::SendRc, init, 4, iters));
    let (mut f, a, b) = if through_wan {
        wan_node_pair(cfg, 62, Dur::ZERO, mk(true), mk(false))
    } else {
        lan_node_pair(cfg, 62, mk(true), mk(false))
    };
    let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
    f.hca_mut(a).ulp_mut::<PingPong>().qpn = qa;
    f.hca_mut(b).ulp_mut::<PingPong>().qpn = qb;
    f.run();
    f.hca(a).ulp::<PingPong>().mean_latency_us()
}

/// Run every calibration check.
pub fn run_calibration(cfg: &RunConfig) -> Vec<Check> {
    let fidelity = cfg.fidelity;
    let iters = fidelity.iters(1000, 5000);
    vec![
        Check {
            name: "verbs UD peak @2KB over WAN".into(),
            paper: 967.0,
            measured: verbs_bw(cfg, true, 2048, iters),
            tolerance: 0.02,
            unit: "MB/s".into(),
        },
        Check {
            name: "verbs RC peak over WAN".into(),
            paper: 980.0,
            measured: verbs_bw(cfg, false, 65536, iters.min(1500)),
            tolerance: 0.02,
            unit: "MB/s".into(),
        },
        Check {
            name: "Longbow pair added latency".into(),
            paper: 5.0,
            measured: send_latency(cfg, true, fidelity.iters(50, 300) as u32)
                - send_latency(cfg, false, fidelity.iters(50, 300) as u32),
            tolerance: 0.40,
            unit: "us".into(),
        },
        Check {
            name: "delay per km (Table 1)".into(),
            paper: 5.0,
            measured: obsidian::wire_delay_for_km(1).as_us_f64(),
            tolerance: 0.0,
            unit: "us/km".into(),
        },
        Check {
            name: "MPI peak bandwidth".into(),
            paper: 969.0,
            measured: osu_bw(
                {
                    let spec = wan_pair(Dur::ZERO);
                    spec.with_profile(cfg.engine())
                        .with_seed(cfg.seed_for(spec.seed))
                },
                1 << 20,
                8,
                fidelity.iters(4, 12) as u32,
            ),
            tolerance: 0.02,
            unit: "MB/s".into(),
        },
    ]
}

/// Render all checks, one per line.
pub fn render(checks: &[Check]) -> String {
    checks
        .iter()
        .map(Check::render)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_calibration_checks_pass() {
        let checks = run_calibration(&RunConfig::default());
        for c in &checks {
            assert!(c.ok(), "calibration drifted: {}", c.render());
        }
        assert!(checks.len() >= 5);
    }

    #[test]
    fn check_logic() {
        let c = Check {
            name: "x".into(),
            paper: 100.0,
            measured: 101.0,
            tolerance: 0.02,
            unit: "u".into(),
        };
        assert!(c.ok());
        let bad = Check {
            measured: 110.0,
            ..c
        };
        assert!(!bad.ok());
        assert!(bad.render().contains("OFF"));
    }
}
