//! NAS application experiment: Figure 12.

use crate::config::RunConfig;
use crate::results::{Figure, Series};
use crate::sweep::parallel_map;
use crate::{Fidelity, PAPER_DELAYS_US};
use mpisim::world::JobSpec;
use nasbench::{run_spec, NasBenchmark};
use simcore::Dur;

/// Figure 12: NAS class-B execution time vs WAN delay for IS, FT, and CG.
/// The paper runs 32+32 processes; `Quick` fidelity uses 8+8.
pub fn fig12_nas(cfg: &RunConfig) -> Figure {
    let per_cluster = match cfg.fidelity {
        Fidelity::Quick => 8,
        Fidelity::Full => 32,
    };
    let mut fig = Figure::new(
        "fig12",
        format!(
            "NAS class-B benchmarks, {} processes per cluster",
            per_cluster
        ),
        "delay_us",
        "time_secs",
    );
    let pts: Vec<(NasBenchmark, u64)> = NasBenchmark::ALL
        .iter()
        .flat_map(|&b| PAPER_DELAYS_US.iter().map(move |&d| (b, d)))
        .collect();
    let res = parallel_map(cfg, pts, |(bench, d)| {
        let spec = JobSpec::two_clusters(per_cluster, per_cluster, Dur::from_us(d));
        let spec = spec
            .with_profile(cfg.engine())
            .with_seed(cfg.seed_for(spec.seed));
        let r = run_spec(bench, spec);
        (bench, d, r.time_secs)
    });
    for &bench in &NasBenchmark::ALL {
        let mut s = Series::new(bench.name());
        for &(b, d, t) in &res {
            if b == bench {
                s.push(d as f64, t);
            }
        }
        fig.series.push(s);
    }
    fig
}

/// The same data normalized to the 0-delay runtime (slowdown factors) —
/// useful for reading tolerance directly.
pub fn fig12_slowdowns(fig: &Figure) -> Figure {
    let mut out = Figure::new(
        "fig12-slowdown",
        "NAS slowdown relative to 0 km",
        "delay_us",
        "slowdown_x",
    );
    for s in &fig.series {
        let base = s.y_at(0.0).unwrap_or(1.0);
        let mut ns = Series::new(s.label.clone());
        for &(x, y) in &s.points {
            ns.push(x, y / base);
        }
        out.series.push(ns);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_shapes_match_paper() {
        let f = fig12_nas(&RunConfig::default());
        let slow = fig12_slowdowns(&f);
        let is_1ms = slow.series("IS").unwrap().y_at(1000.0).unwrap();
        let ft_1ms = slow.series("FT").unwrap().y_at(1000.0).unwrap();
        let cg_1ms = slow.series("CG").unwrap().y_at(1000.0).unwrap();
        // IS and FT tolerate 200 km; CG degrades markedly.
        assert!(is_1ms < 1.5, "IS at 1ms: {is_1ms}x");
        assert!(ft_1ms < 1.5, "FT at 1ms: {ft_1ms}x");
        assert!(cg_1ms > 1.5, "CG at 1ms: {cg_1ms}x");
        assert!(cg_1ms > is_1ms && cg_1ms > ft_1ms);
    }
}
