//! Extension experiments beyond the paper's figures:
//!
//! * **NFS writes** — the paper measured them but omitted the numbers for
//!   space ("NFS Write shows similar performance"); we regenerate them.
//! * **Rendezvous-protocol comparison** — MVAPICH2's RPUT/RGET/R3 designs
//!   over increasing WAN delay (the paper only tunes the threshold; the
//!   protocol choice is the natural next knob).
//! * **Hierarchical allreduce** — the paper's stated future work on
//!   WAN-aware collectives, applied to the reduction that dominates CG.

use crate::config::RunConfig;
use crate::results::{Figure, Series};
use crate::sweep::parallel_map;
use crate::{Fidelity, PAPER_DELAYS_US};
use ibfabric::fabric::FabricBuilder;
use ibfabric::hca::HcaConfig;
use ibfabric::link::LinkConfig;
use ibfabric::perftest::{BwConfig, BwPeer};
use ibfabric::qp::QpConfig;
use mpisim::bench::{allreduce_latency, osu_bw, wan_pair_with};
use mpisim::proto::{MpiConfig, RndvProtocol};
use mpisim::world::JobSpec;
use nfssim::{run_read_experiment, NfsSetup, Transport};
use obsidian::LongbowPair;
use pfs::{run_striped_read, PfsSetup};
use sdp::{SdpConfig, SdpNode};
use simcore::Dur;

/// Extension A: NFS *write* throughput for the three transports vs delay
/// (8 client threads).
pub fn ext_nfs_write(cfg: &RunConfig) -> Figure {
    let mut fig = Figure::new(
        "extA-nfs-write",
        "NFS write throughput (8 threads) — paper omitted these numbers",
        "delay_us",
        "MB/s",
    );
    let transports = [Transport::Rdma, Transport::IpoibRc, Transport::IpoibUd];
    let pts: Vec<(Transport, u64)> = transports
        .iter()
        .flat_map(|&t| PAPER_DELAYS_US.iter().map(move |&d| (t, d)))
        .collect();
    let res = parallel_map(cfg, pts, |(t, d)| {
        let mut s = NfsSetup::scaled(t, 8, Some(Dur::from_us(d)));
        s.write = true;
        if cfg.fidelity == Fidelity::Quick {
            s.file_size = 16 << 20;
        }
        s.profile = cfg.engine();
        s.seed = cfg.seed_for(s.seed);
        (t, d, run_read_experiment(s).mbs)
    });
    for &t in &transports {
        let mut series = Series::new(t.label());
        for &(rt, d, mbs) in &res {
            if rt == t {
                series.push(d as f64, mbs);
            }
        }
        fig.series.push(series);
    }
    fig
}

/// Extension B: large-message MPI bandwidth for the three rendezvous
/// protocols vs delay.
pub fn ext_rndv_protocols(run: &RunConfig) -> Figure {
    let mut fig = Figure::new(
        "extB-rndv",
        "MPI 256 KB bandwidth: RPUT vs RGET vs R3 rendezvous",
        "delay_us",
        "MillionBytes/s",
    );
    let protocols = [
        ("RPUT", RndvProtocol::Rput),
        ("RGET", RndvProtocol::Rget),
        ("R3", RndvProtocol::R3),
    ];
    let pts: Vec<(&str, RndvProtocol, u64)> = protocols
        .iter()
        .flat_map(|&(l, p)| PAPER_DELAYS_US.iter().map(move |&d| (l, p, d)))
        .collect();
    let res = parallel_map(run, pts, |(l, p, d)| {
        let cfg = MpiConfig {
            rndv_protocol: p,
            ..MpiConfig::default()
        };
        let iters = run.fidelity.iters(3, 10) as u32;
        let spec = wan_pair_with(Dur::from_us(d), cfg);
        let spec = spec
            .with_profile(run.engine())
            .with_seed(run.seed_for(spec.seed));
        (l, d, osu_bw(spec, 262_144, 16, iters))
    });
    for &(label, _) in &protocols {
        let mut series = Series::new(label);
        for &(l, d, bw) in &res {
            if l == label {
                series.push(d as f64, bw);
            }
        }
        fig.series.push(series);
    }
    fig
}

/// Extension C: flat vs hierarchical allreduce latency at 256 KB (the
/// CG-style reduction), 16+16 ranks.
pub fn ext_hierarchical_allreduce(cfg: &RunConfig) -> Figure {
    let per_cluster = match cfg.fidelity {
        Fidelity::Quick => 8,
        Fidelity::Full => 16,
    };
    let mut fig = Figure::new(
        "extC-allreduce",
        format!(
            "Allreduce 256 KB latency, {} procs: flat vs hierarchical",
            2 * per_cluster
        ),
        "delay_us",
        "latency_us",
    );
    let pts: Vec<(bool, u64)> = [false, true]
        .iter()
        .flat_map(|&h| PAPER_DELAYS_US.iter().map(move |&d| (h, d)))
        .collect();
    let res = parallel_map(cfg, pts, |(hier, d)| {
        let spec = JobSpec::two_clusters(per_cluster, per_cluster, Dur::from_us(d));
        let spec = spec
            .with_profile(cfg.engine())
            .with_seed(cfg.seed_for(spec.seed));
        let iters = cfg.fidelity.iters(2, 5) as u32;
        (hier, d, allreduce_latency(spec, 262_144, iters, hier))
    });
    for (hier, label) in [(false, "flat"), (true, "hierarchical")] {
        let mut series = Series::new(label);
        for &(h, d, lat) in &res {
            if h == hier {
                series.push(d as f64, lat);
            }
        }
        fig.series.push(series);
    }
    fig
}

/// UD streaming bandwidth across the WAN with the given Longbow buffer
/// depth (`None` = deep buffers, the shipped configuration).
fn ud_bw_with_credits(cfg: &RunConfig, delay: Dur, credits: Option<usize>, iters: u64) -> f64 {
    let mut builder = FabricBuilder::with_profile(cfg.seed_for(53), cfg.engine());
    let n1 = builder.add_hca(
        HcaConfig::default(),
        Box::new(BwPeer::sender(BwConfig::new(2048, iters))),
    );
    let n2 = builder.add_hca(HcaConfig::default(), Box::new(BwPeer::receiver()));
    let sw_a = builder.add_switch();
    let sw_b = builder.add_switch();
    builder.link(n1.actor, sw_a, LinkConfig::ddr_lan());
    builder.link(n2.actor, sw_b, LinkConfig::ddr_lan());
    match credits {
        Some(c) => {
            LongbowPair::insert_shallow(&mut builder, sw_a, sw_b, delay, c);
        }
        None => {
            LongbowPair::insert(&mut builder, sw_a, sw_b, delay);
        }
    }
    let mut f = builder.finish();
    let qa = f.hca_mut(n1).core_mut().create_qp(QpConfig::ud());
    let qb = f.hca_mut(n2).core_mut().create_qp(QpConfig::ud());
    {
        let u = f.hca_mut(n1).ulp_mut::<BwPeer>();
        u.qpn = qa;
        u.peer = Some((n2.lid, qb));
    }
    f.hca_mut(n2).ulp_mut::<BwPeer>().qpn = qb;
    f.run();
    f.hca(n2).ulp::<BwPeer>().rx_bandwidth_mbs()
}

/// Extension D: why range extenders need deep buffers — UD streaming
/// bandwidth vs delay for shallow vs deep Longbow buffer credits. The
/// credit loop spans the full RTT, so sustainable bandwidth is
/// `credits × packet / RTT` until the buffers cover the bandwidth-delay
/// product.
pub fn ext_longbow_credits(cfg: &RunConfig) -> Figure {
    let mut fig = Figure::new(
        "extD-credits",
        "UD 2 KB streaming vs Longbow buffer depth (link-level credits)",
        "delay_us",
        "MillionBytes/s",
    );
    let configs: [(&str, Option<usize>); 4] = [
        ("16-credits", Some(16)),
        ("256-credits", Some(256)),
        ("4096-credits", Some(4096)),
        ("deep-buffers", None),
    ];
    let iters = cfg.fidelity.iters(2000, 10000);
    let pts: Vec<(&str, Option<usize>, u64)> = configs
        .iter()
        .flat_map(|&(l, c)| PAPER_DELAYS_US.iter().map(move |&d| (l, c, d)))
        .collect();
    let res = parallel_map(cfg, pts, |(l, c, d)| {
        (l, d, ud_bw_with_credits(cfg, Dur::from_us(d), c, iters))
    });
    for &(label, _) in &configs {
        let mut series = Series::new(label);
        for &(l, d, bw) in &res {
            if l == label {
                series.push(d as f64, bw);
            }
        }
        fig.series.push(series);
    }
    fig
}

fn sdp_stream_bw(cfg: &RunConfig, delay: Dur, msg_size: u32, count: u64) -> f64 {
    let mut builder = FabricBuilder::with_profile(cfg.seed_for(59), cfg.engine());
    let a = builder.add_hca(
        HcaConfig::default(),
        Box::new(SdpNode::sender(SdpConfig::default(), msg_size, count)),
    );
    let b = builder.add_hca(
        HcaConfig::default(),
        Box::new(SdpNode::receiver(SdpConfig::default())),
    );
    let sw_a = builder.add_switch();
    let sw_b = builder.add_switch();
    builder.link(a.actor, sw_a, LinkConfig::ddr_lan());
    builder.link(b.actor, sw_b, LinkConfig::ddr_lan());
    LongbowPair::insert(&mut builder, sw_a, sw_b, delay);
    let mut f = builder.finish();
    let (qa, qb) = ibfabric::perftest::rc_qp_pair(&mut f, a, b, QpConfig::rc());
    f.hca_mut(a).ulp_mut::<SdpNode>().socket.qpn = qa;
    f.hca_mut(b).ulp_mut::<SdpNode>().socket.qpn = qb;
    f.run();
    f.hca(b).ulp::<SdpNode>().throughput_mbs()
}

/// Extension E: sockets over the WAN — SDP (BCopy and ZCopy paths) versus
/// IPoIB+TCP, the comparison the paper's reference \[19\] ran with TTCP.
pub fn ext_sdp_vs_ipoib(cfg: &RunConfig) -> Figure {
    use crate::ipoib_exp::run_ipoib_point;
    use ipoib::node::IpoibConfig;

    let mut fig = Figure::new(
        "extE-sdp",
        "Sockets throughput over the WAN: SDP vs IPoIB (TTCP-style stream)",
        "delay_us",
        "MB/s",
    );
    let count = cfg.fidelity.iters(200, 1200);
    let zcount = cfg.fidelity.iters(24, 96);
    let pts: Vec<(&str, u64)> = ["SDP-bcopy-32K", "SDP-zcopy-1M", "IPoIB-UD", "IPoIB-RC"]
        .iter()
        .flat_map(|&l| PAPER_DELAYS_US.iter().map(move |&d| (l, d)))
        .collect();
    let res = parallel_map(cfg, pts, |(l, d)| {
        let delay = Dur::from_us(d);
        let bw = match l {
            "SDP-bcopy-32K" => sdp_stream_bw(cfg, delay, 32768, count),
            "SDP-zcopy-1M" => sdp_stream_bw(cfg, delay, 1 << 20, zcount),
            "IPoIB-UD" => run_ipoib_point(cfg, IpoibConfig::ud(), tcpstack::DEFAULT_WINDOW, 1, d),
            "IPoIB-RC" => {
                run_ipoib_point(cfg, IpoibConfig::rc(65536), tcpstack::DEFAULT_WINDOW, 1, d)
            }
            _ => unreachable!(),
        };
        (l, d, bw)
    });
    for label in ["SDP-bcopy-32K", "SDP-zcopy-1M", "IPoIB-UD", "IPoIB-RC"] {
        let mut series = Series::new(label);
        for &(l, d, bw) in &res {
            if l == label {
                series.push(d as f64, bw);
            }
        }
        fig.series.push(series);
    }
    fig
}

/// Extension F: parallel-filesystem striping over the WAN (the paper's
/// future-work context; its related work \[6\] ran Lustre over IB WAN).
/// Striping across OSSes is the filesystem-level parallel-streams
/// optimization: each stripe target contributes an independent RC window.
pub fn ext_pfs_striping(cfg: &RunConfig) -> Figure {
    let mut fig = Figure::new(
        "extF-pfs",
        "Parallel-filesystem striped read throughput vs delay",
        "delay_us",
        "MB/s",
    );
    let stripe_counts = [1usize, 2, 4, 8];
    let pts: Vec<(usize, u64)> = stripe_counts
        .iter()
        .flat_map(|&n| PAPER_DELAYS_US.iter().map(move |&d| (n, d)))
        .collect();
    let res = parallel_map(cfg, pts, |(n, d)| {
        let mut s = PfsSetup::quick(n, Some(Dur::from_us(d)));
        s.file_size = match cfg.fidelity {
            Fidelity::Quick => 32 << 20,
            Fidelity::Full => 128 << 20,
        };
        s.profile = cfg.engine();
        s.seed = cfg.seed_for(s.seed);
        (n, d, run_striped_read(s).mbs)
    });
    for &n in &stripe_counts {
        let mut series = Series::new(format!("{n}-oss"));
        for &(rn, d, mbs) in &res {
            if rn == n {
                series.push(d as f64, mbs);
            }
        }
        fig.series.push(series);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nfs_write_shape() {
        let f = ext_nfs_write(&RunConfig::default());
        // Writes complete on every transport, and RDMA writes collapse at
        // high delay like reads do (read credits are even scarcer).
        for s in &f.series {
            assert!(s.peak() > 0.0, "{}", s.label);
        }
        let rdma = f.series("RDMA").unwrap();
        assert!(rdma.y_at(10000.0).unwrap() < 0.2 * rdma.y_at(0.0).unwrap());
    }

    #[test]
    fn rndv_protocol_ordering_at_high_delay() {
        let f = ext_rndv_protocols(&RunConfig::default());
        let rput = f.series("RPUT").unwrap().y_at(10000.0).unwrap();
        let rget = f.series("RGET").unwrap().y_at(10000.0).unwrap();
        assert!(rput > rget, "RPUT {rput} vs credit-bound RGET {rget}");
    }

    #[test]
    fn credit_figure_shows_bdp_wall() {
        let f = ext_longbow_credits(&RunConfig::default());
        let deep = f.series("deep-buffers").unwrap();
        let shallow = f.series("16-credits").unwrap();
        // Deep buffers: delay-invariant UD. Shallow: collapses with delay.
        assert!((deep.y_at(0.0).unwrap() - deep.y_at(10000.0).unwrap()).abs() < 10.0);
        assert!(shallow.y_at(10000.0).unwrap() < 5.0);
        assert!(shallow.y_at(0.0).unwrap() > 500.0);
    }

    #[test]
    fn sdp_figure_shapes() {
        let f = ext_sdp_vs_ipoib(&RunConfig::default());
        // On the LAN, SDP (no TCP stack) beats IPoIB-UD's host ceiling.
        let sdp0 = f.series("SDP-zcopy-1M").unwrap().y_at(0.0).unwrap();
        let ud0 = f.series("IPoIB-UD").unwrap().y_at(0.0).unwrap();
        assert!(sdp0 > 1.5 * ud0, "SDP zcopy {sdp0} vs IPoIB-UD {ud0}");
        // At 10 ms the bcopy credit loop starves; zcopy holds up better.
        let bcopy10 = f.series("SDP-bcopy-32K").unwrap().y_at(10000.0).unwrap();
        let zcopy10 = f.series("SDP-zcopy-1M").unwrap().y_at(10000.0).unwrap();
        assert!(zcopy10 > bcopy10, "zcopy {zcopy10} vs bcopy {bcopy10}");
    }

    #[test]
    fn pfs_striping_figure_shape() {
        let f = ext_pfs_striping(&RunConfig::default());
        let one = f.series("1-oss").unwrap();
        let eight = f.series("8-oss").unwrap();
        // On the LAN both saturate; at 10 ms striping dominates.
        assert!(
            eight.y_at(10000.0).unwrap() > 4.0 * one.y_at(10000.0).unwrap(),
            "striping must recover the long pipe"
        );
    }

    #[test]
    fn hierarchical_allreduce_wins_at_delay() {
        let f = ext_hierarchical_allreduce(&RunConfig::default());
        let flat = f.series("flat").unwrap().y_at(1000.0).unwrap();
        let hier = f.series("hierarchical").unwrap().y_at(1000.0).unwrap();
        assert!(hier < flat, "hier {hier} vs flat {flat} at 1 ms");
    }
}
