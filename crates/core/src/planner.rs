//! WAN deployment planning: the paper's design guidance as arithmetic.
//!
//! The paper's recommendations — larger messages, larger TCP windows, more
//! parallel streams, higher rendezvous thresholds — all reduce to one rule:
//! *keep at least a bandwidth-delay product in flight*. This module turns
//! that rule into planning functions, each verified against the simulator
//! in this crate's tests.

use crate::adaptive;
use mpisim::proto::MpiConfig;
use simcore::{Dur, Rate};

/// Fixed fabric latency on the cluster-of-clusters path beyond the emulated
/// wire delay: host + switches + the Longbow pair (≈7 µs one way).
pub const PATH_OVERHEAD: Dur = Dur::from_us(7);

/// Round-trip time across the WAN for a given one-way emulated wire delay.
pub fn rtt_for(delay: Dur) -> Dur {
    (delay + PATH_OVERHEAD) * 2
}

/// The bandwidth-delay product to fill for `target` throughput at `delay`.
pub fn bdp_bytes(target: Rate, delay: Dur) -> u64 {
    let rtt = rtt_for(delay);
    // bytes = rate * time; rate is ps/byte.
    let ps = target.ps_per_byte().max(1);
    rtt.as_ns() * 1000 / ps
}

/// Minimum TCP window to sustain `target` on a single stream at `delay`
/// (Figure 6(a)'s knob).
pub fn tcp_window_for(target: Rate, delay: Dur) -> u64 {
    bdp_bytes(target, delay)
}

/// Minimum number of parallel TCP streams of `window` bytes each to sustain
/// `target` at `delay` (Figure 6(b)/7(b)'s knob).
pub fn parallel_streams_for(target: Rate, window: u64, delay: Dur) -> usize {
    bdp_bytes(target, delay).div_ceil(window.max(1)) as usize
}

/// Minimum RC message size to sustain `target` at `delay` given the
/// transport keeps at most `inflight_msgs` messages un-ACKed (Figure 5's
/// mechanism; 16 on the modeled HCAs).
pub fn rc_message_size_for(target: Rate, delay: Dur, inflight_msgs: u64) -> u64 {
    bdp_bytes(target, delay).div_ceil(inflight_msgs.max(1))
}

/// An MPI configuration tuned for the given distance (threshold picked by
/// the adaptive break-even rule).
pub fn mpi_config_for(delay: Dur) -> MpiConfig {
    adaptive::adaptive_config(rtt_for(delay))
}

/// A human-readable deployment plan for reaching `target` at `delay`.
pub fn plan_summary(target: Rate, delay: Dur) -> String {
    let km = obsidian::km_for_wire_delay(delay);
    format!(
        "distance {km} km (one-way delay {delay}): RTT {rtt}, BDP {bdp} bytes;\n\
         single TCP stream needs a >= {wnd} byte window (or {streams} streams of 1 MB);\n\
         RC transport needs >= {rcmsg} byte messages (16 in flight);\n\
         MPI rendezvous threshold -> {thresh} KB",
        rtt = rtt_for(delay),
        bdp = bdp_bytes(target, delay),
        wnd = tcp_window_for(target, delay),
        streams = parallel_streams_for(target, 1 << 20, delay),
        rcmsg = rc_message_size_for(target, delay, 16),
        thresh = mpi_config_for(delay).eager_threshold / 1024,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipoib_exp::run_ipoib_point;
    use crate::RunConfig;
    use ipoib::node::IpoibConfig;

    #[test]
    fn bdp_arithmetic() {
        // 1000 MB/s at 1 ms one-way: RTT 2.014 ms -> ~2.014 MB.
        let bdp = bdp_bytes(Rate::from_mbytes_per_sec(1000), Dur::from_ms(1));
        assert!((2_000_000..2_100_000).contains(&bdp), "{bdp}");
    }

    #[test]
    fn window_plan_is_achieved_in_simulation() {
        // Plan a window for 200 MB/s at 1 ms, then verify the simulator
        // delivers at least 80% of the target with that window.
        let target = Rate::from_mbytes_per_sec(200);
        let delay = Dur::from_ms(1);
        let window = tcp_window_for(target, delay);
        let got = run_ipoib_point(&RunConfig::default(), IpoibConfig::ud(), window, 1, 1000);
        assert!(
            got >= 160.0,
            "planned window {window} delivered only {got} MB/s"
        );
        // And that half the planned window cannot reach the target.
        let starved = run_ipoib_point(
            &RunConfig::default(),
            IpoibConfig::ud(),
            window / 2,
            1,
            1000,
        );
        assert!(starved < 160.0, "half window still hit {starved}");
    }

    #[test]
    fn stream_plan_matches_window_plan() {
        let target = Rate::from_mbytes_per_sec(400);
        let delay = Dur::from_ms(10);
        let one_big = tcp_window_for(target, delay);
        let n = parallel_streams_for(target, 1 << 20, delay);
        assert_eq!(n as u64, one_big.div_ceil(1 << 20));
        assert!(n >= 8, "10 ms at 400 MB/s needs many 1 MB streams: {n}");
    }

    #[test]
    fn rc_message_plan_matches_fig5() {
        // At 10 ms the plan demands multi-megabyte messages for near-peak
        // RC bandwidth — exactly where Figure 5 recovers.
        let sz = rc_message_size_for(Rate::from_mbytes_per_sec(900), Dur::from_ms(10), 16);
        assert!(sz > 1_000_000, "{sz}");
        // On the LAN, small messages suffice.
        let lan = rc_message_size_for(Rate::from_mbytes_per_sec(900), Dur::ZERO, 16);
        assert!(lan < 2048, "{lan}");
    }

    #[test]
    fn summary_mentions_the_knobs() {
        let s = plan_summary(Rate::from_mbytes_per_sec(500), Dur::from_ms(1));
        assert!(s.contains("200 km"));
        assert!(s.contains("window"));
        assert!(s.contains("rendezvous threshold"));
    }
}
