//! IPoIB/TCP experiments: Figures 6 and 7.

use crate::config::RunConfig;
use crate::results::{Figure, Series};
use crate::sweep::parallel_map;
use crate::topology::wan_node_pair;
use crate::PAPER_DELAYS_US;
use ipoib::node::{IpoibConfig, IpoibMode, IpoibNode};
use simcore::Dur;
use tcpstack::TcpConfig;

/// The TCP window sizes swept in Figure 6(a); `None` = the default
/// (>1 MB) window.
pub const WINDOWS: [(&str, u64); 4] = [
    ("64k-window", 64 << 10),
    ("256k-window", 256 << 10),
    ("512k-window", 512 << 10),
    ("default", tcpstack::DEFAULT_WINDOW),
];

/// Parallel stream counts swept in Figures 6(b)/7(b).
pub const STREAMS: [usize; 5] = [1, 2, 4, 6, 8];

/// IPoIB-RC MTUs swept in Figure 7(a).
pub const RC_MTUS: [u32; 3] = [2048, 16384, 65536];

fn warm_tcp(mtu: u32, window: u64) -> TcpConfig {
    let mut t = TcpConfig::for_mtu(mtu).with_window(window);
    // The paper measures long-lived streams (2 MB messages in a loop):
    // connections are warm, so skip the slow-start ramp.
    t.init_cwnd_segments = 1 << 20;
    t
}

/// Run one IPoIB throughput point; returns receive-side MB/s.
pub fn run_ipoib_point(
    run: &RunConfig,
    cfg: IpoibConfig,
    window: u64,
    streams: usize,
    delay_us: u64,
) -> f64 {
    let tcp = warm_tcp(cfg.mtu, window);
    // Enough bytes per stream to reach steady state even when the window
    // throttles hard at 10 ms.
    let budget = run.fidelity.iters(6 << 20, 48 << 20).max(window * 8);
    let tx = Box::new(IpoibNode::sender(cfg, tcp, streams, budget));
    let rx = Box::new(IpoibNode::receiver(cfg, tcp, streams, budget));
    let (mut f, a, b) = wan_node_pair(run, 41, Dur::from_us(delay_us), tx, rx);
    let qa = f.hca_mut(a).core_mut().create_qp(cfg.qp_config());
    let qb = f.hca_mut(b).core_mut().create_qp(cfg.qp_config());
    if cfg.mode == IpoibMode::Rc {
        f.hca_mut(a).core_mut().connect(qa, (b.lid, qb));
        f.hca_mut(b).core_mut().connect(qb, (a.lid, qa));
    }
    {
        let u = f.hca_mut(a).ulp_mut::<IpoibNode>();
        u.port.qpn = qa;
        u.port.peer = Some((b.lid, qb));
    }
    {
        let u = f.hca_mut(b).ulp_mut::<IpoibNode>();
        u.port.qpn = qb;
        u.port.peer = Some((a.lid, qa));
    }
    f.run();
    f.hca(b).ulp::<IpoibNode>().throughput_mbs()
}

/// Figure 6(a): IPoIB-UD single-stream throughput vs WAN delay, one series
/// per TCP window size. Figure 6(b): parallel streams with the default
/// window.
pub fn fig6_ipoib_ud(run: &RunConfig, parallel: bool) -> Figure {
    let cfg = IpoibConfig::ud();
    if parallel {
        let mut fig = Figure::new(
            "fig6b",
            "IPoIB-UD throughput, parallel streams",
            "delay_us",
            "MillionBytes/s",
        );
        let pts: Vec<(usize, u64)> = STREAMS
            .iter()
            .flat_map(|&n| PAPER_DELAYS_US.iter().map(move |&d| (n, d)))
            .collect();
        let res = parallel_map(run, pts, |(n, d)| {
            (
                n,
                d,
                run_ipoib_point(run, cfg, tcpstack::DEFAULT_WINDOW, n, d),
            )
        });
        for &n in &STREAMS {
            let mut s = Series::new(format!("{n}-streams"));
            for &(sn, d, bw) in &res {
                if sn == n {
                    s.push(d as f64, bw);
                }
            }
            fig.series.push(s);
        }
        fig
    } else {
        let mut fig = Figure::new(
            "fig6a",
            "IPoIB-UD throughput, single stream",
            "delay_us",
            "MillionBytes/s",
        );
        let pts: Vec<(&str, u64, u64)> = WINDOWS
            .iter()
            .flat_map(|&(l, w)| PAPER_DELAYS_US.iter().map(move |&d| (l, w, d)))
            .collect();
        let res = parallel_map(run, pts, |(l, w, d)| {
            (l, d, run_ipoib_point(run, cfg, w, 1, d))
        });
        for &(label, _) in &WINDOWS {
            let mut s = Series::new(label);
            for &(l, d, bw) in &res {
                if l == label {
                    s.push(d as f64, bw);
                }
            }
            fig.series.push(s);
        }
        fig
    }
}

/// Figure 7(a): IPoIB-RC single-stream throughput vs WAN delay, one series
/// per IP MTU. Figure 7(b): parallel streams at the 64 KB MTU.
pub fn fig7_ipoib_rc(run: &RunConfig, parallel: bool) -> Figure {
    if parallel {
        let cfg = IpoibConfig::rc(65536);
        let mut fig = Figure::new(
            "fig7b",
            "IPoIB-RC throughput, parallel streams (64K MTU)",
            "delay_us",
            "MillionBytes/s",
        );
        let pts: Vec<(usize, u64)> = STREAMS
            .iter()
            .flat_map(|&n| PAPER_DELAYS_US.iter().map(move |&d| (n, d)))
            .collect();
        let res = parallel_map(run, pts, |(n, d)| {
            (
                n,
                d,
                run_ipoib_point(run, cfg, tcpstack::DEFAULT_WINDOW, n, d),
            )
        });
        for &n in &STREAMS {
            let mut s = Series::new(format!("{n}-streams"));
            for &(sn, d, bw) in &res {
                if sn == n {
                    s.push(d as f64, bw);
                }
            }
            fig.series.push(s);
        }
        fig
    } else {
        let mut fig = Figure::new(
            "fig7a",
            "IPoIB-RC throughput, single stream",
            "delay_us",
            "MillionBytes/s",
        );
        let pts: Vec<(u32, u64)> = RC_MTUS
            .iter()
            .flat_map(|&m| PAPER_DELAYS_US.iter().map(move |&d| (m, d)))
            .collect();
        let res = parallel_map(run, pts, |(m, d)| {
            (
                m,
                d,
                run_ipoib_point(run, IpoibConfig::rc(m), tcpstack::DEFAULT_WINDOW, 1, d),
            )
        });
        for &m in &RC_MTUS {
            let mut s = Series::new(format!("{}K-MTU", m / 1024));
            for &(sm, d, bw) in &res {
                if sm == m {
                    s.push(d as f64, bw);
                }
            }
            fig.series.push(s);
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_larger_windows_win_at_delay() {
        let f = fig6_ipoib_ud(&RunConfig::default(), false);
        let small = f.series("64k-window").unwrap().y_at(1000.0).unwrap();
        let default = f.series("default").unwrap().y_at(1000.0).unwrap();
        assert!(
            default > 3.0 * small,
            "default window ({default}) must beat 64k ({small}) at 1 ms"
        );
        // Everything degrades at 10 ms with a single stream.
        let d10 = f.series("default").unwrap().y_at(10000.0).unwrap();
        let d0 = f.series("default").unwrap().y_at(0.0).unwrap();
        assert!(d10 < 0.5 * d0, "single stream at 10ms {d10} vs 0 {d0}");
    }

    #[test]
    fn fig6b_parallel_streams_sustain_at_1ms() {
        let f = fig6_ipoib_ud(&RunConfig::default(), true);
        // The paper: peak IPoIB-UD sustained at 1 ms with multiple streams.
        let eight_1ms = f.series("8-streams").unwrap().y_at(1000.0).unwrap();
        let peak = f.series("8-streams").unwrap().y_at(0.0).unwrap();
        assert!(
            eight_1ms > 0.85 * peak,
            "8 streams at 1ms {eight_1ms} vs peak {peak}"
        );
        // At 10 ms a single default window collapses; 8 windows recover.
        let one_10ms = f.series("1-streams").unwrap().y_at(10000.0).unwrap();
        let eight_10ms = f.series("8-streams").unwrap().y_at(10000.0).unwrap();
        assert!(
            eight_10ms > 4.0 * one_10ms,
            "8 streams {eight_10ms} vs 1 stream {one_10ms} at 10ms"
        );
    }

    #[test]
    fn fig7a_mtu_ordering_and_collapse() {
        let f = fig7_ipoib_rc(&RunConfig::default(), false);
        let m2 = f.series("2K-MTU").unwrap().y_at(0.0).unwrap();
        let m64 = f.series("64K-MTU").unwrap().y_at(0.0).unwrap();
        assert!(m64 > 1.5 * m2, "64K MTU ({m64}) must beat 2K ({m2})");
        assert!((800.0..1000.0).contains(&m64), "64K MTU peak {m64}");
        // Sharp drop beyond 1 ms (RC window on 64K messages).
        let m64_10ms = f.series("64K-MTU").unwrap().y_at(10000.0).unwrap();
        assert!(m64_10ms < 0.2 * m64, "64K MTU at 10ms {m64_10ms}");
    }
}
