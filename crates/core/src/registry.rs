//! The experiment registry: every table and figure of the paper's
//! evaluation section (plus the extension experiments) as a uniform,
//! metadata-carrying catalog.
//!
//! Each [`Experiment`] knows its paper reference, sweep axes, and a rough
//! relative cost, and regenerates its [`Figure`] from an explicit
//! [`RunConfig`] — no process-global engine state. The runner
//! ([`crate::runner`]) schedules entries by cost and stamps provenance;
//! the `bench` crate re-exports this catalog for the `repro`, `ibwan_sim`,
//! and `perf` binaries.

use crate::config::RunConfig;
use crate::results::Figure;
use crate::{ext_exp, ipoib_exp, mpi_exp, nas_exp, nfs_exp, verbs};

/// Structural sanity hook run by the runner after a regeneration.
pub type ShapeCheck = fn(&Figure) -> Result<(), String>;

/// A named, regenerable experiment with its catalog metadata.
pub struct Experiment {
    /// Identifier ("table1", "fig5a", ...).
    pub id: &'static str,
    /// What the paper shows there.
    pub description: &'static str,
    /// Where in the paper the figure appears ("Figure 5", "Table 1", ...).
    pub paper_ref: &'static str,
    /// The quantities the experiment sweeps ("delay", "msg size", ...).
    pub axes: &'static [&'static str],
    /// Relative cost estimate (arbitrary units; larger = slower at Full
    /// fidelity). The runner schedules expensive entries first so the
    /// slowest job never starts last.
    pub cost: u32,
    /// Engine threads one run of this experiment may occupy: the widest
    /// domain split its fabrics can produce (2 for the paper's two-cluster
    /// WAN topologies, 1 for fabric-free tables). The runner debits this
    /// against the worker pool so partitioned jobs never oversubscribe the
    /// machine with domain threads.
    pub engine_threads: usize,
    /// Regenerate the figure under the given run configuration.
    pub run: fn(&RunConfig) -> Figure,
    /// Optional shape check: cheap structural invariants (series count,
    /// monotonicity) verified by the runner after every regeneration.
    pub check: Option<ShapeCheck>,
}

/// Shape check: the figure has exactly `n` series, each non-empty.
fn expect_series(f: &Figure, n: usize) -> Result<(), String> {
    if f.series.len() != n {
        return Err(format!(
            "{}: expected {} series, got {}",
            f.id,
            n,
            f.series.len()
        ));
    }
    for s in &f.series {
        if s.points.is_empty() {
            return Err(format!("{}: series {:?} is empty", f.id, s.label));
        }
    }
    Ok(())
}

/// Shape check: every series is non-empty and every y is finite and
/// non-negative (bandwidths, latencies, rates — nothing here goes below
/// zero).
fn finite_nonnegative(f: &Figure) -> Result<(), String> {
    if f.series.is_empty() {
        return Err(format!("{}: no series", f.id));
    }
    for s in &f.series {
        if s.points.is_empty() {
            return Err(format!("{}: series {:?} is empty", f.id, s.label));
        }
        for &(x, y) in &s.points {
            if !y.is_finite() || y < 0.0 {
                return Err(format!("{}: {:?} has y={} at x={}", f.id, s.label, y, x));
            }
        }
    }
    Ok(())
}

/// The full catalog, in paper order: every table and figure of the
/// evaluation section plus the extension experiments.
pub fn catalog() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            description: "Delay overhead corresponding to wire length",
            paper_ref: "Table 1",
            axes: &["distance (km)"],
            cost: 1,
            engine_threads: 1,
            run: |_cfg| verbs::table1(),
            check: Some(|f| expect_series(f, 1)),
        },
        Experiment {
            id: "fig3",
            description: "Verbs-level latency: UD/RC send, RDMA write, back-to-back",
            paper_ref: "Figure 3",
            axes: &["msg size", "transport"],
            cost: 2,
            engine_threads: 2,
            run: verbs::fig3_latency,
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig4a",
            description: "Verbs UD bandwidth vs delay",
            paper_ref: "Figure 4(a)",
            axes: &["msg size", "delay"],
            cost: 4,
            engine_threads: 2,
            run: |cfg| verbs::fig4_ud_bandwidth(cfg, false),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig4b",
            description: "Verbs UD bidirectional bandwidth vs delay",
            paper_ref: "Figure 4(b)",
            axes: &["msg size", "delay"],
            cost: 4,
            engine_threads: 2,
            run: |cfg| verbs::fig4_ud_bandwidth(cfg, true),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig5a",
            description: "Verbs RC bandwidth vs delay",
            paper_ref: "Figure 5(a)",
            axes: &["msg size", "delay"],
            cost: 4,
            engine_threads: 2,
            run: |cfg| verbs::fig5_rc_bandwidth(cfg, false),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig5b",
            description: "Verbs RC bidirectional bandwidth vs delay",
            paper_ref: "Figure 5(b)",
            axes: &["msg size", "delay"],
            cost: 4,
            engine_threads: 2,
            run: |cfg| verbs::fig5_rc_bandwidth(cfg, true),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig6a",
            description: "IPoIB-UD single-stream throughput (TCP windows)",
            paper_ref: "Figure 6(a)",
            axes: &["TCP window", "delay"],
            cost: 6,
            engine_threads: 2,
            run: |cfg| ipoib_exp::fig6_ipoib_ud(cfg, false),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig6b",
            description: "IPoIB-UD parallel-stream throughput",
            paper_ref: "Figure 6(b)",
            axes: &["streams", "delay"],
            cost: 6,
            engine_threads: 2,
            run: |cfg| ipoib_exp::fig6_ipoib_ud(cfg, true),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig7a",
            description: "IPoIB-RC single-stream throughput (MTUs)",
            paper_ref: "Figure 7(a)",
            axes: &["TCP window", "delay"],
            cost: 6,
            engine_threads: 2,
            run: |cfg| ipoib_exp::fig7_ipoib_rc(cfg, false),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig7b",
            description: "IPoIB-RC parallel-stream throughput",
            paper_ref: "Figure 7(b)",
            axes: &["streams", "delay"],
            cost: 6,
            engine_threads: 2,
            run: |cfg| ipoib_exp::fig7_ipoib_rc(cfg, true),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig8a",
            description: "MPI bandwidth (MVAPICH2 defaults)",
            paper_ref: "Figure 8(a)",
            axes: &["msg size", "delay"],
            cost: 8,
            engine_threads: 2,
            run: |cfg| mpi_exp::fig8_mpi_bandwidth(cfg, false),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig8b",
            description: "MPI bidirectional bandwidth",
            paper_ref: "Figure 8(b)",
            axes: &["msg size", "delay"],
            cost: 8,
            engine_threads: 2,
            run: |cfg| mpi_exp::fig8_mpi_bandwidth(cfg, true),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig9a",
            description: "MPI bandwidth at 10 ms: rendezvous threshold tuning",
            paper_ref: "Figure 9(a)",
            axes: &["msg size", "rndv threshold"],
            cost: 8,
            engine_threads: 2,
            run: |cfg| mpi_exp::fig9_threshold_tuning(cfg, false),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig9b",
            description: "MPI bidir bandwidth at 10 ms: threshold tuning",
            paper_ref: "Figure 9(b)",
            axes: &["msg size", "rndv threshold"],
            cost: 8,
            engine_threads: 2,
            run: |cfg| mpi_exp::fig9_threshold_tuning(cfg, true),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig10a",
            description: "Multi-pair message rate, 10 us delay",
            paper_ref: "Figure 10(a)",
            axes: &["pairs", "msg size"],
            cost: 10,
            engine_threads: 2,
            run: |cfg| mpi_exp::fig10_message_rate(cfg, 10),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig10b",
            description: "Multi-pair message rate, 1 ms delay",
            paper_ref: "Figure 10(b)",
            axes: &["pairs", "msg size"],
            cost: 10,
            engine_threads: 2,
            run: |cfg| mpi_exp::fig10_message_rate(cfg, 1000),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig10c",
            description: "Multi-pair message rate, 10 ms delay",
            paper_ref: "Figure 10(c)",
            axes: &["pairs", "msg size"],
            cost: 10,
            engine_threads: 2,
            run: |cfg| mpi_exp::fig10_message_rate(cfg, 10000),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig11a",
            description: "Bcast latency, 10 us delay: original vs hierarchical",
            paper_ref: "Figure 11(a)",
            axes: &["msg size", "algorithm"],
            cost: 6,
            engine_threads: 2,
            run: |cfg| mpi_exp::fig11_bcast(cfg, 10),
            check: Some(|f| expect_series(f, 2)),
        },
        Experiment {
            id: "fig11b",
            description: "Bcast latency, 100 us delay: original vs hierarchical",
            paper_ref: "Figure 11(b)",
            axes: &["msg size", "algorithm"],
            cost: 6,
            engine_threads: 2,
            run: |cfg| mpi_exp::fig11_bcast(cfg, 100),
            check: Some(|f| expect_series(f, 2)),
        },
        Experiment {
            id: "fig11c",
            description: "Bcast latency, 1 ms delay: original vs hierarchical",
            paper_ref: "Figure 11(c)",
            axes: &["msg size", "algorithm"],
            cost: 6,
            engine_threads: 2,
            run: |cfg| mpi_exp::fig11_bcast(cfg, 1000),
            check: Some(|f| expect_series(f, 2)),
        },
        Experiment {
            id: "fig12",
            description: "NAS IS/FT/CG class B vs delay",
            paper_ref: "Figure 12",
            axes: &["benchmark", "delay"],
            cost: 12,
            engine_threads: 2,
            run: nas_exp::fig12_nas,
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig13a",
            description: "NFS/RDMA read throughput: LAN and WAN delays",
            paper_ref: "Figure 13(a)",
            axes: &["threads", "delay"],
            cost: 10,
            engine_threads: 2,
            run: nfs_exp::fig13a_nfs_rdma,
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig13b",
            description: "NFS transports at 100 us delay",
            paper_ref: "Figure 13(b)",
            axes: &["threads", "transport"],
            cost: 10,
            engine_threads: 2,
            run: |cfg| nfs_exp::fig13_transport_comparison(cfg, 100),
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "fig13c",
            description: "NFS transports at 1000 us delay",
            paper_ref: "Figure 13(c)",
            axes: &["threads", "transport"],
            cost: 10,
            engine_threads: 2,
            run: |cfg| nfs_exp::fig13_transport_comparison(cfg, 1000),
            check: Some(finite_nonnegative),
        },
        // --- extensions beyond the paper's plots ---
        Experiment {
            id: "extA",
            description: "NFS write throughput (paper omitted its numbers)",
            paper_ref: "Section 5.4 (unplotted)",
            axes: &["threads", "delay"],
            cost: 10,
            engine_threads: 2,
            run: ext_exp::ext_nfs_write,
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "extB",
            description: "Rendezvous protocol comparison (RPUT/RGET/R3) on the WAN",
            paper_ref: "Section 5.3 (implied)",
            axes: &["msg size", "protocol"],
            cost: 6,
            engine_threads: 2,
            run: ext_exp::ext_rndv_protocols,
            check: Some(|f| expect_series(f, 3)),
        },
        Experiment {
            id: "extC",
            description: "Flat vs hierarchical allreduce (paper future work)",
            paper_ref: "Section 6 (future work)",
            axes: &["msg size", "algorithm"],
            cost: 6,
            engine_threads: 2,
            run: ext_exp::ext_hierarchical_allreduce,
            check: Some(|f| expect_series(f, 2)),
        },
        Experiment {
            id: "extD",
            description: "Longbow buffer depth: link-credit BDP wall on the WAN",
            paper_ref: "Section 3 (implied)",
            axes: &["delay", "credits"],
            cost: 4,
            engine_threads: 2,
            run: ext_exp::ext_longbow_credits,
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "extE",
            description: "SDP vs IPoIB sockets throughput (related-work comparison)",
            paper_ref: "Section 2 (related work)",
            axes: &["msg size", "transport"],
            cost: 6,
            engine_threads: 2,
            run: ext_exp::ext_sdp_vs_ipoib,
            check: Some(finite_nonnegative),
        },
        Experiment {
            id: "extF",
            description: "Parallel-filesystem striping over the WAN (future work)",
            paper_ref: "Section 6 (future work)",
            axes: &["stripe width", "delay"],
            cost: 8,
            engine_threads: 2,
            run: ext_exp::ext_pfs_striping,
            check: Some(finite_nonnegative),
        },
    ]
}

/// Look up a catalog entry by id.
pub fn find(id: &str) -> Option<Experiment> {
    catalog().into_iter().find(|e| e.id == id)
}

/// Regenerate every table and figure serially (tests and small tools; the
/// binaries go through [`crate::runner::run_jobs`] instead).
pub fn all_figures(cfg: &RunConfig) -> Vec<Figure> {
    catalog().iter().map(|e| (e.run)(cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_table_and_figure() {
        let ids: Vec<&str> = catalog().iter().map(|e| e.id).collect();
        for required in [
            "table1", "fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "fig7a",
            "fig7b", "fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b", "fig10c", "fig11a",
            "fig11b", "fig11c", "fig12", "fig13a", "fig13b", "fig13c",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
        assert_eq!(ids.len(), 30, "24 paper experiments + 6 extensions");
    }

    #[test]
    fn ids_are_unique_and_metadata_complete() {
        let cat = catalog();
        let mut ids: Vec<&str> = cat.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cat.len(), "duplicate experiment ids");
        for e in &cat {
            assert!(!e.description.is_empty(), "{}: empty description", e.id);
            assert!(!e.paper_ref.is_empty(), "{}: empty paper_ref", e.id);
            assert!(!e.axes.is_empty(), "{}: no sweep axes", e.id);
            assert!(e.cost > 0, "{}: zero cost", e.id);
        }
    }

    #[test]
    fn find_locates_entries() {
        assert_eq!(find("fig5a").map(|e| e.paper_ref), Some("Figure 5(a)"));
        assert!(find("nope").is_none());
    }

    #[test]
    fn shape_checks_catch_malformed_figures() {
        let empty = Figure::new("x", "t", "x", "y");
        assert!(expect_series(&empty, 1).is_err());
        assert!(finite_nonnegative(&empty).is_err());
        let mut good = Figure::new("x", "t", "x", "y");
        let mut s = crate::results::Series::new("s");
        s.push(1.0, 2.0);
        good.series.push(s);
        assert!(expect_series(&good, 1).is_ok());
        assert!(finite_nonnegative(&good).is_ok());
        let mut bad = good.clone();
        bad.series[0].points.push((2.0, f64::NAN));
        assert!(finite_nonnegative(&bad).is_err());
    }
}
