//! Parallel parameter sweeps: each simulation is single-threaded and
//! deterministic, so independent configurations fan out across OS threads.

/// Map `f` over `inputs` in parallel, preserving order. Uses scoped threads
/// (one per input, bounded by the OS scheduler — sweep sizes here are tens
/// of configurations).
pub fn parallel_map<I, T, F>(inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = inputs.len();
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for (i, input) in inputs.into_iter().enumerate() {
            let fref = &f;
            handles.push((i, s.spawn(move |_| fref(input))));
        }
        for (i, h) in handles {
            out[i] = Some(h.join().expect("sweep worker panicked"));
        }
    })
    .expect("sweep scope");
    out.into_iter().map(|o| o.expect("missing result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..32).collect(), |x: i32| x * x);
        assert_eq!(out, (0..32).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn propagates_panics() {
        parallel_map(vec![1], |_: i32| -> i32 { panic!("boom") });
    }
}
