//! Parallel parameter sweeps: each simulation is single-threaded and
//! deterministic, so independent configurations fan out across a bounded
//! worker pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `inputs` in parallel, preserving order.
///
/// Runs on a bounded pool of `min(available_parallelism, inputs.len())`
/// scoped worker threads that self-schedule inputs from a shared index —
/// large sweeps no longer spawn one OS thread per configuration. Results
/// come back in input order. If any worker panics, the first panic payload
/// is re-raised in the caller once the scope joins, so the original
/// assertion message (not a generic wrapper) reaches the user.
pub fn parallel_map<I, T, F>(inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);

    // Each input slot is claimed exactly once via the shared counter; the
    // Mutex<Option<I>> wrappers hand inputs to whichever worker claims them.
    let slots: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let first_panic = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let input = slots[i].lock().unwrap().take().expect("slot claimed once");
                    let out = f(input);
                    *results[i].lock().unwrap() = Some(out);
                })
            })
            .collect();
        // Join every handle (a dropped panicked handle would make the scope
        // itself panic with a generic message), keeping the first payload.
        let mut first = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first.get_or_insert(payload);
            }
        }
        first
    });
    if let Some(payload) = first_panic {
        // Surface the worker's own panic message to the caller.
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("missing result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..32).collect(), |x: i32| x * x);
        assert_eq!(out, (0..32).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_more_inputs_than_workers() {
        // Far more inputs than any realistic core count: exercises the
        // self-scheduling loop rather than one-thread-per-input.
        let out = parallel_map((0..1000).collect(), |x: i32| x + 1);
        assert_eq!(out, (1..1001).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics() {
        parallel_map(vec![1], |_: i32| -> i32 { panic!("boom") });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics_from_pooled_workers() {
        parallel_map((0..64).collect(), |x: i32| {
            if x == 33 {
                panic!("boom");
            }
            x
        });
    }
}
