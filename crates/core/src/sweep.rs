//! Parallel parameter sweeps: simulations are deterministic and independent
//! per configuration, so sweeps fan out across a bounded worker pool.
//!
//! A single configuration may itself run on the partitioned domain engine
//! (two threads for the paper's two-cluster topologies), so the pool divides
//! the machine between *sweep* parallelism and *engine* parallelism instead
//! of multiplying them: workers × threads-per-job ≤ available cores.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `inputs` in parallel, preserving order.
///
/// Runs on a bounded pool of scoped worker threads that self-schedule
/// inputs from a shared index — large sweeps no longer spawn one OS thread
/// per configuration. The pool size is `available_parallelism` divided by
/// the threads one job may use: when the partitioned engine is eligible
/// (see [`ibfabric::fabric::partition_mode`]), each job is budgeted the
/// paper's two cluster domains, halving the worker count rather than
/// oversubscribing every core with domain threads. The workers register
/// themselves via [`simcore::domain::register_external_workers`] so nested
/// `Fabric::run` auto-partition decisions see how much of the machine the
/// sweep already claims. Results come back in input order. If any worker
/// panics, the first panic payload is re-raised in the caller once the
/// scope joins, so the original assertion message (not a generic wrapper)
/// reaches the user.
pub fn parallel_map<I, T, F>(inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let avail = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // Threads each job may consume: 2 domain threads for the paper's
    // two-cluster WAN splits unless partitioning is off process-wide. (Jobs
    // whose fabric has no domain plan still run serially; this only budgets
    // the worst case.)
    let per_job = match ibfabric::fabric::partition_mode() {
        ibfabric::fabric::PartitionMode::Off => 1,
        _ => 2,
    };
    let workers = worker_budget(avail, per_job, n);
    let _external = simcore::domain::register_external_workers(workers);

    // Each input slot is claimed exactly once via the shared counter; the
    // Mutex<Option<I>> wrappers hand inputs to whichever worker claims them.
    let slots: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let first_panic = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let input = slots[i].lock().unwrap().take().expect("slot claimed once");
                    let out = f(input);
                    *results[i].lock().unwrap() = Some(out);
                })
            })
            .collect();
        // Join every handle (a dropped panicked handle would make the scope
        // itself panic with a generic message), keeping the first payload.
        let mut first = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first.get_or_insert(payload);
            }
        }
        first
    });
    if let Some(payload) = first_panic {
        // Surface the worker's own panic message to the caller.
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("missing result"))
        .collect()
}

/// Sweep workers for a machine with `avail` cores when each job may use
/// `per_job` threads and there are `n` inputs: total threads stay within
/// `avail` (never oversubscribing with nested domain engines), with a floor
/// of one worker so narrow machines still make progress.
fn worker_budget(avail: usize, per_job: usize, n: usize) -> usize {
    (avail / per_job).max(1).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_divides_cores_between_sweep_and_engine() {
        assert_eq!(worker_budget(8, 2, 100), 4, "8 cores / 2-thread jobs");
        assert_eq!(worker_budget(8, 1, 100), 8, "serial jobs use every core");
        assert_eq!(worker_budget(1, 2, 100), 1, "floor of one worker");
        assert_eq!(worker_budget(16, 2, 3), 3, "never more workers than jobs");
    }

    #[test]
    fn workers_register_as_external_while_sweeping() {
        // Release-on-drop is covered in simcore (guard tests); sibling tests
        // may sweep concurrently, so only the in-flight claim is asserted.
        let seen = parallel_map(vec![(), (), ()], |_| simcore::domain::external_workers());
        assert!(
            seen.iter().all(|&w| w >= 1),
            "jobs must see the sweep's claim: {seen:?}"
        );
    }

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..32).collect(), |x: i32| x * x);
        assert_eq!(out, (0..32).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_more_inputs_than_workers() {
        // Far more inputs than any realistic core count: exercises the
        // self-scheduling loop rather than one-thread-per-input.
        let out = parallel_map((0..1000).collect(), |x: i32| x + 1);
        assert_eq!(out, (1..1001).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics() {
        parallel_map(vec![1], |_: i32| -> i32 { panic!("boom") });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics_from_pooled_workers() {
        parallel_map((0..64).collect(), |x: i32| {
            if x == 33 {
                panic!("boom");
            }
            x
        });
    }
}
