//! Parallel parameter sweeps: simulations are deterministic and independent
//! per configuration, so sweeps fan out across a bounded worker pool.
//!
//! A single configuration may itself run on the partitioned domain engine
//! (two threads for the paper's two-cluster topologies), so the pool divides
//! the machine between *sweep* parallelism and *engine* parallelism instead
//! of multiplying them: workers × threads-per-job ≤ available cores.

use crate::config::{PartitionMode, RunConfig};
use ibfabric::fabric::{self, RunTally};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `inputs` in parallel, preserving order.
///
/// Runs on a bounded pool of scoped worker threads that self-schedule
/// inputs from a shared index — large sweeps no longer spawn one OS thread
/// per configuration. The pool size is `available_parallelism` divided by
/// the threads one job may use: when the config's [`PartitionMode`] leaves
/// the partitioned engine eligible, each job is budgeted the paper's two
/// cluster domains, halving the worker count rather than oversubscribing
/// every core with domain threads; `cfg.workers` caps the pool further. The
/// workers register themselves via
/// [`simcore::domain::register_external_workers`] so nested `Fabric::run`
/// auto-partition decisions see how much of the machine the sweep already
/// claims, and workers already claimed by an *enclosing* pool (the
/// experiment runner) shrink this pool's budget the same way. Each worker
/// accumulates engine stats into its own thread-local
/// [`ibfabric::fabric::RunTally`]; the pool merges them back into the
/// calling thread on join, so per-experiment tallies survive the fan-out.
/// Results come back in input order. If any worker panics, the first panic
/// payload is re-raised in the caller once the scope joins, so the original
/// assertion message (not a generic wrapper) reaches the user.
pub fn parallel_map<I, T, F>(cfg: &RunConfig, inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let avail = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // Cores not already claimed by an enclosing pool (floor of one so
    // narrow machines still make progress).
    let avail = avail
        .saturating_sub(simcore::domain::external_workers())
        .max(1);
    // Threads each job may consume: 2 domain threads for the paper's
    // two-cluster WAN splits unless this config pins the engine serial.
    // (Jobs whose fabric has no domain plan still run serially; this only
    // budgets the worst case.)
    let per_job = match cfg.partition {
        PartitionMode::Off => 1,
        _ => 2,
    };
    let mut workers = worker_budget(avail, per_job, n);
    if let Some(cap) = cfg.workers {
        workers = workers.min(cap.max(1));
    }
    let _external = simcore::domain::register_external_workers(workers);
    // Each worker's equal share of the claimed cores, granted as a thread
    // allowance so nested partition decisions (`spawn_budget`) see the
    // share, not the machine. On 1 core the share is 1: partitioned jobs
    // run on the cooperative executor instead of spawning threads.
    let allowance = (avail / workers).max(1);

    // Each input slot is claimed exactly once via the shared counter; the
    // Mutex<Option<I>> wrappers hand inputs to whichever worker claims them.
    let slots: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let merged = Mutex::new(RunTally::default());
    let first_panic = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let _allow = simcore::domain::set_thread_allowance(allowance);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let input = slots[i].lock().unwrap().take().expect("slot claimed once");
                        let out = f(input);
                        *results[i].lock().unwrap() = Some(out);
                    }
                    // Hand this worker's engine stats to the caller. Runs
                    // even after earlier iterations' panics unwound past the
                    // loop? No — a panic skips this, which only under-counts
                    // the already-doomed sweep.
                    let tally = fabric::take_run_tally();
                    merged.lock().unwrap().merge(&tally);
                })
            })
            .collect();
        // Join every handle (a dropped panicked handle would make the scope
        // itself panic with a generic message), keeping the first payload.
        let mut first = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first.get_or_insert(payload);
            }
        }
        first
    });
    if let Some(payload) = first_panic {
        // Surface the worker's own panic message to the caller.
        std::panic::resume_unwind(payload);
    }
    fabric::merge_run_tally(&merged.into_inner().unwrap());
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("missing result"))
        .collect()
}

/// Sweep workers for a machine with `avail` cores when each job may use
/// `per_job` threads and there are `n` inputs: total threads stay within
/// `avail` (never oversubscribing with nested domain engines), with a floor
/// of one worker so narrow machines still make progress.
fn worker_budget(avail: usize, per_job: usize, n: usize) -> usize {
    (avail / per_job).max(1).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_divides_cores_between_sweep_and_engine() {
        assert_eq!(worker_budget(8, 2, 100), 4, "8 cores / 2-thread jobs");
        assert_eq!(worker_budget(8, 1, 100), 8, "serial jobs use every core");
        assert_eq!(worker_budget(1, 2, 100), 1, "floor of one worker");
        assert_eq!(worker_budget(16, 2, 3), 3, "never more workers than jobs");
    }

    #[test]
    fn workers_register_as_external_while_sweeping() {
        // Release-on-drop is covered in simcore (guard tests); sibling tests
        // may sweep concurrently, so only the in-flight claim is asserted.
        let cfg = RunConfig::default();
        let seen = parallel_map(&cfg, vec![(), (), ()], |_| {
            simcore::domain::external_workers()
        });
        assert!(
            seen.iter().all(|&w| w >= 1),
            "jobs must see the sweep's claim: {seen:?}"
        );
    }

    #[test]
    fn workers_run_jobs_under_a_thread_allowance() {
        let cfg = RunConfig::default();
        let seen = parallel_map(&cfg, vec![(), (), ()], |_| simcore::domain::spawn_budget());
        // Each worker owns an equal share of the machine, granted as its
        // thread allowance: a job's budget is never zero and never wider
        // than the whole machine (which would oversubscribe once every
        // worker partitions).
        let avail = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert!(seen.iter().all(|&b| b >= 1 && b <= avail), "{seen:?}");
    }

    #[test]
    fn config_caps_worker_budget() {
        let cfg = RunConfig {
            workers: Some(1),
            ..RunConfig::default()
        };
        // With a single worker the pool is one thread claiming each input in
        // turn; correctness (order, completeness) must be unaffected.
        let out = parallel_map(&cfg, (0..16).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..16).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_tallies_merge_into_caller() {
        // Each job runs a tiny fabric on a worker thread; its engine stats
        // must land in the caller's thread-local tally after the join.
        fn probe_run() {
            let mut b = ibfabric::fabric::FabricBuilder::new(7);
            let _n = b.add_hca(
                ibfabric::hca::HcaConfig::default(),
                Box::new(ibfabric::ulp::NullUlp),
            );
            b.finish().run();
        }
        let cfg = RunConfig::default();
        ibfabric::fabric::reset_run_tally();
        parallel_map(&cfg, vec![(), ()], |_| probe_run());
        let tally = ibfabric::fabric::run_tally();
        assert_eq!(
            tally.serial_runs, 2,
            "both workers' runs must merge back: {tally:?}"
        );
    }

    #[test]
    fn preserves_order() {
        let cfg = RunConfig::default();
        let out = parallel_map(&cfg, (0..32).collect(), |x: i32| x * x);
        assert_eq!(out, (0..32).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_more_inputs_than_workers() {
        // Far more inputs than any realistic core count: exercises the
        // self-scheduling loop rather than one-thread-per-input.
        let cfg = RunConfig::default();
        let out = parallel_map(&cfg, (0..1000).collect(), |x: i32| x + 1);
        assert_eq!(out, (1..1001).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let cfg = RunConfig::default();
        let out: Vec<i32> = parallel_map(&cfg, Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics() {
        let cfg = RunConfig::default();
        parallel_map(&cfg, vec![1], |_: i32| -> i32 { panic!("boom") });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics_from_pooled_workers() {
        let cfg = RunConfig::default();
        parallel_map(&cfg, (0..64).collect(), |x: i32| {
            if x == 33 {
                panic!("boom");
            }
            x
        });
    }
}
