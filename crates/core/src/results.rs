//! Result containers for regenerated tables and figures.

use std::fmt::Write as _;

/// One labeled curve of a figure.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (e.g. "RC-1000us-delay").
    pub label: String,
    /// `(x, y)` points in axis units.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the given x, if sampled.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// Maximum y value (peak bandwidth etc.).
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(0.0, f64::max)
    }
}

/// A regenerated table or figure.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier matching the paper ("fig5a", "table1", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label (the paper's units, e.g. "MillionBytes/s").
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// New empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as an aligned text table: one row per x, one column per
    /// series — the same rows the paper's plots report.
    pub fn to_table(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# y: {}", self.y_label);
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>16}", s.label);
        }
        out.push('\n');
        for x in xs {
            let _ = write!(out, "{:>14}", format_x(x));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {:>16}", format_y(y));
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serialize to JSON (for EXPERIMENTS.md regeneration).
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// The JSON value tree `to_json` renders.
    pub fn to_value(&self) -> minijson::Value {
        use minijson::{obj, Value};
        obj([
            ("id", Value::from(self.id.clone())),
            ("title", Value::from(self.title.clone())),
            ("x_label", Value::from(self.x_label.clone())),
            ("y_label", Value::from(self.y_label.clone())),
            (
                "series",
                Value::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            obj([
                                ("label", Value::from(s.label.clone())),
                                (
                                    "points",
                                    Value::Arr(
                                        s.points
                                            .iter()
                                            .map(|&(x, y)| {
                                                Value::Arr(vec![Value::Num(x), Value::Num(y)])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse the JSON layout produced by [`Figure::to_json`].
    pub fn from_json(json: &str) -> Result<Figure, String> {
        let v = minijson::Value::parse(json)?;
        let text = |key: &str| {
            v.get(key)
                .and_then(|f| f.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("figure: missing string field {key:?}"))
        };
        let series = v
            .get("series")
            .and_then(|s| s.as_array())
            .ok_or_else(|| "figure: missing series array".to_string())?
            .iter()
            .map(|s| {
                let label = s
                    .get("label")
                    .and_then(|l| l.as_str())
                    .ok_or_else(|| "series: missing label".to_string())?
                    .to_string();
                let points = s
                    .get("points")
                    .and_then(|p| p.as_array())
                    .ok_or_else(|| "series: missing points".to_string())?
                    .iter()
                    .map(|p| match p.as_array() {
                        Some([x, y]) => match (x.as_f64(), y.as_f64()) {
                            (Some(x), Some(y)) => Ok((x, y)),
                            _ => Err("series: non-numeric point".to_string()),
                        },
                        _ => Err("series: point is not an [x, y] pair".to_string()),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Series { label, points })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Figure {
            id: text("id")?,
            title: text("title")?,
            x_label: text("x_label")?,
            y_label: text("y_label")?,
            series,
        })
    }
}

fn format_y(y: f64) -> String {
    if y != 0.0 && y.abs() < 0.1 {
        format!("{y:.4}")
    } else {
        format!("{y:.2}")
    }
}

fn format_x(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_series() {
        let mut f = Figure::new("figX", "demo", "size", "MB/s");
        let mut a = Series::new("no-delay");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("10ms");
        b.push(2.0, 5.0);
        f.series.push(a);
        f.series.push(b);
        let t = f.to_table();
        assert!(t.contains("no-delay"));
        assert!(t.contains("10ms"));
        assert!(t.lines().count() >= 5);
        // x=1 has no 10ms sample: a dash.
        let row1 = t.lines().find(|l| l.trim_start().starts_with('1')).unwrap();
        assert!(row1.contains('-'));
    }

    #[test]
    fn tiny_values_keep_precision() {
        let mut f = Figure::new("t", "t", "x", "y");
        let mut s = Series::new("rate");
        s.push(1.0, 0.0042);
        f.series.push(s);
        assert!(f.to_table().contains("0.0042"));
    }

    #[test]
    fn series_helpers() {
        let mut s = Series::new("x");
        s.push(1.0, 3.0);
        s.push(2.0, 7.0);
        assert_eq!(s.y_at(2.0), Some(7.0));
        assert_eq!(s.y_at(9.0), None);
        assert_eq!(s.peak(), 7.0);
    }

    #[test]
    fn json_round_trip() {
        let mut f = Figure::new("t", "t", "x", "y");
        let mut s = Series::new("s");
        s.push(1.0, 2.5);
        f.series.push(s);
        let j = f.to_json();
        let back = Figure::from_json(&j).unwrap();
        assert_eq!(back.id, "t");
        assert_eq!(back.series("s").unwrap().points, vec![(1.0, 2.5)]);
    }
}
