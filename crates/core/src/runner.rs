//! The unified experiment runner: schedules registry entries across a
//! bounded worker pool, stamps every result with provenance, and checks
//! regenerated figures against recorded goldens.
//!
//! All three binaries (`repro`, `ibwan_sim`, `perf`) go through this module
//! instead of rolling their own loops, so progress reporting, worker
//! budgeting, shape checks, and the provenance block are identical
//! everywhere. The pool budget composes with the per-experiment sweeps in
//! [`crate::sweep`]: runner workers register themselves via
//! [`simcore::domain::register_external_workers`], so nested
//! `parallel_map` calls (and `Fabric::run` auto-partition decisions) see
//! how much of the machine the runner already claims.

use crate::config::{partition_name, RunConfig};
use crate::registry::Experiment;
use crate::results::Figure;
use ibfabric::fabric::{self, RunTally};
use minijson::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Where one figure came from: the run context and engine evidence stamped
/// into every emitted JSON document.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// [`RunConfig::digest`] of the producing config.
    pub config_digest: String,
    /// [`RunConfig::describe`] — the digest preimage, human-readable.
    pub config: String,
    /// The config's seed offset (0 = canonical golden trajectory).
    pub seed: u64,
    /// Requested engine mode ("auto" / "off" / "force").
    pub engine_mode: &'static str,
    /// Fidelity name ("quick" / "full").
    pub fidelity: &'static str,
    /// Wall-clock seconds spent regenerating the figure.
    pub wall_secs: f64,
    /// Engine statistics accumulated while the figure ran (merged across
    /// every sweep worker and domain thread the experiment used).
    pub tally: RunTally,
}

impl Provenance {
    /// Capture provenance for a run that just finished under `cfg`.
    pub fn capture(cfg: &RunConfig, wall_secs: f64, tally: RunTally) -> Self {
        Provenance {
            config_digest: cfg.digest(),
            config: cfg.describe(),
            seed: cfg.seed,
            engine_mode: partition_name(cfg.partition),
            fidelity: cfg.fidelity.name(),
            wall_secs,
            tally,
        }
    }

    /// The JSON block `stamped_value` appends under the `"provenance"` key.
    pub fn to_value(&self) -> Value {
        let c = &self.tally.counters;
        let num = |n: u64| Value::Num(n as f64);
        Value::Obj(vec![
            (
                "config_digest".into(),
                Value::from(self.config_digest.clone()),
            ),
            ("config".into(), Value::from(self.config.clone())),
            ("seed".into(), num(self.seed)),
            ("engine_mode".into(), Value::from(self.engine_mode)),
            ("fidelity".into(), Value::from(self.fidelity)),
            ("wall_secs".into(), Value::Num(self.wall_secs)),
            (
                "engine".into(),
                Value::Obj(vec![
                    ("events_processed".into(), num(c.events_processed)),
                    ("events_allocated".into(), num(c.events_allocated)),
                    ("pool_hits".into(), num(c.pool_hits)),
                    ("peak_queue_len".into(), num(c.peak_queue_len)),
                    ("timers_cancelled".into(), num(c.timers_cancelled)),
                    ("trains_emitted".into(), num(c.trains_emitted)),
                    ("fragments_coalesced".into(), num(c.fragments_coalesced)),
                    ("sync_rounds_saved".into(), num(c.sync_rounds_saved)),
                    ("barrier_ns".into(), num(c.barrier_ns)),
                    (
                        "round_events".into(),
                        Value::Arr(c.round_events.iter().map(|&b| num(b)).collect()),
                    ),
                    ("serial_runs".into(), num(self.tally.serial_runs)),
                    ("partitioned_runs".into(), num(self.tally.partitioned_runs)),
                    ("sync_rounds".into(), num(self.tally.sync_rounds)),
                    ("max_domains".into(), num(self.tally.max_domains)),
                ]),
            ),
        ])
    }
}

/// One regenerated figure plus the evidence of how it was produced.
pub struct RunOutcome {
    /// The experiment's catalog id.
    pub id: &'static str,
    /// The regenerated figure.
    pub figure: Figure,
    /// How it was produced.
    pub provenance: Provenance,
}

/// The figure's JSON tree with the provenance block appended. Readers that
/// predate provenance ([`Figure::from_json`]) ignore the extra key, so
/// stamped documents still round-trip.
pub fn stamped_value(figure: &Figure, prov: &Provenance) -> Value {
    let mut v = figure.to_value();
    if let Value::Obj(members) = &mut v {
        members.push(("provenance".into(), prov.to_value()));
    }
    v
}

/// Run one experiment under `cfg`: reset the engine tally, regenerate the
/// figure, verify its shape check, and capture provenance.
///
/// Panics if the experiment's shape check fails — a malformed figure means
/// a bug in the experiment, not bad user input.
pub fn run_one(e: &Experiment, cfg: &RunConfig) -> RunOutcome {
    fabric::reset_run_tally();
    let t0 = Instant::now();
    let figure = (e.run)(cfg);
    let wall_secs = t0.elapsed().as_secs_f64();
    let tally = fabric::take_run_tally();
    if let Some(check) = e.check {
        if let Err(msg) = check(&figure) {
            panic!("{}: shape check failed: {msg}", e.id);
        }
    }
    RunOutcome {
        id: e.id,
        figure,
        provenance: Provenance::capture(cfg, wall_secs, tally),
    }
}

/// Run one declarative [`crate::scenario::Scenario`] with the same tally
/// capture and provenance stamp as catalog experiments — `ibwan_sim` goes
/// through here so scenario JSON output is auditable exactly like
/// `repro --json` output.
pub fn run_scenario(
    s: &crate::scenario::Scenario,
    cfg: &RunConfig,
) -> (crate::scenario::ScenarioResult, Provenance) {
    fabric::reset_run_tally();
    let t0 = Instant::now();
    let result = s.run(cfg);
    let prov = Provenance::capture(cfg, t0.elapsed().as_secs_f64(), fabric::take_run_tally());
    (result, prov)
}

/// Run a set of experiments across a bounded worker pool.
///
/// Scheduling is cost-descending (the slowest experiment never starts
/// last), but results come back in input order. `progress` is called once
/// per completed experiment with a one-line summary — binaries stream it
/// to stderr so `--json`/stdout output stays machine-readable. The pool is
/// budgeted exactly like [`crate::sweep::parallel_map`]: workers × engine
/// threads per job ≤ available cores, shrunk by any enclosing pool's claim
/// and capped by `cfg.workers`. Worker panics re-raise the first payload
/// in the caller after every worker joins.
pub fn run_jobs<F>(jobs: Vec<Experiment>, cfg: &RunConfig, progress: F) -> Vec<RunOutcome>
where
    F: Fn(&str) + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    // Claim order: indices sorted by declared cost, most expensive first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(jobs[i].cost));

    let avail = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let avail = avail
        .saturating_sub(simcore::domain::external_workers())
        .max(1);
    // Threads one job may occupy: the widest engine split declared by any
    // job in the set ([`Experiment::engine_threads`]), debited *before*
    // siblings are claimed so a >2-domain job can never oversubscribe the
    // machine with domain threads. Serial configs pin every job to one.
    let per_job = match cfg.partition {
        crate::config::PartitionMode::Off => 1,
        _ => jobs
            .iter()
            .map(|j| j.engine_threads.max(1))
            .max()
            .unwrap_or(1),
    };
    let mut workers = (avail / per_job).max(1).min(n);
    if let Some(cap) = cfg.workers {
        workers = workers.min(cap.max(1));
    }
    let _external = simcore::domain::register_external_workers(workers);
    // Each worker owns an equal share of the claimed cores; granting the
    // share as a thread allowance makes nested partition decisions
    // (`simcore::domain::spawn_budget`) see it instead of the whole
    // machine. On a 1-core box the share is 1, so partitioned jobs fall
    // back to the cooperative executor rather than spawning threads.
    let allowance = (avail / workers).max(1);

    let results: Vec<Mutex<Option<RunOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let first_panic = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let _allow = simcore::domain::set_thread_allowance(allowance);
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= n {
                            break;
                        }
                        let i = order[slot];
                        let out = run_one(&jobs[i], cfg);
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        let points: usize = out.figure.series.iter().map(|s| s.points.len()).sum();
                        progress(&format!(
                            "[{finished}/{n}] {id}: {ns} series, {points} points in {secs:.2}s",
                            id = out.id,
                            ns = out.figure.series.len(),
                            secs = out.provenance.wall_secs,
                        ));
                        *results[i].lock().unwrap() = Some(out);
                    }
                })
            })
            .collect();
        let mut first = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first.get_or_insert(payload);
            }
        }
        first
    });
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("missing outcome"))
        .collect()
}

/// Compare a regenerated figure against a recorded golden, returning one
/// human-readable line per discrepancy (empty = bit-identical data).
///
/// Comparison is exact: the JSON number printer is round-trip exact, and
/// the simulation is deterministic, so any difference at all means the
/// config or code changed. Metadata (title, axis labels) is compared too —
/// a renamed series or relabeled axis is a golden change even if the
/// numbers agree.
pub fn diff_figures(expected: &Figure, got: &Figure) -> Vec<String> {
    let mut diffs = Vec::new();
    let id = &expected.id;
    if expected.id != got.id {
        diffs.push(format!("id: expected {:?}, got {:?}", expected.id, got.id));
    }
    if expected.title != got.title {
        diffs.push(format!(
            "{id}: title: expected {:?}, got {:?}",
            expected.title, got.title
        ));
    }
    if expected.x_label != got.x_label {
        diffs.push(format!(
            "{id}: x_label: expected {:?}, got {:?}",
            expected.x_label, got.x_label
        ));
    }
    if expected.y_label != got.y_label {
        diffs.push(format!(
            "{id}: y_label: expected {:?}, got {:?}",
            expected.y_label, got.y_label
        ));
    }
    for e in &expected.series {
        let Some(g) = got.series(&e.label) else {
            diffs.push(format!("{id}/{}: series missing from result", e.label));
            continue;
        };
        if e.points.len() != g.points.len() {
            diffs.push(format!(
                "{id}/{}: expected {} points, got {}",
                e.label,
                e.points.len(),
                g.points.len()
            ));
        }
        for (&(ex, ey), &(gx, gy)) in e.points.iter().zip(&g.points) {
            if ex != gx {
                diffs.push(format!(
                    "{id}/{}: x grid diverges: expected x={ex}, got x={gx}",
                    e.label
                ));
                break; // every later point would repeat the same story
            }
            if ey != gy {
                diffs.push(format!(
                    "{id}/{}: at x={ex}: expected {ey}, got {gy}",
                    e.label
                ));
            }
        }
    }
    for g in &got.series {
        if expected.series(&g.label).is_none() {
            diffs.push(format!("{id}/{}: unexpected extra series", g.label));
        }
    }
    diffs
}

/// Golden-check one outcome against `dir/<figure id>.json` — the same
/// filename `repro --json` writes (the figure id, which for extension
/// experiments is longer than the catalog id).
///
/// Returns the discrepancy lines (empty = pass). A missing or unparsable
/// golden file is itself a discrepancy, not a panic — `repro --check`
/// reports it and exits nonzero.
pub fn check_against(dir: &std::path::Path, outcome: &RunOutcome) -> Vec<String> {
    let path = dir.join(format!("{}.json", outcome.figure.id));
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            return vec![format!(
                "{}: cannot read golden {}: {e}",
                outcome.id,
                path.display()
            )]
        }
    };
    let expected = match Figure::from_json(&text) {
        Ok(f) => f,
        Err(e) => {
            return vec![format!(
                "{}: golden {} is malformed: {e}",
                outcome.id,
                path.display()
            )]
        }
    };
    diff_figures(&expected, &outcome.figure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use crate::results::Series;

    fn fig(id: &str, points: &[(f64, f64)]) -> Figure {
        let mut f = Figure::new(id, "t", "x", "y");
        let mut s = Series::new("s");
        for &(x, y) in points {
            s.push(x, y);
        }
        f.series.push(s);
        f
    }

    #[test]
    fn identical_figures_diff_clean() {
        let a = fig("f", &[(1.0, 2.0), (2.0, 4.0)]);
        assert!(diff_figures(&a, &a.clone()).is_empty());
    }

    #[test]
    fn perturbed_point_is_named_with_series_and_x() {
        let a = fig("f", &[(1.0, 2.0), (2.0, 4.0)]);
        let mut b = a.clone();
        b.series[0].points[1].1 = 4.5;
        let d = diff_figures(&a, &b);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("f/s"), "{d:?}");
        assert!(d[0].contains("x=2"), "{d:?}");
        assert!(d[0].contains("expected 4"), "{d:?}");
        assert!(d[0].contains("got 4.5"), "{d:?}");
    }

    #[test]
    fn missing_and_extra_series_are_reported() {
        let a = fig("f", &[(1.0, 2.0)]);
        let mut b = a.clone();
        b.series[0].label = "renamed".into();
        let d = diff_figures(&a, &b);
        assert!(d.iter().any(|l| l.contains("f/s") && l.contains("missing")));
        assert!(d
            .iter()
            .any(|l| l.contains("renamed") && l.contains("extra")));
    }

    #[test]
    fn metadata_changes_are_diffs() {
        let a = fig("f", &[(1.0, 2.0)]);
        let mut b = a.clone();
        b.y_label = "GB/s".into();
        let d = diff_figures(&a, &b);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("y_label"), "{d:?}");
    }

    #[test]
    fn run_one_captures_provenance_and_stamps_round_trippable_json() {
        let cfg = RunConfig::default();
        let e = registry::find("table1").unwrap();
        let out = run_one(&e, &cfg);
        assert_eq!(out.id, "table1");
        assert_eq!(out.provenance.config_digest, cfg.digest());
        assert_eq!(out.provenance.fidelity, "quick");
        assert_eq!(out.provenance.engine_mode, "auto");
        let json = stamped_value(&out.figure, &out.provenance).to_pretty();
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"config_digest\""));
        // Pre-provenance readers ignore the extra key.
        let back = Figure::from_json(&json).unwrap();
        assert!(diff_figures(&out.figure, &back).is_empty());
    }

    #[test]
    fn check_against_passes_on_identical_and_fails_on_perturbed_golden() {
        let cfg = RunConfig::default();
        let e = registry::find("table1").unwrap();
        let out = run_one(&e, &cfg);
        let dir = std::env::temp_dir().join("ibwan-runner-golden-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table1.json");

        // Bit-identical golden (with provenance stamped) passes.
        let json = stamped_value(&out.figure, &out.provenance).to_pretty();
        std::fs::write(&path, &json).unwrap();
        assert!(check_against(&dir, &out).is_empty());

        // Perturb one y value: the check must fail with a readable line.
        let mut golden = out.figure.clone();
        golden.series[0].points[0].1 += 1.0;
        std::fs::write(&path, golden.to_json()).unwrap();
        let d = check_against(&dir, &out);
        assert!(!d.is_empty());
        assert!(d[0].contains("table1/"), "{d:?}");

        // Missing golden is a reported discrepancy, not a panic.
        std::fs::remove_file(&path).unwrap();
        let d = check_against(&dir, &out);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("cannot read golden"), "{d:?}");
    }

    #[test]
    fn run_jobs_returns_input_order_and_streams_progress() {
        let cfg = RunConfig::default();
        // Two cheap real catalog entries; input order must survive the
        // cost-descending schedule (fig3 costs more than table1).
        let jobs: Vec<Experiment> = ["table1", "fig3"]
            .iter()
            .map(|id| registry::find(id).unwrap())
            .collect();
        let lines = Mutex::new(Vec::new());
        let outs = run_jobs(jobs, &cfg, |l| lines.lock().unwrap().push(l.to_string()));
        assert_eq!(outs[0].id, "table1");
        assert_eq!(outs[1].id, "fig3");
        let lines = lines.into_inner().unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().any(|l| l.contains("table1")), "{lines:?}");
        assert!(lines.iter().all(|l| l.contains("series")), "{lines:?}");
    }
}
