//! Serialization-rate modeling for links, host CPUs, and other serial
//! resources.
//!
//! Rates are stored as integer **picoseconds per byte** so transmission-time
//! arithmetic is exact and platform-independent (no floating point in the
//! event path). 8 Gb/s — the InfiniBand SDR data rate the Obsidian Longbows
//! carry across the WAN — is exactly 1000 ps/byte.

use crate::time::{Dur, Time};

/// A data rate, stored as picoseconds per byte.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Rate {
    ps_per_byte: u64,
}

impl Rate {
    /// An effectively infinite rate (zero serialization time).
    pub const INFINITE: Rate = Rate { ps_per_byte: 0 };

    /// From gigabits per second of *data* (e.g. IB SDR carries 8 Gb/s data).
    pub fn from_gbps(gbps: u64) -> Self {
        assert!(gbps > 0, "rate must be positive");
        // ps/byte = 8 bits/byte / (gbps * 1e9 bits/s) * 1e12 ps/s = 8000/gbps
        Rate {
            ps_per_byte: 8000 / gbps,
        }
    }

    /// From megabytes (10^6 bytes) per second.
    pub fn from_mbytes_per_sec(mb: u64) -> Self {
        assert!(mb > 0, "rate must be positive");
        Rate {
            ps_per_byte: 1_000_000 / mb,
        }
    }

    /// From raw picoseconds per byte.
    pub const fn from_ps_per_byte(ps: u64) -> Self {
        Rate { ps_per_byte: ps }
    }

    /// Picoseconds to serialize one byte.
    pub const fn ps_per_byte(self) -> u64 {
        self.ps_per_byte
    }

    /// Effective rate in MB/s (10^6 bytes), for reporting.
    pub fn mbytes_per_sec(self) -> f64 {
        if self.ps_per_byte == 0 {
            f64::INFINITY
        } else {
            1_000_000.0 / self.ps_per_byte as f64
        }
    }

    /// Time to serialize `bytes` at this rate (rounds up to whole ns).
    pub fn tx_time(self, bytes: u64) -> Dur {
        Dur::from_ns((bytes * self.ps_per_byte).div_ceil(1000))
    }
}

/// A serial resource (a link direction, a NIC engine, a host CPU doing
/// per-packet work): jobs are served one at a time in arrival order.
///
/// `reserve` implements the classic store-and-forward bookkeeping: a job
/// arriving at `now` begins service at `max(now, next_free)` and occupies the
/// resource for its service time.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SerialResource {
    rate: Rate,
    next_free: Time,
    busy: Dur,
}

impl SerialResource {
    /// A resource serving at `rate`.
    pub fn new(rate: Rate) -> Self {
        SerialResource {
            rate,
            next_free: Time::ZERO,
            busy: Dur::ZERO,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Occupy the resource for `bytes` of work arriving at `now`; returns the
    /// (start, finish) times of service.
    pub fn reserve(&mut self, now: Time, bytes: u64) -> (Time, Time) {
        let start = now.max(self.next_free);
        let service = self.rate.tx_time(bytes);
        let finish = start + service;
        self.next_free = finish;
        self.busy += service;
        (start, finish)
    }

    /// Occupy the resource for a fixed duration of work (e.g. fixed per-packet
    /// CPU cost) arriving at `now`.
    pub fn reserve_dur(&mut self, now: Time, work: Dur) -> (Time, Time) {
        let start = now.max(self.next_free);
        let finish = start + work;
        self.next_free = finish;
        self.busy += work;
        (start, finish)
    }

    /// Occupy the resource for a train of `n` equal jobs of `bytes` each whose
    /// arrivals are spaced `gap` apart starting at `ready`, **iff** the train's
    /// per-job service pattern has a closed form. Returns
    /// `(head_finish, gap_out)` where `gap_out` is the departure spacing, or
    /// `None` when the pattern is irregular and the caller must fall back to
    /// `n` individual `reserve` calls at `ready + k * gap`.
    ///
    /// Exactness: the two closed forms below reproduce, job for job, what the
    /// per-fragment `reserve` loop would compute.
    ///
    /// 1. `service >= gap` (arrivals at least as fast as service): job `k`
    ///    starts at `start + k * service` where `start = max(ready,
    ///    next_free)` — by induction, each job's predecessor finishes no
    ///    earlier than the job arrives, so service is back-to-back and
    ///    departures are spaced exactly `service`.
    /// 2. `service < gap` and the resource is idle at `ready`: every job finds
    ///    the resource idle (its predecessor finished `gap - service` before it
    ///    arrives), so job `k` runs at `ready + k * gap` and departures keep
    ///    the arrival spacing `gap`.
    ///
    /// Any other case (slow arrivals into a backlog) drains the backlog
    /// mid-train and has no single departure spacing.
    pub fn reserve_train(
        &mut self,
        ready: Time,
        n: u32,
        bytes: u64,
        gap: Dur,
    ) -> Option<(Time, Dur)> {
        debug_assert!(n >= 1);
        let service = self.rate.tx_time(bytes);
        if service >= gap {
            let start = ready.max(self.next_free);
            let total = service * n as u64;
            self.next_free = start + total;
            self.busy += total;
            Some((start + service, service))
        } else if self.next_free <= ready {
            self.next_free = ready + gap * (n as u64 - 1) + service;
            self.busy += service * n as u64;
            Some((ready + service, gap))
        } else {
            None
        }
    }

    /// Earliest time the resource is idle.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Total busy time accumulated (utilization numerator).
    pub fn busy_time(&self) -> Dur {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdr_is_1000_ps_per_byte() {
        assert_eq!(Rate::from_gbps(8).ps_per_byte(), 1000);
        assert_eq!(Rate::from_gbps(16).ps_per_byte(), 500);
    }

    #[test]
    fn tx_time_rounds_up() {
        let r = Rate::from_gbps(8); // 1 ns/byte
        assert_eq!(r.tx_time(2048), Dur::from_ns(2048));
        let r2 = Rate::from_ps_per_byte(1500);
        assert_eq!(r2.tx_time(1), Dur::from_ns(2)); // 1.5ns rounds up
        assert_eq!(r2.tx_time(2), Dur::from_ns(3));
    }

    #[test]
    fn infinite_rate_is_instant() {
        assert_eq!(Rate::INFINITE.tx_time(1 << 30), Dur::ZERO);
        assert!(Rate::INFINITE.mbytes_per_sec().is_infinite());
    }

    #[test]
    fn mbytes_per_sec_reporting() {
        assert!((Rate::from_gbps(8).mbytes_per_sec() - 1000.0).abs() < 1e-9);
        assert!((Rate::from_mbytes_per_sec(500).mbytes_per_sec() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn serial_resource_queues_back_to_back() {
        let mut res = SerialResource::new(Rate::from_gbps(8));
        let (s1, f1) = res.reserve(Time::ZERO, 1000);
        assert_eq!(s1, Time::ZERO);
        assert_eq!(f1, Time::from_ns(1000));
        // Second job arrives while the first is in service: queued.
        let (s2, f2) = res.reserve(Time::from_ns(100), 1000);
        assert_eq!(s2, Time::from_ns(1000));
        assert_eq!(f2, Time::from_ns(2000));
        // Third arrives after idle gap: starts immediately.
        let (s3, _f3) = res.reserve(Time::from_ns(5000), 1000);
        assert_eq!(s3, Time::from_ns(5000));
        assert_eq!(res.busy_time(), Dur::from_ns(3000));
    }

    /// Per-fragment reference: reserve each member of the train individually
    /// at its own arrival time; return the sequence of finish times.
    fn per_fragment(
        res: &mut SerialResource,
        ready: Time,
        n: u32,
        bytes: u64,
        gap: Dur,
    ) -> Vec<Time> {
        (0..n)
            .map(|k| res.reserve(ready + gap * k as u64, bytes).1)
            .collect()
    }

    #[test]
    fn reserve_train_back_to_back_matches_per_fragment() {
        // service (1000ns) >= gap (600ns): departures pack at service spacing.
        let mut a = SerialResource::new(Rate::from_gbps(8));
        let mut b = a;
        let golden = per_fragment(&mut a, Time::from_ns(50), 5, 1000, Dur::from_ns(600));
        let (head, gap_out) = b
            .reserve_train(Time::from_ns(50), 5, 1000, Dur::from_ns(600))
            .unwrap();
        assert_eq!(head, golden[0]);
        assert_eq!(gap_out, Dur::from_ns(1000));
        for (k, g) in golden.iter().enumerate() {
            assert_eq!(head + gap_out * k as u64, *g);
        }
        assert_eq!(a, b); // next_free and busy agree too
    }

    #[test]
    fn reserve_train_behind_backlog_matches_per_fragment() {
        // Resource busy until t=3000 when the train arrives at t=100.
        let mut a = SerialResource::new(Rate::from_gbps(8));
        a.reserve(Time::ZERO, 3000);
        let mut b = a;
        let golden = per_fragment(&mut a, Time::from_ns(100), 4, 1000, Dur::from_ns(1000));
        let (head, gap_out) = b
            .reserve_train(Time::from_ns(100), 4, 1000, Dur::from_ns(1000))
            .unwrap();
        assert_eq!(head, golden[0]);
        for (k, g) in golden.iter().enumerate() {
            assert_eq!(head + gap_out * k as u64, *g);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn reserve_train_slow_arrivals_idle_matches_per_fragment() {
        // service (500ns) < gap (1000ns) on an idle resource: departures keep
        // the arrival spacing.
        let mut a = SerialResource::new(Rate::from_gbps(16));
        let mut b = a;
        let golden = per_fragment(&mut a, Time::from_ns(200), 6, 1000, Dur::from_ns(1000));
        let (head, gap_out) = b
            .reserve_train(Time::from_ns(200), 6, 1000, Dur::from_ns(1000))
            .unwrap();
        assert_eq!(head, golden[0]);
        assert_eq!(gap_out, Dur::from_ns(1000));
        for (k, g) in golden.iter().enumerate() {
            assert_eq!(head + gap_out * k as u64, *g);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn reserve_train_slow_arrivals_into_backlog_declines() {
        // service < gap but the resource is busy at `ready`: the backlog
        // drains mid-train, so there is no closed form — caller must
        // de-coalesce.
        let mut res = SerialResource::new(Rate::from_gbps(16));
        res.reserve(Time::ZERO, 4000); // busy until 2000ns
        let untouched = res;
        assert!(res
            .reserve_train(Time::from_ns(100), 4, 1000, Dur::from_ns(1000))
            .is_none());
        assert_eq!(res, untouched); // declining must not mutate state
    }

    #[test]
    fn reserve_dur_fixed_work() {
        let mut res = SerialResource::new(Rate::INFINITE);
        let (_, f1) = res.reserve_dur(Time::ZERO, Dur::from_us(3));
        assert_eq!(f1, Time::from_us(3));
        let (s2, f2) = res.reserve_dur(Time::from_us(1), Dur::from_us(2));
        assert_eq!(s2, Time::from_us(3));
        assert_eq!(f2, Time::from_us(5));
    }
}
