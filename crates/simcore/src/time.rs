//! Virtual time and durations.
//!
//! The engine counts nanoseconds from simulation start in a `u64`, which
//! covers ~584 years of virtual time — far beyond any experiment here.
//! A separate [`Dur`] type keeps "point in time" and "span of time" from
//! being mixed up in protocol arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as "never" for timers).
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns)
    }
    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }
    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Raw nanoseconds since start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }
    /// Microseconds since start, as floating point.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Seconds since start, as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed span since `earlier`; saturates to zero if `earlier` is later.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }
    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Construct from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns)
    }
    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Dur(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }
    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }
    /// Construct from floating-point microseconds (rounds to nearest ns).
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        Dur((us * 1e3).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }
    /// Microseconds, as floating point.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Seconds, as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two spans.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }
    /// The smaller of two spans.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}
impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}
impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}
impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}
impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}
impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}
impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}
impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}
impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}
impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}
impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}
impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}
impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{}ns", ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Time::from_us(5).as_ns(), 5_000);
        assert_eq!(Time::from_ms(10).as_ns(), 10_000_000);
        assert_eq!(Time::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(Dur::from_us(3).as_ns(), 3_000);
        assert_eq!(Dur::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(Dur::from_secs(4).as_ns(), 4_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_us(10) + Dur::from_us(5);
        assert_eq!(t, Time::from_us(15));
        assert_eq!(t - Time::from_us(5), Dur::from_us(10));
        assert_eq!(t - Dur::from_us(15), Time::ZERO);
        assert_eq!(Dur::from_us(4) * 3, Dur::from_us(12));
        assert_eq!(Dur::from_us(12) / 4, Dur::from_us(3));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Time::from_us(1).since(Time::from_us(5)), Dur::ZERO);
        assert_eq!(Time::from_us(9).since(Time::from_us(5)), Dur::from_us(4));
    }

    #[test]
    fn float_conversions() {
        assert!((Dur::from_us(1500).as_us_f64() - 1500.0).abs() < 1e-9);
        assert!((Time::from_ms(2).as_secs_f64() - 0.002).abs() < 1e-12);
        assert_eq!(Dur::from_us_f64(2.5), Dur::from_ns(2500));
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(Time::from_us(1) < Time::from_us(2));
        assert_eq!(Time::from_us(1).max(Time::from_us(2)), Time::from_us(2));
        assert_eq!(Dur::from_us(7).min(Dur::from_us(3)), Dur::from_us(3));
        assert_eq!(Dur::from_us(3).saturating_sub(Dur::from_us(7)), Dur::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Dur::from_ns(17)), "17ns");
        assert_eq!(format!("{}", Dur::from_us(2)), "2.000us");
        assert_eq!(format!("{}", Dur::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", Dur::from_secs(1)), "1.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur::from_us(1), Dur::from_us(2), Dur::from_us(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Dur::from_us(6));
    }
}
