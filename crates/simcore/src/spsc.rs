//! Lock-free single-producer/single-consumer channel for cross-domain event
//! traffic.
//!
//! Each ordered pair of domains in a partitioned run (see [`crate::domain`])
//! owns one of these channels. The traffic pattern is bursty but sparse —
//! one staged message per WAN crossing, flushed once per synchronization
//! window — so the channel favors simplicity and strict FIFO order over
//! batched throughput: an unbounded linked queue in the style of Vyukov's
//! non-intrusive MPSC queue, restricted to one producer by ownership
//! (`Sender`/`Receiver` are single-owner handles; neither is `Clone`).
//!
//! Progress guarantees: `push` is wait-free (one allocation, one atomic
//! swap, one store); `pop` is wait-free (one atomic load). There are no
//! locks anywhere, so a domain thread can never block another by being
//! descheduled mid-operation.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    /// `None` only for the stub node (and after the value is popped).
    val: Option<T>,
}

struct Inner<T> {
    /// Most recently pushed node; producers swap themselves in here.
    head: AtomicPtr<Node<T>>,
    /// Consumer-private cursor: the node *before* the next value (starts at
    /// the stub). Only the consumer touches it, so it needs no atomicity —
    /// it lives behind a raw pointer cell to keep `Inner` shareable.
    tail: std::cell::UnsafeCell<*mut Node<T>>,
}

// SAFETY: `head` is an atomic; `tail` is only ever accessed by the single
// `Receiver` (enforced by ownership — `Receiver` is not `Clone` and `pop`
// takes `&mut self`). Values of `T` cross threads, hence `T: Send`.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both handles are gone; walk the list from the consumer cursor and
        // free every node (including un-popped values).
        let mut p = unsafe { *self.tail.get() };
        while !p.is_null() {
            let boxed = unsafe { Box::from_raw(p) };
            p = boxed.next.load(Ordering::Relaxed);
        }
    }
}

/// The producing half: owned by exactly one thread.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The consuming half: owned by exactly one thread.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create an empty channel.
pub fn channel<T: Send>() -> (Sender<T>, Receiver<T>) {
    let stub = Box::into_raw(Box::new(Node {
        next: AtomicPtr::new(ptr::null_mut()),
        val: None,
    }));
    let inner = Arc::new(Inner {
        head: AtomicPtr::new(stub),
        tail: std::cell::UnsafeCell::new(stub),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T: Send> Sender<T> {
    /// Append `v` to the channel. Wait-free; never blocks the consumer.
    pub fn push(&mut self, v: T) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            val: Some(v),
        }));
        // Publish the node as the new head, then link the previous head to
        // it. Between the swap and the store the consumer sees a `null`
        // next and treats the queue as (momentarily) empty — acceptable
        // here because a drain always observes a FIFO *prefix* of what was
        // pushed, and the batched-window protocol (see `crate::domain`)
        // never relies on a drain being complete: the sender's published
        // floor and wire-tail atomics (release/acquire) prove that anything
        // a drain missed carries a timestamp at or beyond the horizon the
        // receiver computed, and the `outstanding` debt counter keeps
        // termination from being declared while a suffix is still in
        // flight.
        let prev = self.inner.head.swap(node, Ordering::AcqRel);
        // SAFETY: `prev` is a node we (or `channel`) allocated and never
        // freed: the consumer only frees nodes strictly behind its cursor,
        // and its cursor cannot pass `prev` until `prev.next` is non-null —
        // which only happens on the next line.
        unsafe { (*prev).next.store(node, Ordering::Release) };
    }
}

impl<T: Send> Receiver<T> {
    /// Take the oldest value, if any. Wait-free.
    pub fn pop(&mut self) -> Option<T> {
        // SAFETY: the cursor is consumer-private (see `Inner`), and every
        // node it reaches was fully initialized by `push` before the
        // `Release` store that made it reachable (paired by the `Acquire`
        // load below).
        unsafe {
            let tail = *self.inner.tail.get();
            let next = (*tail).next.load(Ordering::Acquire);
            if next.is_null() {
                return None;
            }
            let v = (*next)
                .val
                .take()
                .expect("non-stub node must carry a value");
            *self.inner.tail.get() = next;
            drop(Box::from_raw(tail));
            Some(v)
        }
    }

    /// True when no value is currently poppable.
    pub fn is_empty(&self) -> bool {
        // SAFETY: same consumer-private cursor access as `pop`.
        unsafe {
            let tail = *self.inner.tail.get();
            (*tail).next.load(Ordering::Acquire).is_null()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fifo_within_one_thread() {
        let (mut tx, mut rx) = channel();
        assert!(rx.is_empty());
        assert_eq!(rx.pop(), None);
        for i in 0..100u32 {
            tx.push(i);
        }
        assert!(!rx.is_empty());
        for i in 0..100u32 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let (mut tx, mut rx) = channel();
        let mut expect = 0u64;
        for round in 0..50u64 {
            for k in 0..round % 7 {
                tx.push(round * 100 + k);
            }
            for k in 0..round % 7 {
                assert_eq!(rx.pop(), Some(round * 100 + k));
            }
            expect += round % 7;
        }
        assert!(rx.is_empty());
        assert!(expect > 0);
    }

    /// Contention smoke: a producer thread races the consumer over 200k
    /// values; order and completeness must survive arbitrary interleaving.
    /// CI runs this under `--test-threads=1` so the two channel threads get
    /// the scheduler to themselves (closest to a loom-style schedule sweep
    /// available without a dependency).
    #[test]
    fn cross_thread_order_under_contention() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = channel();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    tx.push(i);
                    if i % 4096 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            let mut next = 0u64;
            let mut spins = 0u64;
            while next < N {
                match rx.pop() {
                    Some(v) => {
                        assert_eq!(v, next, "out-of-order delivery");
                        next += 1;
                    }
                    None => {
                        spins += 1;
                        if spins.is_multiple_of(1024) {
                            std::thread::yield_now();
                        }
                    }
                }
            }
            assert_eq!(rx.pop(), None);
        });
    }

    /// Dropping the channel with values still queued must free them (their
    /// destructors run exactly once).
    #[test]
    fn drop_frees_unpopped_values() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let (mut tx, mut rx) = channel();
        for _ in 0..10 {
            tx.push(Counted);
        }
        drop(rx.pop()); // one popped and dropped by us
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }
}
