//! Conservative partitioned parallel execution: split one engine's actor
//! graph into domains and run each domain's event loop on its own thread.
//!
//! ## Why this is safe on a WAN topology
//!
//! The paper's entire setup is two InfiniBand clusters joined by Obsidian
//! Longbow routers whose injected WAN delay (5 µs–10 ms) dwarfs
//! intra-cluster event spacing. Every message between the clusters crosses
//! the Longbow–Longbow cable and therefore arrives at least the cable's
//! minimum propagation delay — the **lookahead** `L[s][d]` — after the event
//! that sent it. That is exactly the structure conservative parallel
//! discrete-event simulation (Chandy–Misra style) exploits.
//!
//! ## The window protocol
//!
//! All domains run rounds in lockstep, two barriers per round:
//!
//! 1. **Drain + publish**: each domain moves any staged cross-domain
//!    arrivals from its inbound channels into its event queue, then
//!    publishes its next-event time `nvt_d` (∞ when empty).
//! 2. **Barrier A**, then each domain reads every `nvt` and computes its
//!    horizon `H_d = min over all domains s of (nvt_s + P[s][d])`, where
//!    `P[s][d]` is the **lookahead path closure**: the cheapest chain of cut
//!    crossings leading from `s` to `d` (at least one edge — for `s = d`
//!    this is the cheapest cycle through `d`, e.g. ping + pong across the
//!    WAN). The closure matters: a domain's *own* pending event can provoke
//!    the neighbour into replying at `nvt_d + L[d][s] + L[s][d]`, which a
//!    naive `min(nvt_s + L[s][d])` bound misses whenever the neighbour's
//!    queue sits far in the future. If every `nvt` is ∞ (all queues empty —
//!    and the channels were just drained), everyone exits together.
//! 3. **Process**: each domain dispatches events with time **strictly
//!    below** `H_d` (virtual times are integer nanoseconds, so this is
//!    `run_until(H_d − 1 ns)`). Any message it generates for a foreign
//!    actor is staged in its outbox instead of entering a queue.
//! 4. **Flush + Barrier B**: outboxes drain into the per-pair SPSC
//!    channels; the barrier ensures no channel is written while its
//!    consumer drains it next round.
//!
//! *Progress*: every `P[s][d]` is positive and the channels are empty at
//! publish time, so the domain holding the globally minimal `nvt` has
//! `H_d ≥ nvt_d + (cheapest cycle) > nvt_d` and processes at least one
//! event per round. *Safety*: any future arrival into `d` is the end of a
//! causal chain that starts at some domain `s`'s first unprocessed event
//! (time ≥ `nvt_s`) and crosses cuts accumulating at least `P[s][d]`, so it
//! lands at ≥ `H_d` — never in `d`'s processed past. *Determinism*: rounds
//! are lockstep, channels are FIFO, and inboxes drain in fixed sender
//! order, so the insertion order into every queue is a pure function of the
//! simulation — independent of how the OS schedules the threads (the
//! start-jitter test knob exists to prove exactly this).
//!
//! RNG note: per-domain engines derive their own seeds, so a partitioned
//! run is only bit-identical to the serial one when the simulation draws no
//! randomness mid-run. The one RNG consumer in the workload (lossy Longbow
//! WAN loss) disables partitioning at build time, mirroring how it already
//! disables fragment-train coalescing.

use crate::engine::{Actor, ActorId, Ctx, Engine, EventKind, Partition, Staged};
use crate::spsc;
use crate::time::{Dur, Time};
use ibwire::Packet;
use std::any::Any;
use std::cmp::Reverse;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// How a fabric is split into domains, produced by the fabric builder from
/// the topology (domains = connected components after cutting every
/// bridge–bridge cable).
#[derive(Clone, Debug)]
pub struct DomainSpec {
    /// Number of domains (≥ 2 for a useful split).
    pub domains: usize,
    /// For every actor id, the domain that owns it.
    pub domain_of: Vec<u32>,
    /// `lookahead_ns[s][d]`: minimum virtual-time delay, in nanoseconds, of
    /// any message a domain-`s` actor can schedule onto a domain-`d` actor.
    /// `u64::MAX` marks pairs with no connecting cut edge (no traffic).
    pub lookahead_ns: Vec<Vec<u64>>,
}

impl DomainSpec {
    /// The smallest finite lookahead — the window the protocol can sustain.
    pub fn min_lookahead(&self) -> Option<Dur> {
        self.lookahead_ns
            .iter()
            .flatten()
            .copied()
            .filter(|&l| l != u64::MAX)
            .min()
            .map(Dur::from_ns)
    }

    /// All-pairs lookahead path closure: `P[s][d]` is the minimum
    /// accumulated lookahead along any causal chain of **at least one** cut
    /// crossing from `s` to `d`; for `s == d` that is the cheapest cycle
    /// through `d`. Floyd–Warshall over the direct-edge matrix (the
    /// all-infinite diagonal keeps every relaxation a ≥ 1-edge walk);
    /// `u64::MAX` = no such chain. This, not the raw edge matrix, is what
    /// bounds future arrivals: a domain's own pending event can provoke a
    /// neighbour into replying, so its reflected sends constrain its own
    /// horizon too.
    pub fn path_closure(&self) -> Vec<Vec<u64>> {
        let n = self.domains;
        let mut p = self.lookahead_ns.clone();
        for k in 0..n {
            for i in 0..n {
                if p[i][k] == u64::MAX {
                    continue;
                }
                for j in 0..n {
                    if p[k][j] == u64::MAX {
                        continue;
                    }
                    let via = p[i][k].saturating_add(p[k][j]);
                    if via < p[i][j] {
                        p[i][j] = via;
                    }
                }
            }
        }
        p
    }

    /// A spec is runnable when it has ≥ 2 domains, every lookahead is
    /// positive, and every domain that can be sent to has a finite
    /// lookahead from each of its senders (which is how the matrix is
    /// built: one entry per cut-edge direction).
    pub fn is_runnable(&self) -> bool {
        self.domains >= 2
            && self.lookahead_ns.iter().flatten().all(|&l| l > 0)
            && (0..self.domains)
                .all(|d| (0..self.domains).any(|s| s != d && self.lookahead_ns[s][d] != u64::MAX))
    }
}

/// What a partitioned run did, for `Fabric::report()` and the perf harness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DomainReport {
    /// Domains the run was split into.
    pub domains: usize,
    /// Synchronization rounds (barrier pairs) executed.
    pub sync_rounds: u64,
    /// Events dispatched by each domain (sums to the serial event count).
    pub events_per_domain: Vec<u64>,
}

/// Worker threads claimed by an enclosing parameter sweep. `Fabric::run`'s
/// auto heuristic subtracts these from `available_parallelism` so a
/// saturating sweep doesn't oversubscribe cores with domain threads.
static EXTERNAL_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Test-only schedule perturbation: before its first round, domain `d`
/// sleeps `((d+1) * knob) % 5000` microseconds. Determinism tests sweep the
/// knob to randomize thread interleaving; results must not move.
static START_JITTER_US: AtomicU64 = AtomicU64::new(0);

/// Register `n` sweep worker threads for the duration of the returned
/// guard. Nested fabric runs see them via [`external_workers`].
pub fn register_external_workers(n: usize) -> ExternalWorkersGuard {
    EXTERNAL_WORKERS.fetch_add(n, Ordering::SeqCst);
    ExternalWorkersGuard(n)
}

/// Currently registered sweep workers.
pub fn external_workers() -> usize {
    EXTERNAL_WORKERS.load(Ordering::SeqCst)
}

/// RAII handle from [`register_external_workers`]; deregisters on drop
/// (including during a panic unwind, so a failed sweep can't poison the
/// heuristic for the rest of the process).
pub struct ExternalWorkersGuard(usize);

impl Drop for ExternalWorkersGuard {
    fn drop(&mut self) {
        EXTERNAL_WORKERS.fetch_sub(self.0, Ordering::SeqCst);
    }
}

/// Set the test-only start-jitter knob (0 disables). See [`START_JITTER_US`].
pub fn set_test_start_jitter_us(us: u64) {
    START_JITTER_US.store(us, Ordering::SeqCst);
}

/// Placeholder occupying a foreign actor's slot in a domain engine so actor
/// ids stay globally stable. Dispatching to it means the partition map or
/// the lookahead protocol is wrong — fail loudly.
struct Foreign;

impl Actor for Foreign {
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
        panic!("event dispatched to an actor owned by another domain");
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _pkt: Packet) {
        panic!("packet dispatched to an actor owned by another domain");
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {
        panic!("timer dispatched to an actor owned by another domain");
    }
}

/// Run `engine` to quiescence split across `spec.domains` threads, then
/// merge everything (actors, clocks, counters, any leftover events) back so
/// the caller sees the same `Engine` API surface as a serial run.
///
/// Requirements: `spec.is_runnable()`, one `domain_of` entry per actor, and
/// tracing disabled (a single bounded trace cannot interleave two threads'
/// dispatch records meaningfully).
pub fn run_partitioned(engine: &mut Engine, spec: &DomainSpec) -> DomainReport {
    let n = spec.domains;
    assert!(spec.is_runnable(), "domain spec is not runnable: {spec:?}");
    assert_eq!(
        spec.domain_of.len(),
        engine.actors.len(),
        "domain map must cover every actor"
    );
    assert!(
        engine.trace.is_none(),
        "partitioned runs do not support tracing; run serially instead"
    );

    let domain_of: Arc<[u32]> = spec.domain_of.clone().into();

    // --- Split: one engine per domain, actor ids preserved. -------------
    let mut subs: Vec<Engine> = (0..n as u64)
        .map(|d| {
            // Distinct deterministic per-domain seeds (never drawn from in
            // figure workloads — lossy fabrics run serially — but the
            // engines need *a* generator).
            let mut e = Engine::new(
                engine
                    .seed
                    .wrapping_add((d + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            e.now = engine.now;
            e.event_limit = engine.event_limit;
            // Disjoint timer-id ranges: domain d allocates above a high-bits
            // tag so post-split TimerIds never collide across domains.
            e.core.next_timer_id = engine.core.next_timer_id + ((d + 1) << 48);
            e.core.cancelled = engine.core.cancelled.clone();
            e.core.partition = Some(Partition {
                domain: d as u32,
                domain_of: Arc::clone(&domain_of),
                outbox: Vec::new(),
            });
            e
        })
        .collect();

    // Actors move to their owner; every other domain gets a Foreign stub at
    // the same index so ActorIds remain valid everywhere.
    for (id, actor) in std::mem::take(&mut engine.actors).into_iter().enumerate() {
        let owner = domain_of[id] as usize;
        for (d, sub) in subs.iter_mut().enumerate() {
            if d == owner {
                sub.actors.push(actor_slot_placeholder());
            } else {
                sub.actors.push(Box::new(Foreign));
            }
        }
        let _ = std::mem::replace(&mut subs[owner].actors[id], actor);
    }

    // Already-queued events redistribute in (time, seq) pop order, so each
    // domain's queue preserves the global relative order of its events.
    while let Some(Reverse(key)) = engine.core.queue.pop() {
        let kind = engine.core.nodes[key.idx as usize]
            .take()
            .expect("heap key points at an empty slab slot");
        let owner = match &kind {
            EventKind::Message { to, .. } => domain_of[*to] as usize,
            EventKind::Timer { actor, .. } => domain_of[*actor] as usize,
        };
        subs[owner].core.push_event(key.at(), kind);
    }
    engine.core.nodes.clear();
    engine.core.free.clear();

    // --- Per-pair SPSC channels. ----------------------------------------
    let mut senders: Vec<Vec<Option<spsc::Sender<Staged>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<Option<spsc::Receiver<Staged>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                let (tx, rx) = spsc::channel();
                senders[src][dst] = Some(tx);
                receivers[dst][src] = Some(rx);
            }
        }
    }

    // --- Shared synchronization state. ----------------------------------
    let nvt: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    let barrier = Barrier::new(n);
    let stop_flag = AtomicBool::new(false);
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let jitter = START_JITTER_US.load(Ordering::SeqCst);
    // Horizons come from the path closure, not the raw edge matrix: see the
    // module docs for why reflected sends constrain a domain's own window.
    let paths = spec.path_closure();

    let mut results: Vec<(Engine, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = subs
            .into_iter()
            .zip(senders)
            .zip(receivers)
            .enumerate()
            .map(|(me, ((eng, tx), rx))| {
                let nvt = &nvt;
                let barrier = &barrier;
                let stop_flag = &stop_flag;
                let panic_slot = &panic_slot;
                let paths = &paths;
                s.spawn(move || {
                    domain_thread(
                        me, eng, tx, rx, nvt, barrier, stop_flag, panic_slot, paths, jitter,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("domain thread exits cleanly"))
            .collect()
    });
    if let Some(payload) = panic_slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
        std::panic::resume_unwind(payload);
    }

    // --- Merge back into the caller's engine. ---------------------------
    let sync_rounds = results[0].1;
    let mut report = DomainReport {
        domains: n,
        sync_rounds,
        events_per_domain: results
            .iter()
            .map(|(e, _)| e.core.counters.events_processed)
            .collect(),
    };
    report.events_per_domain.shrink_to_fit();

    engine.now = results
        .iter()
        .map(|(e, _)| e.now)
        .max()
        .unwrap_or(engine.now);
    engine.core.stop = stop_flag.load(Ordering::SeqCst);

    // Actors return home in id order.
    let actor_count = domain_of.len();
    engine.actors.reserve(actor_count);
    for id in 0..actor_count {
        let owner = domain_of[id] as usize;
        let slot = std::mem::replace(&mut results[owner].0.actors[id], Box::new(Foreign));
        engine.actors.push(slot);
    }

    let mut leftovers: Vec<(u64, usize, u64, EventKind)> = Vec::new();
    for (d, (sub, _)) in results.iter_mut().enumerate() {
        engine.core.counters += sub.core.counters;
        engine.core.next_timer_id = engine.core.next_timer_id.max(sub.core.next_timer_id);
        engine.core.cancelled.extend(sub.core.cancelled.drain());
        // A stop request can strand events in domain queues; pull them back
        // so the merged engine's queue matches "stopped mid-run" serial
        // state as closely as a parallel run can (ordered by time, then
        // domain, then per-domain scheduling order).
        let mut order = 0u64;
        while let Some(Reverse(key)) = sub.core.queue.pop() {
            let kind = sub.core.nodes[key.idx as usize]
                .take()
                .expect("heap key points at an empty slab slot");
            leftovers.push((key.at().as_ns(), d, order, kind));
            order += 1;
        }
    }
    leftovers.sort_by_key(|&(at, d, ord, _)| (at, d, ord));
    for (at, _, _, kind) in leftovers {
        engine.core.push_event(Time::from_ns(at), kind);
    }
    report
}

/// Fresh placeholder box used while threading actors into domain vectors.
fn actor_slot_placeholder() -> Box<dyn Actor> {
    Box::new(Foreign)
}

/// One domain's thread: the lockstep window loop described in the module
/// docs. Returns the engine (with its share of the final state) and the
/// number of synchronization rounds executed.
#[allow(clippy::too_many_arguments)]
fn domain_thread(
    me: usize,
    mut eng: Engine,
    mut tx: Vec<Option<spsc::Sender<Staged>>>,
    mut rx: Vec<Option<spsc::Receiver<Staged>>>,
    nvt: &[AtomicU64],
    barrier: &Barrier,
    stop_flag: &AtomicBool,
    panic_slot: &Mutex<Option<Box<dyn Any + Send>>>,
    paths_ns: &[Vec<u64>],
    jitter_us: u64,
) -> (Engine, u64) {
    let n = nvt.len();
    if jitter_us > 0 {
        // Deterministic per-domain skew, purely to shake the OS schedule.
        std::thread::sleep(std::time::Duration::from_micros(
            (me as u64 + 1).wrapping_mul(jitter_us) % 5000,
        ));
    }
    let mut rounds = 0u64;
    loop {
        // Drain inbound channels in fixed sender order: insertion order
        // into the queue is deterministic no matter how threads raced.
        for src in 0..n {
            if let Some(rx) = rx[src].as_mut() {
                while let Some(Staged { at, from, to, msg }) = rx.pop() {
                    eng.core
                        .push_event(at, EventKind::Message { from, to, msg });
                }
            }
        }
        let my_nvt = eng.next_event_time().map_or(u64::MAX, |t| t.as_ns());
        nvt[me].store(my_nvt, Ordering::SeqCst);
        barrier.wait();
        // Every domain reads the same snapshot (writes happened before the
        // barrier, next writes happen after the second barrier).
        let snap: Vec<u64> = nvt.iter().map(|v| v.load(Ordering::SeqCst)).collect();
        if stop_flag.load(Ordering::SeqCst) || snap.iter().all(|&v| v == u64::MAX) {
            // All queues and (just-drained, quiescent) channels are empty,
            // or a stop was requested: everyone exits on the same round.
            break;
        }
        rounds += 1;
        // Horizon over the path closure — note `src == me` participates via
        // its cheapest cycle: our own sends can be reflected back at us.
        let mut horizon = u64::MAX;
        for (src, row) in paths_ns.iter().enumerate() {
            if row[me] != u64::MAX {
                horizon = horizon.min(snap[src].saturating_add(row[me]));
            }
        }
        if my_nvt < horizon {
            // Process strictly below the horizon (integer-ns times).
            let deadline = Time::from_ns(horizon - 1);
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eng.run_until(deadline);
            }));
            if let Err(payload) = run {
                // Keep the barrier protocol alive so sibling threads don't
                // deadlock; the payload re-raises on the caller thread.
                panic_slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get_or_insert(payload);
                stop_flag.store(true, Ordering::SeqCst);
            }
            if eng.core.stop {
                stop_flag.store(true, Ordering::SeqCst);
            }
        }
        // Flush staged cross-domain messages; the barrier below guarantees
        // consumers only drain after every producer is done writing.
        if let Some(p) = eng.core.partition.as_mut() {
            for staged in p.outbox.drain(..) {
                let dst = p.domain_of[staged.to] as usize;
                tx[dst]
                    .as_mut()
                    .expect("staged message for a domain with no channel")
                    .push(staged);
            }
        }
        barrier.wait();
    }
    (eng, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineCounters;

    /// Echo actor mirroring the engine tests, usable across domains.
    struct Pong {
        peer: ActorId,
        delay: Dur,
        count: u32,
        limit: u32,
    }

    impl Actor for Pong {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
            self.count += 1;
            if self.count < self.limit {
                ctx.send(self.peer, Box::new(0u8), self.delay);
            }
        }
    }

    fn two_domain_spec() -> DomainSpec {
        DomainSpec {
            domains: 2,
            domain_of: vec![0, 1],
            lookahead_ns: vec![
                vec![u64::MAX, Dur::from_us(100).as_ns()],
                vec![Dur::from_us(100).as_ns(), u64::MAX],
            ],
        }
    }

    fn ping_pong_engine(limit: u32) -> Engine {
        let mut e = Engine::new(7);
        let a = e.add_actor(Box::new(Pong {
            peer: 1,
            delay: Dur::from_us(100),
            count: 0,
            limit,
        }));
        let b = e.add_actor(Box::new(Pong {
            peer: 0,
            delay: Dur::from_us(100),
            count: 0,
            limit,
        }));
        e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
        e
    }

    #[test]
    fn partitioned_ping_pong_matches_serial() {
        let mut serial = ping_pong_engine(50);
        let end_serial = serial.run();

        let mut par = ping_pong_engine(50);
        let report = run_partitioned(&mut par, &two_domain_spec());

        assert_eq!(par.now(), end_serial);
        assert_eq!(par.events_processed(), serial.events_processed());
        assert_eq!(report.domains, 2);
        assert!(report.sync_rounds > 0);
        assert_eq!(
            report.events_per_domain.iter().sum::<u64>(),
            serial.events_processed()
        );
        // Actors merged back with state intact and ids preserved.
        assert_eq!(par.actor::<Pong>(0).count, serial.actor::<Pong>(0).count);
        assert_eq!(par.actor::<Pong>(1).count, serial.actor::<Pong>(1).count);
    }

    #[test]
    fn partitioned_counters_consolidate() {
        let mut serial = ping_pong_engine(40);
        serial.run();
        let mut par = ping_pong_engine(40);
        run_partitioned(&mut par, &two_domain_spec());
        let c: EngineCounters = par.counters();
        assert_eq!(c.events_processed, serial.counters().events_processed);
        assert!(c.pool_hits + c.events_allocated >= c.events_processed);
    }

    #[test]
    fn jitter_does_not_change_outcome() {
        let mut base = ping_pong_engine(30);
        run_partitioned(&mut base, &two_domain_spec());
        for knob in [1u64, 137, 991] {
            set_test_start_jitter_us(knob);
            let mut e = ping_pong_engine(30);
            run_partitioned(&mut e, &two_domain_spec());
            assert_eq!(e.now(), base.now(), "jitter {knob} changed the clock");
            assert_eq!(e.events_processed(), base.events_processed());
        }
        set_test_start_jitter_us(0);
    }

    #[test]
    fn external_worker_guard_is_panic_safe() {
        assert_eq!(external_workers(), 0);
        {
            let _g = register_external_workers(3);
            assert_eq!(external_workers(), 3);
            let r = std::panic::catch_unwind(|| {
                let _inner = register_external_workers(2);
                panic!("boom");
            });
            assert!(r.is_err());
        }
        assert_eq!(external_workers(), 0, "guards must release on unwind");
    }

    #[test]
    fn path_closure_finds_cycles_and_transit() {
        // Ring of three: 0 → 1 → 2 → 0, each hop 10 us.
        let hop = Dur::from_us(10).as_ns();
        let spec = DomainSpec {
            domains: 3,
            domain_of: vec![0, 1, 2],
            lookahead_ns: vec![
                vec![u64::MAX, hop, u64::MAX],
                vec![u64::MAX, u64::MAX, hop],
                vec![hop, u64::MAX, u64::MAX],
            ],
        };
        let p = spec.path_closure();
        assert_eq!(p[0][1], hop, "direct edge survives");
        assert_eq!(p[0][2], 2 * hop, "transit path composes");
        assert_eq!(p[0][0], 3 * hop, "own cheapest cycle bounds self");
        assert_eq!(p[1][0], 2 * hop);
    }

    #[test]
    fn unrunnable_specs_are_rejected() {
        let mut s = two_domain_spec();
        s.lookahead_ns[0][1] = 0;
        assert!(!s.is_runnable(), "zero lookahead breaks progress");
        let mut t = two_domain_spec();
        t.domains = 1;
        assert!(!t.is_runnable());
    }

    #[test]
    fn foreign_stub_panics_loudly() {
        // The Foreign placeholder exists to turn partition-map bugs into
        // immediate, named failures instead of silent state corruption.
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Foreign));
        e.schedule_message(Time::ZERO, a, a, Box::new(0u8));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.run();
        }));
        let err = r.expect_err("dispatch to a Foreign stub must panic");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("another domain"),
            "panic should name the routing bug: {msg}"
        );
    }

    /// An actor panicking inside a domain thread must not deadlock the
    /// sibling threads at a barrier; the payload re-raises on the caller.
    /// The test completing (rather than hanging) is half the assertion.
    struct Bomb;

    impl Actor for Bomb {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
            panic!("bomb actor detonated");
        }
    }

    #[test]
    fn domain_thread_panic_propagates_without_deadlock() {
        let mut e = Engine::new(3);
        let a = e.add_actor(Box::new(Bomb));
        let b = e.add_actor(Box::new(Bomb));
        e.schedule_message(Time::from_us(1), a, b, Box::new(0u8));
        let spec = two_domain_spec();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_partitioned(&mut e, &spec);
        }));
        let err = r.expect_err("domain-thread panic must surface to the caller");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("detonated"), "payload should survive: {msg}");
    }
}
