//! Conservative partitioned parallel execution: split one engine's actor
//! graph into domains and run each domain's event loop either on its own
//! thread (when the core budget allows) or cooperatively on the calling
//! thread (when it does not).
//!
//! ## Why this is safe on a WAN topology
//!
//! The paper's entire setup is two InfiniBand clusters joined by Obsidian
//! Longbow routers whose injected WAN delay (5 µs–10 ms) dwarfs
//! intra-cluster event spacing. Every message between the clusters crosses
//! the Longbow–Longbow cable and therefore arrives at least the cable's
//! minimum propagation delay — the **lookahead** `L[s][d]` — after the event
//! that sent it. That is exactly the structure conservative parallel
//! discrete-event simulation (Chandy–Misra style) exploits.
//!
//! ## The batched-window floor protocol (threaded mode)
//!
//! Earlier revisions ran all domains in barrier lockstep: two `Barrier`
//! waits per window, ~16 events per domain between them, so futex traffic
//! dominated wall time. The current protocol has **no barriers at all**.
//! Each domain publishes two atomics:
//!
//! * `floor_d` — a **monotone** lower bound on the timestamp of anything
//!   domain `d` will ever process (and hence, `+ L[d][s]`, on anything it
//!   will ever send to `s`). Published with `fetch_max`; stale reads are
//!   merely conservative.
//! * `nvt_d` — the exact next-event time (`u64::MAX` when idle), used only
//!   by termination detection.
//!
//! A domain's loop iteration is: (1) read every inbound peer's `floor` and
//! `wire_tail` *before* draining (the order is load-bearing: a floor value
//! read after a peer's flush proves — via release/acquire through the
//! atomic — that the flush is visible to the drain); (2) drain the inbound
//! SPSC channels, inserting arrivals with deterministic sequence keys (see
//! below); (3) publish `nvt`, then `floor = min(nvt, min over inbound s of
//! floor_s + L[s][d])` — Bellman–Ford relaxation that converges in ≤ n
//! iterations of spinning; (4) compute the horizon
//!
//! ```text
//! H_d = min over inbound s of  max(floor_s + L[s][d], wire_tail[s][d])
//! ```
//!
//! and, if `nvt_d < H_d`, process **every** event strictly below `H_d` in
//! one `run_until` call — a multi-window batch — then flush the outbox.
//! Only a domain that would actually block waits, and then by spinning,
//! yielding, and finally parking in short sleeps paced by an EWMA of
//! observed wait-episode lengths (the adaptive component: the pacing
//! learns the cross-domain arrival cadence; correctness never depends on
//! it). `DomainReport::sync_rounds` counts those parks — the number of
//! times any domain truly blocked — while `EngineCounters::sync_rounds_saved`
//! counts windows advanced without blocking.
//!
//! ## Train-aware lookahead widening
//!
//! `wire_tail[s][d]` is the arrival time of the *last fragment* of the most
//! recent coalesced train staged from `s` to `d`. On directions the fabric
//! marks `tail_safe` — all traffic crosses exactly one serialized cut cable
//! — the cable's rate limiter makes staged arrival times monotone: any
//! message staged later arrives no earlier than the previous train's tail.
//! The horizon may therefore run past the static `floor + L` bound right up
//! to the tail of a long in-flight train. When no promise is available
//! (`tail_safe` false, or nothing staged yet) the conservative static
//! lookahead bound is the fallback.
//!
//! ## Deterministic arrival ordering (window-size independence)
//!
//! Arrivals are inserted with sequence keys from the reserved upper half of
//! the sequence space: `(1 << 63) | (src << 40) | per-src counter`. The key
//! depends only on the sender and that sender's FIFO position — never on
//! *when* the receiver happened to drain — so the final processing order of
//! every queue is the pure `(time, seq)` heap order, identical for any
//! window boundaries the OS scheduler produced. That theorem is what lets
//! the threaded and cooperative executors (and any thread jitter) produce
//! bit-identical results.
//!
//! ## The cooperative executor (1-core mode)
//!
//! When `spawn_budget() < domains` (e.g. a saturated sweep, or a 1-core
//! box), spawning threads would only add handoff latency. Instead the
//! domains run round-robin on the calling thread with no channels and no
//! atomics: every sub-engine is visible to the one thread, so a flushed
//! cross-domain message is pushed straight into the receiver's heap under
//! its deterministic arrival key, and horizons come straight from the live
//! next-event times (arrivals included) through the zero-diagonal lookahead
//! path closure. Same arrival keys, same windows-until-exhausted batching,
//! zero synchronization cost — so a forced partitioned run on one core
//! performs like the serial engine instead of 5× worse.
//!
//! ## Termination
//!
//! Floors ratchet forever, so termination uses the exact `nvt` atomics plus
//! an `outstanding` in-flight message counter and an `epoch` counter bumped
//! by every flush and every drain. An idle domain declares completion only
//! after a double collect: epoch read, all `nvt == MAX` and
//! `outstanding == 0`, epoch unchanged. Any message in flight at the first
//! read is either still counted in `outstanding`, visible as a finite
//! `nvt`, or forces an epoch bump — all three fail the collect.
//!
//! RNG note: per-domain engines derive their own seeds, so a partitioned
//! run is only bit-identical to the serial one when the simulation draws no
//! randomness mid-run. The one RNG consumer in the workload (lossy Longbow
//! WAN loss) disables partitioning at build time, mirroring how it already
//! disables fragment-train coalescing.

use crate::engine::{Actor, ActorId, Ctx, Engine, EventKind, Msg, Partition, Staged};
use crate::spsc;
use crate::time::{Dur, Time};
use ibwire::Packet;
use std::any::Any;
use std::cell::Cell;
use std::cmp::Reverse;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a fabric is split into domains, produced by the fabric builder from
/// the topology (domains = connected components after cutting every
/// bridge–bridge cable).
#[derive(Clone, Debug)]
pub struct DomainSpec {
    /// Number of domains (≥ 2 for a useful split).
    pub domains: usize,
    /// For every actor id, the domain that owns it.
    pub domain_of: Vec<u32>,
    /// `lookahead_ns[s][d]`: minimum virtual-time delay, in nanoseconds, of
    /// any message a domain-`s` actor can schedule onto a domain-`d` actor.
    /// `u64::MAX` marks pairs with no connecting cut edge (no traffic).
    pub lookahead_ns: Vec<Vec<u64>>,
    /// `tail_safe[s][d]`: every `s → d` message crosses exactly one
    /// serialized cut cable, so the arrival times of staged messages are
    /// monotone in staging order and a coalesced train's tail is a valid
    /// promise that nothing later arrives before it (the train-aware
    /// lookahead widening). An empty matrix means "no promises anywhere".
    pub tail_safe: Vec<Vec<bool>>,
}

impl DomainSpec {
    /// The smallest finite lookahead — the window the protocol can sustain.
    pub fn min_lookahead(&self) -> Option<Dur> {
        self.lookahead_ns
            .iter()
            .flatten()
            .copied()
            .filter(|&l| l != u64::MAX)
            .min()
            .map(Dur::from_ns)
    }

    /// All-pairs lookahead path closure: `P[s][d]` is the minimum
    /// accumulated lookahead along any causal chain of **at least one** cut
    /// crossing from `s` to `d`; for `s == d` that is the cheapest cycle
    /// through `d`. Floyd–Warshall over the direct-edge matrix (the
    /// all-infinite diagonal keeps every relaxation a ≥ 1-edge walk);
    /// `u64::MAX` = no such chain. The threaded floor protocol reaches the
    /// same fixpoint by iterated one-hop relaxation; the cooperative
    /// executor uses this closure directly, and `compute_plan` tests pin
    /// its bounds on 2-domain, ring, and star cuts.
    pub fn path_closure(&self) -> Vec<Vec<u64>> {
        let n = self.domains;
        let mut p = self.lookahead_ns.clone();
        for k in 0..n {
            for i in 0..n {
                if p[i][k] == u64::MAX {
                    continue;
                }
                for j in 0..n {
                    if p[k][j] == u64::MAX {
                        continue;
                    }
                    let via = p[i][k].saturating_add(p[k][j]);
                    if via < p[i][j] {
                        p[i][j] = via;
                    }
                }
            }
        }
        p
    }

    /// Whether the `s → d` direction carries a wire-tail promise.
    pub fn tail_safe_dir(&self, s: usize, d: usize) -> bool {
        self.tail_safe
            .get(s)
            .and_then(|row| row.get(d))
            .copied()
            .unwrap_or(false)
    }

    /// A spec is runnable when it has ≥ 2 domains, every lookahead is
    /// positive, every domain that can be sent to has a finite lookahead
    /// from each of its senders (which is how the matrix is built: one
    /// entry per cut-edge direction), and the tail-safe matrix — if present
    /// — matches the domain count.
    pub fn is_runnable(&self) -> bool {
        let n = self.domains;
        n >= 2
            && self.lookahead_ns.iter().flatten().all(|&l| l > 0)
            && (0..n).all(|d| (0..n).any(|s| s != d && self.lookahead_ns[s][d] != u64::MAX))
            && (self.tail_safe.is_empty()
                || (self.tail_safe.len() == n && self.tail_safe.iter().all(|r| r.len() == n)))
    }
}

/// What a partitioned run did, for `Fabric::report()` and the perf harness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DomainReport {
    /// Domains the run was split into.
    pub domains: usize,
    /// Blocking waits: the number of times any domain thread exhausted its
    /// spin/yield budget and parked in a sleep. Near zero when the batched
    /// windows amortize well; always zero in cooperative mode. (Earlier
    /// protocol revisions counted lockstep barrier rounds here — ~137k for
    /// a full fig5a — so this field is the headline amortization metric.)
    pub sync_rounds: u64,
    /// Events dispatched by each domain (sums to the serial event count).
    pub events_per_domain: Vec<u64>,
}

/// Worker threads claimed by an enclosing parameter sweep or job runner.
/// `spawn_budget` subtracts these from `available_cores` so a saturating
/// sweep doesn't oversubscribe cores with domain threads.
static EXTERNAL_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Test-only schedule perturbation: before its first window, domain `d`
/// sleeps `((d+1) * knob) % 5000` microseconds. Determinism tests sweep the
/// knob to randomize thread interleaving; results must not move.
static START_JITTER_US: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Test override for [`available_cores`] (0 = unset). Thread-local so
    /// concurrently running tests cannot race each other's knobs.
    static ASSUME_CORES: Cell<usize> = const { Cell::new(0) };
    /// Per-job thread allowance granted by an enclosing worker pool
    /// (0 = none granted): the share of cores this job may spend on domain
    /// threads, already debited from the pool's budget. Takes precedence
    /// over the global `cores - external_workers` heuristic, which cannot
    /// tell "claimed for me" from "claimed by a sibling".
    static THREAD_ALLOWANCE: Cell<usize> = const { Cell::new(0) };
}

/// Register `n` pool worker threads for the duration of the returned
/// guard. Nested fabric runs see them via [`external_workers`].
pub fn register_external_workers(n: usize) -> ExternalWorkersGuard {
    EXTERNAL_WORKERS.fetch_add(n, Ordering::SeqCst);
    ExternalWorkersGuard(n)
}

/// Currently registered pool workers.
pub fn external_workers() -> usize {
    EXTERNAL_WORKERS.load(Ordering::SeqCst)
}

/// RAII handle from [`register_external_workers`]; deregisters on drop
/// (including during a panic unwind, so a failed sweep can't poison the
/// heuristic for the rest of the process).
pub struct ExternalWorkersGuard(usize);

impl Drop for ExternalWorkersGuard {
    fn drop(&mut self) {
        EXTERNAL_WORKERS.fetch_sub(self.0, Ordering::SeqCst);
    }
}

/// Set the test-only start-jitter knob (0 disables). See [`START_JITTER_US`].
pub fn set_test_start_jitter_us(us: u64) {
    START_JITTER_US.store(us, Ordering::SeqCst);
}

/// Pretend this machine has `n` cores for partitioning decisions made on
/// the current thread (0 restores the real count). Lets tests exercise the
/// threaded executor on a 1-core CI box and the cooperative one on a
/// many-core dev box.
pub fn set_test_assume_cores(n: usize) {
    ASSUME_CORES.with(|c| c.set(n));
}

/// Cores available to this process, honoring the test override.
pub fn available_cores() -> usize {
    let assumed = ASSUME_CORES.with(|c| c.get());
    if assumed > 0 {
        return assumed;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Grant the current thread's jobs an explicit domain-thread allowance for
/// the guard's lifetime (how a worker pool passes each job its pre-debited
/// share of the core budget). Nests; the guard restores the previous value.
pub fn set_thread_allowance(n: usize) -> ThreadAllowanceGuard {
    ThreadAllowanceGuard(THREAD_ALLOWANCE.with(|c| c.replace(n)))
}

/// RAII handle from [`set_thread_allowance`].
pub struct ThreadAllowanceGuard(usize);

impl Drop for ThreadAllowanceGuard {
    fn drop(&mut self) {
        THREAD_ALLOWANCE.with(|c| c.set(self.0));
    }
}

/// How many domain threads a partitioned run started on this thread may
/// spawn: the pool-granted allowance if one is set, otherwise whatever the
/// machine has left after registered external workers. Never below 1 (the
/// calling thread itself, i.e. the cooperative executor).
pub fn spawn_budget() -> usize {
    let allowance = THREAD_ALLOWANCE.with(|c| c.get());
    if allowance > 0 {
        return allowance;
    }
    available_cores().saturating_sub(external_workers()).max(1)
}

/// Deterministic sequence key for a cross-domain arrival: upper half of the
/// sequence space (arrivals sort after every same-nanosecond local event),
/// then sender domain, then the sender's FIFO position. A pure function of
/// the simulation — independent of drain timing — which is what makes event
/// order independent of window boundaries.
pub(crate) fn arrival_seq(src: usize, counter: u64) -> u64 {
    debug_assert!(src < (1 << 23), "domain id overflows arrival seq");
    debug_assert!(counter < (1 << 40), "per-domain arrival counter overflow");
    (1 << 63) | ((src as u64) << 40) | counter
}

/// Placeholder occupying a foreign actor's slot in a domain engine so actor
/// ids stay globally stable. Dispatching to it means the partition map or
/// the lookahead protocol is wrong — fail loudly.
struct Foreign;

impl Actor for Foreign {
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
        panic!("event dispatched to an actor owned by another domain");
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _pkt: Packet) {
        panic!("packet dispatched to an actor owned by another domain");
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {
        panic!("timer dispatched to an actor owned by another domain");
    }
}

/// Run `engine` to quiescence split across `spec.domains` — threaded when
/// the core budget covers the domain count, cooperatively on the calling
/// thread otherwise — then merge everything (actors, clocks, counters, any
/// leftover events) back so the caller sees the same `Engine` API surface
/// as a serial run. Both executors produce bit-identical simulations.
///
/// Requirements: `spec.is_runnable()`, one `domain_of` entry per actor, and
/// tracing disabled (a single bounded trace cannot interleave two threads'
/// dispatch records meaningfully).
pub fn run_partitioned(engine: &mut Engine, spec: &DomainSpec) -> DomainReport {
    let n = spec.domains;
    assert!(spec.is_runnable(), "domain spec is not runnable: {spec:?}");
    assert_eq!(
        spec.domain_of.len(),
        engine.actors.len(),
        "domain map must cover every actor"
    );
    assert!(
        engine.trace.is_none(),
        "partitioned runs do not support tracing; run serially instead"
    );

    let domain_of: Arc<[u32]> = spec.domain_of.clone().into();
    let subs = split_engine(engine, spec, &domain_of);

    let (results, parks, stopped) = if spawn_budget() >= n {
        run_threaded(subs, spec)
    } else {
        run_cooperative(subs, spec)
    };

    let mut report = DomainReport {
        domains: n,
        sync_rounds: parks,
        events_per_domain: results
            .iter()
            .map(|e| e.core.counters.events_processed)
            .collect(),
    };
    report.events_per_domain.shrink_to_fit();

    merge_results(engine, results, &domain_of, stopped);
    report
}

/// Split the caller's engine into one engine per domain: actor ids
/// preserved via `Foreign` stubs, queued events redistributed in pop order,
/// deterministic per-domain seeds and disjoint timer-id ranges.
fn split_engine(engine: &mut Engine, spec: &DomainSpec, domain_of: &Arc<[u32]>) -> Vec<Engine> {
    let n = spec.domains;
    let mut subs: Vec<Engine> = (0..n as u64)
        .map(|d| {
            // Distinct deterministic per-domain seeds (never drawn from in
            // figure workloads — lossy fabrics run serially — but the
            // engines need *a* generator).
            let mut e = Engine::new(
                engine
                    .seed
                    .wrapping_add((d + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            e.now = engine.now;
            e.event_limit = engine.event_limit;
            // Disjoint timer-id ranges: domain d allocates above a high-bits
            // tag so post-split TimerIds never collide across domains.
            e.core.next_timer_id = engine.core.next_timer_id + ((d + 1) << 48);
            e.core.cancelled = engine.core.cancelled.clone();
            e.core.partition = Some(Partition {
                domain: d as u32,
                domain_of: Arc::clone(domain_of),
                outbox: Vec::new(),
                probe: false,
                cross_events: 0,
            });
            e
        })
        .collect();

    // Actors move to their owner; every other domain gets a Foreign stub at
    // the same index so ActorIds remain valid everywhere.
    for (id, actor) in std::mem::take(&mut engine.actors).into_iter().enumerate() {
        let owner = domain_of[id] as usize;
        for (d, sub) in subs.iter_mut().enumerate() {
            if d == owner {
                sub.actors.push(actor_slot_placeholder());
            } else {
                sub.actors.push(Box::new(Foreign));
            }
        }
        let _ = std::mem::replace(&mut subs[owner].actors[id], actor);
    }

    // Already-queued events redistribute in (time, seq) pop order, so each
    // domain's queue preserves the global relative order of its events.
    while let Some(Reverse(key)) = engine.core.queue.pop() {
        let kind = engine.core.nodes[key.idx as usize]
            .take()
            .expect("heap key points at an empty slab slot");
        let owner = match &kind {
            EventKind::Message { to, .. } => domain_of[*to] as usize,
            EventKind::Timer { actor, .. } => domain_of[*actor] as usize,
        };
        subs[owner].core.push_event(key.at(), kind);
    }
    engine.core.nodes.clear();
    engine.core.free.clear();
    subs
}

/// Merge per-domain engines back into the caller's engine.
fn merge_results(
    engine: &mut Engine,
    mut results: Vec<Engine>,
    domain_of: &Arc<[u32]>,
    stopped: bool,
) {
    engine.now = results.iter().map(|e| e.now).max().unwrap_or(engine.now);
    engine.core.stop = stopped;

    // Actors return home in id order.
    let actor_count = domain_of.len();
    engine.actors.reserve(actor_count);
    for id in 0..actor_count {
        let owner = domain_of[id] as usize;
        let slot = std::mem::replace(&mut results[owner].actors[id], Box::new(Foreign));
        engine.actors.push(slot);
    }

    let mut leftovers: Vec<(u64, usize, u64, EventKind)> = Vec::new();
    for (d, sub) in results.iter_mut().enumerate() {
        engine.core.counters += sub.core.counters;
        engine.core.next_timer_id = engine.core.next_timer_id.max(sub.core.next_timer_id);
        engine.core.cancelled.extend(sub.core.cancelled.drain());
        // A stop request can strand events in domain queues; pull them back
        // so the merged engine's queue matches "stopped mid-run" serial
        // state as closely as a parallel run can (ordered by time, then
        // domain, then per-domain scheduling order).
        let mut order = 0u64;
        while let Some(Reverse(key)) = sub.core.queue.pop() {
            let kind = sub.core.nodes[key.idx as usize]
                .take()
                .expect("heap key points at an empty slab slot");
            leftovers.push((key.at().as_ns(), d, order, kind));
            order += 1;
        }
    }
    leftovers.sort_by_key(|&(at, d, ord, _)| (at, d, ord));
    for (at, _, _, kind) in leftovers {
        engine.core.push_event(Time::from_ns(at), kind);
    }
}

/// Fresh placeholder box used while threading actors into domain vectors.
fn actor_slot_placeholder() -> Box<dyn Actor> {
    Box::new(Foreign)
}

/// Arrival time of the last fragment a staged message puts on the wire: the
/// analytic train tail for coalesced packet trains, the delivery time
/// itself for everything else.
fn staged_tail(staged: &Staged) -> u64 {
    let base = staged.at.as_ns();
    match &staged.msg {
        Msg::Packet(p) if p.count > 1 && p.gap_ns > 0 => {
            base.saturating_add((p.count as u64 - 1).saturating_mul(p.gap_ns))
        }
        _ => base,
    }
}

/// Shared state of a threaded partitioned run. All accesses use `SeqCst`:
/// the protocol's correctness argument leans on a single total order of the
/// floor/nvt/outstanding/epoch operations, and a handful of sequentially
/// consistent operations per multi-event window is noise next to the event
/// processing they amortize over.
struct SyncShared {
    /// Monotone published floors (see module docs).
    floors: Vec<AtomicU64>,
    /// Exact published next-event times; termination detection only.
    nvts: Vec<AtomicU64>,
    /// `wire_tails[src * n + dst]`: latest staged tail arrival promise.
    wire_tails: Vec<AtomicU64>,
    /// Staged messages pushed but not yet reflected in the receiver's
    /// published `nvt` (incremented before the push, decremented after the
    /// post-drain publish).
    outstanding: AtomicU64,
    /// Bumped by every flush and every non-empty drain; the double-collect
    /// termination check re-reads it to reject in-between transitions.
    epoch: AtomicU64,
    /// An actor requested a stop (or a sibling thread is unwinding).
    stop: AtomicBool,
    /// Some domain exhausted its event budget.
    limit: AtomicBool,
    /// Clean global quiescence detected; everyone exits.
    done: AtomicBool,
    /// First panic payload from a domain thread, re-raised by the caller.
    panic_slot: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Spin iterations before yielding, then yields before parking. Wait
/// episodes shorter than a few microseconds — the common case when a peer
/// is actively processing — never reach the futex.
const WAIT_SPINS: u32 = 64;
const WAIT_YIELDS: u32 = 64;

/// Run the split engines on one thread per domain. Returns the engines (in
/// domain order), the total park count, and whether a stop was requested.
fn run_threaded(subs: Vec<Engine>, spec: &DomainSpec) -> (Vec<Engine>, u64, bool) {
    let n = spec.domains;

    // Per-ordered-pair SPSC channels.
    let mut senders: Vec<Vec<Option<spsc::Sender<Staged>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<Option<spsc::Receiver<Staged>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                let (tx, rx) = spsc::channel();
                senders[src][dst] = Some(tx);
                receivers[dst][src] = Some(rx);
            }
        }
    }

    let shared = SyncShared {
        floors: (0..n).map(|_| AtomicU64::new(0)).collect(),
        // Seed the exact nvts before any thread exists: a verifier must
        // never observe a pre-first-publish MAX for a domain holding work.
        nvts: subs
            .iter()
            .map(|e| AtomicU64::new(e.next_event_time().map_or(u64::MAX, |t| t.as_ns())))
            .collect(),
        wire_tails: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
        outstanding: AtomicU64::new(0),
        epoch: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        limit: AtomicBool::new(false),
        done: AtomicBool::new(false),
        panic_slot: Mutex::new(None),
    };
    let jitter = START_JITTER_US.load(Ordering::SeqCst);

    type Outcome = (Engine, u64, Vec<Option<spsc::Receiver<Staged>>>);
    let mut results: Vec<Outcome> = std::thread::scope(|s| {
        let handles: Vec<_> = subs
            .into_iter()
            .zip(senders)
            .zip(receivers)
            .enumerate()
            .map(|(me, ((eng, tx), rx))| {
                let shared = &shared;
                s.spawn(move || domain_thread(me, eng, tx, rx, spec, shared, jitter))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("domain thread exits cleanly"))
            .collect()
    });
    if let Some(payload) = shared
        .panic_slot
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
    {
        std::panic::resume_unwind(payload);
    }

    // A stop or budget exhaustion can leave flushed messages undrained in
    // the channels after the threads exit; pull them into their owner's
    // queue so nothing is lost (they become merge leftovers).
    let parks: u64 = results.iter().map(|(_, p, _)| *p).sum();
    for (eng, _, rxs) in results.iter_mut() {
        for rx in rxs.iter_mut().flatten() {
            while let Some(Staged { at, from, to, msg }) = rx.pop() {
                eng.core
                    .push_event(at, EventKind::Message { from, to, msg });
            }
        }
    }
    let stopped = shared.stop.load(Ordering::SeqCst);
    (
        results.into_iter().map(|(e, _, _)| e).collect(),
        parks,
        stopped,
    )
}

/// One domain's thread: the batched-window floor loop from the module docs.
/// Returns the engine, the park count, and the inbound receivers (so the
/// caller can rescue undrained messages after an abnormal exit).
fn domain_thread(
    me: usize,
    mut eng: Engine,
    mut tx: Vec<Option<spsc::Sender<Staged>>>,
    mut rx: Vec<Option<spsc::Receiver<Staged>>>,
    spec: &DomainSpec,
    shared: &SyncShared,
    jitter_us: u64,
) -> (Engine, u64, Vec<Option<spsc::Receiver<Staged>>>) {
    let n = spec.domains;
    if jitter_us > 0 {
        // Deterministic per-domain skew, purely to shake the OS schedule.
        std::thread::sleep(Duration::from_micros(
            (me as u64 + 1).wrapping_mul(jitter_us) % 5000,
        ));
    }
    let inbound: Vec<usize> = (0..n)
        .filter(|&s| s != me && spec.lookahead_ns[s][me] != u64::MAX)
        .collect();
    let mut arrival_ctr = vec![0u64; n];
    let mut floors_read = vec![0u64; n];
    let mut tails_read = vec![0u64; n];
    let mut parks = 0u64;
    // Wait bookkeeping: `waited` distinguishes windows that advanced
    // immediately (sync_rounds_saved) from ones that had to block first;
    // the EWMA of episode lengths paces the park sleeps to the observed
    // cross-domain arrival cadence.
    let mut waited = false;
    let mut attempts: u32 = 0;
    let mut episode_start: Option<Instant> = None;
    let mut episode_ewma_ns: u64 = 20_000;

    loop {
        if shared.stop.load(Ordering::SeqCst)
            || shared.limit.load(Ordering::SeqCst)
            || shared.done.load(Ordering::SeqCst)
        {
            break;
        }
        // 1. Read peers' promises BEFORE draining. Load-bearing order: a
        // floor value published after a peer's flush proves that flush is
        // visible to the drain below, so anything the drain misses was sent
        // from virtual time ≥ that floor (and staged after that wire tail).
        for &src in &inbound {
            floors_read[src] = shared.floors[src].load(Ordering::SeqCst);
            tails_read[src] = if spec.tail_safe_dir(src, me) {
                shared.wire_tails[src * n + me].load(Ordering::SeqCst)
            } else {
                0
            };
        }
        // 2. Drain inbound channels in fixed sender order, inserting with
        // reserved sequence keys (order is deterministic regardless of how
        // the threads raced — see module docs).
        let mut drained = 0u64;
        for src in 0..n {
            if let Some(rx) = rx[src].as_mut() {
                while let Some(Staged { at, from, to, msg }) = rx.pop() {
                    eng.core.push_event_arrival(
                        at,
                        EventKind::Message { from, to, msg },
                        arrival_seq(src, arrival_ctr[src]),
                    );
                    arrival_ctr[src] += 1;
                    drained += 1;
                }
            }
        }
        // 3. Publish: exact nvt first, then the relaxed floor, then release
        // the in-flight debt for what we drained. The debt must outlive the
        // nvt publish or the termination collect could miss the message.
        let my_nvt = eng.next_event_time().map_or(u64::MAX, |t| t.as_ns());
        shared.nvts[me].store(my_nvt, Ordering::SeqCst);
        let mut floor = my_nvt;
        for &src in &inbound {
            floor = floor.min(floors_read[src].saturating_add(spec.lookahead_ns[src][me]));
        }
        shared.floors[me].fetch_max(floor, Ordering::SeqCst);
        if drained > 0 {
            shared.outstanding.fetch_sub(drained, Ordering::SeqCst);
            shared.epoch.fetch_add(1, Ordering::SeqCst);
        }
        // 4. Horizon: per inbound direction, the static floor bound widened
        // by the wire-tail train promise where one exists.
        let mut horizon = u64::MAX;
        for &src in &inbound {
            let bound = floors_read[src]
                .saturating_add(spec.lookahead_ns[src][me])
                .max(tails_read[src]);
            horizon = horizon.min(bound);
        }
        if my_nvt < horizon {
            if let Some(t0) = episode_start.take() {
                let e = t0.elapsed().as_nanos() as u64;
                eng.core.counters.barrier_ns += e;
                episode_ewma_ns = (3 * episode_ewma_ns + e) / 4;
            }
            attempts = 0;
            let before = eng.core.counters.events_processed;
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eng.run_until(Time::from_ns(horizon - 1));
            }));
            if let Err(payload) = run {
                shared
                    .panic_slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get_or_insert(payload);
                shared.stop.store(true, Ordering::SeqCst);
                flush_outbox(&mut eng, &mut tx, spec, shared, me);
                break;
            }
            let delta = eng.core.counters.events_processed - before;
            eng.core.counters.record_window(delta);
            if !waited {
                eng.core.counters.sync_rounds_saved += 1;
            }
            waited = false;
            let stop_hit = eng.core.stop;
            let limit_hit = eng.core.counters.events_processed >= eng.event_limit;
            flush_outbox(&mut eng, &mut tx, spec, shared, me);
            if stop_hit {
                shared.stop.store(true, Ordering::SeqCst);
                break;
            }
            if limit_hit {
                shared.limit.store(true, Ordering::SeqCst);
                break;
            }
            continue;
        }
        // Would block. An idle domain first probes for global quiescence;
        // otherwise escalate spin → yield → park while peers' floors
        // converge (each attempt is a full loop iteration, so the
        // Bellman–Ford relaxation keeps making one-hop progress).
        if my_nvt == u64::MAX && try_terminate(shared) {
            shared.done.store(true, Ordering::SeqCst);
            break;
        }
        waited = true;
        if episode_start.is_none() {
            episode_start = Some(Instant::now());
        }
        attempts += 1;
        if attempts <= WAIT_SPINS {
            std::hint::spin_loop();
        } else if attempts <= WAIT_SPINS + WAIT_YIELDS {
            std::thread::yield_now();
        } else {
            parks += 1;
            let park_ns = (episode_ewma_ns / 4).clamp(5_000, 100_000);
            std::thread::sleep(Duration::from_nanos(park_ns));
        }
    }
    if let Some(t0) = episode_start.take() {
        eng.core.counters.barrier_ns += t0.elapsed().as_nanos() as u64;
    }
    (eng, parks, rx)
}

/// Flush this domain's outbox into the SPSC channels, maintaining the
/// in-flight debt (incremented before any push so a mid-flight message is
/// always either counted or visible), wire-tail promises (published after
/// the push so a reader holding the tail has the message in reach), and the
/// epoch.
fn flush_outbox(
    eng: &mut Engine,
    tx: &mut [Option<spsc::Sender<Staged>>],
    spec: &DomainSpec,
    shared: &SyncShared,
    me: usize,
) {
    let n = spec.domains;
    let Some(p) = eng.core.partition.as_mut() else {
        return;
    };
    if p.outbox.is_empty() {
        return;
    }
    shared
        .outstanding
        .fetch_add(p.outbox.len() as u64, Ordering::SeqCst);
    for staged in p.outbox.drain(..) {
        let dst = p.domain_of[staged.to] as usize;
        let tail = staged_tail(&staged);
        let is_packet = staged.msg.is_packet();
        tx[dst]
            .as_mut()
            .expect("staged message for a domain with no channel")
            .push(staged);
        if spec.tail_safe_dir(me, dst) {
            debug_assert!(
                is_packet,
                "control message on a tail-safe direction voids the wire-tail promise"
            );
            shared.wire_tails[me * n + dst].fetch_max(tail, Ordering::SeqCst);
        }
    }
    shared.epoch.fetch_add(1, Ordering::SeqCst);
}

/// Double-collect quiescence check: all domains idle, nothing in flight,
/// and no flush or drain slipped between the two epoch reads. Sound because
/// any message not yet reflected in a receiver's published nvt is either
/// still counted in `outstanding` or its drain bumped the epoch.
fn try_terminate(shared: &SyncShared) -> bool {
    let e1 = shared.epoch.load(Ordering::SeqCst);
    if shared
        .nvts
        .iter()
        .any(|v| v.load(Ordering::SeqCst) != u64::MAX)
    {
        return false;
    }
    if shared.outstanding.load(Ordering::SeqCst) != 0 {
        return false;
    }
    shared.epoch.load(Ordering::SeqCst) == e1
}

/// Run the split engines round-robin on the calling thread: same windows,
/// same arrival keys, no atomics and no handoff latency. Horizons use live
/// effective next-event times through the zero-diagonal path closure, so
/// each visit batches the maximum provably-safe window. Cross-domain
/// messages skip the channel stage entirely — every sub-engine is visible
/// to this one thread, so a flushed message goes straight into the
/// receiver's heap under its deterministic arrival key, and floors read the
/// receiver's queue minimum with arrivals already included.
fn run_cooperative(mut subs: Vec<Engine>, spec: &DomainSpec) -> (Vec<Engine>, u64, bool) {
    let n = spec.domains;
    let mut wire_tails = vec![0u64; n * n];
    let mut arrival_ctr = vec![0u64; n * n]; // [dst * n + src]
    let mut p0 = spec.path_closure();
    for (i, row) in p0.iter_mut().enumerate() {
        row[i] = 0; // zero-diagonal: floors bound a domain's own queue too
    }
    let mut scratch: Vec<Staged> = Vec::new();
    let mut stopped = false;

    'run: loop {
        let mut progressed = false;
        for me in 0..n {
            let my_nvt = subs[me].next_event_time().map_or(u64::MAX, |t| t.as_ns());
            if my_nvt == u64::MAX {
                continue;
            }
            let mut horizon = u64::MAX;
            for src in 0..n {
                if src == me {
                    continue;
                }
                let l = spec.lookahead_ns[src][me];
                if l == u64::MAX {
                    continue;
                }
                // floor(src) = min over every domain r of its effective
                // next-event time plus the cheapest ≥0-edge chain r → src.
                let mut floor = u64::MAX;
                for r in 0..n {
                    let nvt_eff = if r == me {
                        my_nvt
                    } else {
                        subs[r].next_event_time().map_or(u64::MAX, |t| t.as_ns())
                    };
                    floor = floor.min(nvt_eff.saturating_add(p0[r][src]));
                }
                let mut bound = floor.saturating_add(l);
                if spec.tail_safe_dir(src, me) {
                    bound = bound.max(wire_tails[src * n + me]);
                }
                horizon = horizon.min(bound);
            }
            if my_nvt >= horizon {
                continue;
            }
            let before = subs[me].core.counters.events_processed;
            let cancelled_before = subs[me].core.counters.timers_cancelled;
            subs[me].run_until(Time::from_ns(horizon - 1));
            let delta = subs[me].core.counters.events_processed - before;
            subs[me].core.counters.record_window(delta);
            subs[me].core.counters.sync_rounds_saved += 1;
            // Swallowed tombstones are progress too (the queue shrank), even
            // though they are deliberately not dispatched events.
            progressed |= delta > 0 || subs[me].core.counters.timers_cancelled > cancelled_before;
            {
                let p = subs[me].core.partition.as_mut().expect("split installs it");
                std::mem::swap(&mut scratch, &mut p.outbox);
            }
            for staged in scratch.drain(..) {
                let dst = spec.domain_of[staged.to] as usize;
                if spec.tail_safe_dir(me, dst) {
                    debug_assert!(
                        staged.msg.is_packet(),
                        "control message on a tail-safe direction voids the wire-tail promise"
                    );
                    let wt = &mut wire_tails[me * n + dst];
                    *wt = (*wt).max(staged_tail(&staged));
                }
                let Staged { at, from, to, msg } = staged;
                subs[dst].core.push_event_arrival(
                    at,
                    EventKind::Message { from, to, msg },
                    arrival_seq(me, arrival_ctr[dst * n + me]),
                );
                arrival_ctr[dst * n + me] += 1;
            }
            if subs[me].core.stop {
                stopped = true;
                break 'run;
            }
            if subs[me].core.counters.events_processed >= subs[me].event_limit {
                break 'run;
            }
        }
        if !progressed {
            // Progress theorem: the domain holding the globally minimal
            // effective nvt always clears its horizon, so a full idle pass
            // means quiescence — anything else is a protocol bug.
            let all_idle = subs.iter().all(|e| e.next_event_time().is_none());
            assert!(
                all_idle,
                "cooperative partitioned engine stalled with pending events"
            );
            break;
        }
    }

    // No channel residue to return: flushed messages already live in their
    // receiver's heap, so stop/limit exits merge like any other early exit.
    (subs, 0, stopped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineCounters;

    /// Echo actor mirroring the engine tests, usable across domains.
    struct Pong {
        peer: ActorId,
        delay: Dur,
        count: u32,
        limit: u32,
    }

    impl Actor for Pong {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
            self.count += 1;
            if self.count < self.limit {
                ctx.send(self.peer, Box::new(0u8), self.delay);
            }
        }
    }

    fn two_domain_spec() -> DomainSpec {
        DomainSpec {
            domains: 2,
            domain_of: vec![0, 1],
            lookahead_ns: vec![
                vec![u64::MAX, Dur::from_us(100).as_ns()],
                vec![Dur::from_us(100).as_ns(), u64::MAX],
            ],
            tail_safe: Vec::new(),
        }
    }

    fn ping_pong_engine(limit: u32) -> Engine {
        let mut e = Engine::new(7);
        let a = e.add_actor(Box::new(Pong {
            peer: 1,
            delay: Dur::from_us(100),
            count: 0,
            limit,
        }));
        let b = e.add_actor(Box::new(Pong {
            peer: 0,
            delay: Dur::from_us(100),
            count: 0,
            limit,
        }));
        e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
        e
    }

    /// Run `f` with a pretended core count, restoring the real one after.
    fn with_cores<T>(n: usize, f: impl FnOnce() -> T) -> T {
        set_test_assume_cores(n);
        let r = f();
        set_test_assume_cores(0);
        r
    }

    /// Both executors, same workload, same serial golden.
    #[test]
    fn partitioned_ping_pong_matches_serial_in_both_modes() {
        let mut serial = ping_pong_engine(50);
        let end_serial = serial.run();

        for cores in [1usize, 8] {
            let (par, report) = with_cores(cores, || {
                let mut par = ping_pong_engine(50);
                let report = run_partitioned(&mut par, &two_domain_spec());
                (par, report)
            });
            assert_eq!(par.now(), end_serial, "cores={cores}");
            assert_eq!(par.events_processed(), serial.events_processed());
            assert_eq!(report.domains, 2);
            assert_eq!(
                report.events_per_domain.iter().sum::<u64>(),
                serial.events_processed()
            );
            // The batched windows must be visible in the counters.
            assert!(par.counters().windows_recorded() > 0, "cores={cores}");
            // Actors merged back with state intact and ids preserved.
            assert_eq!(par.actor::<Pong>(0).count, serial.actor::<Pong>(0).count);
            assert_eq!(par.actor::<Pong>(1).count, serial.actor::<Pong>(1).count);
        }
    }

    #[test]
    fn partitioned_counters_consolidate() {
        let mut serial = ping_pong_engine(40);
        serial.run();
        let mut par = ping_pong_engine(40);
        run_partitioned(&mut par, &two_domain_spec());
        let c: EngineCounters = par.counters();
        assert_eq!(c.events_processed, serial.counters().events_processed);
        assert!(c.pool_hits + c.events_allocated >= c.events_processed);
        assert!(c.sync_rounds_saved > 0, "windows should amortize: {c:?}");
    }

    #[test]
    fn jitter_does_not_change_outcome_threaded() {
        let (base_now, base_events) = with_cores(8, || {
            let mut base = ping_pong_engine(30);
            run_partitioned(&mut base, &two_domain_spec());
            (base.now(), base.events_processed())
        });
        for knob in [1u64, 137, 991] {
            set_test_start_jitter_us(knob);
            let mut e = ping_pong_engine(30);
            with_cores(8, || run_partitioned(&mut e, &two_domain_spec()));
            assert_eq!(e.now(), base_now, "jitter {knob} changed the clock");
            assert_eq!(e.events_processed(), base_events);
        }
        set_test_start_jitter_us(0);
    }

    #[test]
    fn external_worker_guard_is_panic_safe() {
        assert_eq!(external_workers(), 0);
        {
            let _g = register_external_workers(3);
            assert_eq!(external_workers(), 3);
            let r = std::panic::catch_unwind(|| {
                let _inner = register_external_workers(2);
                panic!("boom");
            });
            assert!(r.is_err());
        }
        assert_eq!(external_workers(), 0, "guards must release on unwind");
    }

    #[test]
    fn thread_allowance_overrides_global_budget() {
        assert_eq!(spawn_budget(), with_cores(0, available_cores));
        {
            let _g = set_thread_allowance(3);
            assert_eq!(spawn_budget(), 3);
            {
                let _inner = set_thread_allowance(1);
                assert_eq!(spawn_budget(), 1);
            }
            assert_eq!(spawn_budget(), 3, "allowance guard must restore nesting");
        }
    }

    #[test]
    fn path_closure_finds_cycles_and_transit() {
        // Ring of three: 0 → 1 → 2 → 0, each hop 10 us.
        let hop = Dur::from_us(10).as_ns();
        let spec = DomainSpec {
            domains: 3,
            domain_of: vec![0, 1, 2],
            lookahead_ns: vec![
                vec![u64::MAX, hop, u64::MAX],
                vec![u64::MAX, u64::MAX, hop],
                vec![hop, u64::MAX, u64::MAX],
            ],
            tail_safe: Vec::new(),
        };
        let p = spec.path_closure();
        assert_eq!(p[0][1], hop, "direct edge survives");
        assert_eq!(p[0][2], 2 * hop, "transit path composes");
        assert_eq!(p[0][0], 3 * hop, "own cheapest cycle bounds self");
        assert_eq!(p[1][0], 2 * hop);
    }

    #[test]
    fn path_closure_star_cut() {
        // Star: hub 0 exchanges with leaves 1 and 2; leaves only reach each
        // other through the hub.
        let spoke = Dur::from_us(20).as_ns();
        let spec = DomainSpec {
            domains: 3,
            domain_of: vec![0, 1, 2],
            lookahead_ns: vec![
                vec![u64::MAX, spoke, spoke],
                vec![spoke, u64::MAX, u64::MAX],
                vec![spoke, u64::MAX, u64::MAX],
            ],
            tail_safe: Vec::new(),
        };
        assert!(spec.is_runnable());
        let p = spec.path_closure();
        assert_eq!(p[1][2], 2 * spoke, "leaf to leaf transits the hub");
        assert_eq!(p[1][1], 2 * spoke, "leaf cycle is out and back");
        assert_eq!(p[0][0], 2 * spoke, "hub cycle via nearest leaf");
        assert_eq!(spec.min_lookahead(), Some(Dur::from_us(20)));
    }

    #[test]
    fn unrunnable_specs_are_rejected() {
        let mut s = two_domain_spec();
        s.lookahead_ns[0][1] = 0;
        assert!(!s.is_runnable(), "zero lookahead breaks progress");
        let mut t = two_domain_spec();
        t.domains = 1;
        assert!(!t.is_runnable());
        let mut u = two_domain_spec();
        u.tail_safe = vec![vec![false]]; // wrong shape
        assert!(!u.is_runnable());
    }

    #[test]
    fn arrival_seqs_sort_after_locals_and_by_sender() {
        assert!(arrival_seq(0, 0) > u64::MAX / 2, "upper half reserved");
        assert!(arrival_seq(0, 1) > arrival_seq(0, 0), "FIFO within sender");
        assert!(
            arrival_seq(1, 0) > arrival_seq(0, 999),
            "sender-major order"
        );
    }

    /// A three-domain ring where only one message circulates: two domains
    /// are always quiet. The quiet domains must neither spin forever nor
    /// mis-declare termination while the token is in flight.
    #[test]
    fn quiet_domains_terminate_cleanly() {
        fn ring_engine() -> Engine {
            let mut e = Engine::new(11);
            for id in 0..3usize {
                e.add_actor(Box::new(Pong {
                    peer: (id + 1) % 3,
                    delay: Dur::from_us(50),
                    count: 0,
                    limit: 30,
                }));
            }
            e.schedule_message(Time::ZERO, 0, 1, Box::new(0u8));
            e
        }
        let hop = Dur::from_us(50).as_ns();
        let spec = DomainSpec {
            domains: 3,
            domain_of: vec![0, 1, 2],
            lookahead_ns: vec![
                vec![u64::MAX, hop, u64::MAX],
                vec![u64::MAX, u64::MAX, hop],
                vec![hop, u64::MAX, u64::MAX],
            ],
            tail_safe: Vec::new(),
        };
        let mut serial = ring_engine();
        let end = serial.run();
        for cores in [1usize, 8] {
            let mut par = ring_engine();
            with_cores(cores, || run_partitioned(&mut par, &spec));
            assert_eq!(par.now(), end, "cores={cores}");
            assert_eq!(par.events_processed(), serial.events_processed());
        }
    }

    /// Same-nanosecond tie between a local timer and a cross-domain arrival:
    /// the reserved upper-half sequence keys put the arrival after the local
    /// event in *both* executors, for any thread interleaving.
    struct TieRecorder {
        order: Vec<&'static str>,
    }

    impl Actor for TieRecorder {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
            self.order.push("arrival");
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {
            self.order.push("timer");
        }
    }

    struct OneShot {
        peer: ActorId,
        delay: Dur,
    }

    impl Actor for OneShot {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
            ctx.send(self.peer, Box::new(0u8), self.delay);
        }
    }

    #[test]
    fn same_ns_arrival_sorts_after_local_event_in_both_modes() {
        let build = || {
            let mut e = Engine::new(5);
            let a = e.add_actor(Box::new(OneShot {
                peer: 1,
                delay: Dur::from_us(100),
            }));
            let b = e.add_actor(Box::new(TieRecorder { order: vec![] }));
            // The cross message leaves domain 0 at t=0 and arrives at b at
            // exactly t=100us — the same instant as b's local timer.
            e.schedule_message(Time::ZERO, a, a, Box::new(0u8));
            e.schedule_timer(Time::from_us(100), b, 1);
            e
        };
        for cores in [1usize, 8] {
            let mut e = build();
            with_cores(cores, || run_partitioned(&mut e, &two_domain_spec()));
            assert_eq!(
                e.actor::<TieRecorder>(1).order,
                vec!["timer", "arrival"],
                "cores={cores}"
            );
        }
    }

    /// Packet-train traffic over a tail-safe direction: the wire-tail
    /// promise path must stay bit-identical to serial in both executors.
    struct TrainSource {
        peer: ActorId,
        sent: u32,
        limit: u32,
    }

    fn train_packet(psn: u32) -> Packet {
        use ibwire::{Lid, Opcode, Qpn};
        Packet {
            dst_lid: Lid(2),
            src_lid: Lid(1),
            dst_qpn: Qpn(0),
            src_qpn: Qpn(0),
            opcode: Opcode::UdSend,
            psn,
            payload: 2048,
            msg_id: 0,
            msg_len: 8192,
            offset: 0,
            imm: 0,
            count: 4,
            stride: 2048,
            gap_ns: 10_000,
            data: None,
        }
    }

    impl Actor for TrainSource {
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if self.sent < self.limit {
                // One train every 200us, arriving 100us later with a 30us
                // tail: staged arrival times stay monotone, as a serialized
                // cable would make them.
                ctx.send(self.peer, train_packet(self.sent), Dur::from_us(100));
                self.sent += 1;
                ctx.timer(Dur::from_us(200), 0);
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {}
    }

    struct TrainSink {
        fragments: u64,
    }

    impl Actor for TrainSink {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {}
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, pkt: Packet) {
            self.fragments += pkt.count as u64;
        }
    }

    #[test]
    fn train_tail_promises_preserve_serial_results() {
        let build = || {
            let mut e = Engine::new(13);
            let src = e.add_actor(Box::new(TrainSource {
                peer: 1,
                sent: 0,
                limit: 25,
            }));
            e.add_actor(Box::new(TrainSink { fragments: 0 }));
            e.schedule_timer(Time::ZERO, src, 0);
            e
        };
        let mut spec = two_domain_spec();
        spec.tail_safe = vec![vec![false, true], vec![false, false]];
        let mut serial = build();
        let end = serial.run();
        for cores in [1usize, 8] {
            let mut par = build();
            with_cores(cores, || run_partitioned(&mut par, &spec));
            assert_eq!(par.now(), end, "cores={cores}");
            assert_eq!(par.events_processed(), serial.events_processed());
            assert_eq!(
                par.actor::<TrainSink>(1).fragments,
                serial.actor::<TrainSink>(1).fragments
            );
            assert_eq!(
                par.counters().trains_emitted,
                serial.counters().trains_emitted
            );
        }
    }

    /// A stop request mid-run must halt both executors without hanging and
    /// surface through `Engine::stopped`.
    struct Stopper {
        after: u32,
        seen: u32,
        peer: ActorId,
    }

    impl Actor for Stopper {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
            self.seen += 1;
            if self.seen >= self.after {
                ctx.stop();
            } else {
                ctx.send(self.peer, Box::new(0u8), Dur::from_us(100));
            }
        }
    }

    #[test]
    fn stop_requests_halt_both_modes() {
        for cores in [1usize, 8] {
            let mut e = Engine::new(17);
            e.add_actor(Box::new(Stopper {
                after: 5,
                seen: 0,
                peer: 1,
            }));
            e.add_actor(Box::new(Stopper {
                after: u32::MAX,
                seen: 0,
                peer: 0,
            }));
            e.schedule_message(Time::ZERO, 1, 0, Box::new(0u8));
            with_cores(cores, || run_partitioned(&mut e, &two_domain_spec()));
            assert!(e.stopped(), "cores={cores}");
            assert_eq!(e.actor::<Stopper>(0).seen, 5);
        }
    }

    /// Exhausting the event budget must not hang either executor.
    #[test]
    fn event_limit_halts_partitioned_run() {
        for cores in [1usize, 8] {
            let mut e = ping_pong_engine(u32::MAX);
            e.set_event_limit(64);
            with_cores(cores, || run_partitioned(&mut e, &two_domain_spec()));
            assert!(e.events_processed() >= 64, "cores={cores}");
            assert!(!e.stopped(), "budget exhaustion is not an actor stop");
        }
    }

    #[test]
    fn foreign_stub_panics_loudly() {
        // The Foreign placeholder exists to turn partition-map bugs into
        // immediate, named failures instead of silent state corruption.
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Foreign));
        e.schedule_message(Time::ZERO, a, a, Box::new(0u8));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.run();
        }));
        let err = r.expect_err("dispatch to a Foreign stub must panic");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("another domain"),
            "panic should name the routing bug: {msg}"
        );
    }

    /// An actor panicking inside a domain thread must not deadlock the
    /// sibling threads; the payload re-raises on the caller. The test
    /// completing (rather than hanging) is half the assertion.
    struct Bomb;

    impl Actor for Bomb {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
            panic!("bomb actor detonated");
        }
    }

    #[test]
    fn domain_panic_propagates_without_deadlock_in_both_modes() {
        for cores in [1usize, 8] {
            let mut e = Engine::new(3);
            let a = e.add_actor(Box::new(Bomb));
            let b = e.add_actor(Box::new(Bomb));
            e.schedule_message(Time::from_us(1), a, b, Box::new(0u8));
            let spec = two_domain_spec();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_cores(cores, || run_partitioned(&mut e, &spec));
            }));
            let err = r.expect_err("domain panic must surface to the caller");
            let msg = err
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| err.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(msg.contains("detonated"), "payload should survive: {msg}");
        }
    }
}
