//! The discrete-event engine and actor model.
//!
//! Network entities (HCAs, switches, WAN routers, benchmark drivers) are
//! [`Actor`]s owned by the [`Engine`]. Actors communicate exclusively through
//! scheduled message deliveries and timers; the engine pops events in strict
//! `(time, sequence)` order, so simulations are fully deterministic.
//!
//! ## The two message lanes
//!
//! Fabric traffic dominates event volume: a single large RC message becomes
//! thousands of MTU fragments, each crossing several hops (HCA → switch →
//! Longbow → Longbow → switch → HCA), and every hop is one event. The engine
//! therefore carries messages as a [`Msg`] with two lanes:
//!
//! * **Packet lane** — [`Msg::Packet`] holds an [`ibwire::Packet`] *by value*
//!   inside the pooled event node and dispatches to [`Actor::on_packet`]. No
//!   allocation, no `dyn Any` downcast per fragment.
//! * **Control lane** — [`Msg::Ctrl`] is the classic `Box<dyn Any>` for
//!   everything else (completions, credits, ULP user messages), dispatched to
//!   [`Actor::on_message`]. Zero-sized control messages (e.g. link credits)
//!   don't allocate either: `Box::new` of a ZST is allocation-free.
//!
//! `Ctx::send`/`Engine::schedule_message` accept `impl Into<Msg>`, so existing
//! `Box::new(value)` call sites keep working while fabric code passes a bare
//! `Packet`.
//!
//! ## Event pooling
//!
//! Event payloads live in a slab (`Vec<Option<EventKind>>` plus a free list);
//! the binary heap orders only compact 24-byte `(time, seq, index)` keys.
//! Steady-state simulation allocates nothing per event: nodes are recycled
//! through the free list ([`EngineCounters::pool_hits`]) and the slab only
//! grows while the in-flight event population reaches a new high
//! ([`EngineCounters::events_allocated`]).
//!
//! ## Same-timestamp ordering
//!
//! Ties in virtual time are broken by a monotonically increasing sequence
//! number assigned at *scheduling* time: two events at the same instant are
//! dispatched in the order they were scheduled. In particular, a zero-delay
//! self-send (`ctx.send(me, msg, Dur::ZERO)`) is delivered **after** every
//! event already queued for the current instant — effects of one handler
//! never jump ahead of previously scheduled work. See
//! `zero_delay_self_send_runs_after_queued_same_time_events` in the tests.

use crate::time::{Dur, Time};
use crate::trace::{Trace, TraceEvent};
use ibwire::Packet;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

/// Index of an actor within an [`Engine`].
pub type ActorId = usize;

/// A message travelling between actors: the typed packet lane or the boxed
/// control lane. See the [module docs](self) for why the lanes exist.
///
/// Control payloads carry a `Send` bound so a whole [`Engine`] — including
/// its queued events — can move to another thread when the fabric is split
/// into partitioned domains (see [`crate::domain`]). Handlers still receive
/// a plain `Box<dyn Any>`; the bound only constrains construction.
pub enum Msg {
    /// A fabric packet, carried by value (fast path).
    Packet(Packet),
    /// Anything else, carried as `Box<dyn Any + Send>` (control path).
    Ctrl(Box<dyn Any + Send>),
}

impl Msg {
    /// Downcast a control-lane message to a concrete type. Packet-lane
    /// messages and control messages of a different type come back as `Err`.
    pub fn downcast<T: Any>(self) -> Result<Box<T>, Msg> {
        match self {
            Msg::Ctrl(b) => b.downcast::<T>().map_err(Msg::Ctrl),
            p => Err(p),
        }
    }

    /// Extract the packet, if this is a packet-lane message.
    pub fn into_packet(self) -> Result<Packet, Msg> {
        match self {
            Msg::Packet(p) => Ok(p),
            m => Err(m),
        }
    }

    /// True for packet-lane messages.
    pub fn is_packet(&self) -> bool {
        matches!(self, Msg::Packet(_))
    }
}

impl std::fmt::Debug for Msg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Msg::Packet(p) => f.debug_tuple("Packet").field(p).finish(),
            Msg::Ctrl(_) => f.write_str("Ctrl(..)"),
        }
    }
}

impl From<Packet> for Msg {
    fn from(p: Packet) -> Msg {
        Msg::Packet(p)
    }
}

impl From<Box<dyn Any + Send>> for Msg {
    fn from(b: Box<dyn Any + Send>) -> Msg {
        Msg::Ctrl(b)
    }
}

/// Any concretely-typed box rides the control lane; `Box::new(value)` call
/// sites convert implicitly. (No overlap with the other impls: `dyn Any` is
/// unsized and `Packet` converts by value, not boxed.)
impl<T: Any + Send> From<Box<T>> for Msg {
    fn from(b: Box<T>) -> Msg {
        Msg::Ctrl(b)
    }
}

/// Handle to a cancellable timer armed via [`Ctx::timer_cancellable`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// A simulation entity driven by messages and timers.
///
/// Implementations must be `'static` (the `Any` supertrait) so the engine can
/// hand back concrete types via [`Engine::actor_mut`] during setup and result
/// collection, and `Send` so a partitioned run can move each domain's actors
/// onto its own thread (see [`crate::domain`]). Actors are plain state
/// machines — no interior sharing — so the bound is free in practice.
pub trait Actor: Any + Send {
    /// Deliver a control-lane message sent by `from`.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, msg: Box<dyn Any>);

    /// Deliver a packet-lane message sent by `from`.
    ///
    /// Only fabric entities (HCAs, switches, bridges) receive packets; the
    /// default implementation treats a packet arriving anywhere else as a
    /// wiring bug.
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _pkt: Packet) {
        panic!("actor received a fabric packet but does not handle the packet lane");
    }

    /// A timer armed via [`Ctx::timer`] has fired. `token` is the value the
    /// actor supplied when arming it.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

pub(crate) enum EventKind {
    Message {
        from: ActorId,
        to: ActorId,
        msg: Msg,
    },
    Timer {
        actor: ActorId,
        token: u64,
        /// `Some` for cancellable timers; checked against the tombstone set
        /// when popped.
        cancel_id: Option<TimerId>,
    },
}

/// A cross-domain message captured at scheduling time by a partitioned
/// engine: the absolute delivery time plus the message itself. Staged
/// messages travel between domain threads over the SPSC channels in
/// [`crate::domain`] and are re-queued by the receiving domain.
pub(crate) struct Staged {
    pub(crate) at: Time,
    pub(crate) from: ActorId,
    pub(crate) to: ActorId,
    pub(crate) msg: Msg,
}

/// Partition context installed on a domain's engine by
/// [`crate::domain::run_partitioned`]: which domain this engine is, the
/// global actor→domain map, and the outbox where messages addressed to
/// foreign actors are staged instead of entering the local queue.
///
/// In *probe* mode (`PartitionMode::Auto`'s pre-run density probe) nothing
/// detours: cross-domain messages are counted and then queued locally, so a
/// serial prefix can measure cross-domain traffic share without changing
/// the simulation at all.
pub(crate) struct Partition {
    pub(crate) domain: u32,
    pub(crate) domain_of: Arc<[u32]>,
    pub(crate) outbox: Vec<Staged>,
    /// Count cross-domain messages instead of staging them (Auto probe).
    pub(crate) probe: bool,
    /// Messages addressed across the domain cut while probing.
    pub(crate) cross_events: u64,
}

/// Compact heap entry: the event payload lives in the slab at `idx`, so heap
/// sift operations move 24 bytes instead of a full event node. `(time, seq)`
/// is packed into one `u128` so each sift comparison is a single wide
/// integer compare.
pub(crate) struct HeapKey {
    /// `(at.as_ns() << 64) | seq` — orders by time, then scheduling order.
    order: u128,
    pub(crate) idx: u32,
}

impl HeapKey {
    #[inline]
    fn new(at: Time, seq: u64, idx: u32) -> Self {
        HeapKey {
            order: ((at.as_ns() as u128) << 64) | seq as u128,
            idx,
        }
    }

    #[inline]
    pub(crate) fn at(&self) -> Time {
        Time::from_ns((self.order >> 64) as u64)
    }
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.order == other.order
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.order.cmp(&other.order)
    }
}

/// Number of log2 buckets in [`EngineCounters::round_events`].
pub const ROUND_EVENT_BUCKETS: usize = 8;

/// Hot-path health counters maintained by the engine.
///
/// All fields are integers so reports embedding this struct can stay `Eq`
/// (and thus usable in exact-equality determinism tests); the derived ratio
/// is exposed as [`EngineCounters::pool_hit_rate`].
///
/// Equality compares only the *schedule-independent* fields (see the manual
/// `PartialEq` impl below): the pool/peak fields depend on how wide the
/// partitioned engine's synchronization windows happened to be, which is a
/// function of thread timing, while the simulation itself stays bit-exact.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineCounters {
    /// Events dispatched to actors (cancelled timers are not dispatched and
    /// are excluded).
    pub events_processed: u64,
    /// Event nodes that required a fresh heap allocation (slab growth). In
    /// steady state this should plateau while `pool_hits` keeps climbing.
    pub events_allocated: u64,
    /// Event nodes recycled from the free pool instead of allocated.
    pub pool_hits: u64,
    /// High-water mark of the event queue length.
    pub peak_queue_len: u64,
    /// Timers that were cancelled before firing and skipped on pop.
    pub timers_cancelled: u64,
    /// Fragment-train hop deliveries dispatched: packet-lane events whose
    /// packet carried `count > 1` fragments across a hop as one event.
    pub trains_emitted: u64,
    /// Fragment hop-deliveries that rode inside a train instead of costing
    /// their own event (`count - 1` per dispatched train).
    pub fragments_coalesced: u64,
    /// Synchronization windows a partitioned domain advanced through without
    /// ever blocking on its peers — the batched-window protocol's measure of
    /// barriers amortized away (serial runs leave this zero).
    pub sync_rounds_saved: u64,
    /// Wall-clock nanoseconds partitioned domain threads spent blocked
    /// waiting for a peer's floor to advance (serial runs leave this zero).
    pub barrier_ns: u64,
    /// Log2 histogram of events processed per synchronization window:
    /// bucket `i` counts windows that dispatched `[2^i, 2^(i+1))` events
    /// (the last bucket absorbs everything larger). Empty windows are not
    /// recorded.
    pub round_events: [u64; ROUND_EVENT_BUCKETS],
}

/// Equality over the schedule-independent subset: what the simulation *did*
/// (events dispatched, timers skipped, trains coalesced), not how the host
/// scheduler happened to slice it into windows or grow slabs. This is what
/// lets two runs of the same figure — serial vs. partitioned, or two
/// differently-jittered partitioned runs — compare reports with `==`.
impl PartialEq for EngineCounters {
    fn eq(&self, other: &Self) -> bool {
        self.events_processed == other.events_processed
            && self.timers_cancelled == other.timers_cancelled
            && self.trains_emitted == other.trains_emitted
            && self.fragments_coalesced == other.fragments_coalesced
    }
}
impl Eq for EngineCounters {}

impl EngineCounters {
    /// Fraction of event-node acquisitions served from the pool,
    /// `pool_hits / (pool_hits + events_allocated)`. Zero when nothing was
    /// scheduled.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.events_allocated;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Fraction of fragment hop-deliveries that were coalesced into trains,
    /// `fragments_coalesced / (events_processed + fragments_coalesced)` —
    /// i.e. the share of per-fragment events the train path made
    /// unnecessary. Zero when nothing coalesced.
    pub fn coalescing_ratio(&self) -> f64 {
        let total = self.events_processed + self.fragments_coalesced;
        if total == 0 {
            0.0
        } else {
            self.fragments_coalesced as f64 / total as f64
        }
    }

    /// Record one non-empty synchronization window that dispatched `events`
    /// events into the log2 histogram.
    pub(crate) fn record_window(&mut self, events: u64) {
        if events == 0 {
            return;
        }
        let bucket = (63 - events.leading_zeros() as usize).min(ROUND_EVENT_BUCKETS - 1);
        self.round_events[bucket] += 1;
    }

    /// Total non-empty synchronization windows recorded in
    /// [`EngineCounters::round_events`].
    pub fn windows_recorded(&self) -> u64 {
        self.round_events.iter().sum()
    }
}

/// Merge another engine's counters into this one — how a multi-domain run
/// consolidates its per-domain counter blocks into the single block surfaced
/// by `Fabric::report()`. Throughput-style fields add; `peak_queue_len` is a
/// high-water mark across *independent* queues, so it takes the max (the
/// domains' queues never coexist in one heap).
impl std::ops::AddAssign for EngineCounters {
    fn add_assign(&mut self, rhs: EngineCounters) {
        self.events_processed += rhs.events_processed;
        self.events_allocated += rhs.events_allocated;
        self.pool_hits += rhs.pool_hits;
        self.peak_queue_len = self.peak_queue_len.max(rhs.peak_queue_len);
        self.timers_cancelled += rhs.timers_cancelled;
        self.trains_emitted += rhs.trains_emitted;
        self.fragments_coalesced += rhs.fragments_coalesced;
        self.sync_rounds_saved += rhs.sync_rounds_saved;
        self.barrier_ns += rhs.barrier_ns;
        for (b, r) in self.round_events.iter_mut().zip(rhs.round_events) {
            *b += r;
        }
    }
}

/// Everything the engine owns except the actor table and trace, grouped so
/// [`Ctx`] can borrow it whole while one actor is borrowed out of the table
/// (disjoint struct fields split-borrow cleanly).
pub(crate) struct Core {
    pub(crate) seq: u64,
    /// Min-ordered (via `Reverse`) compact keys; payloads live in `nodes`.
    pub(crate) queue: BinaryHeap<Reverse<HeapKey>>,
    /// Slab of event payloads, indexed by `HeapKey::idx`.
    pub(crate) nodes: Vec<Option<EventKind>>,
    /// Recycled slab indices.
    pub(crate) free: Vec<u32>,
    pub(crate) rng: SmallRng,
    pub(crate) stop: bool,
    pub(crate) next_timer_id: u64,
    /// Tombstones for cancelled-but-not-yet-popped timers.
    pub(crate) cancelled: HashSet<u64>,
    pub(crate) counters: EngineCounters,
    /// `Some` while this engine runs as one domain of a partitioned
    /// simulation; messages to foreign actors detour into its outbox.
    pub(crate) partition: Option<Partition>,
}

impl Core {
    /// Acquire a slab slot for `kind` — from the free pool when possible —
    /// and push its compact key onto the heap. Under a partition, a message
    /// addressed to an actor owned by another domain is staged in the outbox
    /// instead (its delivery time is already absolute, so the receiving
    /// domain can insert it directly).
    #[inline]
    pub(crate) fn push_event(&mut self, at: Time, kind: EventKind) {
        // Keep the serial fast path a single predicted-not-taken branch:
        // `kind` is ~100 bytes, so it must not move through a match here.
        if self.partition.is_some() {
            return self.push_event_partitioned(at, kind);
        }
        self.push_event_local(at, kind);
    }

    /// The detour taken while this engine runs as one partitioned domain:
    /// messages addressed to foreign actors are staged in the outbox,
    /// everything else falls through to the local queue.
    #[cold]
    fn push_event_partitioned(&mut self, at: Time, kind: EventKind) {
        let p = self.partition.as_mut().expect("checked by push_event");
        match kind {
            // Auto's density probe rides on a *serial* engine that hosts all
            // domains: a crossing is a sender/receiver domain mismatch. The
            // message is tallied, then delivered locally — the probed prefix
            // must stay byte-for-byte the serial simulation.
            EventKind::Message { from, to, .. } if p.probe => {
                if p.domain_of[to] != p.domain_of[from] {
                    p.cross_events += 1;
                }
                self.push_event_local(at, kind);
            }
            EventKind::Message { from, to, msg } if p.domain_of[to] != p.domain => {
                p.outbox.push(Staged { at, from, to, msg });
            }
            kind => self.push_event_local(at, kind),
        }
    }

    /// Slab + heap insertion shared by both paths above. `inline(always)`
    /// keeps `kind` (~100 bytes) from being copied across an outlined call
    /// on the serial fast path.
    #[inline(always)]
    fn push_event_local(&mut self, at: Time, kind: EventKind) {
        let idx = if let Some(idx) = self.free.pop() {
            self.counters.pool_hits += 1;
            debug_assert!(self.nodes[idx as usize].is_none(), "free-list slot in use");
            self.nodes[idx as usize] = Some(kind);
            idx
        } else {
            self.counters.events_allocated += 1;
            let idx = u32::try_from(self.nodes.len()).expect("event slab overflow");
            self.nodes.push(Some(kind));
            idx
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(HeapKey::new(at, seq, idx)));
        let len = self.queue.len() as u64;
        if len > self.counters.peak_queue_len {
            self.counters.peak_queue_len = len;
        }
    }

    /// Insert a cross-domain arrival with an explicit, caller-chosen sequence
    /// key instead of the engine's own counter. The partitioned engine
    /// reserves the upper half of the sequence space for arrivals (see
    /// [`crate::domain::arrival_seq`]) so that same-nanosecond ties resolve
    /// identically no matter when a domain happened to drain its inbound
    /// channels — the cornerstone of window-size independence.
    pub(crate) fn push_event_arrival(&mut self, at: Time, kind: EventKind, seq: u64) {
        debug_assert!(seq >= 1 << 63, "arrival seqs live in the upper half");
        let idx = if let Some(idx) = self.free.pop() {
            self.counters.pool_hits += 1;
            debug_assert!(self.nodes[idx as usize].is_none(), "free-list slot in use");
            self.nodes[idx as usize] = Some(kind);
            idx
        } else {
            self.counters.events_allocated += 1;
            let idx = u32::try_from(self.nodes.len()).expect("event slab overflow");
            self.nodes.push(Some(kind));
            idx
        };
        self.queue.push(Reverse(HeapKey::new(at, seq, idx)));
        let len = self.queue.len() as u64;
        if len > self.counters.peak_queue_len {
            self.counters.peak_queue_len = len;
        }
    }
}

/// Handle given to an actor while it processes an event.
///
/// All side effects an actor can have on the simulation flow through this
/// context: sending messages, arming timers, and requesting a halt. Scheduled
/// events go straight into the pooled event queue — sequence numbers are
/// assigned at scheduling time, so same-instant ordering follows emission
/// order (see the [module docs](self)).
pub struct Ctx<'a> {
    now: Time,
    self_id: ActorId,
    core: &'a mut Core,
}

impl Ctx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the actor handling this event.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Schedule `msg` for delivery to `to` after `delay`.
    ///
    /// With `delay == Dur::ZERO` the message is delivered at the current
    /// instant, but **after** every event already queued for this instant
    /// (ties break in scheduling order).
    pub fn send(&mut self, to: ActorId, msg: impl Into<Msg>, delay: Dur) {
        self.send_at(to, msg, self.now + delay);
    }

    /// Schedule `msg` for delivery to `to` at absolute time `at`.
    ///
    /// `at` must not be in the past; scheduling "now" is allowed and the
    /// message is delivered after all effects of the current event settle.
    #[inline]
    pub fn send_at(&mut self, to: ActorId, msg: impl Into<Msg>, at: Time) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.core.push_event(
            at,
            EventKind::Message {
                from: self.self_id,
                to,
                msg: msg.into(),
            },
        );
    }

    /// Arm a timer on the current actor that fires after `delay` with `token`.
    pub fn timer(&mut self, delay: Dur, token: u64) {
        self.timer_at(self.now + delay, token);
    }

    /// Arm a timer on the current actor at absolute time `at` with `token`.
    pub fn timer_at(&mut self, at: Time, token: u64) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.core.push_event(
            at,
            EventKind::Timer {
                actor: self.self_id,
                token,
                cancel_id: None,
            },
        );
    }

    /// Arm a cancellable timer on the current actor; the returned [`TimerId`]
    /// can be passed to [`Ctx::cancel_timer`] before the timer fires.
    pub fn timer_cancellable(&mut self, delay: Dur, token: u64) -> TimerId {
        let at = self.now + delay;
        let id = TimerId(self.core.next_timer_id);
        self.core.next_timer_id += 1;
        self.core.push_event(
            at,
            EventKind::Timer {
                actor: self.self_id,
                token,
                cancel_id: Some(id),
            },
        );
        id
    }

    /// Cancel a timer armed with [`Ctx::timer_cancellable`].
    ///
    /// The timer's queue entry is skipped when popped: it is not dispatched,
    /// not traced, and not counted in `events_processed` (it shows up in
    /// [`EngineCounters::timers_cancelled`] instead). Cancelling a timer that
    /// has already fired leaves a permanent tombstone — only cancel timers
    /// you know are still armed.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.core.cancelled.insert(id.0);
    }

    /// Deterministic random generator shared by the whole simulation.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.core.rng
    }

    /// Ask the engine to stop after the current event is fully processed.
    pub fn stop(&mut self) {
        self.core.stop = true;
    }
}

/// The discrete-event engine: owns all actors, the event queue, virtual time,
/// and the seeded random generator.
pub struct Engine {
    pub(crate) now: Time,
    pub(crate) actors: Vec<Box<dyn Actor>>,
    pub(crate) core: Core,
    /// Safety valve against runaway protocol loops in tests.
    pub(crate) event_limit: u64,
    pub(crate) trace: Option<Trace>,
    /// The seed this engine was created with; per-domain engines of a
    /// partitioned run derive their own deterministic seeds from it.
    pub(crate) seed: u64,
}

impl Engine {
    /// Create an engine with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: Time::ZERO,
            actors: Vec::new(),
            core: Core {
                seq: 0,
                queue: BinaryHeap::new(),
                nodes: Vec::new(),
                free: Vec::new(),
                rng: SmallRng::seed_from_u64(seed),
                stop: false,
                next_timer_id: 0,
                cancelled: HashSet::new(),
                counters: EngineCounters::default(),
                partition: None,
            },
            event_limit: u64::MAX,
            trace: None,
            seed,
        }
    }

    /// Cap the number of events processed (a safety valve for tests; the
    /// engine stops once the cap is reached).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// The current event cap (`u64::MAX` when uncapped). Harnesses that
    /// borrow the limit for a bounded prefix — the Auto density probe — save
    /// and restore it through this.
    pub fn event_limit(&self) -> u64 {
        self.event_limit
    }

    /// Install a probe-mode partition context: cross-domain `Message` pushes are
    /// tallied against `domain_of` but still delivered locally, so the
    /// probed prefix stays byte-for-byte the serial simulation. Used by the
    /// density probe behind `PartitionMode::Auto`.
    pub fn begin_partition_probe(&mut self, domain_of: &[u32]) {
        assert!(
            self.core.partition.is_none(),
            "cannot probe an engine that is already partitioned"
        );
        assert_eq!(
            domain_of.len(),
            self.actors.len(),
            "probe domain map must cover every actor"
        );
        self.core.partition = Some(Partition {
            domain: u32::MAX,
            domain_of: domain_of.into(),
            outbox: Vec::new(),
            probe: true,
            cross_events: 0,
        });
    }

    /// Remove the probe installed by [`Engine::begin_partition_probe`] and
    /// return how many cross-domain messages the probed prefix scheduled.
    pub fn end_partition_probe(&mut self) -> u64 {
        let p = self
            .core
            .partition
            .take()
            .expect("no partition probe installed");
        assert!(
            p.probe && p.outbox.is_empty(),
            "ended a partition that was not a probe"
        );
        p.cross_events
    }

    /// Record every dispatched event into a bounded [`Trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Mutable trace access (to name actors).
    pub fn trace_mut(&mut self) -> Option<&mut Trace> {
        self.trace.as_mut()
    }

    /// Register an actor and return its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        self.actors.push(actor);
        self.actors.len() - 1
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Mutable access to a concrete actor, for setup and result collection.
    ///
    /// # Panics
    /// Panics if `id` is out of range or the concrete type does not match.
    pub fn actor_mut<T: Actor>(&mut self, id: ActorId) -> &mut T {
        let any: &mut dyn Any = &mut *self.actors[id];
        any.downcast_mut::<T>().expect("actor type mismatch")
    }

    /// Shared access to a concrete actor.
    ///
    /// # Panics
    /// Same conditions as [`Engine::actor_mut`].
    pub fn actor<T: Actor>(&self, id: ActorId) -> &T {
        let any: &dyn Any = &*self.actors[id];
        any.downcast_ref::<T>().expect("actor type mismatch")
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Timestamp of the earliest queued event, or `None` when the queue is
    /// empty. Cancelled-but-unpopped timers still count (their slot is only
    /// discovered on pop), which is conservative: the reported time is never
    /// later than the next dispatch — exactly what the partitioned engine's
    /// window computation needs.
    pub fn next_event_time(&self) -> Option<Time> {
        self.core.queue.peek().map(|Reverse(key)| key.at())
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.core.counters.events_processed
    }

    /// Snapshot of the engine's hot-path counters.
    pub fn counters(&self) -> EngineCounters {
        self.core.counters
    }

    /// Schedule a message delivery from outside any actor (driver code).
    pub fn schedule_message(&mut self, at: Time, from: ActorId, to: ActorId, msg: impl Into<Msg>) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.core.push_event(
            at,
            EventKind::Message {
                from,
                to,
                msg: msg.into(),
            },
        );
    }

    /// Schedule a timer on `actor` from outside any actor (driver code).
    pub fn schedule_timer(&mut self, at: Time, actor: ActorId, token: u64) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.core.push_event(
            at,
            EventKind::Timer {
                actor,
                token,
                cancel_id: None,
            },
        );
    }

    /// Cancel a timer from driver code (see [`Ctx::cancel_timer`]).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.core.cancelled.insert(id.0);
    }

    /// Process a single event. Returns `false` when the queue is empty or a
    /// stop was requested. Cancelled timers are skipped (virtual time still
    /// advances past them) and do not count as processed events.
    pub fn step(&mut self) -> bool {
        self.step_bounded(None)
    }

    /// [`Engine::step`] with an optional time bound: an event after
    /// `deadline` is left in the queue and `false` is returned. The bound is
    /// re-checked after every skipped cancelled timer — without that, a run
    /// of cancelled timers below the bound would let the next *live* event
    /// dispatch arbitrarily far beyond it, which the partitioned engine's
    /// window protocol cannot tolerate (the horizon is a hard causality
    /// limit, not a hint).
    ///
    /// `inline(always)` so each caller gets a copy specialized for its
    /// constant `deadline` variant — [`Engine::step`] keeps the branch-free
    /// loop it had before bounded stepping existed.
    #[inline(always)]
    fn step_bounded(&mut self, deadline: Option<Time>) -> bool {
        loop {
            if self.core.stop || self.core.counters.events_processed >= self.event_limit {
                return false;
            }
            if let Some(d) = deadline {
                match self.core.queue.peek() {
                    Some(Reverse(key)) if key.at() <= d => {}
                    _ => return false,
                }
            }
            let Some(Reverse(key)) = self.core.queue.pop() else {
                return false;
            };
            debug_assert!(
                key.at() >= self.now,
                "time went backwards: popped event at {:?} behind now {:?}",
                key.at(),
                self.now
            );
            self.now = key.at();
            let kind = self.core.nodes[key.idx as usize]
                .take()
                .expect("heap key points at an empty slab slot");
            self.core.free.push(key.idx);

            if let EventKind::Timer {
                cancel_id: Some(id),
                ..
            } = &kind
            {
                if self.core.cancelled.remove(&id.0) {
                    self.core.counters.timers_cancelled += 1;
                    continue; // skipped: not dispatched, not traced, not counted
                }
            }
            self.core.counters.events_processed += 1;
            // Train accounting: a packet-lane delivery with `count > 1` and a
            // real arrival spacing moved `count` fragments across this hop in
            // one event. (`gap_ns == 0` marks a train's deferred tail
            // self-delivery at the destination HCA — the fragments were
            // already counted when the train arrived, so it is excluded.)
            if let EventKind::Message {
                msg: Msg::Packet(p),
                ..
            } = &kind
            {
                if p.count > 1 && p.gap_ns > 0 {
                    self.core.counters.trains_emitted += 1;
                    self.core.counters.fragments_coalesced += (p.count - 1) as u64;
                }
            }

            let actor_id = match &kind {
                EventKind::Message { to, .. } => *to,
                EventKind::Timer { actor, .. } => *actor,
            };
            if let Some(trace) = self.trace.as_mut() {
                let te = match &kind {
                    EventKind::Message { from, to, .. } => TraceEvent::Message {
                        from: *from,
                        to: *to,
                    },
                    EventKind::Timer { actor, token, .. } => TraceEvent::Timer {
                        actor: *actor,
                        token: *token,
                    },
                };
                trace.record(self.now, te);
            }
            // Split-borrow: the dispatched actor comes out of `self.actors`
            // while `Ctx` borrows `self.core` — disjoint fields, so handlers
            // schedule directly into the event queue with no intermediate
            // buffering (and no per-event take/put of the actor box).
            let mut ctx = Ctx {
                now: self.now,
                self_id: actor_id,
                core: &mut self.core,
            };
            let actor = &mut self.actors[actor_id];
            match kind {
                EventKind::Message { from, msg, .. } => match msg {
                    Msg::Packet(pkt) => actor.on_packet(&mut ctx, from, pkt),
                    Msg::Ctrl(b) => actor.on_message(&mut ctx, from, b),
                },
                EventKind::Timer { token, .. } => actor.on_timer(&mut ctx, token),
            }
            return true;
        }
    }

    /// Run until the queue drains or a stop is requested; returns the final
    /// virtual time.
    pub fn run(&mut self) -> Time {
        while self.step() {}
        self.now
    }

    /// Run until virtual time would exceed `deadline` (events at exactly
    /// `deadline` are processed; everything later — including cancelled
    /// timers — stays queued). Returns the final virtual time.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        while self.step_bounded(Some(deadline)) {}
        self.now
    }

    /// True once a stop has been requested via [`Ctx::stop`].
    pub fn stopped(&self) -> bool {
        self.core.stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibwire::{Lid, Opcode, Qpn};

    /// Echoes every message back to the sender after a fixed delay, counting
    /// deliveries.
    struct Echo {
        delay: Dur,
        count: u32,
        limit: u32,
        fired_timers: Vec<u64>,
    }

    impl Echo {
        fn new(delay: Dur, limit: u32) -> Self {
            Echo {
                delay,
                count: 0,
                limit,
                fired_timers: Vec::new(),
            }
        }
    }

    impl Actor for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, msg: Box<dyn Any>) {
            self.count += 1;
            if self.count < self.limit {
                // Re-box the payload: the control lane requires `Send`
                // construction, which the received `Box<dyn Any>` erased.
                let v = *msg.downcast::<u8>().expect("echo payload is a u8");
                ctx.send(from, Box::new(v), self.delay);
            } else {
                ctx.stop();
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
            self.fired_timers.push(token);
        }
    }

    fn test_packet(psn: u32) -> Packet {
        Packet {
            dst_lid: Lid(2),
            src_lid: Lid(1),
            dst_qpn: Qpn(0),
            src_qpn: Qpn(0),
            opcode: Opcode::UdSend,
            psn,
            payload: 256,
            msg_id: 0,
            msg_len: 256,
            offset: 0,
            imm: 0,
            count: 1,
            stride: 0,
            gap_ns: 0,
            data: None,
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::from_us(10), 100)));
        let b = e.add_actor(Box::new(Echo::new(Dur::from_us(10), 3)));
        e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
        let end = e.run();
        // b receives at 0, a at 10, b at 20 -> b stops (count==3? b received 2)
        // Sequence: b@0 (b.count=1), a@10 (a.count=1), b@20 (b.count=2),
        // a@30, b@40 (count=3, stop).
        assert_eq!(end, Time::from_us(40));
        assert_eq!(e.actor::<Echo>(b).count, 3);
        assert_eq!(e.actor::<Echo>(a).count, 2);
    }

    #[test]
    fn fifo_tie_break_is_schedule_order() {
        struct Recorder {
            seen: Vec<u32>,
        }
        impl Actor for Recorder {
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, msg: Box<dyn Any>) {
                self.seen.push(*msg.downcast::<u32>().unwrap());
            }
        }
        let mut e = Engine::new(1);
        let r = e.add_actor(Box::new(Recorder { seen: vec![] }));
        for i in 0..10u32 {
            e.schedule_message(Time::from_us(5), r, r, Box::new(i));
        }
        e.run();
        assert_eq!(e.actor::<Recorder>(r).seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_delay_self_send_runs_after_queued_same_time_events() {
        // The documented same-timestamp contract: a Dur::ZERO self-send from
        // the first handler lands *behind* the events that were already
        // queued for the same instant.
        struct Chaser {
            order: Vec<&'static str>,
        }
        impl Actor for Chaser {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, msg: Box<dyn Any>) {
                let tag = *msg.downcast::<&'static str>().unwrap();
                if tag == "first" {
                    ctx.send(ctx.self_id(), Box::new("chased"), Dur::ZERO);
                }
                self.order.push(tag);
            }
        }
        let mut e = Engine::new(1);
        let c = e.add_actor(Box::new(Chaser { order: vec![] }));
        e.schedule_message(Time::ZERO, c, c, Box::new("first"));
        e.schedule_message(Time::ZERO, c, c, Box::new("second"));
        e.run();
        assert_eq!(
            e.actor::<Chaser>(c).order,
            vec!["first", "second", "chased"]
        );
    }

    #[test]
    fn timers_fire_with_tokens() {
        struct T;
        impl Actor for T {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
                ctx.timer(Dur::from_us(1), 7);
                ctx.timer(Dur::from_us(2), 9);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                if token == 9 {
                    ctx.stop();
                }
            }
        }
        let mut e = Engine::new(1);
        let t = e.add_actor(Box::new(T));
        e.schedule_message(Time::ZERO, t, t, Box::new(()));
        let end = e.run();
        assert_eq!(end, Time::from_us(2));
        assert!(e.stopped());
    }

    #[test]
    fn cancellable_timer_is_skipped_and_counted() {
        struct T {
            armed: Option<TimerId>,
            fired: Vec<u64>,
        }
        impl Actor for T {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, msg: Box<dyn Any>) {
                match *msg.downcast::<&'static str>().unwrap() {
                    "arm" => {
                        self.armed = Some(ctx.timer_cancellable(Dur::from_us(50), 7));
                        // A second, uncancelled timer proves only the
                        // cancelled one is suppressed.
                        ctx.timer(Dur::from_us(60), 8);
                    }
                    "cancel" => ctx.cancel_timer(self.armed.take().unwrap()),
                    _ => unreachable!(),
                }
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut e = Engine::new(1);
        let t = e.add_actor(Box::new(T {
            armed: None,
            fired: vec![],
        }));
        e.schedule_message(Time::ZERO, t, t, Box::new("arm"));
        e.schedule_message(Time::from_us(10), t, t, Box::new("cancel"));
        let end = e.run();
        assert_eq!(
            e.actor::<T>(t).fired,
            vec![8],
            "cancelled timer must not fire"
        );
        assert_eq!(e.counters().timers_cancelled, 1);
        // 2 messages + 1 surviving timer; the skipped pop is not processed.
        assert_eq!(e.events_processed(), 3);
        // Virtual time still advances through the cancelled slot to the
        // surviving timer.
        assert_eq!(end, Time::from_us(60));
    }

    /// Regression: a cancelled timer sitting below the deadline must not
    /// let `run_until` dispatch the next live event beyond the deadline.
    /// (The partitioned engine's horizon is a hard causality limit; an
    /// overshoot here surfaced as "time went backwards" in domain runs.)
    #[test]
    fn run_until_stops_at_deadline_across_cancelled_timers() {
        struct T {
            armed: Option<TimerId>,
            fired: Vec<u64>,
        }
        impl Actor for T {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
                let id = ctx.timer_cancellable(Dur::from_us(5), 7);
                ctx.cancel_timer(id);
                self.armed = Some(id);
                ctx.timer(Dur::from_us(100), 8); // live, far beyond the deadline
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut e = Engine::new(1);
        let t = e.add_actor(Box::new(T {
            armed: None,
            fired: vec![],
        }));
        e.schedule_message(Time::ZERO, t, t, Box::new("go"));
        let end = e.run_until(Time::from_us(10));
        assert!(
            end <= Time::from_us(10),
            "run_until overshot its deadline: {end:?}"
        );
        assert!(
            e.actor::<T>(t).fired.is_empty(),
            "the 100us timer fired inside a 10us window"
        );
        // The live timer is still pending and fires once the window allows.
        assert_eq!(e.run_until(Time::from_us(100)), Time::from_us(100));
        assert_eq!(e.actor::<T>(t).fired, vec![8]);
    }

    #[test]
    fn packet_lane_dispatches_to_on_packet() {
        struct PktSink {
            packets: Vec<u32>,
            ctrl: u32,
        }
        impl Actor for PktSink {
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
                self.ctrl += 1;
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, pkt: Packet) {
                self.packets.push(pkt.psn);
            }
        }
        let mut e = Engine::new(1);
        let s = e.add_actor(Box::new(PktSink {
            packets: vec![],
            ctrl: 0,
        }));
        e.schedule_message(Time::ZERO, s, s, test_packet(11));
        e.schedule_message(Time::ZERO, s, s, Box::new(()));
        e.schedule_message(Time::from_us(1), s, s, test_packet(12));
        e.run();
        let sink = e.actor::<PktSink>(s);
        assert_eq!(sink.packets, vec![11, 12]);
        assert_eq!(sink.ctrl, 1);
    }

    #[test]
    #[should_panic(expected = "does not handle the packet lane")]
    fn packet_to_non_fabric_actor_panics() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::ZERO, 1)));
        e.schedule_message(Time::ZERO, a, a, test_packet(0));
        e.run();
    }

    #[test]
    fn event_pool_recycles_nodes() {
        // A long ping-pong keeps at most a couple of events in flight, so
        // the slab plateaus immediately and everything else is a pool hit.
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::from_us(1), u32::MAX)));
        let b = e.add_actor(Box::new(Echo::new(Dur::from_us(1), 1000)));
        e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
        e.run();
        let c = e.counters();
        assert!(c.events_processed > 1900, "{c:?}");
        assert!(c.events_allocated <= 4, "slab must plateau: {c:?}");
        assert_eq!(c.pool_hits + c.events_allocated, c.events_processed);
        assert!(c.pool_hit_rate() > 0.99, "{c:?}");
        assert!(c.peak_queue_len <= 4, "{c:?}");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::from_us(10), u32::MAX)));
        let b = e.add_actor(Box::new(Echo::new(Dur::from_us(10), u32::MAX)));
        e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
        let t = e.run_until(Time::from_us(35));
        assert!(t <= Time::from_us(35));
        // Remaining events still queued; continuing works.
        let t2 = e.run_until(Time::from_us(55));
        assert!(t2 > t);
    }

    #[test]
    fn event_limit_halts_runaway() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::ZERO, u32::MAX)));
        let b = e.add_actor(Box::new(Echo::new(Dur::ZERO, u32::MAX)));
        e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
        e.set_event_limit(1000);
        e.run();
        assert_eq!(e.events_processed(), 1000);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn trace() -> (Time, u64) {
            let mut e = Engine::new(99);
            let a = e.add_actor(Box::new(Echo::new(Dur::from_ns(37), 500)));
            let b = e.add_actor(Box::new(Echo::new(Dur::from_ns(53), 500)));
            e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
            let end = e.run();
            (end, e.events_processed())
        }
        assert_eq!(trace(), trace());
    }

    #[test]
    fn trace_records_dispatches() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::from_us(10), 3)));
        let b = e.add_actor(Box::new(Echo::new(Dur::from_us(10), 3)));
        e.enable_trace(16);
        e.trace_mut().unwrap().name_actor(a, "ping");
        e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
        e.run();
        let trace = e.trace().unwrap();
        assert_eq!(trace.records().len() as u64, e.events_processed());
        assert!(trace.dump().contains("ping"));
    }

    #[test]
    fn downcast_accessors() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::ZERO, 1)));
        e.actor_mut::<Echo>(a).count = 41;
        assert_eq!(e.actor::<Echo>(a).count, 41);
    }

    #[test]
    #[should_panic(expected = "actor type mismatch")]
    fn downcast_wrong_type_panics() {
        struct Other;
        impl Actor for Other {
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ActorId, _: Box<dyn Any>) {}
        }
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Other));
        let _ = e.actor::<Echo>(a);
    }

    #[test]
    fn next_event_time_peeks_without_popping() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::ZERO, 1)));
        assert_eq!(e.next_event_time(), None);
        e.schedule_message(Time::from_us(7), a, a, Box::new(0u8));
        e.schedule_message(Time::from_us(3), a, a, Box::new(0u8));
        assert_eq!(e.next_event_time(), Some(Time::from_us(3)));
        assert_eq!(e.events_processed(), 0, "peeking must not dispatch");
    }

    #[test]
    fn counters_merge_sums_and_maxes() {
        let a = EngineCounters {
            events_processed: 10,
            events_allocated: 2,
            pool_hits: 8,
            peak_queue_len: 5,
            timers_cancelled: 1,
            trains_emitted: 3,
            fragments_coalesced: 30,
            sync_rounds_saved: 2,
            barrier_ns: 100,
            round_events: [1, 0, 0, 0, 0, 0, 0, 2],
        };
        let b = EngineCounters {
            events_processed: 4,
            events_allocated: 1,
            pool_hits: 3,
            peak_queue_len: 9,
            timers_cancelled: 0,
            trains_emitted: 1,
            fragments_coalesced: 10,
            sync_rounds_saved: 5,
            barrier_ns: 50,
            round_events: [0, 3, 0, 0, 0, 0, 0, 1],
        };
        let mut m = a;
        m += b;
        assert_eq!(m.events_processed, 14);
        assert_eq!(m.events_allocated, 3);
        assert_eq!(m.pool_hits, 11);
        assert_eq!(m.peak_queue_len, 9, "peak is a max across disjoint queues");
        assert_eq!(m.timers_cancelled, 1);
        assert_eq!(m.trains_emitted, 4);
        assert_eq!(m.fragments_coalesced, 40);
        assert_eq!(m.sync_rounds_saved, 7);
        assert_eq!(m.barrier_ns, 150);
        assert_eq!(m.round_events, [1, 3, 0, 0, 0, 0, 0, 3]);
        assert_eq!(m.windows_recorded(), 7);
    }

    #[test]
    fn counters_equality_ignores_schedule_dependent_fields() {
        let mut a = EngineCounters {
            events_processed: 10,
            trains_emitted: 3,
            fragments_coalesced: 30,
            ..Default::default()
        };
        let mut b = a;
        // Pool growth, queue peaks, and window shapes are host-schedule
        // artifacts; equality must see through them.
        b.events_allocated = 99;
        b.peak_queue_len = 77;
        b.sync_rounds_saved = 5;
        b.barrier_ns = 12345;
        b.round_events = [9; super::ROUND_EVENT_BUCKETS];
        assert_eq!(a, b);
        a.events_processed += 1;
        assert_ne!(a, b, "dispatched-event counts are load-bearing");
    }

    #[test]
    fn round_event_histogram_buckets_log2() {
        let mut c = EngineCounters::default();
        c.record_window(0); // empty windows are not recorded
        c.record_window(1);
        c.record_window(3);
        c.record_window(4);
        c.record_window(200); // beyond 2^7 clamps into the last bucket
        assert_eq!(c.round_events, [1, 1, 1, 0, 0, 0, 0, 1]);
        assert_eq!(c.windows_recorded(), 4);
    }

    #[test]
    fn msg_downcast_round_trips() {
        let m: Msg = Box::new(42u32).into();
        assert!(!m.is_packet());
        assert_eq!(*m.downcast::<u32>().unwrap(), 42);

        let m: Msg = test_packet(5).into();
        assert!(m.is_packet());
        let m = m.downcast::<u32>().unwrap_err(); // packets refuse downcast
        assert_eq!(m.into_packet().unwrap().psn, 5);
    }
}
