//! The discrete-event engine and actor model.
//!
//! Network entities (HCAs, switches, WAN routers, benchmark drivers) are
//! [`Actor`]s owned by the [`Engine`]. Actors communicate exclusively through
//! scheduled message deliveries and timers; the engine pops events in strict
//! `(time, sequence)` order, so simulations are fully deterministic.

use crate::time::{Dur, Time};
use crate::trace::{Trace, TraceEvent};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of an actor within an [`Engine`].
pub type ActorId = usize;

/// A simulation entity driven by messages and timers.
///
/// Implementations must be `'static` (the `Any` supertrait) so the engine can
/// hand back concrete types via [`Engine::actor_mut`] during setup and result
/// collection.
pub trait Actor: Any {
    /// Deliver a message sent by `from`.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, msg: Box<dyn Any>);

    /// A timer armed via [`Ctx::timer`] has fired. `token` is the value the
    /// actor supplied when arming it.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

enum EventKind {
    Message {
        from: ActorId,
        to: ActorId,
        msg: Box<dyn Any>,
    },
    Timer {
        actor: ActorId,
        token: u64,
    },
}

struct Scheduled {
    at: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

enum Pending {
    Message {
        at: Time,
        from: ActorId,
        to: ActorId,
        msg: Box<dyn Any>,
    },
    Timer {
        at: Time,
        actor: ActorId,
        token: u64,
    },
}

/// Handle given to an actor while it processes an event.
///
/// All side effects an actor can have on the simulation flow through this
/// context: sending messages, arming timers, and requesting a halt. Effects
/// are buffered and applied by the engine after the handler returns, which
/// keeps dispatch free of re-entrancy.
pub struct Ctx<'a> {
    now: Time,
    self_id: ActorId,
    pending: &'a mut Vec<Pending>,
    rng: &'a mut SmallRng,
    stop: &'a mut bool,
}

impl Ctx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the actor handling this event.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Schedule `msg` for delivery to `to` after `delay`.
    pub fn send(&mut self, to: ActorId, msg: Box<dyn Any>, delay: Dur) {
        self.send_at(to, msg, self.now + delay);
    }

    /// Schedule `msg` for delivery to `to` at absolute time `at`.
    ///
    /// `at` must not be in the past; scheduling "now" is allowed and the
    /// message is delivered after all effects of the current event settle.
    pub fn send_at(&mut self, to: ActorId, msg: Box<dyn Any>, at: Time) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.pending.push(Pending::Message {
            at,
            from: self.self_id,
            to,
            msg,
        });
    }

    /// Arm a timer on the current actor that fires after `delay` with `token`.
    pub fn timer(&mut self, delay: Dur, token: u64) {
        self.timer_at(self.now + delay, token);
    }

    /// Arm a timer on the current actor at absolute time `at` with `token`.
    pub fn timer_at(&mut self, at: Time, token: u64) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.pending.push(Pending::Timer {
            at,
            actor: self.self_id,
            token,
        });
    }

    /// Deterministic random generator shared by the whole simulation.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Ask the engine to stop after the current event is fully processed.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// The discrete-event engine: owns all actors, the event queue, virtual time,
/// and the seeded random generator.
pub struct Engine {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    actors: Vec<Option<Box<dyn Actor>>>,
    pending: Vec<Pending>,
    rng: SmallRng,
    stop: bool,
    events_processed: u64,
    /// Safety valve against runaway protocol loops in tests.
    event_limit: u64,
    trace: Option<Trace>,
}

impl Engine {
    /// Create an engine with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: Time::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            actors: Vec::new(),
            pending: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            stop: false,
            events_processed: 0,
            event_limit: u64::MAX,
            trace: None,
        }
    }

    /// Cap the number of events processed (a safety valve for tests; the
    /// engine stops once the cap is reached).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Record every dispatched event into a bounded [`Trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Mutable trace access (to name actors).
    pub fn trace_mut(&mut self) -> Option<&mut Trace> {
        self.trace.as_mut()
    }

    /// Register an actor and return its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        self.actors.push(Some(actor));
        self.actors.len() - 1
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Mutable access to a concrete actor, for setup and result collection.
    ///
    /// # Panics
    /// Panics if `id` is out of range, the actor is currently being
    /// dispatched, or the concrete type does not match.
    pub fn actor_mut<T: Actor>(&mut self, id: ActorId) -> &mut T {
        let slot = self.actors[id]
            .as_mut()
            .expect("actor is currently dispatched");
        let any: &mut dyn Any = &mut **slot;
        any.downcast_mut::<T>().expect("actor type mismatch")
    }

    /// Shared access to a concrete actor.
    ///
    /// # Panics
    /// Same conditions as [`Engine::actor_mut`].
    pub fn actor<T: Actor>(&self, id: ActorId) -> &T {
        let slot = self.actors[id]
            .as_ref()
            .expect("actor is currently dispatched");
        let any: &dyn Any = &**slot;
        any.downcast_ref::<T>().expect("actor type mismatch")
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedule a message delivery from outside any actor (driver code).
    pub fn schedule_message(&mut self, at: Time, from: ActorId, to: ActorId, msg: Box<dyn Any>) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.next_seq();
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            kind: EventKind::Message { from, to, msg },
        }));
    }

    /// Schedule a timer on `actor` from outside any actor (driver code).
    pub fn schedule_timer(&mut self, at: Time, actor: ActorId, token: u64) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.next_seq();
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            kind: EventKind::Timer { actor, token },
        }));
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Process a single event. Returns `false` when the queue is empty or a
    /// stop was requested.
    pub fn step(&mut self) -> bool {
        if self.stop || self.events_processed >= self.event_limit {
            return false;
        }
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_processed += 1;

        let actor_id = match &ev.kind {
            EventKind::Message { to, .. } => *to,
            EventKind::Timer { actor, .. } => *actor,
        };
        if let Some(trace) = self.trace.as_mut() {
            let te = match &ev.kind {
                EventKind::Message { from, to, .. } => TraceEvent::Message {
                    from: *from,
                    to: *to,
                },
                EventKind::Timer { actor, token } => TraceEvent::Timer {
                    actor: *actor,
                    token: *token,
                },
            };
            trace.record(ev.at, te);
        }
        let mut actor = self.actors[actor_id]
            .take()
            .expect("re-entrant dispatch on actor");
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: actor_id,
                pending: &mut self.pending,
                rng: &mut self.rng,
                stop: &mut self.stop,
            };
            match ev.kind {
                EventKind::Message { from, msg, .. } => actor.on_message(&mut ctx, from, msg),
                EventKind::Timer { token, .. } => actor.on_timer(&mut ctx, token),
            }
        }
        self.actors[actor_id] = Some(actor);
        self.flush_pending();
        true
    }

    fn flush_pending(&mut self) {
        // Drain into the queue, assigning sequence numbers in emission order
        // so effects of one handler are processed in the order it issued them.
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            match p {
                Pending::Message { at, from, to, msg } => {
                    self.schedule_message(at, from, to, msg)
                }
                Pending::Timer { at, actor, token } => self.schedule_timer(at, actor, token),
            }
        }
    }

    /// Run until the queue drains or a stop is requested; returns the final
    /// virtual time.
    pub fn run(&mut self) -> Time {
        while self.step() {}
        self.now
    }

    /// Run until virtual time would exceed `deadline` (events at exactly
    /// `deadline` are processed). Returns the final virtual time.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        loop {
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.at <= deadline => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        self.now
    }

    /// True once a stop has been requested via [`Ctx::stop`].
    pub fn stopped(&self) -> bool {
        self.stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every message back to the sender after a fixed delay, counting
    /// deliveries.
    struct Echo {
        delay: Dur,
        count: u32,
        limit: u32,
        fired_timers: Vec<u64>,
    }

    impl Echo {
        fn new(delay: Dur, limit: u32) -> Self {
            Echo {
                delay,
                count: 0,
                limit,
                fired_timers: Vec::new(),
            }
        }
    }

    impl Actor for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, msg: Box<dyn Any>) {
            self.count += 1;
            if self.count < self.limit {
                ctx.send(from, msg, self.delay);
            } else {
                ctx.stop();
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
            self.fired_timers.push(token);
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::from_us(10), 100)));
        let b = e.add_actor(Box::new(Echo::new(Dur::from_us(10), 3)));
        e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
        let end = e.run();
        // b receives at 0, a at 10, b at 20 -> b stops (count==3? b received 2)
        // Sequence: b@0 (b.count=1), a@10 (a.count=1), b@20 (b.count=2),
        // a@30, b@40 (count=3, stop).
        assert_eq!(end, Time::from_us(40));
        assert_eq!(e.actor::<Echo>(b).count, 3);
        assert_eq!(e.actor::<Echo>(a).count, 2);
    }

    #[test]
    fn fifo_tie_break_is_schedule_order() {
        struct Recorder {
            seen: Vec<u32>,
        }
        impl Actor for Recorder {
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ActorId, msg: Box<dyn Any>) {
                self.seen.push(*msg.downcast::<u32>().unwrap());
            }
        }
        let mut e = Engine::new(1);
        let r = e.add_actor(Box::new(Recorder { seen: vec![] }));
        for i in 0..10u32 {
            e.schedule_message(Time::from_us(5), r, r, Box::new(i));
        }
        e.run();
        assert_eq!(e.actor::<Recorder>(r).seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn timers_fire_with_tokens() {
        struct T;
        impl Actor for T {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, _msg: Box<dyn Any>) {
                ctx.timer(Dur::from_us(1), 7);
                ctx.timer(Dur::from_us(2), 9);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                if token == 9 {
                    ctx.stop();
                }
            }
        }
        let mut e = Engine::new(1);
        let t = e.add_actor(Box::new(T));
        e.schedule_message(Time::ZERO, t, t, Box::new(()));
        let end = e.run();
        assert_eq!(end, Time::from_us(2));
        assert!(e.stopped());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::from_us(10), u32::MAX)));
        let b = e.add_actor(Box::new(Echo::new(Dur::from_us(10), u32::MAX)));
        e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
        let t = e.run_until(Time::from_us(35));
        assert!(t <= Time::from_us(35));
        // Remaining events still queued; continuing works.
        let t2 = e.run_until(Time::from_us(55));
        assert!(t2 > t);
    }

    #[test]
    fn event_limit_halts_runaway() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::ZERO, u32::MAX)));
        let b = e.add_actor(Box::new(Echo::new(Dur::ZERO, u32::MAX)));
        e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
        e.set_event_limit(1000);
        e.run();
        assert_eq!(e.events_processed(), 1000);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn trace() -> (Time, u64) {
            let mut e = Engine::new(99);
            let a = e.add_actor(Box::new(Echo::new(Dur::from_ns(37), 500)));
            let b = e.add_actor(Box::new(Echo::new(Dur::from_ns(53), 500)));
            e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
            let end = e.run();
            (end, e.events_processed())
        }
        assert_eq!(trace(), trace());
    }

    #[test]
    fn trace_records_dispatches() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::from_us(10), 3)));
        let b = e.add_actor(Box::new(Echo::new(Dur::from_us(10), 3)));
        e.enable_trace(16);
        e.trace_mut().unwrap().name_actor(a, "ping");
        e.schedule_message(Time::ZERO, a, b, Box::new(0u8));
        e.run();
        let trace = e.trace().unwrap();
        assert_eq!(trace.records().len() as u64, e.events_processed());
        assert!(trace.dump().contains("ping"));
    }

    #[test]
    fn downcast_accessors() {
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Echo::new(Dur::ZERO, 1)));
        e.actor_mut::<Echo>(a).count = 41;
        assert_eq!(e.actor::<Echo>(a).count, 41);
    }

    #[test]
    #[should_panic(expected = "actor type mismatch")]
    fn downcast_wrong_type_panics() {
        struct Other;
        impl Actor for Other {
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ActorId, _: Box<dyn Any>) {}
        }
        let mut e = Engine::new(1);
        let a = e.add_actor(Box::new(Other));
        let _ = e.actor::<Echo>(a);
    }
}
