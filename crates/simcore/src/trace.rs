//! Optional event tracing: a bounded record of every dispatched event, for
//! debugging protocol state machines ("who sent what to whom, when").
//!
//! Tracing is off by default (zero cost beyond a branch); enable it with
//! [`crate::Engine::enable_trace`] and read the records back after the run.

use crate::engine::ActorId;
use crate::time::Time;
use std::collections::HashMap;
use std::fmt::Write as _;

/// What kind of event was dispatched.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message delivery.
    Message {
        /// Sending actor.
        from: ActorId,
        /// Receiving actor.
        to: ActorId,
    },
    /// A timer firing.
    Timer {
        /// Owning actor.
        actor: ActorId,
        /// The timer token.
        token: u64,
    },
}

/// One dispatched event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of dispatch.
    pub at: Time,
    /// The event.
    pub event: TraceEvent,
}

/// A bounded in-memory event log.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    names: HashMap<ActorId, String>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace retaining at most `capacity` records (oldest kept; once full,
    /// further records are counted but not stored).
    pub fn new(capacity: usize) -> Self {
        Trace {
            records: Vec::new(),
            names: HashMap::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Attach a human-readable name to an actor for rendering.
    pub fn name_actor(&mut self, id: ActorId, name: impl Into<String>) {
        self.names.insert(id, name.into());
    }

    pub(crate) fn record(&mut self, at: Time, event: TraceEvent) {
        if self.records.len() < self.capacity {
            self.records.push(TraceRecord { at, event });
        } else {
            self.dropped += 1;
        }
    }

    /// The retained records, in dispatch order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Events that exceeded the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records involving `actor` (as sender, receiver, or timer owner).
    pub fn involving(&self, actor: ActorId) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| match r.event {
                TraceEvent::Message { from, to } => from == actor || to == actor,
                TraceEvent::Timer { actor: a, .. } => a == actor,
            })
            .collect()
    }

    fn name(&self, id: ActorId) -> String {
        self.names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("actor{id}"))
    }

    /// Render the trace as one line per event.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            match r.event {
                TraceEvent::Message { from, to } => {
                    let _ = writeln!(out, "{} {} -> {}", r.at, self.name(from), self.name(to));
                }
                TraceEvent::Timer { actor, token } => {
                    let _ = writeln!(out, "{} {} timer#{token}", r.at, self.name(actor));
                }
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "... {} further events dropped (capacity)",
                self.dropped
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn records_and_caps() {
        let mut t = Trace::new(2);
        t.record(Time::ZERO, TraceEvent::Timer { actor: 0, token: 1 });
        t.record(Time::from_us(1), TraceEvent::Message { from: 0, to: 1 });
        t.record(Time::from_us(2), TraceEvent::Message { from: 1, to: 0 });
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.involving(1).len(), 1);
    }

    #[test]
    fn dump_uses_names() {
        let mut t = Trace::new(8);
        t.name_actor(0, "hca-a");
        t.record(
            Time::ZERO + Dur::from_us(3),
            TraceEvent::Message { from: 0, to: 1 },
        );
        let d = t.dump();
        assert!(d.contains("hca-a -> actor1"), "{d}");
    }
}
