//! # simcore — deterministic discrete-event simulation engine
//!
//! This crate is the substrate for the InfiniBand-WAN reproduction: a small,
//! deterministic discrete-event engine with virtual time in nanoseconds, an
//! actor model for network entities (HCAs, switches, WAN routers, protocol
//! endpoints), per-actor timers, and statistics helpers. Runs are serial by
//! default; topologies whose actor graph splits cleanly at high-latency
//! boundaries can execute partitioned across threads via [`domain`], one
//! conservative lookahead window at a time, with bit-identical results.
//!
//! Determinism is a hard requirement: two runs with the same configuration and
//! seed must produce bit-identical virtual-time results, so that experiment
//! tables in `EXPERIMENTS.md` are reproducible. The event queue breaks ties in
//! `(time, sequence-number)` order and all randomness flows from one seeded
//! generator owned by the engine.
//!
//! ```
//! use simcore::{Engine, Actor, Ctx, Time, Dur};
//! use std::any::Any;
//!
//! struct Ping { peer: Option<simcore::ActorId>, hops: u32 }
//!
//! impl Actor for Ping {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, from: simcore::ActorId, _msg: Box<dyn Any>) {
//!         self.hops += 1;
//!         if self.hops < 3 {
//!             ctx.send(from, Box::new(()), Dur::from_us(5));
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(42);
//! let a = engine.add_actor(Box::new(Ping { peer: None, hops: 0 }));
//! let b = engine.add_actor(Box::new(Ping { peer: None, hops: 0 }));
//! engine.schedule_message(Time::ZERO, a, b, Box::new(()));
//! let end = engine.run();
//! assert_eq!(end, Time::from_us(20));
//! ```

pub mod domain;
pub mod engine;
pub mod rate;
pub mod spsc;
pub mod stats;
pub mod time;
pub mod trace;

pub use domain::{run_partitioned, DomainReport, DomainSpec};
pub use engine::{Actor, ActorId, Ctx, Engine, EngineCounters, Msg, TimerId};
pub use ibwire::Packet;
pub use rate::{Rate, SerialResource};
pub use stats::{Histogram, OnlineStats, Throughput, TimeSeries};
pub use time::{Dur, Time};
pub use trace::{Trace, TraceEvent, TraceRecord};
