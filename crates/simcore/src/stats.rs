//! Statistics helpers: throughput meters, latency histograms, and online
//! moment accumulation, used by every benchmark harness.

use crate::time::{Dur, Time};

/// Counts bytes and messages over a measured interval and reports throughput
/// in the units the paper uses (MillionBytes/sec, i.e. 10^6 bytes).
#[derive(Clone, Debug, Default)]
pub struct Throughput {
    bytes: u64,
    messages: u64,
    started: Option<Time>,
    ended: Option<Time>,
}

impl Throughput {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the start of the measured interval (first call wins).
    pub fn start(&mut self, now: Time) {
        if self.started.is_none() {
            self.started = Some(now);
        }
    }

    /// Record a completed transfer of `bytes` at time `now`.
    pub fn record(&mut self, now: Time, bytes: u64) {
        self.bytes += bytes;
        self.messages += 1;
        self.ended = Some(now);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Elapsed measured interval.
    pub fn elapsed(&self) -> Option<Dur> {
        Some(self.ended?.since(self.started?))
    }

    /// Throughput in MillionBytes/sec (the paper's bandwidth unit).
    pub fn mbytes_per_sec(&self) -> f64 {
        match self.elapsed() {
            Some(d) if !d.is_zero() => self.bytes as f64 / d.as_secs_f64() / 1e6,
            _ => 0.0,
        }
    }

    /// Message rate in million messages/sec (the paper's Fig. 10 unit).
    pub fn mmsgs_per_sec(&self) -> f64 {
        match self.elapsed() {
            Some(d) if !d.is_zero() => self.messages as f64 / d.as_secs_f64() / 1e6,
            _ => 0.0,
        }
    }
}

/// Log2-bucketed histogram of durations (latencies).
#[derive(Clone, Debug)]
pub struct Histogram {
    /// buckets[i] counts samples with ns in [2^i, 2^(i+1)).
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, d: Dur) {
        let ns = d.as_ns();
        let idx = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            Dur::from_ns((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Smallest sample (zero if empty).
    pub fn min(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            Dur::from_ns(self.min_ns)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Dur {
        Dur::from_ns(self.max_ns)
    }

    /// Approximate quantile (bucket upper bound), `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> Dur {
        if self.count == 0 {
            return Dur::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Dur::from_ns(1u64 << (i + 1).min(63));
            }
        }
        Dur::from_ns(self.max_ns)
    }
}

/// Byte counts bucketed by virtual time: bandwidth-over-time sampling
/// (e.g. watching a TCP slow-start ramp).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket: Dur,
    buckets: Vec<u64>,
}

impl TimeSeries {
    /// A series with the given bucket width.
    pub fn new(bucket: Dur) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        TimeSeries {
            bucket,
            buckets: Vec::new(),
        }
    }

    /// Record `bytes` arriving at `now`.
    pub fn record(&mut self, now: Time, bytes: u64) {
        let idx = (now.as_ns() / self.bucket.as_ns()) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += bytes;
    }

    /// Bucket width.
    pub fn bucket(&self) -> Dur {
        self.bucket
    }

    /// `(bucket start time, MB/s within the bucket)` for every bucket.
    pub fn points(&self) -> Vec<(Time, f64)> {
        let secs = self.bucket.as_secs_f64();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                (
                    Time::from_ns(i as u64 * self.bucket.as_ns()),
                    b as f64 / secs / 1e6,
                )
            })
            .collect()
    }

    /// Total bytes recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Welford online mean/variance accumulator for scalar samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Running mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }
    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Median of a sample slice (sorts in place; mean of the middle pair for
/// even counts). Used by the perf harness to compare baseline timings by
/// median-of-N instead of single noise-prone samples. Returns 0 for an
/// empty slice.
pub fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
        // Robust to one wild outlier — the point of the perf gate change.
        assert_eq!(median(&mut [0.1, 0.11, 50.0]), 0.11);
    }

    #[test]
    fn throughput_paper_units() {
        let mut t = Throughput::new();
        t.start(Time::ZERO);
        // 1,000,000 bytes over 1 ms => 1000 MB/s in the paper's units.
        t.record(Time::from_ms(1), 1_000_000);
        assert!((t.mbytes_per_sec() - 1000.0).abs() < 1e-9);
        assert_eq!(t.messages(), 1);
        assert!((t.mmsgs_per_sec() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn throughput_empty_is_zero() {
        let t = Throughput::new();
        assert_eq!(t.mbytes_per_sec(), 0.0);
        assert_eq!(t.elapsed(), None);
    }

    #[test]
    fn throughput_start_first_call_wins() {
        let mut t = Throughput::new();
        t.start(Time::from_us(10));
        t.start(Time::from_us(99));
        t.record(Time::from_us(20), 100);
        assert_eq!(t.elapsed(), Some(Dur::from_us(10)));
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        for us in [1u64, 2, 4, 8, 100] {
            h.record(Dur::from_us(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Dur::from_us(23));
        assert_eq!(h.min(), Dur::from_us(1));
        assert_eq!(h.max(), Dur::from_us(100));
        assert!(h.quantile(0.5) >= Dur::from_us(2));
        assert!(h.quantile(1.0) >= Dur::from_us(100));
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = Histogram::new();
        h.record(Dur::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Dur::ZERO);
    }

    #[test]
    fn time_series_buckets_bandwidth() {
        let mut ts = TimeSeries::new(Dur::from_ms(1));
        ts.record(Time::from_us(100), 1000);
        ts.record(Time::from_us(900), 2000);
        ts.record(Time::from_us(1500), 500);
        let pts = ts.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0, Time::ZERO);
        assert!((pts[0].1 - 3.0).abs() < 1e-9); // 3000 B/ms = 3 MB/s
        assert!((pts[1].1 - 0.5).abs() < 1e-9);
        assert_eq!(ts.total(), 3500);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn time_series_rejects_zero_bucket() {
        TimeSeries::new(Dur::ZERO);
    }

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }
}
