//! # ipoib — IP-over-InfiniBand network device and TCP carrier
//!
//! Models the IPoIB driver the paper evaluates in Section 3.3: IP packets are
//! encapsulated in IB messages on either the **UD** transport (datagram mode,
//! 2 KB MTU — more packets, more per-packet host work, but no transport-level
//! windowing) or the **RC** transport (connected mode, MTU up to 64 KB —
//! fewer, larger packets and lower per-byte overhead, but subject to the RC
//! ACK window across the WAN).
//!
//! The TCP stack (`tcpstack`) rides on top; host protocol-processing cost is
//! charged per packet and per byte on dedicated send/receive CPU resources,
//! which is what caps IPoIB throughput well below the verbs-level peaks, as
//! the paper observes.
//!
//! [`IpoibNode`] is a complete iperf-style streaming endpoint ULP used by the
//! Figure 6/7 experiments (single stream with varying windows/MTUs, and
//! parallel streams).

pub mod node;
pub mod port;
pub mod wire;

pub use node::{IpoibConfig, IpoibMode, IpoibNode};
pub use port::{IpoibPort, StreamDelivery, TOKEN_IPOIB_RX};
pub use wire::SegmentHeader;
