//! An embeddable IPoIB port: the netdev + TCP plumbing shared by the
//! iperf-style endpoint ([`crate::IpoibNode`]) and the NFS-over-IPoIB
//! client/server (`nfssim`).
//!
//! A port owns one QP to one peer node and `n` TCP connections across it.
//! The owning ULP forwards HCA completions and timer events; the port hands
//! back in-order byte deliveries per stream, which the owner parses with its
//! own framing (iperf: raw bytes; NFS: RPC records).

use crate::node::{IpoibConfig, IpoibMode};
use crate::wire::SegmentHeader;
use ibfabric::hca::HcaCore;
use ibfabric::qp::Qpn;
use ibfabric::types::Lid;
use ibfabric::verbs::{Completion, RecvWr, SendWr};
use simcore::{Ctx, Dur, Rate, SerialResource};
use std::collections::VecDeque;
use tcpstack::{TcpConfig, TcpConn, TcpSegment};

/// Timer token the owning ULP must route to [`IpoibPort::on_timer`]:
/// deferred receive processing.
pub const TOKEN_IPOIB_RX: u64 = 5;
/// Timer token the owning ULP must route to [`IpoibPort::on_timer`]: the
/// delayed-ACK timer (fires when data arrived but the every-2-segments ACK
/// threshold was never reached — e.g. at the end of a transfer).
pub const TOKEN_IPOIB_DACK: u64 = 7;

/// Delayed-ACK timeout (Linux's ~40 ms).
const DELAYED_ACK: Dur = Dur::from_ms(40);

/// Bytes delivered in order on one TCP stream.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StreamDelivery {
    /// Stream index.
    pub stream: u32,
    /// Newly delivered bytes.
    pub newly: u64,
}

/// One IPoIB netdev + TCP stack instance towards a single peer node.
pub struct IpoibPort {
    /// Device parameters.
    pub cfg: IpoibConfig,
    /// QP carrying this port's IP traffic (set after QP creation).
    pub qpn: Qpn,
    /// Peer address (required for UD mode).
    pub peer: Option<(Lid, Qpn)>,
    streams: Vec<TcpConn>,
    tx_cpu: SerialResource,
    rx_cpu: SerialResource,
    deferred: VecDeque<SegmentHeader>,
    packets_rx: u64,
    dack_armed: bool,
}

impl IpoibPort {
    /// A port with `n_streams` TCP connections configured by `tcp`.
    pub fn new(cfg: IpoibConfig, tcp: TcpConfig, n_streams: usize) -> Self {
        assert!(
            tcp.mss + tcpstack::TCP_IP_HEADER <= cfg.mtu,
            "TCP MSS must fit the IPoIB MTU"
        );
        IpoibPort {
            cfg,
            qpn: Qpn(0),
            peer: None,
            streams: (0..n_streams).map(|_| TcpConn::new(tcp)).collect(),
            tx_cpu: SerialResource::new(Rate::INFINITE),
            rx_cpu: SerialResource::new(Rate::INFINITE),
            deferred: VecDeque::new(),
            packets_rx: 0,
            dack_armed: false,
        }
    }

    /// Number of TCP streams.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    /// Borrow a stream's TCP connection (delivered/acked counters).
    pub fn stream(&self, idx: usize) -> &TcpConn {
        &self.streams[idx]
    }

    /// IP packets received on this port.
    pub fn packets_received(&self) -> u64 {
        self.packets_rx
    }

    /// Pre-post the receive pool. Call once from the owner's `start`.
    pub fn setup(&mut self, hca: &mut HcaCore) {
        for _ in 0..2048 {
            hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
        }
    }

    /// Application enqueues `bytes` on `stream` and the port transmits as
    /// the window allows.
    pub fn app_send(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, stream: usize, bytes: u64) {
        self.streams[stream].app_send(bytes);
        self.drain_tx(hca, ctx);
    }

    fn send_segment(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, stream: u32, seg: TcpSegment) {
        let wire_len = seg.wire_bytes() as u32;
        debug_assert!(wire_len <= self.cfg.mtu, "segment exceeds IP MTU");
        let work = self.cfg.per_packet_cpu + self.cfg.per_byte_cpu.tx_time(wire_len as u64);
        let (_, ready) = self.tx_cpu.reserve_dur(ctx.now(), work);
        let header = SegmentHeader {
            stream,
            segment: seg,
        }
        .encode();
        let mut wr = SendWr::send(0, wire_len, 0).with_meta(header);
        if self.cfg.mode == IpoibMode::Ud {
            wr = wr.to(self.peer.expect("UD IPoIB needs a peer address"));
        }
        hca.post_send_after(ctx, self.qpn, wr, ready);
    }

    /// Transmit every eligible segment (round-robin across streams).
    pub fn drain_tx(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        loop {
            let mut any = false;
            for i in 0..self.streams.len() {
                if let Some(seg) = self.streams[i].poll_tx() {
                    self.send_segment(hca, ctx, i as u32, seg);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
    }

    /// Flush a pending delayed ACK on `stream` (owner knows a message
    /// boundary was reached).
    pub fn force_ack(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, stream: usize) {
        self.streams[stream].force_ack();
        self.drain_tx(hca, ctx);
    }

    /// Offer an HCA completion to the port. Returns `true` if it belonged to
    /// this port's QP and was consumed.
    pub fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: &Completion) -> bool {
        match c {
            Completion::RecvDone { qpn, data, len, .. } if *qpn == self.qpn => {
                self.packets_rx += 1;
                hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
                let header =
                    SegmentHeader::decode(data.as_ref().expect("IPoIB message without header"));
                let work = self.cfg.per_packet_cpu + self.cfg.per_byte_cpu.tx_time(*len as u64);
                let (_, finish) = self.rx_cpu.reserve_dur(ctx.now(), work);
                self.deferred.push_back(header);
                ctx.timer_at(finish, TOKEN_IPOIB_RX);
                true
            }
            Completion::SendDone { qpn, .. } if *qpn == self.qpn => true,
            _ => false,
        }
    }

    /// Route [`TOKEN_IPOIB_RX`] and [`TOKEN_IPOIB_DACK`] timers here;
    /// returns any in-order delivery.
    pub fn on_timer(
        &mut self,
        hca: &mut HcaCore,
        ctx: &mut Ctx<'_>,
        token: u64,
    ) -> Option<StreamDelivery> {
        if token == TOKEN_IPOIB_DACK {
            self.dack_armed = false;
            for conn in &mut self.streams {
                conn.force_ack();
            }
            self.drain_tx(hca, ctx);
            return None;
        }
        debug_assert_eq!(token, TOKEN_IPOIB_RX);
        let h = self.deferred.pop_front()?;
        let conn = &mut self.streams[h.stream as usize];
        let newly = conn.on_segment(h.segment);
        self.drain_tx(hca, ctx);
        // Guarantee ACK progress even if the every-2-segments threshold is
        // never reached again (delayed-ACK timer).
        if self.streams[h.stream as usize].ack_outstanding() && !self.dack_armed {
            self.dack_armed = true;
            ctx.timer(DELAYED_ACK, TOKEN_IPOIB_DACK);
        }
        if newly > 0 {
            Some(StreamDelivery {
                stream: h.stream,
                newly,
            })
        } else {
            None
        }
    }
}
