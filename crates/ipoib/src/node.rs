//! The IPoIB streaming endpoint: an iperf-style byte-pump application on an
//! [`IpoibPort`]. This is the workload behind Figures 6 and 7 of the paper.

use crate::port::IpoibPort;
use ibfabric::hca::HcaCore;
use ibfabric::qp::QpConfig;
use ibfabric::ulp::Ulp;
use ibfabric::verbs::Completion;
use simcore::{Ctx, Dur, Rate, Time, TimeSeries};
use tcpstack::TcpConfig;

/// Which IB transport carries the IP packets.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IpoibMode {
    /// Datagram mode over UD: 2 KB MTU, no transport window.
    Ud,
    /// Connected mode over RC: large MTU (up to 64 KB), RC-windowed.
    Rc,
}

/// IPoIB device parameters.
#[derive(Copy, Clone, Debug)]
pub struct IpoibConfig {
    /// Transport mode.
    pub mode: IpoibMode,
    /// IP MTU (one IP packet per IB message). UD caps at the IB MTU (2 KB);
    /// RC allows up to 64 KB (the maximum IP packet size).
    pub mtu: u32,
    /// Fixed host cost per IP packet (interrupt + stack traversal).
    pub per_packet_cpu: Dur,
    /// Per-byte host cost (checksums + copies), as a processing rate.
    pub per_byte_cpu: Rate,
}

impl IpoibConfig {
    /// Datagram-mode defaults (2 KB MTU), calibrated so a single warm stream
    /// peaks near 480 MB/s — well below the 967 MB/s verbs UD peak, matching
    /// the TCP-stack-overhead gap the paper reports.
    pub fn ud() -> Self {
        IpoibConfig {
            mode: IpoibMode::Ud,
            mtu: 2048,
            per_packet_cpu: Dur::from_ns(2200),
            per_byte_cpu: Rate::from_ps_per_byte(1000),
        }
    }

    /// Connected-mode defaults with the given IP MTU (2 KB / 16 KB / 64 KB in
    /// Figure 7(a)).
    pub fn rc(mtu: u32) -> Self {
        assert!(mtu <= 65536, "max IP packet is 64 KB");
        IpoibConfig {
            mode: IpoibMode::Rc,
            mtu,
            per_packet_cpu: Dur::from_ns(2200),
            per_byte_cpu: Rate::from_ps_per_byte(1000),
        }
    }

    /// The QP configuration this device needs.
    pub fn qp_config(&self) -> QpConfig {
        match self.mode {
            IpoibMode::Ud => {
                assert!(self.mtu <= 2048, "UD mode is capped at the 2 KB IB MTU");
                QpConfig::ud()
            }
            IpoibMode::Rc => QpConfig::rc(),
        }
    }
}

/// An IPoIB node ULP: `n` TCP streams to a peer node with an iperf-style
/// byte-pump application.
///
/// Create with [`IpoibNode::sender`] / [`IpoibNode::receiver`], then set
/// `port.qpn` and (for UD mode) `port.peer` after creating the QPs.
pub struct IpoibNode {
    /// The netdev + TCP stack (configure `qpn`/`peer` after QP creation).
    pub port: IpoibPort,
    bytes_per_stream: u64,
    expected_per_stream: u64,
    first_byte_at: Option<Time>,
    last_byte_at: Option<Time>,
    delivered_total: u64,
    sampler: Option<TimeSeries>,
}

impl IpoibNode {
    /// A node that streams `bytes_per_stream` on each of `n_streams` TCP
    /// connections to its peer.
    pub fn sender(
        cfg: IpoibConfig,
        tcp: TcpConfig,
        n_streams: usize,
        bytes_per_stream: u64,
    ) -> Self {
        IpoibNode {
            port: IpoibPort::new(cfg, tcp, n_streams),
            bytes_per_stream,
            expected_per_stream: 0,
            first_byte_at: None,
            last_byte_at: None,
            delivered_total: 0,
            sampler: None,
        }
    }

    /// A node that sinks `n_streams` connections, expecting
    /// `bytes_per_stream` on each (used to flush the final ACK).
    pub fn receiver(
        cfg: IpoibConfig,
        tcp: TcpConfig,
        n_streams: usize,
        bytes_per_stream: u64,
    ) -> Self {
        IpoibNode {
            port: IpoibPort::new(cfg, tcp, n_streams),
            bytes_per_stream: 0,
            expected_per_stream: bytes_per_stream,
            first_byte_at: None,
            last_byte_at: None,
            delivered_total: 0,
            sampler: None,
        }
    }

    /// Total application bytes delivered in order to this node.
    pub fn delivered(&self) -> u64 {
        self.delivered_total
    }

    /// Receive-side goodput in MillionBytes/s between the first and last
    /// delivered byte.
    pub fn throughput_mbs(&self) -> f64 {
        let (Some(t0), Some(t1)) = (self.first_byte_at, self.last_byte_at) else {
            return 0.0;
        };
        let d = t1.since(t0);
        if d.is_zero() {
            return 0.0;
        }
        self.delivered_total as f64 / d.as_secs_f64() / 1e6
    }

    /// IP packets this node received.
    pub fn packets_received(&self) -> u64 {
        self.port.packets_received()
    }

    /// Sample delivered bandwidth over time into buckets of `bucket` width
    /// (enable before running; read back with [`IpoibNode::samples`]).
    pub fn enable_sampling(&mut self, bucket: Dur) {
        self.sampler = Some(TimeSeries::new(bucket));
    }

    /// The bandwidth-over-time samples, if sampling was enabled.
    pub fn samples(&self) -> Option<&TimeSeries> {
        self.sampler.as_ref()
    }
}

impl Ulp for IpoibNode {
    fn start(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        self.port.setup(hca);
        if self.bytes_per_stream > 0 {
            for i in 0..self.port.n_streams() {
                self.port.app_send(hca, ctx, i, self.bytes_per_stream);
            }
        }
    }

    fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
        let handled = self.port.on_completion(hca, ctx, &c);
        debug_assert!(handled, "IPoIB node received a foreign completion");
    }

    fn on_timer(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, token: u64) {
        if let Some(d) = self.port.on_timer(hca, ctx, token) {
            self.delivered_total += d.newly;
            if let Some(ts) = self.sampler.as_mut() {
                ts.record(ctx.now(), d.newly);
            }
            if self.first_byte_at.is_none() {
                self.first_byte_at = Some(ctx.now());
            }
            self.last_byte_at = Some(ctx.now());
            if self.expected_per_stream > 0
                && self.port.stream(d.stream as usize).delivered() >= self.expected_per_stream
            {
                self.port.force_ack(hca, ctx, d.stream as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfabric::fabric::{Fabric, FabricBuilder, NodeHandle};
    use ibfabric::hca::HcaConfig;
    use ibfabric::link::LinkConfig;

    /// Two IPoIB nodes joined by a single cable with the given parameters.
    fn pair(
        cfg: IpoibConfig,
        tcp: TcpConfig,
        n_streams: usize,
        bytes: u64,
        link: LinkConfig,
    ) -> (Fabric, NodeHandle, NodeHandle) {
        let mut b = FabricBuilder::new(5);
        let tx = b.add_hca(
            HcaConfig::default(),
            Box::new(IpoibNode::sender(cfg, tcp, n_streams, bytes)),
        );
        let rx = b.add_hca(
            HcaConfig::default(),
            Box::new(IpoibNode::receiver(cfg, tcp, n_streams, bytes)),
        );
        b.link(tx.actor, rx.actor, link);
        let mut f = b.finish();
        let qa = f.hca_mut(tx).core_mut().create_qp(cfg.qp_config());
        let qb = f.hca_mut(rx).core_mut().create_qp(cfg.qp_config());
        if cfg.mode == IpoibMode::Rc {
            f.hca_mut(tx).core_mut().connect(qa, (rx.lid, qb));
            f.hca_mut(rx).core_mut().connect(qb, (tx.lid, qa));
        }
        {
            let u = f.hca_mut(tx).ulp_mut::<IpoibNode>();
            u.port.qpn = qa;
            u.port.peer = Some((rx.lid, qb));
        }
        {
            let u = f.hca_mut(rx).ulp_mut::<IpoibNode>();
            u.port.qpn = qb;
            u.port.peer = Some((tx.lid, qa));
        }
        (f, tx, rx)
    }

    fn fast_tcp(mtu: u32, window: u64) -> TcpConfig {
        // Warm connection: disable the slow-start ramp for steady-state
        // bandwidth measurements.
        let mut t = TcpConfig::for_mtu(mtu).with_window(window);
        t.init_cwnd_segments = 1 << 20;
        t
    }

    #[test]
    fn delivers_all_bytes_ud() {
        let cfg = IpoibConfig::ud();
        let (mut f, _tx, rx) = pair(
            cfg,
            TcpConfig::for_mtu(cfg.mtu),
            1,
            1_000_000,
            LinkConfig::sdr_lan(),
        );
        f.run();
        assert_eq!(f.hca(rx).ulp::<IpoibNode>().delivered(), 1_000_000);
    }

    #[test]
    fn delivers_all_bytes_rc_multi_stream() {
        let cfg = IpoibConfig::rc(65536);
        let (mut f, _tx, rx) = pair(
            cfg,
            TcpConfig::for_mtu(cfg.mtu),
            4,
            500_000,
            LinkConfig::sdr_lan(),
        );
        f.run();
        assert_eq!(f.hca(rx).ulp::<IpoibNode>().delivered(), 2_000_000);
    }

    #[test]
    fn ud_peak_is_below_verbs_peak() {
        let cfg = IpoibConfig::ud();
        let (mut f, _tx, rx) = pair(
            cfg,
            fast_tcp(cfg.mtu, 1 << 20),
            1,
            16_000_000,
            LinkConfig::sdr_lan(),
        );
        f.run();
        let bw = f.hca(rx).ulp::<IpoibNode>().throughput_mbs();
        // TCP-stack processing keeps IPoIB-UD well below the 967 MB/s
        // verbs-level UD peak (paper Section 3.3).
        assert!(bw > 350.0 && bw < 600.0, "IPoIB-UD peak {bw}");
    }

    #[test]
    fn rc_large_mtu_beats_ud_mtu() {
        let rc = IpoibConfig::rc(65536);
        let (mut f, _tx, rx) = pair(
            rc,
            fast_tcp(rc.mtu, 1 << 20),
            1,
            32_000_000,
            LinkConfig::sdr_lan(),
        );
        f.run();
        let bw_rc = f.hca(rx).ulp::<IpoibNode>().throughput_mbs();

        let ud = IpoibConfig::ud();
        let (mut f2, _tx2, rx2) = pair(
            ud,
            fast_tcp(ud.mtu, 1 << 20),
            1,
            16_000_000,
            LinkConfig::sdr_lan(),
        );
        f2.run();
        let bw_ud = f2.hca(rx2).ulp::<IpoibNode>().throughput_mbs();
        assert!(
            bw_rc > 1.5 * bw_ud,
            "64K-MTU RC ({bw_rc}) should far exceed 2K-MTU UD ({bw_ud})"
        );
        assert!(bw_rc > 800.0, "IPoIB-RC 64K peak {bw_rc}");
    }

    #[test]
    fn window_limits_throughput_on_long_latency_link() {
        // 1 ms one-way latency: BDP at SDR is ~2 MB. A 64 KB window must
        // throttle hard; the default 1 MB window does far better.
        let cfg = IpoibConfig::ud();
        let long_link = LinkConfig {
            rate: simcore::Rate::from_gbps(8),
            latency: Dur::from_ms(1),
            credit_packets: None,
        };
        let (mut f, _t, rx) = pair(cfg, fast_tcp(cfg.mtu, 64 << 10), 1, 4_000_000, long_link);
        f.run();
        let bw_small = f.hca(rx).ulp::<IpoibNode>().throughput_mbs();
        let (mut f2, _t2, rx2) = pair(cfg, fast_tcp(cfg.mtu, 1 << 20), 1, 16_000_000, long_link);
        f2.run();
        let bw_large = f2.hca(rx2).ulp::<IpoibNode>().throughput_mbs();
        // 64 KB / 2 ms RTT ~ 32 MB/s.
        assert!(bw_small < 50.0, "64K window at 1ms: {bw_small}");
        assert!(
            bw_large > 3.0 * bw_small,
            "1M window {bw_large} vs {bw_small}"
        );
    }

    #[test]
    fn parallel_streams_recover_bandwidth_at_high_delay() {
        let cfg = IpoibConfig::ud();
        let long_link = LinkConfig {
            rate: simcore::Rate::from_gbps(8),
            latency: Dur::from_ms(1),
            credit_packets: None,
        };
        let tcp = fast_tcp(cfg.mtu, 256 << 10);
        let (mut f, _t, rx) = pair(cfg, tcp, 1, 8_000_000, long_link);
        f.run();
        let one = f.hca(rx).ulp::<IpoibNode>().throughput_mbs();
        let (mut f8, _t8, rx8) = pair(cfg, tcp, 8, 8_000_000, long_link);
        f8.run();
        let eight = f8.hca(rx8).ulp::<IpoibNode>().throughput_mbs();
        // One 256 KB window over a 2 ms RTT sustains ~130 MB/s; eight
        // windows recover to the host-CPU peak (~470 MB/s).
        assert!(
            eight > 3.0 * one && eight > 400.0,
            "8 streams ({eight}) should recover over 1 stream ({one})"
        );
    }

    #[test]
    fn slow_start_ramps_from_initial_window() {
        // With default TCP config the first flight is 10 segments.
        let cfg = IpoibConfig::ud();
        let (mut f, tx, rx) = pair(
            cfg,
            TcpConfig::for_mtu(cfg.mtu),
            1,
            2_000_000,
            LinkConfig::sdr_lan(),
        );
        f.run();
        assert_eq!(f.hca(rx).ulp::<IpoibNode>().delivered(), 2_000_000);
        // Sender saw TCP acks back (pure acks counted as packets).
        assert!(f.hca(tx).ulp::<IpoibNode>().packets_received() > 100);
    }
}
