//! On-the-wire header for TCP segments carried in IB messages.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tcpstack::TcpSegment;

/// Metadata riding with each encapsulated IP packet: which TCP stream it
/// belongs to plus the segment's sequence/ACK fields. (This is control
/// information the simulation needs; the wire cost of real TCP/IP headers is
/// already accounted for in the segment's wire length.)
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Index of the TCP stream on this node pair.
    pub stream: u32,
    /// The TCP segment fields.
    pub segment: TcpSegment,
}

impl SegmentHeader {
    /// Encoded size in bytes.
    pub const LEN: usize = 24;

    /// Serialize into a `Bytes` suitable for [`ibfabric::SendWr::with_meta`].
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::LEN);
        b.put_u32(self.stream);
        b.put_u64(self.segment.seq);
        b.put_u64(self.segment.ack);
        b.put_u32(self.segment.len);
        b.freeze()
    }

    /// Deserialize; panics on malformed input (simulation invariant).
    pub fn decode(mut buf: &[u8]) -> Self {
        assert_eq!(buf.len(), Self::LEN, "bad segment header length");
        let stream = buf.get_u32();
        let seq = buf.get_u64();
        let ack = buf.get_u64();
        let len = buf.get_u32();
        SegmentHeader {
            stream,
            segment: TcpSegment { seq, len, ack },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = SegmentHeader {
            stream: 7,
            segment: TcpSegment {
                seq: 123_456_789_012,
                len: 1996,
                ack: 987_654_321,
            },
        };
        let enc = h.encode();
        assert_eq!(enc.len(), SegmentHeader::LEN);
        assert_eq!(SegmentHeader::decode(&enc), h);
    }

    #[test]
    #[should_panic(expected = "bad segment header")]
    fn rejects_short_input() {
        SegmentHeader::decode(&[0u8; 10]);
    }
}
