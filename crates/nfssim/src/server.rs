//! The NFS server ULP: single server, multiple in-flight RPCs, either
//! transport.

use crate::rpc::{RpcMsg, NFS_RDMA_CHUNK, RPC_REPLY_BYTES};
use ibfabric::hca::HcaCore;
use ibfabric::qp::Qpn;
use ibfabric::ulp::Ulp;
use ibfabric::verbs::{Completion, RecvWr, SendWr};
use ipoib::port::{IpoibPort, TOKEN_IPOIB_DACK, TOKEN_IPOIB_RX};
use simcore::{Ctx, Dur, Rate, SerialResource, Time};
use std::collections::{HashMap, VecDeque};

/// Timer token for deferred (CPU-cost) RPC service completion.
pub const TOKEN_NFS_SERVICE: u64 = 6;

/// Server cost model.
#[derive(Copy, Clone, Debug)]
pub struct NfsServerConfig {
    /// Fixed CPU cost per RPC (lookup, attributes, scheduling).
    pub op_cpu: Dur,
    /// Per-byte server-side copy cost on the TCP path (NFS/RDMA avoids this
    /// — the paper's "absence of additional copy overheads").
    pub tcp_copy_rate: Rate,
    /// Record size the clients read (IOzone record, 256 KB in the paper).
    pub record_size: u32,
    /// True when clients issue WRITEs: the TCP path then expects
    /// `call + record` bytes per RPC and replies with a bare header.
    pub write_mode: bool,
}

impl Default for NfsServerConfig {
    fn default() -> Self {
        NfsServerConfig {
            op_cpu: Dur::from_us(30),
            tcp_copy_rate: Rate::from_ps_per_byte(2000), // ~500 MB/s copy path
            record_size: 262_144,
            write_mode: false,
        }
    }
}

enum Transport {
    Rdma,
    Tcp(IpoibPort),
}

/// The NFS server ULP.
pub struct NfsServer {
    cfg: NfsServerConfig,
    transport: Transport,
    /// RDMA transport QP (set after QP creation).
    pub qpn: Qpn,
    cpu: SerialResource,
    /// TCP path: bytes of call stream accumulated per TCP stream.
    call_acc: Vec<u64>,
    /// TCP path: replies whose service time has elapsed, FIFO.
    service_done: VecDeque<u32>,
    /// RDMA WRITE path: per-pull-read bookkeeping (wr_id -> xid).
    pull_of_wr: HashMap<u64, u64>,
    /// RDMA WRITE path: chunks still outstanding per transaction.
    pulls_left: HashMap<u64, u32>,
    next_wr: u64,
    rpcs_served: u64,
}

impl NfsServer {
    /// An NFS/RDMA server.
    pub fn rdma(cfg: NfsServerConfig) -> Self {
        NfsServer {
            cfg,
            transport: Transport::Rdma,
            qpn: Qpn(0),
            cpu: SerialResource::new(Rate::INFINITE),
            call_acc: Vec::new(),
            service_done: VecDeque::new(),
            pull_of_wr: HashMap::new(),
            pulls_left: HashMap::new(),
            next_wr: 1,
            rpcs_served: 0,
        }
    }

    /// An NFS/IPoIB server on the given port (one TCP stream per mount).
    pub fn tcp(cfg: NfsServerConfig, port: IpoibPort) -> Self {
        let n = port.n_streams();
        NfsServer {
            cfg,
            transport: Transport::Tcp(port),
            qpn: Qpn(0),
            cpu: SerialResource::new(Rate::INFINITE),
            call_acc: vec![0; n],
            service_done: VecDeque::new(),
            pull_of_wr: HashMap::new(),
            pulls_left: HashMap::new(),
            next_wr: 1,
            rpcs_served: 0,
        }
    }

    /// Mutable access to the TCP port (wiring).
    pub fn port_mut(&mut self) -> &mut IpoibPort {
        match &mut self.transport {
            Transport::Tcp(p) => p,
            Transport::Rdma => panic!("RDMA server has no IPoIB port"),
        }
    }

    /// RPCs served so far.
    pub fn rpcs_served(&self) -> u64 {
        self.rpcs_served
    }

    fn serve_rdma(
        &mut self,
        hca: &mut HcaCore,
        ctx: &mut Ctx<'_>,
        xid: u64,
        len: u32,
        write: bool,
    ) {
        let (_, ready) = self.cpu.reserve_dur(ctx.now(), self.cfg.op_cpu);
        let chunks = len.div_ceil(NFS_RDMA_CHUNK);
        self.rpcs_served += 1;
        if write {
            // WRITE: pull the record from the client chunk list with RDMA
            // reads; the reply goes out once every chunk has landed.
            self.pulls_left.insert(xid, chunks);
            for i in 0..chunks {
                let this = (len - i * NFS_RDMA_CHUNK).min(NFS_RDMA_CHUNK);
                let wr_id = self.next_wr;
                self.next_wr += 1;
                self.pull_of_wr.insert(wr_id, xid);
                hca.post_send_after(ctx, self.qpn, SendWr::rdma_read(wr_id, this), ready);
            }
        } else {
            // READ: zero-copy chunked RDMA writes + ordered reply.
            for i in 0..chunks {
                let this = (len - i * NFS_RDMA_CHUNK).min(NFS_RDMA_CHUNK);
                hca.post_send_after(ctx, self.qpn, SendWr::rdma_write(0, this), ready);
            }
            let reply =
                SendWr::send(0, RPC_REPLY_BYTES, 0).with_meta(RpcMsg::Reply { xid }.encode());
            hca.post_send_after(ctx, self.qpn, reply, ready);
        }
    }

    fn on_pull_done(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, wr_id: u64) {
        let Some(xid) = self.pull_of_wr.remove(&wr_id) else {
            return; // not a write-pull completion
        };
        let left = self.pulls_left.get_mut(&xid).expect("pull for unknown xid");
        *left -= 1;
        if *left == 0 {
            self.pulls_left.remove(&xid);
            let reply =
                SendWr::send(0, RPC_REPLY_BYTES, 0).with_meta(RpcMsg::Reply { xid }.encode());
            hca.post_send_after(ctx, self.qpn, reply, ctx.now());
        }
    }

    fn serve_tcp_calls(&mut self, ctx: &mut Ctx<'_>, stream: u32, newly: u64) {
        // WRITE requests carry the record inline on the stream.
        let request_bytes = crate::rpc::RPC_CALL_BYTES as u64
            + if self.cfg.write_mode {
                self.cfg.record_size as u64
            } else {
                0
            };
        self.call_acc[stream as usize] += newly;
        while self.call_acc[stream as usize] >= request_bytes {
            self.call_acc[stream as usize] -= request_bytes;
            // Service cost includes the server-side data copy through the
            // socket path.
            let work =
                self.cfg.op_cpu + self.cfg.tcp_copy_rate.tx_time(self.cfg.record_size as u64);
            let (_, fin) = self.cpu.reserve_dur(ctx.now(), work);
            self.service_done.push_back(stream);
            ctx.timer_at(fin, TOKEN_NFS_SERVICE);
            self.rpcs_served += 1;
        }
    }

    fn finish_tcp_service(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        let stream = self
            .service_done
            .pop_front()
            .expect("service timer with empty queue");
        let reply_bytes = if self.cfg.write_mode {
            RPC_REPLY_BYTES as u64
        } else {
            self.cfg.record_size as u64 + RPC_REPLY_BYTES as u64
        };
        match &mut self.transport {
            Transport::Tcp(port) => port.app_send(hca, ctx, stream as usize, reply_bytes),
            Transport::Rdma => unreachable!(),
        }
    }
}

impl Ulp for NfsServer {
    fn start(&mut self, hca: &mut HcaCore, _ctx: &mut Ctx<'_>) {
        match &mut self.transport {
            Transport::Rdma => {
                for _ in 0..1024 {
                    hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
                }
            }
            Transport::Tcp(port) => port.setup(hca),
        }
    }

    fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
        match &mut self.transport {
            Transport::Rdma => match c {
                Completion::RecvDone { qpn, data, .. } => {
                    hca.post_recv(qpn, RecvWr { wr_id: 0 });
                    match RpcMsg::decode(&data.expect("RPC without header")) {
                        RpcMsg::Call { xid, len, write } => {
                            self.serve_rdma(hca, ctx, xid, len, write)
                        }
                        RpcMsg::Reply { .. } => panic!("server received a reply"),
                    }
                }
                Completion::SendDone { wr_id, .. } => self.on_pull_done(hca, ctx, wr_id),
                Completion::WriteArrived { .. } => {}
            },
            Transport::Tcp(port) => {
                let handled = port.on_completion(hca, ctx, &c);
                debug_assert!(handled, "NFS/TCP server: foreign completion");
            }
        }
    }

    fn on_timer(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_IPOIB_RX | TOKEN_IPOIB_DACK => {
                let delivery = match &mut self.transport {
                    Transport::Tcp(port) => port.on_timer(hca, ctx, token),
                    Transport::Rdma => unreachable!("RDMA server has no IPoIB timers"),
                };
                if let Some(d) = delivery {
                    self.serve_tcp_calls(ctx, d.stream, d.newly);
                }
            }
            TOKEN_NFS_SERVICE => self.finish_tcp_service(hca, ctx),
            other => panic!("unknown NFS server timer {other}"),
        }
    }
}

/// Helper: virtual time wrapper for tests.
pub type ServerTime = Time;
