//! # nfssim — NFS over RDMA and over IPoIB
//!
//! Models the NFS configurations the paper evaluates in Section 3.6
//! (Figure 13): a single NFS server, one client node running multiple
//! IOzone-style reader threads, and two RPC transports:
//!
//! * **NFS/RDMA** — the design of Noronha et al. (ICPP'07, reference \[17\]
//!   of the paper): the client sends a small RPC call; the server moves the
//!   record data with zero-copy RDMA writes **fragmented into 4 KB chunks**,
//!   then sends the RPC reply. The 4 KB chunking is what couples NFS/RDMA
//!   throughput to the verbs-level small-message RC curve of Figure 5 —
//!   excellent on the LAN, a sharp collapse at high WAN delay.
//! * **NFS/IPoIB** — classic RPC over TCP, over either UD-mode (2 KB MTU)
//!   or RC-mode (64 KB MTU) IPoIB. Slower on the LAN (copies + TCP
//!   processing), but the large TCP window keeps the WAN pipe fuller than
//!   RDMA's chunk window, which is why IPoIB-RC wins at 1 ms delay.
//!
//! All threads share one transport (one mount): a single QP for RDMA, a
//! single TCP connection for IPoIB — matching how the Linux NFS client
//! multiplexes RPCs.

//! ```
//! use nfssim::{run_read_experiment, NfsSetup, Transport};
//! use simcore::Dur;
//!
//! let mut setup = NfsSetup::scaled(Transport::Rdma, 4, Some(Dur::from_us(10)));
//! setup.file_size = 4 << 20; // tiny file for the doctest
//! let r = run_read_experiment(setup);
//! assert_eq!(r.records, 16);
//! assert!(r.mbs > 100.0);
//! ```

pub mod client;
pub mod experiment;
pub mod rpc;
pub mod server;

pub use client::{NfsClient, NfsClientConfig};
pub use experiment::{run_read_experiment, NfsSetup, NfsThroughput, Transport};
pub use rpc::{RpcMsg, NFS_RDMA_CHUNK, RPC_CALL_BYTES, RPC_REPLY_BYTES};
pub use server::{NfsServer, NfsServerConfig};
