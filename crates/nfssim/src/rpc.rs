//! ONC-RPC framing constants and the RDMA-transport wire messages.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Wire size of an NFS READ call (RPC header + NFS args + chunk list).
pub const RPC_CALL_BYTES: u32 = 140;
/// Wire size of an NFS READ reply header (the data travels separately).
pub const RPC_REPLY_BYTES: u32 = 128;
/// NFS/RDMA fragments record data into chunks of this size (the paper:
/// "data is fragmented into 4K packets for transferring").
pub const NFS_RDMA_CHUNK: u32 = 4096;

/// RPC messages on the RDMA transport (rides as IB message metadata).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RpcMsg {
    /// READ or WRITE call. For reads the server RDMA-writes the record to
    /// the advertised chunks; for writes the server RDMA-reads it from them
    /// (the NFS/RDMA design of the paper's reference \[17\]).
    Call {
        /// Transaction id.
        xid: u64,
        /// Record length.
        len: u32,
        /// True for WRITE, false for READ.
        write: bool,
    },
    /// Reply: the data for `xid` has moved; RPC complete.
    Reply {
        /// Transaction id.
        xid: u64,
    },
}

impl RpcMsg {
    /// Serialize for [`ibfabric::SendWr::with_meta`].
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(14);
        match self {
            RpcMsg::Call { xid, len, write } => {
                b.put_u8(0);
                b.put_u64(*xid);
                b.put_u32(*len);
                b.put_u8(u8::from(*write));
            }
            RpcMsg::Reply { xid } => {
                b.put_u8(1);
                b.put_u64(*xid);
            }
        }
        b.freeze()
    }

    /// Deserialize; panics on malformed input (simulation invariant).
    pub fn decode(mut buf: &[u8]) -> Self {
        match buf.get_u8() {
            0 => RpcMsg::Call {
                xid: buf.get_u64(),
                len: buf.get_u32(),
                write: buf.get_u8() != 0,
            },
            1 => RpcMsg::Reply { xid: buf.get_u64() },
            other => panic!("unknown RPC message kind {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for m in [
            RpcMsg::Call {
                xid: 7,
                len: 262144,
                write: false,
            },
            RpcMsg::Call {
                xid: 8,
                len: 262144,
                write: true,
            },
            RpcMsg::Reply { xid: 7 },
        ] {
            assert_eq!(RpcMsg::decode(&m.encode()), m);
        }
    }

    #[test]
    fn chunk_count_for_paper_record() {
        // A 256 KB IOzone record is 64 RDMA chunks.
        assert_eq!(262_144 / NFS_RDMA_CHUNK, 64);
    }
}
