//! The NFS client ULP: IOzone-style multi-threaded sequential reads.

use crate::rpc::{RpcMsg, RPC_CALL_BYTES, RPC_REPLY_BYTES};
use ibfabric::hca::HcaCore;
use ibfabric::qp::Qpn;
use ibfabric::ulp::Ulp;
use ibfabric::verbs::{Completion, RecvWr, SendWr};
use ipoib::port::IpoibPort;
use simcore::{Ctx, Time};

/// Client workload parameters.
#[derive(Copy, Clone, Debug)]
pub struct NfsClientConfig {
    /// Concurrent reader threads (outstanding RPCs); the Figure 13 x-axis.
    pub threads: usize,
    /// Total records to read (file size / record size).
    pub records: u64,
    /// Record size (256 KB in the paper).
    pub record_size: u32,
    /// True to WRITE the file instead of reading it.
    pub write: bool,
}

enum Transport {
    Rdma,
    Tcp(IpoibPort),
}

/// The NFS client ULP.
pub struct NfsClient {
    cfg: NfsClientConfig,
    transport: Transport,
    /// RDMA transport QP (set after QP creation).
    pub qpn: Qpn,
    issued: u64,
    completed: u64,
    next_xid: u64,
    reply_acc: u64,
    started: Option<Time>,
    finished: Option<Time>,
}

impl NfsClient {
    /// An NFS/RDMA client.
    pub fn rdma(cfg: NfsClientConfig) -> Self {
        NfsClient {
            cfg,
            transport: Transport::Rdma,
            qpn: Qpn(0),
            issued: 0,
            completed: 0,
            next_xid: 1,
            reply_acc: 0,
            started: None,
            finished: None,
        }
    }

    /// An NFS/IPoIB client multiplexing all threads over one TCP connection
    /// (the port must have exactly one stream).
    pub fn tcp(cfg: NfsClientConfig, port: IpoibPort) -> Self {
        assert_eq!(port.n_streams(), 1, "one mount = one TCP connection");
        NfsClient {
            cfg,
            transport: Transport::Tcp(port),
            qpn: Qpn(0),
            issued: 0,
            completed: 0,
            next_xid: 1,
            reply_acc: 0,
            started: None,
            finished: None,
        }
    }

    /// Mutable access to the TCP port (wiring).
    pub fn port_mut(&mut self) -> &mut IpoibPort {
        match &mut self.transport {
            Transport::Tcp(p) => p,
            Transport::Rdma => panic!("RDMA client has no IPoIB port"),
        }
    }

    /// Records fully read.
    pub fn records_done(&self) -> u64 {
        self.completed
    }

    /// Aggregate read throughput in MillionBytes/s.
    pub fn throughput_mbs(&self) -> f64 {
        let (Some(t0), Some(t1)) = (self.started, self.finished) else {
            return 0.0;
        };
        let d = t1.since(t0);
        if d.is_zero() {
            return 0.0;
        }
        (self.completed as f64 * self.cfg.record_size as f64) / d.as_secs_f64() / 1e6
    }

    fn issue_one(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        if self.issued >= self.cfg.records {
            return;
        }
        self.issued += 1;
        let xid = self.next_xid;
        self.next_xid += 1;
        match &mut self.transport {
            Transport::Rdma => {
                // Reads and writes both start with a small call; the record
                // itself moves by server-driven RDMA (write: server reads
                // the chunks out of our memory).
                let call = SendWr::send(0, RPC_CALL_BYTES, 0).with_meta(
                    RpcMsg::Call {
                        xid,
                        len: self.cfg.record_size,
                        write: self.cfg.write,
                    }
                    .encode(),
                );
                hca.post_send(ctx, self.qpn, call);
            }
            Transport::Tcp(port) => {
                let bytes = RPC_CALL_BYTES as u64
                    + if self.cfg.write {
                        self.cfg.record_size as u64
                    } else {
                        0
                    };
                port.app_send(hca, ctx, 0, bytes);
            }
        }
    }

    fn complete_one(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        self.completed += 1;
        if self.completed == self.cfg.records {
            self.finished = Some(ctx.now());
        }
        self.issue_one(hca, ctx);
    }
}

impl Ulp for NfsClient {
    fn start(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        match &mut self.transport {
            Transport::Rdma => {
                for _ in 0..1024 {
                    hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
                }
            }
            Transport::Tcp(port) => port.setup(hca),
        }
        self.started = Some(ctx.now());
        let burst = (self.cfg.threads as u64).min(self.cfg.records);
        for _ in 0..burst {
            self.issue_one(hca, ctx);
        }
    }

    fn on_completion(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, c: Completion) {
        match &mut self.transport {
            Transport::Rdma => {
                if let Completion::RecvDone { qpn, data, .. } = c {
                    hca.post_recv(qpn, RecvWr { wr_id: 0 });
                    match RpcMsg::decode(&data.expect("RPC without header")) {
                        RpcMsg::Reply { .. } => self.complete_one(hca, ctx),
                        RpcMsg::Call { .. } => panic!("client received a call"),
                    }
                }
                // Chunk data lands via silent RDMA writes; the ordered reply
                // is the completion signal, exactly as in the NFS/RDMA design.
            }
            Transport::Tcp(port) => {
                let handled = port.on_completion(hca, ctx, &c);
                debug_assert!(handled, "NFS/TCP client: foreign completion");
            }
        }
    }

    fn on_timer(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>, token: u64) {
        let delivery = match &mut self.transport {
            Transport::Tcp(port) => port.on_timer(hca, ctx, token),
            Transport::Rdma => unreachable!("RDMA client has no IPoIB timers"),
        };
        if let Some(d) = delivery {
            self.reply_acc += d.newly;
            let reply_size = if self.cfg.write {
                RPC_REPLY_BYTES as u64
            } else {
                self.cfg.record_size as u64 + RPC_REPLY_BYTES as u64
            };
            while self.reply_acc >= reply_size {
                self.reply_acc -= reply_size;
                self.complete_one(hca, ctx);
            }
        }
    }
}
