//! End-to-end NFS experiment assembly: server + client topology, LAN or WAN.

use crate::client::{NfsClient, NfsClientConfig};
use crate::server::{NfsServer, NfsServerConfig};
use ibfabric::fabric::{EngineProfile, FabricBuilder};
use ibfabric::hca::HcaConfig;
use ibfabric::link::LinkConfig;
use ibfabric::qp::QpConfig;
use ipoib::node::IpoibConfig;
use ipoib::port::IpoibPort;
use obsidian::LongbowPair;
use simcore::Dur;
use tcpstack::TcpConfig;

/// RPC credits on the NFS/RDMA QP (outstanding chunk window).
pub const RDMA_QP_WINDOW: usize = 32;

/// Which NFS transport to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Transport {
    /// NFS over RPC/RDMA (4 KB chunked RDMA writes).
    Rdma,
    /// NFS over TCP over RC-mode IPoIB (64 KB MTU).
    IpoibRc,
    /// NFS over TCP over UD-mode IPoIB (2 KB MTU).
    IpoibUd,
}

impl Transport {
    /// Display label matching the figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Transport::Rdma => "RDMA",
            Transport::IpoibRc => "IPoIB-RC",
            Transport::IpoibUd => "IPoIB-UD",
        }
    }
}

/// One NFS read-throughput experiment.
#[derive(Copy, Clone, Debug)]
pub struct NfsSetup {
    /// Transport under test.
    pub transport: Transport,
    /// Concurrent reader threads (Figure 13 x-axis).
    pub threads: usize,
    /// File size in bytes (paper: 512 MB; scale down for quick runs).
    pub file_size: u64,
    /// Record size (paper: 256 KB).
    pub record_size: u32,
    /// One-way WAN delay; `None` runs on the DDR LAN with no Longbows.
    pub delay: Option<Dur>,
    /// True to run the IOzone write test instead of read (the paper omits
    /// its write numbers for space; we report them).
    pub write: bool,
    /// Engine execution profile (coalescing, partition mode).
    pub profile: EngineProfile,
    /// Engine seed.
    pub seed: u64,
}

impl NfsSetup {
    /// The paper's configuration: 512 MB file, 256 KB records.
    pub fn paper(transport: Transport, threads: usize, delay: Option<Dur>) -> Self {
        NfsSetup {
            transport,
            threads,
            file_size: 512 << 20,
            record_size: 256 << 10,
            delay,
            write: false,
            profile: EngineProfile::default(),
            seed: 17,
        }
    }

    /// A scaled-down file for fast simulation (same record size, fewer
    /// records; steady-state throughput is unchanged).
    pub fn scaled(transport: Transport, threads: usize, delay: Option<Dur>) -> Self {
        NfsSetup {
            transport,
            threads,
            file_size: 48 << 20,
            record_size: 256 << 10,
            delay,
            write: false,
            profile: EngineProfile::default(),
            seed: 17,
        }
    }
}

/// Measured result.
#[derive(Copy, Clone, Debug)]
pub struct NfsThroughput {
    /// Read throughput, MillionBytes/s.
    pub mbs: f64,
    /// Records completed (sanity).
    pub records: u64,
}

fn ipoib_config(t: Transport) -> IpoibConfig {
    match t {
        Transport::IpoibRc => IpoibConfig::rc(65536),
        Transport::IpoibUd => IpoibConfig::ud(),
        Transport::Rdma => unreachable!(),
    }
}

/// Run one read experiment and return the client-observed throughput.
pub fn run_read_experiment(setup: NfsSetup) -> NfsThroughput {
    let records = setup.file_size / setup.record_size as u64;
    let server_cfg = NfsServerConfig {
        record_size: setup.record_size,
        write_mode: setup.write,
        ..NfsServerConfig::default()
    };
    let client_cfg = NfsClientConfig {
        threads: setup.threads,
        records,
        record_size: setup.record_size,
        write: setup.write,
    };

    let (server_ulp, client_ulp): (Box<NfsServer>, Box<NfsClient>) = match setup.transport {
        Transport::Rdma => (
            Box::new(NfsServer::rdma(server_cfg)),
            Box::new(NfsClient::rdma(client_cfg)),
        ),
        Transport::IpoibRc | Transport::IpoibUd => {
            let cfg = ipoib_config(setup.transport);
            // Warm, long-lived mount connection: no slow-start ramp.
            let mut tcp = TcpConfig::for_mtu(cfg.mtu);
            tcp.init_cwnd_segments = 1 << 20;
            (
                Box::new(NfsServer::tcp(server_cfg, IpoibPort::new(cfg, tcp, 1))),
                Box::new(NfsClient::tcp(client_cfg, IpoibPort::new(cfg, tcp, 1))),
            )
        }
    };

    let mut b = FabricBuilder::with_profile(setup.seed, setup.profile);
    let server = b.add_hca(HcaConfig::default(), server_ulp);
    let client = b.add_hca(HcaConfig::default(), client_ulp);
    match setup.delay {
        None => {
            // LAN: both nodes on one DDR switch.
            let sw = b.add_switch();
            b.link(server.actor, sw, LinkConfig::ddr_lan());
            b.link(client.actor, sw, LinkConfig::ddr_lan());
        }
        Some(delay) => {
            let sw_a = b.add_switch();
            let sw_b = b.add_switch();
            b.link(server.actor, sw_a, LinkConfig::ddr_lan());
            b.link(client.actor, sw_b, LinkConfig::ddr_lan());
            LongbowPair::insert(&mut b, sw_a, sw_b, delay);
        }
    }
    let mut f = b.finish();

    // Transport wiring.
    match setup.transport {
        Transport::Rdma => {
            let qp_cfg = QpConfig::rc().with_window(RDMA_QP_WINDOW);
            let (qs, qc) = ibfabric::perftest::rc_qp_pair(&mut f, server, client, qp_cfg);
            f.hca_mut(server).ulp_mut::<NfsServer>().qpn = qs;
            f.hca_mut(client).ulp_mut::<NfsClient>().qpn = qc;
        }
        Transport::IpoibRc | Transport::IpoibUd => {
            let cfg = ipoib_config(setup.transport);
            let qs = f.hca_mut(server).core_mut().create_qp(cfg.qp_config());
            let qc = f.hca_mut(client).core_mut().create_qp(cfg.qp_config());
            if setup.transport == Transport::IpoibRc {
                f.hca_mut(server).core_mut().connect(qs, (client.lid, qc));
                f.hca_mut(client).core_mut().connect(qc, (server.lid, qs));
            }
            {
                let p = f.hca_mut(server).ulp_mut::<NfsServer>().port_mut();
                p.qpn = qs;
                p.peer = Some((client.lid, qc));
            }
            {
                let p = f.hca_mut(client).ulp_mut::<NfsClient>().port_mut();
                p.qpn = qc;
                p.peer = Some((server.lid, qs));
            }
        }
    }

    f.run();
    let c = f.hca(client).ulp::<NfsClient>();
    assert_eq!(c.records_done(), records, "client did not finish the file");
    NfsThroughput {
        mbs: c.throughput_mbs(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(t: Transport, threads: usize, delay: Option<Dur>) -> f64 {
        let mut s = NfsSetup::scaled(t, threads, delay);
        s.file_size = 16 << 20;
        run_read_experiment(s).mbs
    }

    #[test]
    fn rdma_lan_beats_rdma_wan() {
        let lan = quick(Transport::Rdma, 4, None);
        let wan = quick(Transport::Rdma, 4, Some(Dur::ZERO));
        // DDR LAN vs SDR WAN path: the paper reports ~36% degradation.
        assert!(
            wan < 0.8 * lan,
            "WAN ({wan}) should be well below LAN ({lan})"
        );
        assert!(lan > 1000.0, "LAN NFS/RDMA should exceed 1 GB/s: {lan}");
    }

    #[test]
    fn rdma_wins_at_low_delay_ipoib_rc_wins_at_high_delay() {
        let d100 = Some(Dur::from_us(100));
        let rdma_100 = quick(Transport::Rdma, 8, d100);
        let rc_100 = quick(Transport::IpoibRc, 8, d100);
        assert!(
            rdma_100 > rc_100,
            "at 100 us RDMA ({rdma_100}) must beat IPoIB-RC ({rc_100})"
        );

        let d1000 = Some(Dur::from_us(1000));
        let rdma_1000 = quick(Transport::Rdma, 8, d1000);
        let rc_1000 = quick(Transport::IpoibRc, 8, d1000);
        assert!(
            rc_1000 > rdma_1000,
            "at 1000 us IPoIB-RC ({rc_1000}) must beat RDMA ({rdma_1000})"
        );
    }

    #[test]
    fn rdma_collapses_sharply_at_1ms() {
        let peak = quick(Transport::Rdma, 8, Some(Dur::ZERO));
        let at_1ms = quick(Transport::Rdma, 8, Some(Dur::from_ms(1)));
        assert!(
            at_1ms < 0.2 * peak,
            "4 KB chunking must collapse at 1 ms: peak {peak}, 1ms {at_1ms}"
        );
    }

    #[test]
    fn ipoib_rc_beats_ipoib_ud() {
        let d100 = Some(Dur::from_us(100));
        let rc = quick(Transport::IpoibRc, 8, d100);
        let ud = quick(Transport::IpoibUd, 8, d100);
        assert!(rc > ud, "IPoIB-RC ({rc}) must beat IPoIB-UD ({ud})");
    }

    #[test]
    fn write_path_completes_on_all_transports() {
        for t in [Transport::Rdma, Transport::IpoibRc, Transport::IpoibUd] {
            let mut s = NfsSetup::scaled(t, 4, Some(Dur::from_us(10)));
            s.file_size = 8 << 20;
            s.write = true;
            let r = run_read_experiment(s);
            assert!(r.mbs > 0.0, "{t:?} write throughput {}", r.mbs);
        }
    }

    #[test]
    fn rdma_writes_collapse_harder_than_reads_at_delay() {
        // WRITE pulls with RDMA reads (4 outstanding); READ pushes with
        // RDMA writes (32-credit window): writes starve first on the WAN.
        let d = Some(Dur::from_us(500));
        let mut rd = NfsSetup::scaled(Transport::Rdma, 8, d);
        rd.file_size = 16 << 20;
        let mut wr = rd;
        wr.write = true;
        let read_mbs = run_read_experiment(rd).mbs;
        let write_mbs = run_read_experiment(wr).mbs;
        assert!(
            write_mbs < read_mbs,
            "writes ({write_mbs}) should trail reads ({read_mbs}) at 500 us"
        );
    }

    #[test]
    fn threads_scale_throughput_until_saturation() {
        let d = Some(Dur::from_us(100));
        let one = quick(Transport::Rdma, 1, d);
        let eight = quick(Transport::Rdma, 8, d);
        assert!(
            eight > 1.5 * one,
            "8 threads ({eight}) must beat 1 thread ({one})"
        );
    }
}
