//! Golden determinism tests: the simulation must be bit-reproducible.
//!
//! Running the same experiment twice with the same seed must produce
//! byte-identical tables/JSON **and** dispatch exactly the same number of
//! engine events. This pins the engine's `(time, seq)` ordering contract and
//! the event-pool refactor: any hidden nondeterminism (hash-map iteration,
//! pointer-keyed ordering, pool-dependent dispatch order) breaks these tests.

use bench::catalog;
use ibfabric::fabric::{partition_mode, set_default_coalescing, set_partition_mode, PartitionMode};
use ibfabric::perftest::{rc_qp_pair, BwConfig, BwPeer};
use ibfabric::qp::QpConfig;
use ibwan_core::topology::wan_node_pair;
use ibwan_core::Fidelity;
use simcore::Dur;
use std::sync::{Mutex, MutexGuard};

/// Tests in this binary run concurrently but the coalescing default is a
/// process-wide flag, so every test that reads or writes it serializes here.
/// A poisoned lock just means another test's assertion fired — the flag
/// state is still usable, so recover the guard.
static COALESCING_FLAG: Mutex<()> = Mutex::new(());

fn flag_lock() -> MutexGuard<'static, ()> {
    COALESCING_FLAG.lock().unwrap_or_else(|e| e.into_inner())
}

/// Set the process-wide partition mode, restoring the previous mode on drop
/// — panic-safe, so a failing assertion cannot leak `Force` into the tests
/// that run after it.
struct ModeGuard(PartitionMode);

impl ModeGuard {
    fn set(mode: PartitionMode) -> Self {
        let prev = partition_mode();
        set_partition_mode(mode);
        ModeGuard(prev)
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        set_partition_mode(self.0);
    }
}

/// Run a catalog experiment twice at Quick fidelity and demand bit-identical
/// output.
fn assert_golden(id: &str) {
    let _flag = flag_lock();
    set_default_coalescing(true);
    let experiments = catalog();
    let e = experiments
        .iter()
        .find(|e| e.id == id)
        .unwrap_or_else(|| panic!("experiment {id} missing from catalog"));
    let first = (e.run)(Fidelity::Quick);
    let second = (e.run)(Fidelity::Quick);
    assert_eq!(
        first.to_table(),
        second.to_table(),
        "{id}: table drifted between identically-seeded runs"
    );
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "{id}: JSON drifted between identically-seeded runs"
    );
}

/// Run a catalog experiment with fragment coalescing on and off and demand
/// bit-identical output: trains are a pure event-count optimization, so
/// every table cell and JSON byte must survive the A/B flip.
fn assert_coalescing_invisible(id: &str) {
    let _flag = flag_lock();
    let experiments = catalog();
    let e = experiments
        .iter()
        .find(|e| e.id == id)
        .unwrap_or_else(|| panic!("experiment {id} missing from catalog"));
    set_default_coalescing(true);
    let coalesced = (e.run)(Fidelity::Quick);
    set_default_coalescing(false);
    let per_fragment = (e.run)(Fidelity::Quick);
    set_default_coalescing(true);
    assert_eq!(
        coalesced.to_table(),
        per_fragment.to_table(),
        "{id}: table changed when coalescing was disabled"
    );
    assert_eq!(
        coalesced.to_json(),
        per_fragment.to_json(),
        "{id}: JSON changed when coalescing was disabled"
    );
}

/// Run a catalog experiment on the serial engine and on the partitioned
/// engine (Force) and demand bit-identical output: domain partitioning is a
/// pure wall-clock optimization, so every table cell and JSON byte must
/// survive the A/B flip — the same contract coalescing holds to.
fn assert_partitioning_invisible(id: &str) {
    let _flag = flag_lock();
    set_default_coalescing(true);
    let experiments = catalog();
    let e = experiments
        .iter()
        .find(|e| e.id == id)
        .unwrap_or_else(|| panic!("experiment {id} missing from catalog"));
    let serial = {
        let _mode = ModeGuard::set(PartitionMode::Off);
        (e.run)(Fidelity::Quick)
    };
    let partitioned = {
        let _mode = ModeGuard::set(PartitionMode::Force);
        (e.run)(Fidelity::Quick)
    };
    assert_eq!(
        serial.to_table(),
        partitioned.to_table(),
        "{id}: table changed on the partitioned engine"
    );
    assert_eq!(
        serial.to_json(),
        partitioned.to_json(),
        "{id}: JSON changed on the partitioned engine"
    );
}

#[test]
fn rc_verbs_figure_is_bit_identical_across_runs() {
    assert_golden("fig5a");
}

#[test]
fn nfs_figure_is_bit_identical_across_runs() {
    assert_golden("fig13a");
}

#[test]
fn rc_verbs_figure_is_identical_with_and_without_coalescing() {
    assert_coalescing_invisible("fig5a");
}

#[test]
fn mpi_figure_is_identical_with_and_without_coalescing() {
    assert_coalescing_invisible("fig8a");
}

#[test]
fn nfs_figure_is_identical_with_and_without_coalescing() {
    assert_coalescing_invisible("fig13a");
}

#[test]
fn rc_verbs_figure_is_identical_serial_and_partitioned() {
    assert_partitioning_invisible("fig5a");
}

#[test]
fn mpi_figure_is_identical_serial_and_partitioned() {
    assert_partitioning_invisible("fig8a");
}

#[test]
fn nfs_figure_is_identical_serial_and_partitioned() {
    assert_partitioning_invisible("fig13a");
}

/// Determinism must come from the window protocol, not from lucky thread
/// scheduling: stagger each domain thread's start by increasingly hostile
/// offsets and demand the bit-identical figure every time.
#[test]
fn partitioned_schedule_survives_thread_start_jitter() {
    use simcore::domain::set_test_start_jitter_us;

    /// Clear the jitter knob on drop so a failure here can't slow every
    /// later partitioned run in this binary.
    struct JitterGuard;
    impl Drop for JitterGuard {
        fn drop(&mut self) {
            set_test_start_jitter_us(0);
        }
    }

    let _flag = flag_lock();
    set_default_coalescing(true);
    let _mode = ModeGuard::set(PartitionMode::Force);
    let _jitter = JitterGuard;
    let experiments = catalog();
    let e = experiments
        .iter()
        .find(|e| e.id == "fig5a")
        .expect("fig5a missing from catalog");
    set_test_start_jitter_us(0);
    let baseline = (e.run)(Fidelity::Quick);
    for us in [50, 500, 1500, 4000] {
        set_test_start_jitter_us(us);
        let jittered = (e.run)(Fidelity::Quick);
        assert_eq!(
            baseline.to_json(),
            jittered.to_json(),
            "fig5a drifted under {us}us thread-start jitter"
        );
    }
}

/// Whole-fabric report equality, including the engine's event counters: two
/// identically-seeded WAN RC streams must dispatch event-for-event the same
/// schedule, not merely converge to the same figures.
#[test]
fn fabric_reports_and_event_counts_are_identical() {
    let _flag = flag_lock();
    set_default_coalescing(true);
    let first = wan_stream_report(64);
    let second = wan_stream_report(64);
    assert_eq!(first, second, "fabric reports diverged across runs");
    assert!(
        first.engine_counters.events_processed > 0,
        "probe must actually run events"
    );
    // Steady-state streams must be served from the event pool, not malloc.
    assert!(
        first.engine_counters.pool_hit_rate() > 0.9,
        "pool hit rate collapsed: {:?}",
        first.engine_counters
    );
}

/// An 8 MiB WAN RC stream (128 × 64 KiB messages) is the best case for
/// fragment trains: long contiguous runs of Middle fragments under a wide
/// ACK window. The bulk of hop events must ride inside trains.
#[test]
fn wan_rc_stream_coalesces_most_fragments() {
    let _flag = flag_lock();
    set_default_coalescing(true);
    let report = wan_stream_report(128);
    let c = &report.engine_counters;
    assert!(
        c.trains_emitted > 0,
        "no trains on a contiguous RC stream: {c:?}"
    );
    assert!(
        c.coalescing_ratio() >= 0.5,
        "coalescing ratio collapsed on the 8 MiB WAN RC stream: \
         {:.3} ({c:?})",
        c.coalescing_ratio()
    );
}

/// One WAN RC stream of `msgs` 64 KiB messages over a 100 µs link.
fn wan_stream_report(msgs: u64) -> ibfabric::fabric::FabricReport {
    let (mut f, a, b) = wan_node_pair(
        42,
        Dur::from_us(100),
        Box::new(BwPeer::sender(BwConfig::new(65536, msgs))),
        Box::new(BwPeer::receiver()),
    );
    let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
    f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
    f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
    f.run();
    f.report()
}
