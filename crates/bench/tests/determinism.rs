//! Golden determinism tests: the simulation must be bit-reproducible.
//!
//! Running the same experiment twice with the same config must produce
//! byte-identical tables/JSON **and** dispatch exactly the same number of
//! engine events. This pins the engine's `(time, seq)` ordering contract and
//! the event-pool refactor: any hidden nondeterminism (hash-map iteration,
//! pointer-keyed ordering, pool-dependent dispatch order) breaks these tests.
//!
//! Engine knobs are plain [`RunConfig`] values now — each A/B leg builds its
//! own config, so there are no process-wide flags to serialize on and the
//! legs cannot leak state into each other or into concurrent tests.

use bench::find;
use ibfabric::perftest::{rc_qp_pair, BwConfig, BwPeer};
use ibfabric::qp::QpConfig;
use ibwan_core::topology::wan_node_pair;
use ibwan_core::{PartitionMode, RunConfig};

use simcore::Dur;

/// Run a catalog experiment twice at Quick fidelity and demand bit-identical
/// output.
fn assert_golden(id: &str) {
    let cfg = RunConfig::default();
    let e = find(id).unwrap_or_else(|| panic!("experiment {id} missing from catalog"));
    let first = (e.run)(&cfg);
    let second = (e.run)(&cfg);
    assert_eq!(
        first.to_table(),
        second.to_table(),
        "{id}: table drifted between identically-seeded runs"
    );
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "{id}: JSON drifted between identically-seeded runs"
    );
}

/// Run a catalog experiment with fragment coalescing on and off and demand
/// bit-identical output: trains are a pure event-count optimization, so
/// every table cell and JSON byte must survive the A/B flip.
fn assert_coalescing_invisible(id: &str) {
    let e = find(id).unwrap_or_else(|| panic!("experiment {id} missing from catalog"));
    let coalesced = (e.run)(&RunConfig::default());
    let per_fragment = (e.run)(&RunConfig {
        coalescing: false,
        ..RunConfig::default()
    });
    assert_eq!(
        coalesced.to_table(),
        per_fragment.to_table(),
        "{id}: table changed when coalescing was disabled"
    );
    assert_eq!(
        coalesced.to_json(),
        per_fragment.to_json(),
        "{id}: JSON changed when coalescing was disabled"
    );
}

/// Run a catalog experiment on the serial engine and on the partitioned
/// engine (Force) and demand bit-identical output: domain partitioning is a
/// pure wall-clock optimization, so every table cell and JSON byte must
/// survive the A/B flip — the same contract coalescing holds to.
fn assert_partitioning_invisible(id: &str) {
    let e = find(id).unwrap_or_else(|| panic!("experiment {id} missing from catalog"));
    let serial = (e.run)(&RunConfig {
        partition: PartitionMode::Off,
        ..RunConfig::default()
    });
    let partitioned = (e.run)(&RunConfig {
        partition: PartitionMode::Force,
        ..RunConfig::default()
    });
    assert_eq!(
        serial.to_table(),
        partitioned.to_table(),
        "{id}: table changed on the partitioned engine"
    );
    assert_eq!(
        serial.to_json(),
        partitioned.to_json(),
        "{id}: JSON changed on the partitioned engine"
    );
}

#[test]
fn rc_verbs_figure_is_bit_identical_across_runs() {
    assert_golden("fig5a");
}

#[test]
fn nfs_figure_is_bit_identical_across_runs() {
    assert_golden("fig13a");
}

#[test]
fn rc_verbs_figure_is_identical_with_and_without_coalescing() {
    assert_coalescing_invisible("fig5a");
}

#[test]
fn mpi_figure_is_identical_with_and_without_coalescing() {
    assert_coalescing_invisible("fig8a");
}

#[test]
fn nfs_figure_is_identical_with_and_without_coalescing() {
    assert_coalescing_invisible("fig13a");
}

#[test]
fn rc_verbs_figure_is_identical_serial_and_partitioned() {
    assert_partitioning_invisible("fig5a");
}

#[test]
fn mpi_figure_is_identical_serial_and_partitioned() {
    assert_partitioning_invisible("fig8a");
}

#[test]
fn nfs_figure_is_identical_serial_and_partitioned() {
    assert_partitioning_invisible("fig13a");
}

/// The seed offset must shift the whole run onto a different deterministic
/// trajectory — and back: offset 0 is the identity.
#[test]
fn seed_offset_is_deterministic_and_zero_is_identity() {
    let e = find("fig5a").expect("fig5a missing from catalog");
    let base = (e.run)(&RunConfig::default());
    let zero = (e.run)(&RunConfig {
        seed: 0,
        ..RunConfig::default()
    });
    assert_eq!(
        base.to_json(),
        zero.to_json(),
        "seed 0 must be the identity"
    );
    let shifted_cfg = RunConfig {
        seed: 7,
        ..RunConfig::default()
    };
    let shifted_a = (e.run)(&shifted_cfg);
    let shifted_b = (e.run)(&shifted_cfg);
    assert_eq!(
        shifted_a.to_json(),
        shifted_b.to_json(),
        "a shifted seed must still be deterministic"
    );
}

/// Determinism must come from the window protocol, not from lucky thread
/// scheduling: stagger each domain thread's start by increasingly hostile
/// offsets and demand the bit-identical figure every time.
#[test]
fn partitioned_schedule_survives_thread_start_jitter() {
    use simcore::domain::set_test_start_jitter_us;

    /// Clear the jitter knob on drop so a failure here can't slow every
    /// later partitioned run in this binary.
    struct JitterGuard;
    impl Drop for JitterGuard {
        fn drop(&mut self) {
            set_test_start_jitter_us(0);
        }
    }

    let cfg = RunConfig {
        partition: PartitionMode::Force,
        ..RunConfig::default()
    };
    let _jitter = JitterGuard;
    let e = find("fig5a").expect("fig5a missing from catalog");
    set_test_start_jitter_us(0);
    let baseline = (e.run)(&cfg);
    for us in [50, 500, 1500, 4000] {
        set_test_start_jitter_us(us);
        let jittered = (e.run)(&cfg);
        assert_eq!(
            baseline.to_json(),
            jittered.to_json(),
            "fig5a drifted under {us}us thread-start jitter"
        );
    }
}

/// Whole-fabric report equality, including the engine's event counters: two
/// identically-seeded WAN RC streams must dispatch event-for-event the same
/// schedule, not merely converge to the same figures.
#[test]
fn fabric_reports_and_event_counts_are_identical() {
    let first = wan_stream_report(64);
    let second = wan_stream_report(64);
    assert_eq!(first, second, "fabric reports diverged across runs");
    assert!(
        first.engine_counters.events_processed > 0,
        "probe must actually run events"
    );
    // Steady-state streams must be served from the event pool, not malloc.
    assert!(
        first.engine_counters.pool_hit_rate() > 0.9,
        "pool hit rate collapsed: {:?}",
        first.engine_counters
    );
}

/// An 8 MiB WAN RC stream (128 × 64 KiB messages) is the best case for
/// fragment trains: long contiguous runs of Middle fragments under a wide
/// ACK window. The bulk of hop events must ride inside trains.
#[test]
fn wan_rc_stream_coalesces_most_fragments() {
    let report = wan_stream_report(128);
    let c = &report.engine_counters;
    assert!(
        c.trains_emitted > 0,
        "no trains on a contiguous RC stream: {c:?}"
    );
    assert!(
        c.coalescing_ratio() >= 0.5,
        "coalescing ratio collapsed on the 8 MiB WAN RC stream: \
         {:.3} ({c:?})",
        c.coalescing_ratio()
    );
}

/// One WAN RC stream of `msgs` 64 KiB messages over a 100 µs link.
fn wan_stream_report(msgs: u64) -> ibfabric::fabric::FabricReport {
    let (mut f, a, b) = wan_node_pair(
        &RunConfig::default(),
        42,
        Dur::from_us(100),
        Box::new(BwPeer::sender(BwConfig::new(65536, msgs))),
        Box::new(BwPeer::receiver()),
    );
    let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
    f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
    f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
    f.run();
    f.report()
}
