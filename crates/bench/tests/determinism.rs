//! Golden determinism tests: the simulation must be bit-reproducible.
//!
//! Running the same experiment twice with the same seed must produce
//! byte-identical tables/JSON **and** dispatch exactly the same number of
//! engine events. This pins the engine's `(time, seq)` ordering contract and
//! the event-pool refactor: any hidden nondeterminism (hash-map iteration,
//! pointer-keyed ordering, pool-dependent dispatch order) breaks these tests.

use bench::catalog;
use ibfabric::perftest::{rc_qp_pair, BwConfig, BwPeer};
use ibfabric::qp::QpConfig;
use ibwan_core::topology::wan_node_pair;
use ibwan_core::Fidelity;
use simcore::Dur;

/// Run a catalog experiment twice at Quick fidelity and demand bit-identical
/// output.
fn assert_golden(id: &str) {
    let experiments = catalog();
    let e = experiments
        .iter()
        .find(|e| e.id == id)
        .unwrap_or_else(|| panic!("experiment {id} missing from catalog"));
    let first = (e.run)(Fidelity::Quick);
    let second = (e.run)(Fidelity::Quick);
    assert_eq!(
        first.to_table(),
        second.to_table(),
        "{id}: table drifted between identically-seeded runs"
    );
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "{id}: JSON drifted between identically-seeded runs"
    );
}

#[test]
fn rc_verbs_figure_is_bit_identical_across_runs() {
    assert_golden("fig5a");
}

#[test]
fn nfs_figure_is_bit_identical_across_runs() {
    assert_golden("fig13a");
}

/// Whole-fabric report equality, including the engine's event counters: two
/// identically-seeded WAN RC streams must dispatch event-for-event the same
/// schedule, not merely converge to the same figures.
#[test]
fn fabric_reports_and_event_counts_are_identical() {
    fn run() -> ibfabric::fabric::FabricReport {
        let (mut f, a, b) = wan_node_pair(
            42,
            Dur::from_us(100),
            Box::new(BwPeer::sender(BwConfig::new(65536, 64))),
            Box::new(BwPeer::receiver()),
        );
        let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
        f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
        f.run();
        f.report()
    }
    let first = run();
    let second = run();
    assert_eq!(first, second, "fabric reports diverged across runs");
    assert!(
        first.engine_counters.events_processed > 0,
        "probe must actually run events"
    );
    // Steady-state streams must be served from the event pool, not malloc.
    assert!(
        first.engine_counters.pool_hit_rate() > 0.9,
        "pool hit rate collapsed: {:?}",
        first.engine_counters
    );
}
