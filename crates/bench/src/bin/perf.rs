//! `perf` — wall-clock performance harness for the event-engine hot path.
//!
//! Times a fixed repro subset (fig5a verbs-RC, fig8a MPI, fig13a NFS) at
//! Quick and Full fidelity and emits `BENCH_engine.json`, so every PR has a
//! perf trajectory against the previous baseline.
//!
//! ```text
//! perf [--quick] [--json PATH] [--baseline PATH] [--repeat N]
//!
//!   --quick          time only the Quick-fidelity subset (CI smoke)
//!   --json PATH      write the result document (default BENCH_engine.json)
//!   --baseline PATH  prior BENCH_engine.json to compare against; its
//!                    timings are embedded and a full-fidelity speedup is
//!                    computed
//!   --repeat N       best-of-N timing per experiment (default 3 quick / 1 full)
//! ```

use bench::catalog;
use ibwan_core::Fidelity;
use minijson::{obj, Value};

/// The fixed subset: one verbs, one MPI, one NFS experiment — together they
/// cover the RC data path, the rendezvous protocol stack, and the RPC/ULP
/// layers that dominate `repro --full` wall time.
const SUBSET: [&str; 3] = ["fig5a", "fig8a", "fig13a"];

struct Timing {
    id: &'static str,
    fidelity: Fidelity,
    secs: f64,
}

fn main() {
    let mut quick_only = false;
    let mut json_path = "BENCH_engine.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut repeat: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick_only = true,
            "--json" => json_path = args.next().expect("--json needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            "--repeat" => {
                repeat = Some(
                    args.next()
                        .expect("--repeat needs a count")
                        .parse()
                        .expect("--repeat needs an integer"),
                )
            }
            "--help" | "-h" => {
                eprintln!("usage: perf [--quick] [--json PATH] [--baseline PATH] [--repeat N]");
                return;
            }
            other => panic!("unknown argument {other:?} (try --help)"),
        }
    }

    let experiments = catalog();
    let subset: Vec<_> = SUBSET
        .iter()
        .map(|id| {
            experiments
                .iter()
                .find(|e| e.id == *id)
                .unwrap_or_else(|| panic!("experiment {id} missing from catalog"))
        })
        .collect();

    let fidelities: &[Fidelity] = if quick_only {
        &[Fidelity::Quick]
    } else {
        &[Fidelity::Quick, Fidelity::Full]
    };

    let mut timings = Vec::new();
    for &fidelity in fidelities {
        let reps = repeat.unwrap_or(match fidelity {
            Fidelity::Quick => 3,
            Fidelity::Full => 1,
        });
        for e in &subset {
            let mut best = f64::INFINITY;
            for _ in 0..reps.max(1) {
                let t0 = std::time::Instant::now();
                let fig = (e.run)(fidelity);
                let dt = t0.elapsed().as_secs_f64();
                assert!(
                    fig.series.iter().any(|s| !s.points.is_empty()),
                    "{} produced an empty figure",
                    e.id
                );
                best = best.min(dt);
            }
            eprintln!("{:8} {fidelity:?}: {best:.3}s (best of {reps})", e.id);
            timings.push(Timing {
                id: e.id,
                fidelity,
                secs: best,
            });
        }
    }

    let counters = engine_counters();
    eprintln!(
        "engine counters (8 MiB WAN RC stream): events_processed={} \
         events_allocated={} peak_queue_len={} pool_hit_rate={:.4}",
        counters.events_processed,
        counters.events_allocated,
        counters.peak_queue_len,
        counters.pool_hit_rate()
    );

    let baseline = baseline_path.as_deref().map(|p| {
        let text = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"));
        Value::parse(&text).unwrap_or_else(|e| panic!("cannot parse baseline {p}: {e}"))
    });

    let full_total: f64 = timings
        .iter()
        .filter(|t| t.fidelity == Fidelity::Full)
        .map(|t| t.secs)
        .sum();
    let speedup = baseline.as_ref().and_then(|b| {
        let base_total = baseline_full_total(b)?;
        (full_total > 0.0).then(|| base_total / full_total)
    });
    if let Some(s) = speedup {
        eprintln!("full-fidelity subset speedup vs baseline: {s:.2}x");
    }

    let timing_values: Vec<Value> = timings
        .iter()
        .map(|t| {
            obj([
                ("id", Value::from(t.id)),
                (
                    "fidelity",
                    Value::from(match t.fidelity {
                        Fidelity::Quick => "quick",
                        Fidelity::Full => "full",
                    }),
                ),
                ("secs", Value::Num(t.secs)),
            ])
        })
        .collect();

    let mut doc = vec![
        ("benchmark", Value::from("engine-hotpath")),
        (
            "subset",
            Value::Arr(SUBSET.iter().map(|&s| Value::from(s)).collect()),
        ),
        ("timings", Value::Arr(timing_values)),
        (
            "engine_counters",
            obj([
                ("events_processed", Value::from(counters.events_processed)),
                ("events_allocated", Value::from(counters.events_allocated)),
                ("peak_queue_len", Value::from(counters.peak_queue_len)),
                ("pool_hit_rate", Value::Num(counters.pool_hit_rate())),
            ]),
        ),
    ];
    if let Some(b) = baseline {
        if let Some(s) = speedup {
            doc.push(("speedup_full_vs_baseline", Value::Num(s)));
        }
        doc.push(("baseline", b));
    }
    std::fs::write(&json_path, obj(doc).to_pretty() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    eprintln!("wrote {json_path}");
}

/// Sum of the baseline document's full-fidelity subset timings.
fn baseline_full_total(doc: &Value) -> Option<f64> {
    let timings = doc.get("timings")?.as_array()?;
    let mut total = 0.0;
    let mut seen = 0;
    for t in timings {
        if t.get("fidelity")?.as_str()? == "full" && SUBSET.contains(&t.get("id")?.as_str()?) {
            total += t.get("secs")?.as_f64()?;
            seen += 1;
        }
    }
    (seen == SUBSET.len()).then_some(total)
}

/// Counter-verified allocation behavior: stream an 8 MiB WAN RC transfer
/// through one fabric and read the engine's event-pool counters out of the
/// report.
fn engine_counters() -> simcore::EngineCounters {
    use ibfabric::perftest::{rc_qp_pair, BwConfig, BwPeer};
    use ibfabric::qp::QpConfig;
    use ibwan_core::topology::wan_node_pair;
    use simcore::Dur;

    // 8 MiB in 64 KiB messages: enough fragments (~4k) to reach steady
    // state while keeping the probe itself sub-second.
    let msgs = 128;
    let (mut f, a, b) = wan_node_pair(
        42,
        Dur::from_us(100),
        Box::new(BwPeer::sender(BwConfig::new(65536, msgs))),
        Box::new(BwPeer::receiver()),
    );
    let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
    f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
    f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
    f.run();
    f.report().engine_counters
}
