//! `perf` — wall-clock performance harness for the event-engine hot path.
//!
//! Times a fixed repro subset (fig5a verbs-RC, fig8a MPI, fig13a NFS) at
//! Quick and Full fidelity and emits `BENCH_engine.json`, so every PR has a
//! perf trajectory against the previous baseline.
//!
//! ```text
//! perf [--quick] [--json PATH] [--baseline PATH] [--repeat N] [--assert-parallel MIN]
//!
//!   --quick          time only the Quick-fidelity subset (CI smoke)
//!   --json PATH      write the result document (default BENCH_engine.json)
//!   --baseline PATH  prior BENCH_engine.json to compare against; its
//!                    timings are embedded, a full-fidelity speedup is
//!                    computed, and the run exits nonzero if any subset
//!                    entry regresses >10% (plus 50 ms absolute slack)
//!   --repeat N       median-of-N timing per experiment (default 3 quick / 1 full)
//!   --assert-parallel MIN
//!                    exit nonzero unless every partitioned subset entry
//!                    reaches `parallel_speedup >= MIN`; skips cleanly (with
//!                    a message) when fewer than 2 cores are available, so
//!                    CI can invoke it unconditionally
//! ```
//!
//! Every experiment is timed twice through [`ibwan_core::runner::run_one`]:
//! once on the serial engine (a [`RunConfig`] with `PartitionMode::Off`) and
//! once with WAN-boundary partitioning forced (`PartitionMode::Force`) — two
//! config values, no process-global engine state. The serial median is the
//! `secs` field the baseline gate compares — it isolates single-thread
//! engine regressions from scheduling noise — while `secs_parallel` and
//! `parallel_speedup` track what the domain engine buys on this machine
//! (nothing on a 1-core box, where two domain threads time-share one CPU).
//! Per-experiment domain stats (`domains`, `sync_rounds`,
//! `events_per_domain`) and the fragment-coalescing tally (trains emitted,
//! fragments that rode inside a train, the event-reduction ratio) come from
//! the provenance each `run_one` captures.

use bench::catalog;
use ibwan_core::runner::run_one;
use ibwan_core::{Fidelity, PartitionMode, RunConfig};
use minijson::{obj, Value};
use simcore::stats::median;

/// The fixed subset: one verbs, one MPI, one NFS experiment — together they
/// cover the RC data path, the rendezvous protocol stack, and the RPC/ULP
/// layers that dominate `repro --full` wall time.
const SUBSET: [&str; 3] = ["fig5a", "fig8a", "fig13a"];

struct Timing {
    id: &'static str,
    fidelity: Fidelity,
    /// Serial-engine median — the number the baseline gate compares.
    secs: f64,
    /// Median with partitioning forced at WAN boundaries.
    secs_parallel: f64,
    /// `secs / secs_parallel` (1.0 when the experiment never partitions).
    parallel_speedup: f64,
    /// Widest domain split the forced run produced (0 = no plan, ran serial).
    domains: u64,
    /// Blocking window-synchronization rounds across one forced run.
    sync_rounds: u64,
    /// Windows advanced without blocking on a neighbor (batched-horizon
    /// wins) across one forced run.
    sync_rounds_saved: u64,
    /// Nanoseconds domain threads spent parked at window barriers.
    barrier_ns: u64,
    /// Events dispatched per domain index in one forced run.
    events_per_domain: Vec<u64>,
    /// Coalescing tally for one run of this experiment (deterministic, so
    /// identical across repeats): trains emitted and fragments coalesced.
    trains_emitted: u64,
    fragments_coalesced: u64,
    /// Fraction of would-be hop events that rode inside a train:
    /// `fragments_coalesced / (events_processed + fragments_coalesced)`.
    coalescing_ratio: f64,
}

const USAGE: &str =
    "usage: perf [--quick] [--json PATH] [--baseline PATH] [--repeat N] [--assert-parallel MIN]";

fn bad_usage(msg: &str) -> ! {
    eprintln!("perf: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut quick_only = false;
    let mut json_path = "BENCH_engine.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut repeat: Option<usize> = None;
    let mut assert_parallel: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick_only = true,
            "--json" => {
                json_path = args
                    .next()
                    .unwrap_or_else(|| bad_usage("--json needs a path"))
            }
            "--baseline" => {
                baseline_path = Some(
                    args.next()
                        .unwrap_or_else(|| bad_usage("--baseline needs a path")),
                )
            }
            "--repeat" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| bad_usage("--repeat needs a count"));
                repeat = Some(
                    v.parse()
                        .unwrap_or_else(|_| bad_usage("--repeat needs an integer")),
                );
            }
            "--assert-parallel" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| bad_usage("--assert-parallel needs a minimum speedup"));
                let min: f64 = v
                    .parse()
                    .unwrap_or_else(|_| bad_usage("--assert-parallel needs a number"));
                if !min.is_finite() || min <= 0.0 {
                    bad_usage("--assert-parallel needs a positive speedup");
                }
                assert_parallel = Some(min);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => bad_usage(&format!("unknown argument {other:?}")),
        }
    }

    let experiments = catalog();
    let subset: Vec<_> = SUBSET
        .iter()
        .map(|id| {
            experiments
                .iter()
                .find(|e| e.id == *id)
                .unwrap_or_else(|| panic!("experiment {id} missing from catalog"))
        })
        .collect();

    let fidelities: &[Fidelity] = if quick_only {
        &[Fidelity::Quick]
    } else {
        &[Fidelity::Quick, Fidelity::Full]
    };

    let mut timings = Vec::new();
    for &fidelity in fidelities {
        let serial_cfg = RunConfig {
            fidelity,
            partition: PartitionMode::Off,
            ..RunConfig::default()
        };
        let forced_cfg = RunConfig {
            fidelity,
            partition: PartitionMode::Force,
            ..RunConfig::default()
        };
        let reps = repeat.unwrap_or(match fidelity {
            Fidelity::Quick => 3,
            Fidelity::Full => 1,
        });
        // Serial columns first, for the whole subset: these are the
        // baseline-gated numbers, and the forced-partition reps oversubscribe
        // the machine (two domain threads per core on small boxes), so
        // running them earlier would contaminate the serial samples that
        // follow.
        let mut serial_cols = Vec::new();
        for e in &subset {
            let mut serial_samples = Vec::new();
            let mut tally = ibfabric::fabric::RunTally::default();
            for _ in 0..reps.max(1) {
                let out = run_one(e, &serial_cfg);
                serial_samples.push(out.provenance.wall_secs);
                tally = out.provenance.tally;
            }
            serial_cols.push((median(&mut serial_samples), tally));
        }

        for (e, (secs, tally)) in subset.iter().zip(serial_cols) {
            // Parallel column: partition wherever a domain plan exists. An
            // experiment with no WAN cut (or a lossy Longbow) still runs
            // serially under Force; its tally then shows 0 domains.
            let mut parallel_samples = Vec::new();
            let mut parts = ibfabric::fabric::RunTally::default();
            for _ in 0..reps.max(1) {
                let out = run_one(e, &forced_cfg);
                parallel_samples.push(out.provenance.wall_secs);
                parts = out.provenance.tally;
            }
            let secs_parallel = median(&mut parallel_samples);
            let parallel_speedup = if secs_parallel > 0.0 {
                secs / secs_parallel
            } else {
                1.0
            };

            let trains = tally.counters.trains_emitted;
            let frags = tally.counters.fragments_coalesced;
            let ratio = tally.coalescing_ratio();
            eprintln!(
                "{:8} {fidelity:?}: serial {secs:.3}s, parallel {secs_parallel:.3}s \
                 ({parallel_speedup:.2}x, median of {reps}), domains={} \
                 sync_rounds={} (saved {}, {:.1} ms parked), \
                 coalescing {:.1}% ({trains} trains, {frags} frags)",
                e.id,
                parts.max_domains,
                parts.sync_rounds,
                parts.counters.sync_rounds_saved,
                parts.counters.barrier_ns as f64 / 1e6,
                ratio * 100.0
            );
            timings.push(Timing {
                id: e.id,
                fidelity,
                secs,
                secs_parallel,
                parallel_speedup,
                domains: parts.max_domains,
                sync_rounds: parts.sync_rounds,
                sync_rounds_saved: parts.counters.sync_rounds_saved,
                barrier_ns: parts.counters.barrier_ns,
                events_per_domain: parts.events_per_domain,
                trains_emitted: trains,
                fragments_coalesced: frags,
                coalescing_ratio: ratio,
            });
        }
    }

    // The counter probe runs serial: merged partitioned counters match
    // except `peak_queue_len`, which is a max over per-domain queues and
    // would drift from the baseline's whole-fabric peak.
    let counters = engine_counters();
    eprintln!(
        "engine counters (8 MiB WAN RC stream): events_processed={} \
         events_allocated={} peak_queue_len={} pool_hit_rate={:.4} \
         trains_emitted={} fragments_coalesced={} coalescing_ratio={:.4}",
        counters.events_processed,
        counters.events_allocated,
        counters.peak_queue_len,
        counters.pool_hit_rate(),
        counters.trains_emitted,
        counters.fragments_coalesced,
        counters.coalescing_ratio()
    );

    let baseline = baseline_path.as_deref().map(|p| {
        let text =
            std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"));
        Value::parse(&text).unwrap_or_else(|e| panic!("cannot parse baseline {p}: {e}"))
    });

    let full_total: f64 = timings
        .iter()
        .filter(|t| t.fidelity == Fidelity::Full)
        .map(|t| t.secs)
        .sum();
    let speedup = baseline.as_ref().and_then(|b| {
        let base_total = baseline_full_total(b)?;
        (full_total > 0.0).then(|| base_total / full_total)
    });
    if let Some(s) = speedup {
        eprintln!("full-fidelity subset speedup vs baseline: {s:.2}x");
    }

    // Regression gate: every current subset entry is matched against the
    // baseline entry with the same (id, fidelity); a regression is >10%
    // slower AND >50 ms absolute (the slack keeps sub-100 ms Quick timings
    // from tripping on scheduler noise).
    let mut regressions = Vec::new();
    if let Some(b) = &baseline {
        for t in &timings {
            if let Some(base) = baseline_entry_secs(b, t.id, t.fidelity) {
                if t.secs > base * 1.10 && t.secs > base + 0.05 {
                    regressions.push(format!(
                        "{} {:?}: {:.3}s vs baseline {:.3}s (+{:.0}%)",
                        t.id,
                        t.fidelity,
                        t.secs,
                        base,
                        (t.secs / base - 1.0) * 100.0
                    ));
                }
            }
        }
    }

    let timing_values: Vec<Value> = timings
        .iter()
        .map(|t| {
            obj([
                ("id", Value::from(t.id)),
                ("fidelity", Value::from(t.fidelity.name())),
                ("secs", Value::Num(t.secs)),
                ("secs_parallel", Value::Num(t.secs_parallel)),
                ("parallel_speedup", Value::Num(t.parallel_speedup)),
                ("domains", Value::from(t.domains)),
                ("sync_rounds", Value::from(t.sync_rounds)),
                ("sync_rounds_saved", Value::from(t.sync_rounds_saved)),
                ("barrier_ns", Value::from(t.barrier_ns)),
                (
                    "events_per_domain",
                    Value::Arr(
                        t.events_per_domain
                            .iter()
                            .map(|&e| Value::from(e))
                            .collect(),
                    ),
                ),
                ("trains_emitted", Value::from(t.trains_emitted)),
                ("fragments_coalesced", Value::from(t.fragments_coalesced)),
                ("coalescing_ratio", Value::Num(t.coalescing_ratio)),
            ])
        })
        .collect();

    let mut doc = vec![
        ("benchmark", Value::from("engine-hotpath")),
        (
            "subset",
            Value::Arr(SUBSET.iter().map(|&s| Value::from(s)).collect()),
        ),
        ("timings", Value::Arr(timing_values)),
        (
            "engine_counters",
            obj([
                ("events_processed", Value::from(counters.events_processed)),
                ("events_allocated", Value::from(counters.events_allocated)),
                ("peak_queue_len", Value::from(counters.peak_queue_len)),
                ("pool_hit_rate", Value::Num(counters.pool_hit_rate())),
                ("trains_emitted", Value::from(counters.trains_emitted)),
                (
                    "fragments_coalesced",
                    Value::from(counters.fragments_coalesced),
                ),
                ("coalescing_ratio", Value::Num(counters.coalescing_ratio())),
            ]),
        ),
    ];
    if let Some(b) = baseline {
        if let Some(s) = speedup {
            doc.push(("speedup_full_vs_baseline", Value::Num(s)));
        }
        doc.push(("baseline", b));
    }
    std::fs::write(&json_path, obj(doc).to_pretty() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    eprintln!("wrote {json_path}");

    if !regressions.is_empty() {
        eprintln!("PERF REGRESSION vs {}:", baseline_path.as_deref().unwrap());
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }

    if let Some(min) = assert_parallel {
        assert_parallel_gate(&timings, min);
    }
}

/// `--assert-parallel` gate: every subset entry that actually partitioned
/// must reach `parallel_speedup >= min`. With fewer than 2 cores free the
/// forced run time-shares one CPU (or drops to the cooperative executor),
/// so the assertion is skipped with a message rather than failed — CI can
/// invoke the flag unconditionally.
fn assert_parallel_gate(timings: &[Timing], min: f64) {
    let budget = simcore::domain::spawn_budget();
    if budget < 2 {
        eprintln!(
            "--assert-parallel {min}: skipped (thread budget {budget} < 2; \
             domain threads would time-share one core)"
        );
        return;
    }
    let partitioned: Vec<_> = timings.iter().filter(|t| t.domains >= 2).collect();
    if partitioned.is_empty() {
        eprintln!("--assert-parallel {min}: FAILED — no subset entry partitioned");
        std::process::exit(1);
    }
    let slow: Vec<_> = partitioned
        .iter()
        .filter(|t| t.parallel_speedup < min)
        .collect();
    if slow.is_empty() {
        eprintln!(
            "--assert-parallel {min}: ok ({} partitioned entr{})",
            partitioned.len(),
            if partitioned.len() == 1 { "y" } else { "ies" }
        );
        return;
    }
    eprintln!("--assert-parallel {min}: FAILED");
    for t in slow {
        eprintln!(
            "  {} {:?}: parallel_speedup {:.2} < {min} (serial {:.3}s, parallel {:.3}s)",
            t.id, t.fidelity, t.parallel_speedup, t.secs, t.secs_parallel
        );
    }
    std::process::exit(1);
}

/// The baseline document's timing (secs) for a given (id, fidelity) pair.
fn baseline_entry_secs(doc: &Value, id: &str, fidelity: Fidelity) -> Option<f64> {
    for t in doc.get("timings")?.as_array()? {
        if t.get("id")?.as_str()? == id && t.get("fidelity")?.as_str()? == fidelity.name() {
            return t.get("secs")?.as_f64();
        }
    }
    None
}

/// Sum of the baseline document's full-fidelity subset timings.
fn baseline_full_total(doc: &Value) -> Option<f64> {
    let timings = doc.get("timings")?.as_array()?;
    let mut total = 0.0;
    let mut seen = 0;
    for t in timings {
        if t.get("fidelity")?.as_str()? == "full" && SUBSET.contains(&t.get("id")?.as_str()?) {
            total += t.get("secs")?.as_f64()?;
            seen += 1;
        }
    }
    (seen == SUBSET.len()).then_some(total)
}

/// Counter-verified allocation behavior: stream an 8 MiB WAN RC transfer
/// through one fabric and read the engine's event-pool counters out of the
/// report.
fn engine_counters() -> simcore::EngineCounters {
    use ibfabric::perftest::{rc_qp_pair, BwConfig, BwPeer};
    use ibfabric::qp::QpConfig;
    use ibwan_core::topology::wan_node_pair;
    use simcore::Dur;

    let cfg = RunConfig {
        partition: PartitionMode::Off,
        ..RunConfig::default()
    };
    // 8 MiB in 64 KiB messages: enough fragments (~4k) to reach steady
    // state while keeping the probe itself sub-second.
    let msgs = 128;
    let (mut f, a, b) = wan_node_pair(
        &cfg,
        42,
        Dur::from_us(100),
        Box::new(BwPeer::sender(BwConfig::new(65536, msgs))),
        Box::new(BwPeer::receiver()),
    );
    let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
    f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
    f.hca_mut(b).ulp_mut::<BwPeer>().qpn = qb;
    f.run();
    f.report().engine_counters
}
