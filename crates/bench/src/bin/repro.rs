//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--full] [--json DIR] [--no-coalescing] [--serial] [IDS...]
//!
//!   IDS       experiment ids to run ("table1", "fig5a", ...; default: all)
//!   --full    use the Full fidelity (the EXPERIMENTS.md numbers); default
//!             is Quick
//!   --json DIR  additionally write each figure as DIR/<id>.json
//!   --no-coalescing  force the per-fragment wire path (A/B harness for the
//!             fragment-train fast path; outputs must be bit-identical)
//!   --serial  force the single-threaded engine even where a WAN domain
//!             plan exists (A/B harness for the partitioned engine; outputs
//!             must be bit-identical). `IBWAN_SERIAL=1` does the same for
//!             binaries without the flag.
//! ```

use bench::catalog;
use ibwan_core::Fidelity;
use std::io::Write as _;

fn main() {
    let mut fidelity = Fidelity::Quick;
    let mut json_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => fidelity = Fidelity::Full,
            "--json" => {
                json_dir = Some(args.next().expect("--json needs a directory"));
            }
            "--no-coalescing" => ibfabric::fabric::set_default_coalescing(false),
            "--serial" => {
                ibfabric::fabric::set_partition_mode(ibfabric::fabric::PartitionMode::Off)
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--full] [--json DIR] [--no-coalescing] [--serial] [IDS...]"
                );
                eprintln!("experiments:");
                for e in catalog() {
                    eprintln!("  {:8} {}", e.id, e.description);
                }
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }

    let experiments = catalog();
    let selected: Vec<_> = if ids.is_empty() {
        experiments.iter().collect()
    } else {
        let sel: Vec<_> = experiments
            .iter()
            .filter(|e| ids.iter().any(|i| i == e.id))
            .collect();
        for id in &ids {
            assert!(
                experiments.iter().any(|e| e.id == id),
                "unknown experiment id {id:?} (try --help)"
            );
        }
        sel
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for e in selected {
        let t0 = std::time::Instant::now();
        let fig = (e.run)(fidelity);
        let wall = t0.elapsed();
        writeln!(out, "{}", fig.to_table()).unwrap();
        writeln!(
            out,
            "# regenerated in {:.1}s wall clock at {fidelity:?} fidelity\n",
            wall.as_secs_f64()
        )
        .unwrap();
        if let Some(dir) = &json_dir {
            std::fs::write(format!("{dir}/{}.json", fig.id), fig.to_json()).expect("write json");
        }
    }
}
