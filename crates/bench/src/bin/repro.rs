//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--full] [--json DIR] [--check DIR] [--no-coalescing] [--serial]
//!       [--seed N] [--workers N] [--list] [IDS...]
//!
//!   IDS       experiment ids to run ("table1", "fig5a", ...; default: all)
//!   --full    use the Full fidelity (the EXPERIMENTS.md numbers); default
//!             is Quick
//!   --json DIR   additionally write each figure as DIR/<id>.json, stamped
//!             with a provenance block (config digest, seed, engine mode,
//!             wall time, engine counters)
//!   --check DIR  regenerate and diff against recorded goldens DIR/<id>.json;
//!             exit nonzero with a per-series report on any mismatch
//!   --no-coalescing  force the per-fragment wire path (A/B harness for the
//!             fragment-train fast path; outputs must be bit-identical)
//!   --serial  force the single-threaded engine even where a WAN domain
//!             plan exists (A/B harness for the partitioned engine; outputs
//!             must be bit-identical). `IBWAN_SERIAL=1` does the same for
//!             harnesses that cannot pass flags.
//!   --seed N  offset every experiment's canonical seed by N (robustness
//!             sweeps; N=0 reproduces the recorded goldens)
//!   --workers N  cap the experiment-scheduler worker pool
//!   --list    print machine-readable `id<TAB>description` lines and exit
//! ```
//!
//! All flags are parsed into one [`RunConfig`] before anything runs, so
//! flag order never matters. Unknown or duplicate flags exit 2.

use bench::catalog;
use ibwan_core::runner::{self, RunOutcome};
use ibwan_core::{Fidelity, RunConfig};
use std::io::Write as _;

/// Everything the command line resolves to, before any experiment runs.
struct Cli {
    cfg: RunConfig,
    json_dir: Option<String>,
    check_dir: Option<String>,
    list: bool,
    ids: Vec<String>,
}

fn usage_line() -> &'static str {
    "usage: repro [--full] [--json DIR] [--check DIR] [--no-coalescing] [--serial]\n\
     \x20            [--seed N] [--workers N] [--list] [IDS...]"
}

/// Exit 2 with a parse error — bad usage, not a failed experiment.
fn bad_usage(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("{}", usage_line());
    std::process::exit(2);
}

/// Stdout write guard: a closed pipe (`repro --help | head`) means the
/// reader has everything it wants — exit quietly instead of panicking.
fn pipe_ok(result: std::io::Result<()>) {
    if result.is_err() {
        std::process::exit(0);
    }
}

fn parse_cli(args: impl Iterator<Item = String>) -> Cli {
    let mut cli = Cli {
        cfg: RunConfig::default(),
        json_dir: None,
        check_dir: None,
        list: false,
        ids: Vec::new(),
    };
    let mut seen: Vec<String> = Vec::new();
    let mut args = args.peekable();
    let once = |seen: &mut Vec<String>, flag: &str| {
        if seen.iter().any(|s| s == flag) {
            bad_usage(&format!("duplicate flag {flag}"));
        }
        seen.push(flag.to_string());
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => {
                once(&mut seen, "--full");
                cli.cfg.fidelity = Fidelity::Full;
            }
            "--json" => {
                once(&mut seen, "--json");
                cli.json_dir = Some(
                    args.next()
                        .unwrap_or_else(|| bad_usage("--json needs a directory")),
                );
            }
            "--check" => {
                once(&mut seen, "--check");
                cli.check_dir = Some(
                    args.next()
                        .unwrap_or_else(|| bad_usage("--check needs a directory")),
                );
            }
            "--no-coalescing" => {
                once(&mut seen, "--no-coalescing");
                cli.cfg.coalescing = false;
            }
            "--serial" => {
                once(&mut seen, "--serial");
                cli.cfg.partition = ibwan_core::PartitionMode::Off;
            }
            "--seed" => {
                once(&mut seen, "--seed");
                let v = args
                    .next()
                    .unwrap_or_else(|| bad_usage("--seed needs a number"));
                cli.cfg.seed = v
                    .parse()
                    .unwrap_or_else(|_| bad_usage(&format!("--seed: not a number: {v:?}")));
            }
            "--workers" => {
                once(&mut seen, "--workers");
                let v = args
                    .next()
                    .unwrap_or_else(|| bad_usage("--workers needs a count"));
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| bad_usage(&format!("--workers: not a count: {v:?}")));
                if n == 0 {
                    bad_usage("--workers must be at least 1");
                }
                cli.cfg.workers = Some(n);
            }
            "--list" => {
                once(&mut seen, "--list");
                cli.list = true;
            }
            "--help" | "-h" => {
                // Help goes to stdout: `repro --help | grep fig` must work.
                let stdout = std::io::stdout();
                let mut out = stdout.lock();
                pipe_ok(writeln!(out, "{}", usage_line()));
                pipe_ok(writeln!(out, "experiments:"));
                for e in catalog() {
                    pipe_ok(writeln!(
                        out,
                        "  {:8} {:9} {}",
                        e.id,
                        format!("[{}]", e.paper_ref),
                        e.description
                    ));
                }
                std::process::exit(0);
            }
            other if other.starts_with('-') => bad_usage(&format!("unknown flag {other:?}")),
            other => cli.ids.push(other.to_string()),
        }
    }
    cli.cfg = cli.cfg.with_env_aliases();
    cli
}

fn main() {
    let cli = parse_cli(std::env::args().skip(1));

    if cli.list {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for e in catalog() {
            pipe_ok(writeln!(out, "{}\t{}", e.id, e.description));
        }
        return;
    }

    let experiments = catalog();
    for id in &cli.ids {
        if !experiments.iter().any(|e| e.id == id) {
            eprintln!("repro: unknown experiment id {id:?} (see --help)");
            std::process::exit(2);
        }
    }
    let selected: Vec<_> = experiments
        .into_iter()
        .filter(|e| cli.ids.is_empty() || cli.ids.iter().any(|i| i == e.id))
        .collect();

    if let Some(dir) = &cli.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }

    // Progress streams to stderr so stdout stays pipeable table output.
    let outcomes = runner::run_jobs(selected, &cli.cfg, |line| eprintln!("{line}"));

    if let Some(dir) = &cli.check_dir {
        check_goldens(dir, &outcomes, &cli.cfg);
        return;
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // All JSON files land before any table output: a closed stdout pipe
    // (`repro --json out/ | head`) must not drop requested files.
    if let Some(dir) = &cli.json_dir {
        for o in &outcomes {
            let json = runner::stamped_value(&o.figure, &o.provenance).to_pretty();
            std::fs::write(format!("{dir}/{}.json", o.figure.id), json).expect("write json");
        }
    }
    for o in &outcomes {
        pipe_ok(writeln!(out, "{}", o.figure.to_table()));
        pipe_ok(writeln!(
            out,
            "# regenerated in {:.1}s wall clock at {} fidelity (config {})\n",
            o.provenance.wall_secs, o.provenance.fidelity, o.provenance.config_digest
        ));
    }
}

/// `--check DIR`: diff every outcome against its recorded golden; exit 1
/// with per-series detail on any mismatch.
fn check_goldens(dir: &str, outcomes: &[RunOutcome], cfg: &RunConfig) {
    let dir = std::path::Path::new(dir);
    // Ignore stdout pipe errors here (unlike `pipe_ok`): the exit code is
    // the contract, and an early exit 0 would mask a golden failure.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut failed = 0usize;
    for o in outcomes {
        let diffs = runner::check_against(dir, o);
        if diffs.is_empty() {
            let _ = writeln!(out, "OK   {}", o.id);
        } else {
            failed += 1;
            let _ = writeln!(out, "FAIL {} ({} discrepancies)", o.id, diffs.len());
            for d in &diffs {
                let _ = writeln!(out, "     {d}");
            }
        }
    }
    if failed > 0 {
        eprintln!(
            "repro --check: {failed}/{} figures diverged from {} (config {})",
            outcomes.len(),
            dir.display(),
            cfg.digest()
        );
        std::process::exit(1);
    }
    let _ = writeln!(
        out,
        "repro --check: all {} figures bit-identical to {}",
        outcomes.len(),
        dir.display()
    );
}
