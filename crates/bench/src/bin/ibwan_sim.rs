//! `ibwan-sim` — run declarative cluster-of-clusters experiments from JSON
//! scenario files.
//!
//! ```text
//! ibwan-sim scenario1.json [scenario2.json ...]   # run scenarios
//! ibwan-sim --sweep scenario.json                  # rerun across the paper's
//!                                                  # delay sweep (0..10 ms)
//! ibwan-sim --example                              # print a sample scenario
//! ibwan-sim --json scenario.json                   # emit results as JSON
//! ibwan-sim --serial scenario.json                 # force the serial engine
//! ibwan-sim --no-coalescing scenario.json          # per-fragment wire path
//! ibwan-sim --seed N scenario.json                 # offset scenario seeds
//! ```
//!
//! All flags are parsed into one [`RunConfig`] before any scenario runs —
//! flag order never matters, and `--serial`/`--no-coalescing` are plain
//! config fields (results are identical either way; timing A/B only).
//! Unknown or duplicate flags exit 2.

use ibwan_core::runner;
use ibwan_core::scenario::{example_scenario, Scenario};
use ibwan_core::{PartitionMode, RunConfig};

fn bad_usage(msg: &str) -> ! {
    eprintln!("ibwan-sim: {msg}");
    eprintln!(
        "usage: ibwan-sim [--json] [--sweep] [--serial] [--no-coalescing] [--seed N] SCENARIO.json ..."
    );
    eprintln!("       ibwan-sim --example   # print a sample scenario file");
    std::process::exit(2);
}

fn main() {
    let mut cfg = RunConfig::default();
    let mut as_json = false;
    let mut sweep = false;
    let mut example = false;
    let mut files: Vec<String> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().is_none() {
        bad_usage("no scenario files given (try --example)");
    }
    let once = |seen: &mut Vec<String>, flag: &str| {
        if seen.iter().any(|s| s == flag) {
            bad_usage(&format!("duplicate flag {flag}"));
        }
        seen.push(flag.to_string());
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                once(&mut seen, "--json");
                as_json = true;
            }
            "--sweep" => {
                once(&mut seen, "--sweep");
                sweep = true;
            }
            "--serial" => {
                once(&mut seen, "--serial");
                cfg.partition = PartitionMode::Off;
            }
            "--no-coalescing" => {
                once(&mut seen, "--no-coalescing");
                cfg.coalescing = false;
            }
            "--seed" => {
                once(&mut seen, "--seed");
                let v = args
                    .next()
                    .unwrap_or_else(|| bad_usage("--seed needs a number"));
                cfg.seed = v
                    .parse()
                    .unwrap_or_else(|_| bad_usage(&format!("--seed: not a number: {v:?}")));
            }
            "--example" => {
                once(&mut seen, "--example");
                example = true;
            }
            "--help" | "-h" => {
                println!(
                    "usage: ibwan-sim [--json] [--sweep] [--serial] [--no-coalescing] [--seed N] SCENARIO.json ..."
                );
                println!("       ibwan-sim --example   # print a sample scenario file");
                return;
            }
            other if other.starts_with('-') => bad_usage(&format!("unknown flag {other:?}")),
            other => files.push(other.to_string()),
        }
    }
    let cfg = cfg.with_env_aliases();

    if example {
        println!("{}", example_scenario().to_json());
        return;
    }
    if files.is_empty() {
        bad_usage("no scenario files given (try --example)");
    }

    let mut results = Vec::new();
    for file in &files {
        let text =
            std::fs::read_to_string(file).unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        let scenario =
            Scenario::from_json(&text).unwrap_or_else(|e| panic!("cannot parse {file}: {e}"));
        let variants: Vec<Scenario> = if sweep {
            ibwan_core::PAPER_DELAYS_US
                .iter()
                .map(|&d| {
                    let mut v = scenario.clone();
                    v.name = format!("{}@{}us", scenario.name, d);
                    v.topology.delay_us = d;
                    v
                })
                .collect()
        } else {
            vec![scenario]
        };
        for v in variants {
            // Same tally capture + provenance stamp as `repro --json`.
            let (result, prov) = runner::run_scenario(&v, &cfg);
            if as_json {
                let mut value = result.to_value();
                if let minijson::Value::Obj(members) = &mut value {
                    members.push(("provenance".into(), prov.to_value()));
                }
                results.push(value);
            } else {
                println!(
                    "{:<36} {:>14} = {:>12.2} {:<8} ({:.2}s wall)",
                    result.name, result.metric, result.value, result.unit, prov.wall_secs
                );
            }
        }
    }
    if as_json {
        let arr = minijson::Value::Arr(results);
        println!("{}", arr.to_pretty());
    }
}
