//! `ibwan-sim` — run declarative cluster-of-clusters experiments from JSON
//! scenario files.
//!
//! ```text
//! ibwan-sim scenario1.json [scenario2.json ...]   # run scenarios
//! ibwan-sim --sweep scenario.json                  # rerun across the paper's
//!                                                  # delay sweep (0..10 ms)
//! ibwan-sim --example                              # print a sample scenario
//! ibwan-sim --json scenario.json                   # emit results as JSON
//! ibwan-sim --serial scenario.json                 # force the serial engine
//!                                                  # (results are identical;
//!                                                  # timing A/B only)
//! ```

use ibwan_core::scenario::{example_scenario, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: ibwan-sim [--json] [--sweep] [--serial] SCENARIO.json ...");
        eprintln!("       ibwan-sim --example   # print a sample scenario file");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--example") {
        println!("{}", example_scenario().to_json());
        return;
    }
    let as_json = args.iter().any(|a| a == "--json");
    let sweep = args.iter().any(|a| a == "--sweep");
    if args.iter().any(|a| a == "--serial") {
        ibfabric::fabric::set_partition_mode(ibfabric::fabric::PartitionMode::Off);
    }
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        eprintln!("no scenario files given (try --example)");
        std::process::exit(2);
    }
    let mut results = Vec::new();
    for file in files {
        let text =
            std::fs::read_to_string(file).unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        let scenario =
            Scenario::from_json(&text).unwrap_or_else(|e| panic!("cannot parse {file}: {e}"));
        let variants: Vec<Scenario> = if sweep {
            ibwan_core::PAPER_DELAYS_US
                .iter()
                .map(|&d| {
                    let mut v = scenario.clone();
                    v.name = format!("{}@{}us", scenario.name, d);
                    v.topology.delay_us = d;
                    v
                })
                .collect()
        } else {
            vec![scenario]
        };
        for v in variants {
            let t0 = std::time::Instant::now();
            let result = v.run();
            let wall = t0.elapsed().as_secs_f64();
            if as_json {
                results.push(result);
            } else {
                println!(
                    "{:<36} {:>14} = {:>12.2} {:<8} ({wall:.2}s wall)",
                    result.name, result.metric, result.value, result.unit
                );
            }
        }
    }
    if as_json {
        let arr = minijson::Value::Arr(results.iter().map(|r| r.to_value()).collect());
        println!("{}", arr.to_pretty());
    }
}
