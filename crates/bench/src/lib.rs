//! # bench — regeneration harness for every table and figure
//!
//! The [`all_figures`] catalog maps each of the paper's tables/figures to
//! the experiment that regenerates it. The `repro` binary prints them as
//! aligned text tables (the same rows/series the paper plots); the
//! Criterion benches under `benches/` time representative configurations
//! and the ablations called out in `DESIGN.md`.

use ibwan_core::{ext_exp, ipoib_exp, mpi_exp, nas_exp, nfs_exp, verbs, Fidelity, Figure};

/// A named, regenerable experiment.
pub struct Experiment {
    /// Identifier ("table1", "fig5a", ...).
    pub id: &'static str,
    /// What the paper shows there.
    pub description: &'static str,
    /// Regenerate the figure at the given fidelity.
    pub run: fn(Fidelity) -> Figure,
}

/// The full catalog, in paper order: every table and figure of the
/// evaluation section.
pub fn catalog() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            description: "Delay overhead corresponding to wire length",
            run: |_f| verbs::table1(),
        },
        Experiment {
            id: "fig3",
            description: "Verbs-level latency: UD/RC send, RDMA write, back-to-back",
            run: verbs::fig3_latency,
        },
        Experiment {
            id: "fig4a",
            description: "Verbs UD bandwidth vs delay",
            run: |f| verbs::fig4_ud_bandwidth(false, f),
        },
        Experiment {
            id: "fig4b",
            description: "Verbs UD bidirectional bandwidth vs delay",
            run: |f| verbs::fig4_ud_bandwidth(true, f),
        },
        Experiment {
            id: "fig5a",
            description: "Verbs RC bandwidth vs delay",
            run: |f| verbs::fig5_rc_bandwidth(false, f),
        },
        Experiment {
            id: "fig5b",
            description: "Verbs RC bidirectional bandwidth vs delay",
            run: |f| verbs::fig5_rc_bandwidth(true, f),
        },
        Experiment {
            id: "fig6a",
            description: "IPoIB-UD single-stream throughput (TCP windows)",
            run: |f| ipoib_exp::fig6_ipoib_ud(false, f),
        },
        Experiment {
            id: "fig6b",
            description: "IPoIB-UD parallel-stream throughput",
            run: |f| ipoib_exp::fig6_ipoib_ud(true, f),
        },
        Experiment {
            id: "fig7a",
            description: "IPoIB-RC single-stream throughput (MTUs)",
            run: |f| ipoib_exp::fig7_ipoib_rc(false, f),
        },
        Experiment {
            id: "fig7b",
            description: "IPoIB-RC parallel-stream throughput",
            run: |f| ipoib_exp::fig7_ipoib_rc(true, f),
        },
        Experiment {
            id: "fig8a",
            description: "MPI bandwidth (MVAPICH2 defaults)",
            run: |f| mpi_exp::fig8_mpi_bandwidth(false, f),
        },
        Experiment {
            id: "fig8b",
            description: "MPI bidirectional bandwidth",
            run: |f| mpi_exp::fig8_mpi_bandwidth(true, f),
        },
        Experiment {
            id: "fig9a",
            description: "MPI bandwidth at 10 ms: rendezvous threshold tuning",
            run: |f| mpi_exp::fig9_threshold_tuning(false, f),
        },
        Experiment {
            id: "fig9b",
            description: "MPI bidir bandwidth at 10 ms: threshold tuning",
            run: |f| mpi_exp::fig9_threshold_tuning(true, f),
        },
        Experiment {
            id: "fig10a",
            description: "Multi-pair message rate, 10 us delay",
            run: |f| mpi_exp::fig10_message_rate(10, f),
        },
        Experiment {
            id: "fig10b",
            description: "Multi-pair message rate, 1 ms delay",
            run: |f| mpi_exp::fig10_message_rate(1000, f),
        },
        Experiment {
            id: "fig10c",
            description: "Multi-pair message rate, 10 ms delay",
            run: |f| mpi_exp::fig10_message_rate(10000, f),
        },
        Experiment {
            id: "fig11a",
            description: "Bcast latency, 10 us delay: original vs hierarchical",
            run: |f| mpi_exp::fig11_bcast(10, f),
        },
        Experiment {
            id: "fig11b",
            description: "Bcast latency, 100 us delay: original vs hierarchical",
            run: |f| mpi_exp::fig11_bcast(100, f),
        },
        Experiment {
            id: "fig11c",
            description: "Bcast latency, 1 ms delay: original vs hierarchical",
            run: |f| mpi_exp::fig11_bcast(1000, f),
        },
        Experiment {
            id: "fig12",
            description: "NAS IS/FT/CG class B vs delay",
            run: nas_exp::fig12_nas,
        },
        Experiment {
            id: "fig13a",
            description: "NFS/RDMA read throughput: LAN and WAN delays",
            run: nfs_exp::fig13a_nfs_rdma,
        },
        Experiment {
            id: "fig13b",
            description: "NFS transports at 100 us delay",
            run: |f| nfs_exp::fig13_transport_comparison(100, f),
        },
        Experiment {
            id: "fig13c",
            description: "NFS transports at 1000 us delay",
            run: |f| nfs_exp::fig13_transport_comparison(1000, f),
        },
        // --- extensions beyond the paper's plots ---
        Experiment {
            id: "extA",
            description: "NFS write throughput (paper omitted its numbers)",
            run: ext_exp::ext_nfs_write,
        },
        Experiment {
            id: "extB",
            description: "Rendezvous protocol comparison (RPUT/RGET/R3) on the WAN",
            run: ext_exp::ext_rndv_protocols,
        },
        Experiment {
            id: "extC",
            description: "Flat vs hierarchical allreduce (paper future work)",
            run: ext_exp::ext_hierarchical_allreduce,
        },
        Experiment {
            id: "extD",
            description: "Longbow buffer depth: link-credit BDP wall on the WAN",
            run: ext_exp::ext_longbow_credits,
        },
        Experiment {
            id: "extE",
            description: "SDP vs IPoIB sockets throughput (related-work comparison)",
            run: ext_exp::ext_sdp_vs_ipoib,
        },
        Experiment {
            id: "extF",
            description: "Parallel-filesystem striping over the WAN (future work)",
            run: ext_exp::ext_pfs_striping,
        },
    ]
}

/// Regenerate every table and figure.
pub fn all_figures(fidelity: Fidelity) -> Vec<Figure> {
    catalog().into_iter().map(|e| (e.run)(fidelity)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_table_and_figure() {
        let ids: Vec<&str> = catalog().iter().map(|e| e.id).collect();
        for required in [
            "table1", "fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "fig7a",
            "fig7b", "fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b", "fig10c", "fig11a",
            "fig11b", "fig11c", "fig12", "fig13a", "fig13b", "fig13c",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
        assert_eq!(ids.len(), 30, "24 paper experiments + 6 extensions");
    }
}
