//! # bench — regeneration harness for every table and figure
//!
//! The experiment catalog lives in [`ibwan_core::registry`] (re-exported
//! here): every table/figure of the paper mapped to the experiment that
//! regenerates it, with paper references, sweep axes, and cost estimates.
//! The `repro` binary runs entries through the unified
//! [`ibwan_core::runner`]; the Criterion benches under `benches/` time
//! representative configurations and the ablations called out in
//! `DESIGN.md`.

pub use ibwan_core::registry::{all_figures, catalog, find, Experiment};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_catalog_is_the_registry() {
        // The bench-facing names must stay wired to the core registry: the
        // binaries and benches select by id through this crate.
        assert_eq!(catalog().len(), 30);
        assert!(find("fig5a").is_some());
    }
}
