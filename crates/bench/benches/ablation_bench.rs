//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * RC in-flight window (the calibrated 16 vs alternatives) — the knob
//!   behind the Figure 5 medium-message collapse.
//! * Rendezvous threshold sweep (beyond the paper's 8 K/64 K endpoints).
//! * Message coalescing on/off for small-message streams.
//! * Adaptive threshold probing (the paper's future-work suggestion).

use criterion::{criterion_group, criterion_main, Criterion};
use ibwan_core::adaptive::probe_and_tune;
use mpisim::bench::{osu_bw, wan_pair_with};
use mpisim::proto::{CoalesceConfig, MpiConfig};
use mpisim::script::Op;
use mpisim::world::{JobSpec, MpiJob};
use simcore::Dur;
use std::hint::black_box;

fn bench_rc_window_ablation(c: &mut Criterion) {
    use ibfabric::perftest::{rc_qp_pair, BwConfig, BwPeer};
    use ibfabric::qp::QpConfig;
    use ibwan_core::wan_node_pair;

    let mut g = c.benchmark_group("ablation_rc_window");
    g.sample_size(10);
    for window in [4usize, 16, 64] {
        g.bench_function(format!("64k_at_1ms_window_{window}"), |b| {
            b.iter(|| {
                let (mut f, a, n2) = wan_node_pair(
                    7,
                    Dur::from_ms(1),
                    Box::new(BwPeer::sender(BwConfig::new(65536, 64))),
                    Box::new(BwPeer::receiver()),
                );
                let (qa, qb) = rc_qp_pair(&mut f, a, n2, QpConfig::rc().with_window(window));
                f.hca_mut(a).ulp_mut::<BwPeer>().qpn = qa;
                f.hca_mut(n2).ulp_mut::<BwPeer>().qpn = qb;
                f.run();
                black_box(f.hca(a).ulp::<BwPeer>().bandwidth_mbs())
            })
        });
    }
    g.finish();
}

fn bench_threshold_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_rndv_threshold");
    g.sample_size(10);
    for threshold in [8192u32, 32768, 65536, 262144] {
        g.bench_function(format!("bw_16k_at_10ms_thresh_{threshold}"), |b| {
            b.iter(|| {
                let cfg = MpiConfig {
                    eager_threshold: threshold,
                    ..MpiConfig::default()
                };
                let spec = wan_pair_with(Dur::from_ms(10), cfg);
                black_box(osu_bw(spec, 16384, 32, 2))
            })
        });
    }
    g.finish();
}

fn coalescing_run(coalesce: bool) -> f64 {
    let cfg = MpiConfig {
        coalescing: coalesce.then(CoalesceConfig::default),
        ..MpiConfig::default()
    };
    let spec = JobSpec::two_clusters(1, 1, Dur::from_ms(1)).with_mpi(cfg);
    let mut job = MpiJob::build(spec, |rank, _| {
        // 2000 small messages one way, then a drain marker exchange.
        let mut ops = vec![Op::Mark { id: 0 }];
        if rank == 0 {
            ops.push(Op::SendWindow { to: 1, len: 512, tag: 1, count: 2000 });
            ops.push(Op::Recv { from: 1, tag: 2 });
        } else {
            ops.push(Op::RecvWindow { from: 0, tag: 1, count: 2000 });
            ops.push(Op::Send { to: 0, len: 4, tag: 2 });
        }
        ops.push(Op::Mark { id: 1 });
        ops
    });
    job.run();
    let r = &job.process(0).runner;
    r.mark(1).unwrap().since(r.mark(0).unwrap()).as_us_f64()
}

fn bench_coalescing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_coalescing");
    g.sample_size(10);
    g.bench_function("2000x512b_at_1ms_off", |b| {
        b.iter(|| black_box(coalescing_run(false)))
    });
    g.bench_function("2000x512b_at_1ms_on", |b| {
        b.iter(|| black_box(coalescing_run(true)))
    });
    g.finish();
}

fn bench_adaptive_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_adaptive");
    g.sample_size(10);
    g.bench_function("probe_and_tune_10ms", |b| {
        b.iter(|| black_box(probe_and_tune(Dur::from_ms(10))))
    });
    g.finish();
}

fn bench_longbow_credits(c: &mut Criterion) {
    use ibwan_core::ext_exp::ext_longbow_credits;
    use ibwan_core::Fidelity;
    let mut g = c.benchmark_group("ablation_longbow_credits");
    g.sample_size(10);
    g.bench_function("credit_sweep_quick", |b| {
        b.iter(|| black_box(ext_longbow_credits(Fidelity::Quick)))
    });
    g.finish();
}

fn bench_sdp_paths(c: &mut Criterion) {
    use ibfabric::fabric::FabricBuilder;
    use ibfabric::hca::HcaConfig;
    use ibfabric::link::LinkConfig;
    use ibfabric::perftest::rc_qp_pair;
    use ibfabric::qp::QpConfig;
    use obsidian::LongbowPair;
    use sdp::{SdpConfig, SdpNode};

    fn sdp_run(msg: u32, count: u64, delay: Dur) -> f64 {
        let mut builder = FabricBuilder::new(3);
        let a = builder.add_hca(
            HcaConfig::default(),
            Box::new(SdpNode::sender(SdpConfig::default(), msg, count)),
        );
        let b = builder.add_hca(HcaConfig::default(), Box::new(SdpNode::receiver(SdpConfig::default())));
        let sw_a = builder.add_switch();
        let sw_b = builder.add_switch();
        builder.link(a.actor, sw_a, LinkConfig::ddr_lan());
        builder.link(b.actor, sw_b, LinkConfig::ddr_lan());
        LongbowPair::insert(&mut builder, sw_a, sw_b, delay);
        let mut f = builder.finish();
        let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<SdpNode>().socket.qpn = qa;
        f.hca_mut(b).ulp_mut::<SdpNode>().socket.qpn = qb;
        f.run();
        f.hca(b).ulp::<SdpNode>().throughput_mbs()
    }

    let mut g = c.benchmark_group("ablation_sdp");
    g.sample_size(10);
    g.bench_function("bcopy_32k_lan", |b| {
        b.iter(|| black_box(sdp_run(32768, 200, Dur::ZERO)))
    });
    g.bench_function("zcopy_1m_1ms", |b| {
        b.iter(|| black_box(sdp_run(1 << 20, 24, Dur::from_ms(1))))
    });
    g.finish();
}

fn bench_patterns(c: &mut Criterion) {
    use mpisim::patterns::Pattern;

    let mut g = c.benchmark_group("ablation_patterns");
    g.sample_size(10);
    for (label, p) in [
        (
            "halo2d_16r_100us",
            Pattern::Halo2d { rows: 4, cols: 4, face_bytes: 32768, iters: 4, compute_us: 500 },
        ),
        ("ring_16r_100us", Pattern::Ring { block_bytes: 65536, iters: 8 }),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let spec = JobSpec::two_clusters(8, 8, Dur::from_us(100));
                let mut job = MpiJob::build(spec, |rank, n| p.ops(rank, n));
                black_box(job.run())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_rc_window_ablation,
    bench_threshold_sweep,
    bench_coalescing,
    bench_adaptive_probe,
    bench_longbow_credits,
    bench_sdp_paths,
    bench_patterns
);
criterion_main!(benches);
