//! Criterion benches for the IPoIB experiments (Figures 6 and 7).

use criterion::{criterion_group, criterion_main, Criterion};
use ibwan_core::ipoib_exp::run_ipoib_point;
use ibwan_core::Fidelity;
use ipoib::node::IpoibConfig;
use std::hint::black_box;

fn bench_fig6_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for delay_us in [0u64, 1000, 10000] {
        g.bench_function(format!("ud_default_window_{delay_us}us"), |b| {
            b.iter(|| {
                black_box(run_ipoib_point(
                    IpoibConfig::ud(),
                    tcpstack::DEFAULT_WINDOW,
                    1,
                    delay_us,
                    Fidelity::Quick,
                ))
            })
        });
    }
    g.bench_function("ud_8_streams_1ms", |b| {
        b.iter(|| {
            black_box(run_ipoib_point(
                IpoibConfig::ud(),
                tcpstack::DEFAULT_WINDOW,
                8,
                1000,
                Fidelity::Quick,
            ))
        })
    });
    g.finish();
}

fn bench_fig7_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for mtu in [2048u32, 16384, 65536] {
        g.bench_function(format!("rc_mtu_{mtu}_no_delay"), |b| {
            b.iter(|| {
                black_box(run_ipoib_point(
                    IpoibConfig::rc(mtu),
                    tcpstack::DEFAULT_WINDOW,
                    1,
                    0,
                    Fidelity::Quick,
                ))
            })
        });
    }
    g.bench_function("rc_64k_mtu_4_streams_1ms", |b| {
        b.iter(|| {
            black_box(run_ipoib_point(
                IpoibConfig::rc(65536),
                tcpstack::DEFAULT_WINDOW,
                4,
                1000,
                Fidelity::Quick,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig6_points, bench_fig7_points);
criterion_main!(benches);
