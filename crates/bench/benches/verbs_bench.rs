//! Criterion benches for the verbs-level experiments (Table 1, Figures
//! 3–5): times the simulation of representative points and prints nothing —
//! run the `repro` binary for the actual figure rows.

use criterion::{criterion_group, criterion_main, Criterion};
use ibwan_core::verbs::{fig3_latency, fig4_ud_bandwidth, fig5_rc_bandwidth, table1};
use ibwan_core::Fidelity;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/delay_mapping", |b| {
        b.iter(|| black_box(table1()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("latency_all_modes", |b| {
        b.iter(|| black_box(fig3_latency(Fidelity::Quick)))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("ud_bandwidth_sweep", |b| {
        b.iter(|| black_box(fig4_ud_bandwidth(false, Fidelity::Quick)))
    });
    g.bench_function("ud_bidir_sweep", |b| {
        b.iter(|| black_box(fig4_ud_bandwidth(true, Fidelity::Quick)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("rc_bandwidth_sweep", |b| {
        b.iter(|| black_box(fig5_rc_bandwidth(false, Fidelity::Quick)))
    });
    g.bench_function("rc_bidir_sweep", |b| {
        b.iter(|| black_box(fig5_rc_bandwidth(true, Fidelity::Quick)))
    });
    g.finish();
}

criterion_group!(benches, bench_table1, bench_fig3, bench_fig4, bench_fig5);
criterion_main!(benches);
