//! Criterion benches for the MPI experiments (Figures 8–11).

use criterion::{criterion_group, criterion_main, Criterion};
use mpisim::bench::{msg_rate, osu_bcast, osu_bw, wan_pair_with};
use mpisim::proto::MpiConfig;
use mpisim::world::JobSpec;
use simcore::Dur;
use std::hint::black_box;

fn bench_fig8_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for (label, size, delay_us) in [
        ("bw_64k_no_delay", 65536u32, 0u64),
        ("bw_64k_1ms", 65536, 1000),
        ("bw_1m_10ms", 1 << 20, 10000),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let spec = wan_pair_with(Dur::from_us(delay_us), MpiConfig::default());
                black_box(osu_bw(spec, size, 16, 3))
            })
        });
    }
    g.finish();
}

fn bench_fig9_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for (label, cfg) in [
        ("16k_at_10ms_original", MpiConfig::default()),
        ("16k_at_10ms_tuned", MpiConfig::wan_tuned()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let spec = wan_pair_with(Dur::from_ms(10), cfg);
                black_box(osu_bw(spec, 16384, 32, 3))
            })
        });
    }
    g.finish();
}

fn bench_fig10_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for pairs in [4usize, 16] {
        g.bench_function(format!("{pairs}_pairs_1b_1ms"), |b| {
            b.iter(|| {
                let spec = JobSpec::two_clusters(pairs, pairs, Dur::from_ms(1));
                black_box(msg_rate(spec, pairs, 1, 64, 2))
            })
        });
    }
    g.finish();
}

fn bench_fig11_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for (label, hier) in [("flat_128k_100us", false), ("hier_128k_100us", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let spec = JobSpec::two_clusters(16, 16, Dur::from_us(100));
                black_box(osu_bcast(spec, 131072, 2, hier))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig8_points,
    bench_fig9_points,
    bench_fig10_points,
    bench_fig11_points
);
criterion_main!(benches);
