//! Criterion benches for the application-level experiments (Figures 12
//! and 13).

use criterion::{criterion_group, criterion_main, Criterion};
use nasbench::NasBenchmark;
use nfssim::{run_read_experiment, NfsSetup, Transport};
use simcore::Dur;
use std::hint::black_box;

fn bench_fig12_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for bench in NasBenchmark::ALL {
        g.bench_function(format!("{}_8x8_1ms", bench.name()), |b| {
            b.iter(|| black_box(nasbench::run(bench, 8, 8, Dur::from_ms(1))))
        });
    }
    g.finish();
}

fn bench_fig13_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    for (label, transport, delay) in [
        ("rdma_lan", Transport::Rdma, None),
        ("rdma_100us", Transport::Rdma, Some(Dur::from_us(100))),
        ("ipoib_rc_1ms", Transport::IpoibRc, Some(Dur::from_ms(1))),
        ("ipoib_ud_100us", Transport::IpoibUd, Some(Dur::from_us(100))),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut s = NfsSetup::scaled(transport, 8, delay);
                s.file_size = 16 << 20;
                black_box(run_read_experiment(s))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig12_points, bench_fig13_points);
criterion_main!(benches);
