//! # ibwire — wire-level InfiniBand types
//!
//! The leaf crate holding the identifiers and the packet struct that travel
//! between fabric actors. It exists so that `simcore` can carry a *typed*
//! packet lane in its event queue ([`Packet`] rides inline in the engine's
//! pooled event nodes, with no `Box<dyn Any>` allocation or downcast per
//! fragment) without depending on the full fabric model, while `ibfabric`
//! re-exports everything here under its original paths.

use bytes::Bytes;
use std::fmt;

/// A Local IDentifier assigned by the subnet manager to every end port.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lid(pub u16);

impl fmt::Debug for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lid{}", self.0)
    }
}
impl fmt::Display for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Queue-pair number, unique within an HCA.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qpn(pub u32);

impl fmt::Debug for Qpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

/// Wire overhead per RC packet: LRH (8) + BTH (12) + iCRC/vCRC (6) and
/// framing — calibrated so a 2 KB-MTU RC stream peaks at ~980 MB/s over the
/// 8 Gb/s (1000 MB/s) SDR WAN link, matching Section 3.2.2 of the paper.
pub const RC_HEADER_BYTES: u64 = 42;

/// Wire overhead per UD packet: LRH + GRH (40) + BTH + DETH (8) + CRCs —
/// calibrated so a 2 KB UD stream peaks at ~967 MB/s over SDR, matching the
/// paper's reported verbs-level UD peak.
pub const UD_HEADER_BYTES: u64 = 70;

/// Size of an ACK / control packet on the wire (header-only packet).
pub const ACK_BYTES: u64 = 30;

/// Size of an RDMA-read request packet on the wire.
pub const READ_REQ_BYTES: u64 = 46;

/// Default InfiniBand path MTU used throughout (2048-byte payload), matching
/// the 2 KB MTU of the paper's testbed HCAs.
pub const DEFAULT_MTU: u32 = 2048;

/// InfiniBand base-transport opcodes, reduced to what the model needs.
///
/// Multi-packet messages use `First`/`Middle`/`Last` segmentation exactly like
/// the real BTH opcodes; single-packet messages use `Only`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Opcode {
    /// RC Send fragment. `position` tells reassembly where it falls.
    RcSend { position: Position },
    /// RC RDMA Write fragment (no receive WQE consumed unless `imm`).
    RcWrite { position: Position },
    /// RC RDMA Read request; `len` to read is in `msg_len`.
    RcReadRequest,
    /// RC RDMA Read response fragment streamed by the responder.
    RcReadResponse { position: Position },
    /// RC acknowledgement for every byte of message `msg_id`.
    RcAck,
    /// Single-packet unreliable datagram.
    UdSend,
}

/// Position of a fragment within its message.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Position {
    /// The only packet of a single-packet message.
    Only,
    /// First of several.
    First,
    /// Interior packet.
    Middle,
    /// Final packet — triggers reassembly completion and (RC) the ACK.
    Last,
}

impl Position {
    /// Whether this fragment completes its message.
    pub fn is_last(self) -> bool {
        matches!(self, Position::Only | Position::Last)
    }
    /// Whether this fragment starts a message.
    pub fn is_first(self) -> bool {
        matches!(self, Position::Only | Position::First)
    }

    /// Compute the position for fragment `idx` out of `count`.
    pub fn of(idx: u32, count: u32) -> Position {
        match (idx, count) {
            (_, 1) => Position::Only,
            (0, _) => Position::First,
            (i, c) if i + 1 == c => Position::Last,
            _ => Position::Middle,
        }
    }
}

/// A packet in flight on the fabric.
///
/// Payload contents are not simulated — only sizes — except for an optional
/// inline `data` fragment used by integrity property tests. The struct is
/// plain value data (the only heap reference is the optional `data` Arc), so
/// the engine moves it through its event pool without any allocation.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Destination port LID (what switches route on).
    pub dst_lid: Lid,
    /// Source port LID.
    pub src_lid: Lid,
    /// Destination QP number.
    pub dst_qpn: Qpn,
    /// Source QP number.
    pub src_qpn: Qpn,
    /// Transport opcode.
    pub opcode: Opcode,
    /// Packet sequence number within the sending QP.
    pub psn: u32,
    /// Payload bytes carried by this fragment.
    pub payload: u32,
    /// Identity of the message this fragment belongs to (sender-assigned).
    pub msg_id: u64,
    /// Total length of the message this fragment belongs to.
    pub msg_len: u32,
    /// Byte offset of this fragment within its message.
    pub offset: u32,
    /// Immediate value / user tag delivered with the message (ULPs use this
    /// as a small header; `u64::MAX` means "none" for RDMA writes, which then
    /// complete silently at the responder).
    pub imm: u64,
    /// Optional inline payload for data-integrity tests.
    pub data: Option<Bytes>,
}

impl Packet {
    /// Total wire size of this packet (payload + per-transport overhead).
    pub fn wire_bytes(&self) -> u64 {
        let header = match self.opcode {
            Opcode::RcSend { .. } | Opcode::RcWrite { .. } | Opcode::RcReadResponse { .. } => {
                RC_HEADER_BYTES
            }
            Opcode::RcAck => ACK_BYTES,
            Opcode::RcReadRequest => READ_REQ_BYTES,
            Opcode::UdSend => UD_HEADER_BYTES,
        };
        header + self.payload as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(opcode: Opcode, payload: u32) -> Packet {
        Packet {
            dst_lid: Lid(2),
            src_lid: Lid(1),
            dst_qpn: Qpn(1),
            src_qpn: Qpn(1),
            opcode,
            psn: 0,
            payload,
            msg_id: 0,
            msg_len: payload,
            offset: 0,
            imm: 0,
            data: None,
        }
    }

    #[test]
    fn positions() {
        assert_eq!(Position::of(0, 1), Position::Only);
        assert_eq!(Position::of(0, 3), Position::First);
        assert_eq!(Position::of(1, 3), Position::Middle);
        assert_eq!(Position::of(2, 3), Position::Last);
        assert!(Position::Only.is_last() && Position::Only.is_first());
        assert!(Position::Last.is_last() && !Position::Last.is_first());
        assert!(!Position::Middle.is_last() && !Position::Middle.is_first());
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(
            pkt(Opcode::RcSend { position: Position::Only }, 2048).wire_bytes(),
            2048 + RC_HEADER_BYTES
        );
        assert_eq!(pkt(Opcode::UdSend, 2048).wire_bytes(), 2048 + UD_HEADER_BYTES);
        assert_eq!(pkt(Opcode::RcAck, 0).wire_bytes(), ACK_BYTES);
        assert_eq!(pkt(Opcode::RcReadRequest, 0).wire_bytes(), READ_REQ_BYTES);
    }

    #[test]
    fn lid_display() {
        assert_eq!(format!("{}", Lid(7)), "7");
        assert_eq!(format!("{:?}", Lid(7)), "lid7");
        assert_eq!(format!("{:?}", Qpn(3)), "qp3");
    }

    #[test]
    fn header_calibration_matches_paper_peaks() {
        // SDR carries 1000 MB/s of wire bytes; goodput = payload fraction.
        let rc_goodput = 1000.0 * 2048.0 / (2048.0 + RC_HEADER_BYTES as f64);
        let ud_goodput = 1000.0 * 2048.0 / (2048.0 + UD_HEADER_BYTES as f64);
        assert!((rc_goodput - 980.0).abs() < 2.0, "rc {rc_goodput}");
        assert!((ud_goodput - 967.0).abs() < 2.0, "ud {ud_goodput}");
    }
}
