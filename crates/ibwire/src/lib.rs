//! # ibwire — wire-level InfiniBand types
//!
//! The leaf crate holding the identifiers and the packet struct that travel
//! between fabric actors. It exists so that `simcore` can carry a *typed*
//! packet lane in its event queue ([`Packet`] rides inline in the engine's
//! pooled event nodes, with no `Box<dyn Any>` allocation or downcast per
//! fragment) without depending on the full fabric model, while `ibfabric`
//! re-exports everything here under its original paths.

use bytes::Bytes;
use std::fmt;

/// A Local IDentifier assigned by the subnet manager to every end port.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lid(pub u16);

impl fmt::Debug for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lid{}", self.0)
    }
}
impl fmt::Display for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Queue-pair number, unique within an HCA.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qpn(pub u32);

impl fmt::Debug for Qpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

/// Wire overhead per RC packet: LRH (8) + BTH (12) + iCRC/vCRC (6) and
/// framing — calibrated so a 2 KB-MTU RC stream peaks at ~980 MB/s over the
/// 8 Gb/s (1000 MB/s) SDR WAN link, matching Section 3.2.2 of the paper.
pub const RC_HEADER_BYTES: u64 = 42;

/// Wire overhead per UD packet: LRH + GRH (40) + BTH + DETH (8) + CRCs —
/// calibrated so a 2 KB UD stream peaks at ~967 MB/s over SDR, matching the
/// paper's reported verbs-level UD peak.
pub const UD_HEADER_BYTES: u64 = 70;

/// Size of an ACK / control packet on the wire (header-only packet).
pub const ACK_BYTES: u64 = 30;

/// Size of an RDMA-read request packet on the wire.
pub const READ_REQ_BYTES: u64 = 46;

/// Default InfiniBand path MTU used throughout (2048-byte payload), matching
/// the 2 KB MTU of the paper's testbed HCAs.
pub const DEFAULT_MTU: u32 = 2048;

/// InfiniBand base-transport opcodes, reduced to what the model needs.
///
/// Multi-packet messages use `First`/`Middle`/`Last` segmentation exactly like
/// the real BTH opcodes; single-packet messages use `Only`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Opcode {
    /// RC Send fragment. `position` tells reassembly where it falls.
    RcSend { position: Position },
    /// RC RDMA Write fragment (no receive WQE consumed unless `imm`).
    RcWrite { position: Position },
    /// RC RDMA Read request; `len` to read is in `msg_len`.
    RcReadRequest,
    /// RC RDMA Read response fragment streamed by the responder.
    RcReadResponse { position: Position },
    /// RC acknowledgement for every byte of message `msg_id`.
    RcAck,
    /// Single-packet unreliable datagram.
    UdSend,
}

/// Position of a fragment within its message.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Position {
    /// The only packet of a single-packet message.
    Only,
    /// First of several.
    First,
    /// Interior packet.
    Middle,
    /// Final packet — triggers reassembly completion and (RC) the ACK.
    Last,
}

impl Position {
    /// Whether this fragment completes its message.
    pub fn is_last(self) -> bool {
        matches!(self, Position::Only | Position::Last)
    }
    /// Whether this fragment starts a message.
    pub fn is_first(self) -> bool {
        matches!(self, Position::Only | Position::First)
    }

    /// Compute the position for fragment `idx` out of `count`.
    pub fn of(idx: u32, count: u32) -> Position {
        match (idx, count) {
            (_, 1) => Position::Only,
            (0, _) => Position::First,
            (i, c) if i + 1 == c => Position::Last,
            _ => Position::Middle,
        }
    }
}

/// A packet in flight on the fabric.
///
/// Payload contents are not simulated — only sizes — except for an optional
/// inline `data` fragment used by integrity property tests. The struct is
/// plain value data (the only heap reference is the optional `data` Arc), so
/// the engine moves it through its event pool without any allocation.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Destination port LID (what switches route on).
    pub dst_lid: Lid,
    /// Source port LID.
    pub src_lid: Lid,
    /// Destination QP number.
    pub dst_qpn: Qpn,
    /// Source QP number.
    pub src_qpn: Qpn,
    /// Transport opcode.
    pub opcode: Opcode,
    /// Packet sequence number within the sending QP.
    pub psn: u32,
    /// Payload bytes carried by this fragment.
    pub payload: u32,
    /// Identity of the message this fragment belongs to (sender-assigned).
    pub msg_id: u64,
    /// Total length of the message this fragment belongs to.
    pub msg_len: u32,
    /// Byte offset of this fragment within its message.
    pub offset: u32,
    /// Immediate value / user tag delivered with the message (ULPs use this
    /// as a small header; `u64::MAX` means "none" for RDMA writes, which then
    /// complete silently at the responder).
    pub imm: u64,
    /// Number of back-to-back fragments this packet represents (≥ 1). A
    /// value above 1 makes this a *fragment train*: `count` equal-size
    /// fragments of one message with consecutive PSNs, travelling the wire
    /// as a single event. `psn`, `offset`, `payload`, and `opcode` describe
    /// the head fragment; [`Packet::frag`] materializes any member.
    pub count: u32,
    /// Train member spacing in message bytes: fragment `k` sits at
    /// `offset + k * stride`. Equals `payload` for trains (all members are
    /// full-size); `0` for ordinary single-fragment packets.
    pub stride: u32,
    /// Inter-fragment arrival spacing of the train at the current hop, in
    /// nanoseconds: fragment `k` arrives `k * gap_ns` after the head. Each
    /// hop rewrites it to its own egress spacing. `0` for single fragments
    /// (and for a train whose members all arrive at one instant, which only
    /// happens before first serialization).
    pub gap_ns: u64,
    /// Optional inline payload for data-integrity tests. For a train this
    /// is either `None` or the concatenated payload of all members
    /// (`count * stride` bytes).
    pub data: Option<Bytes>,
}

impl Packet {
    /// Total wire size of one fragment (payload + per-transport overhead).
    /// For a train this is the per-member size; see
    /// [`Packet::train_wire_bytes`] for the whole train.
    pub fn wire_bytes(&self) -> u64 {
        let header = match self.opcode {
            Opcode::RcSend { .. } | Opcode::RcWrite { .. } | Opcode::RcReadResponse { .. } => {
                RC_HEADER_BYTES
            }
            Opcode::RcAck => ACK_BYTES,
            Opcode::RcReadRequest => READ_REQ_BYTES,
            Opcode::UdSend => UD_HEADER_BYTES,
        };
        header + self.payload as u64
    }

    /// Wire bytes of the entire train (all `count` members).
    pub fn train_wire_bytes(&self) -> u64 {
        self.count as u64 * self.wire_bytes()
    }

    /// True when this packet carries more than one fragment.
    pub fn is_train(&self) -> bool {
        self.count > 1
    }

    /// Message bytes covered by the train (`count * payload`).
    pub fn train_payload_bytes(&self) -> u32 {
        if self.count > 1 {
            self.count * self.stride
        } else {
            self.payload
        }
    }

    /// Whether the train's tail fragment completes its message.
    pub fn tail_is_last(&self) -> bool {
        self.offset + self.train_payload_bytes() >= self.msg_len
    }

    /// The [`Position`] of the fragment at `offset` within a message of
    /// `msg_len` bytes carrying `payload` bytes.
    fn position_at(offset: u32, payload: u32, msg_len: u32) -> Position {
        let first = offset == 0;
        let last = offset + payload >= msg_len;
        match (first, last) {
            (true, true) => Position::Only,
            (true, false) => Position::First,
            (false, true) => Position::Last,
            (false, false) => Position::Middle,
        }
    }

    /// Materialize member `k` of a train as a standalone single-fragment
    /// packet — PSN, offset, position, and (for integrity payloads) the data
    /// slice are exactly what the per-fragment path would have produced.
    /// Used by hops that must de-coalesce (credited links, non-uniform
    /// backlog, lossy WAN segments).
    ///
    /// # Panics
    /// Debug-asserts `k < count`.
    pub fn frag(&self, k: u32) -> Packet {
        debug_assert!(
            k < self.count,
            "fragment {k} out of train of {}",
            self.count
        );
        if self.count == 1 {
            return self.clone();
        }
        let offset = self.offset + k * self.stride;
        let position = Self::position_at(offset, self.stride, self.msg_len);
        let opcode = match self.opcode {
            Opcode::RcSend { .. } => Opcode::RcSend { position },
            Opcode::RcWrite { .. } => Opcode::RcWrite { position },
            Opcode::RcReadResponse { .. } => Opcode::RcReadResponse { position },
            other => other, // non-data opcodes never form trains
        };
        let data = self.data.as_ref().map(|d| {
            debug_assert_eq!(
                d.len(),
                (self.count * self.stride) as usize,
                "train data must cover every member"
            );
            d.slice((k * self.stride) as usize..((k + 1) * self.stride) as usize)
        });
        Packet {
            opcode,
            psn: self.psn.wrapping_add(k),
            payload: self.stride,
            offset,
            count: 1,
            stride: 0,
            gap_ns: 0,
            data,
            ..self.clone()
        }
    }

    /// Debug-mode validation of the train invariants (equal-size members,
    /// sane data coverage). Cheap no-op in release builds.
    pub fn debug_validate_train(&self) {
        debug_assert!(self.count >= 1, "packet must carry at least one fragment");
        if self.count > 1 {
            debug_assert_eq!(self.stride, self.payload, "train members are equal-size");
            debug_assert!(self.stride > 0, "train members carry payload");
            debug_assert!(
                self.offset + self.count * self.stride <= self.msg_len,
                "train overruns its message"
            );
            debug_assert!(
                matches!(
                    self.opcode,
                    Opcode::RcSend { .. } | Opcode::RcWrite { .. } | Opcode::RcReadResponse { .. }
                ),
                "only data fragments form trains"
            );
            if let Some(d) = self.data.as_ref() {
                debug_assert_eq!(d.len(), (self.count * self.stride) as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(opcode: Opcode, payload: u32) -> Packet {
        Packet {
            dst_lid: Lid(2),
            src_lid: Lid(1),
            dst_qpn: Qpn(1),
            src_qpn: Qpn(1),
            opcode,
            psn: 0,
            payload,
            msg_id: 0,
            msg_len: payload,
            offset: 0,
            imm: 0,
            count: 1,
            stride: 0,
            gap_ns: 0,
            data: None,
        }
    }

    #[test]
    fn positions() {
        assert_eq!(Position::of(0, 1), Position::Only);
        assert_eq!(Position::of(0, 3), Position::First);
        assert_eq!(Position::of(1, 3), Position::Middle);
        assert_eq!(Position::of(2, 3), Position::Last);
        assert!(Position::Only.is_last() && Position::Only.is_first());
        assert!(Position::Last.is_last() && !Position::Last.is_first());
        assert!(!Position::Middle.is_last() && !Position::Middle.is_first());
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(
            pkt(
                Opcode::RcSend {
                    position: Position::Only
                },
                2048
            )
            .wire_bytes(),
            2048 + RC_HEADER_BYTES
        );
        assert_eq!(
            pkt(Opcode::UdSend, 2048).wire_bytes(),
            2048 + UD_HEADER_BYTES
        );
        assert_eq!(pkt(Opcode::RcAck, 0).wire_bytes(), ACK_BYTES);
        assert_eq!(pkt(Opcode::RcReadRequest, 0).wire_bytes(), READ_REQ_BYTES);
    }

    #[test]
    fn lid_display() {
        assert_eq!(format!("{}", Lid(7)), "7");
        assert_eq!(format!("{:?}", Lid(7)), "lid7");
        assert_eq!(format!("{:?}", Qpn(3)), "qp3");
    }

    /// A 3-member train of 2048-byte fragments at the head of an 8000-byte
    /// message, starting from PSN 10.
    fn train() -> Packet {
        Packet {
            opcode: Opcode::RcSend {
                position: Position::First,
            },
            psn: 10,
            payload: 2048,
            msg_len: 8000,
            count: 3,
            stride: 2048,
            gap_ns: 2090,
            ..pkt(
                Opcode::RcSend {
                    position: Position::First,
                },
                2048,
            )
        }
    }

    #[test]
    fn train_accessors() {
        let t = train();
        t.debug_validate_train();
        assert!(t.is_train());
        assert_eq!(t.train_payload_bytes(), 6144);
        assert!(!t.tail_is_last()); // 6144 < 8000: a short tail follows
        assert_eq!(t.train_wire_bytes(), 3 * (2048 + RC_HEADER_BYTES));
        let single = pkt(Opcode::RcAck, 0);
        assert!(!single.is_train());
        assert!(single.tail_is_last()); // 0-byte message: its only packet
        assert_eq!(single.train_payload_bytes(), 0);
    }

    #[test]
    fn frag_reproduces_the_per_fragment_packets() {
        let t = train();
        for k in 0..3 {
            let f = t.frag(k);
            assert_eq!(f.count, 1);
            assert_eq!(f.stride, 0);
            assert_eq!(f.gap_ns, 0);
            assert_eq!(f.psn, 10 + k);
            assert_eq!(f.offset, k * 2048);
            assert_eq!(f.payload, 2048);
            let expect = if k == 0 {
                Position::First
            } else {
                Position::Middle // 8000-byte message: none of the 3 is Last
            };
            assert_eq!(f.opcode, Opcode::RcSend { position: expect });
        }
    }

    #[test]
    fn frag_of_a_whole_message_train_ends_with_last() {
        let mut t = train();
        t.msg_len = 6144; // exact multiple: train covers the whole message
        assert!(t.tail_is_last());
        assert_eq!(
            t.frag(2).opcode,
            Opcode::RcSend {
                position: Position::Last
            }
        );
        assert_eq!(
            t.frag(0).opcode,
            Opcode::RcSend {
                position: Position::First
            }
        );
    }

    #[test]
    fn frag_slices_integrity_data() {
        let mut t = train();
        let bytes: Bytes = (0..6144u32)
            .map(|i| (i % 251) as u8)
            .collect::<Vec<_>>()
            .into();
        t.data = Some(bytes.clone());
        t.debug_validate_train();
        let f1 = t.frag(1);
        assert_eq!(f1.data.as_deref(), Some(&bytes[2048..4096]));
    }

    #[test]
    fn frag_of_a_single_packet_is_identity() {
        let p = pkt(Opcode::UdSend, 512);
        let f = p.frag(0);
        assert_eq!(f.psn, p.psn);
        assert_eq!(f.payload, 512);
        assert_eq!(f.opcode, Opcode::UdSend);
    }

    #[test]
    fn header_calibration_matches_paper_peaks() {
        // SDR carries 1000 MB/s of wire bytes; goodput = payload fraction.
        let rc_goodput = 1000.0 * 2048.0 / (2048.0 + RC_HEADER_BYTES as f64);
        let ud_goodput = 1000.0 * 2048.0 / (2048.0 + UD_HEADER_BYTES as f64);
        assert!((rc_goodput - 980.0).abs() < 2.0, "rc {rc_goodput}");
        assert!((ud_goodput - 967.0).abs() < 2.0, "ud {ud_goodput}");
    }
}
