//! Minimal JSON support for the hermetic build: a value tree, a
//! recursive-descent parser, and compact/pretty printers.
//!
//! The build environment has no crates.io access, so scenario files,
//! regenerated figures, and the perf harness serialize through this crate
//! instead of `serde_json`. Object key order is preserved (insertion
//! order), so printing is fully deterministic — a hard requirement for the
//! bit-identical `results/*.json` regeneration check.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values print without a
    /// fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Member lookup on objects; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (must be integral and
    /// non-negative).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with 2-space indentation (the `serde_json::to_string_pretty`
    /// layout the checked-in results files use).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Value::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                })
            }
        }
    }
}

/// Build a [`Value::Obj`] from `(key, value)` pairs.
pub fn obj(members: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON numbers must be finite, got {n}");
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest round-trip float formatting; always re-parses to
        // the same bits.
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any of our
                            // documents; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reprints() {
        let doc = r#"{"name":"x","n":3,"f":0.25,"ok":true,"none":null,"xs":[1,2,3],"nested":{"a":[{"b":2}]}}"#;
        let v = Value::parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.to_compact(), doc);
        // Pretty output re-parses to the same tree.
        assert_eq!(Value::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn pretty_layout_matches_two_space_style() {
        let v = obj([("a", Value::from(1u64)), ("b", Value::Arr(vec![]))]);
        assert_eq!(v.to_pretty(), "{\n  \"a\": 1,\n  \"b\": []\n}");
    }

    #[test]
    fn numbers_round_trip() {
        for n in [0.0, -1.5, 2.0, 1e-9, 123456789.125, -0.0042] {
            let v = Value::parse(&Value::Num(n).to_compact()).unwrap();
            assert_eq!(v.as_f64(), Some(n));
        }
        assert_eq!(Value::Num(2.0).to_compact(), "2");
        assert_eq!(Value::Num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote \" slash \\ newline \n tab \t unicode µ";
        let v = Value::parse(&Value::Str(s.into()).to_compact()).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("nope").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Value::parse(" {\n \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
