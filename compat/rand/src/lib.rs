//! Hermetic in-repo stand-in for the external `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the tiny subset of the `rand` 0.8 API it actually uses: a deterministic
//! small PRNG seeded from a `u64`, and `Rng::gen_range` over integer ranges.
//!
//! The generator is xoshiro256** (public domain, Blackman/Vigna) seeded via
//! SplitMix64 — the same construction `rand`'s `SmallRng` uses on 64-bit
//! targets. Determinism across runs is the only contract the simulator
//! relies on; no cryptographic properties are claimed.

#![forbid(unsafe_code)]

/// Seedable generators (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (API-compatible subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (Lemire-style rejection keeps the
    /// distribution unbiased; the simulator only draws small ranges).
    fn gen_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Draw a uniform sample in `[range.start, range.end)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Rejection sampling on the top bits: unbiased for any span.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return range.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(0..1_000_000u32);
            assert!(v < 1_000_000);
        }
        // Small ranges hit every value eventually.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
