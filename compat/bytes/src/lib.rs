//! Hermetic in-repo stand-in for the external `bytes` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the `bytes` 1.x API the simulator uses: a cheaply-clonable
//! immutable byte buffer ([`Bytes`], an `Arc<[u8]>` plus a range), a growable
//! builder ([`BytesMut`]), and the [`Buf`]/[`BufMut`] cursor traits for the
//! big-endian integer accessors the wire codecs call.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable slice of shared bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Convert into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source (big-endian accessors, advancing subset).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Consume and return the next byte.
    fn get_u8(&mut self) -> u8;
    /// Consume and return the next big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consume and return the next big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (v, rest) = self.split_first().expect("buffer underrun");
        *self = rest;
        *v
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_be_bytes(head.try_into().expect("buffer underrun"));
        *self = rest;
        v
    }

    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let v = u64::from_be_bytes(head.try_into().expect("buffer underrun"));
        *self = rest;
        v
    }
}

/// Write cursor over a growable byte sink (big-endian subset).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn slices_share_and_compare() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert_eq!(mid.len(), 3);
        assert_eq!(b.slice(..), b);
        assert!(b.slice(2..2).is_empty());
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![b'h', b'i', 0]);
        assert_eq!(format!("{b:?}"), "b\"hi\\x00\"");
    }
}
