//! Cross-crate integration tests: drive the public API end-to-end and check
//! the paper's headline claims hold through the full stack.

use ibwan_repro::ibwan_core;
use ibwan_repro::mpisim::bench::{osu_bw, osu_latency, wan_pair_with};
use ibwan_repro::mpisim::proto::MpiConfig;
use ibwan_repro::mpisim::world::JobSpec;
use ibwan_repro::nasbench::{run as nas_run, NasBenchmark};
use ibwan_repro::nfssim::{run_read_experiment, NfsSetup, Transport};
use ibwan_repro::obsidian::wire_delay_for_km;
use ibwan_repro::simcore::Dur;

#[test]
fn table1_is_the_paper_mapping() {
    let fig = ibwan_core::verbs::table1();
    let s = &fig.series[0];
    for (km, us) in [
        (1.0, 5.0),
        (20.0, 100.0),
        (200.0, 1000.0),
        (2000.0, 10000.0),
    ] {
        assert_eq!(s.y_at(km), Some(us));
    }
}

#[test]
fn small_delays_are_absorbed_across_the_stack() {
    // The paper's first conclusion: all protocols absorb delays up to
    // ~100 us (20 km) and sustain performance.
    let d0 = Dur::ZERO;
    let d100 = wire_delay_for_km(20);

    // MPI large-message bandwidth.
    let bw0 = osu_bw(wan_pair_with(d0, MpiConfig::default()), 1 << 20, 8, 4);
    let bw100 = osu_bw(wan_pair_with(d100, MpiConfig::default()), 1 << 20, 8, 4);
    assert!(bw100 > 0.9 * bw0, "MPI 1MB: {bw0} -> {bw100}");

    // NFS/RDMA.
    let mut s0 = NfsSetup::scaled(Transport::Rdma, 8, Some(d0));
    s0.file_size = 16 << 20;
    let mut s100 = s0;
    s100.delay = Some(d100);
    let n0 = run_read_experiment(s0).mbs;
    let n100 = run_read_experiment(s100).mbs;
    assert!(n100 > 0.5 * n0, "NFS/RDMA: {n0} -> {n100}");
}

#[test]
fn high_delay_severely_impacts_unoptimized_protocols() {
    // Second conclusion: most approaches are severely impacted at high
    // delay — and the proposed optimizations recover much of it.
    let d10ms = Dur::from_ms(10);

    let medium_orig = osu_bw(wan_pair_with(d10ms, MpiConfig::default()), 16384, 64, 3);
    let medium_tuned = osu_bw(wan_pair_with(d10ms, MpiConfig::wan_tuned()), 16384, 64, 3);
    assert!(
        medium_tuned > 1.3 * medium_orig,
        "threshold tuning must recover medium-message bandwidth: {medium_orig} -> {medium_tuned}"
    );
}

#[test]
fn mpi_latency_tracks_wire_delay() {
    let lat0 = osu_latency(JobSpec::two_clusters(1, 1, Dur::ZERO), 4, 20);
    let lat1ms = osu_latency(JobSpec::two_clusters(1, 1, Dur::from_ms(1)), 4, 20);
    assert!(
        (lat1ms - lat0 - 1000.0).abs() < 10.0,
        "one-way MPI latency should grow by the injected delay: {lat0} -> {lat1ms}"
    );
}

#[test]
fn nas_feasibility_conclusion() {
    // IS and FT sustain performance at 200 km; CG cannot — the basis of the
    // paper's cluster-of-clusters feasibility claim.
    let d = Dur::from_ms(1);
    let is0 = nas_run(NasBenchmark::Is, 8, 8, Dur::ZERO).time_secs;
    let is1 = nas_run(NasBenchmark::Is, 8, 8, d).time_secs;
    let cg0 = nas_run(NasBenchmark::Cg, 8, 8, Dur::ZERO).time_secs;
    let cg1 = nas_run(NasBenchmark::Cg, 8, 8, d).time_secs;
    assert!(is1 / is0 < 1.5, "IS slowdown {}", is1 / is0);
    assert!(cg1 / cg0 > is1 / is0, "CG must degrade more than IS");
}

#[test]
fn nfs_transport_crossover() {
    // RDMA best near the LAN; IPoIB-RC best at 1 ms (Figure 13 b vs c).
    let quick = |t, d| {
        let mut s = NfsSetup::scaled(t, 8, Some(d));
        s.file_size = 16 << 20;
        run_read_experiment(s).mbs
    };
    let rdma_low = quick(Transport::Rdma, Dur::from_us(10));
    let rc_low = quick(Transport::IpoibRc, Dur::from_us(10));
    let rdma_high = quick(Transport::Rdma, Dur::from_ms(1));
    let rc_high = quick(Transport::IpoibRc, Dur::from_ms(1));
    assert!(
        rdma_low > rc_low,
        "low delay: RDMA {rdma_low} vs RC {rc_low}"
    );
    assert!(
        rc_high > rdma_high,
        "high delay: RC {rc_high} vs RDMA {rdma_high}"
    );
}

#[test]
fn simulations_are_deterministic() {
    let run_once = || {
        let spec = JobSpec::two_clusters(1, 1, Dur::from_us(100));
        osu_bw(spec.with_mpi(MpiConfig::default()), 4096, 16, 3)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "same config must be bit-identical"
    );
}

#[test]
fn figures_carry_all_series() {
    let f6 = ibwan_core::ipoib_exp::fig6_ipoib_ud(&ibwan_core::RunConfig::default(), false);
    assert_eq!(f6.series.len(), 4); // four window sizes
    for s in &f6.series {
        assert_eq!(s.points.len(), 5); // five delays
    }
}

#[test]
fn sdp_and_pfs_substrates_tell_the_same_wan_story() {
    use ibwan_repro::pfs::{run_striped_read, PfsSetup};

    // PFS: striping = parallel streams at the filesystem level.
    let one = run_striped_read(PfsSetup::quick(1, Some(Dur::from_ms(10)))).mbs;
    let four = run_striped_read(PfsSetup::quick(4, Some(Dur::from_ms(10)))).mbs;
    assert!(four > 2.5 * one, "striping: {one} -> {four} MB/s at 10 ms");
}

#[test]
fn planner_numbers_agree_with_measured_figures() {
    use ibwan_repro::ibwan_core::planner;
    use ibwan_repro::simcore::Rate;

    // Figure 5 measured: 64 KB RC messages halve at ~1 ms. The planner's
    // required message size for near-peak at 1 ms must exceed 64 KB.
    let need = planner::rc_message_size_for(Rate::from_mbytes_per_sec(900), Dur::from_ms(1), 16);
    assert!(need > 65536, "planner demands {need} B at 1 ms");
    // And at 100 us, 64 KB should suffice — matching the measured plateau.
    let need_100us =
        planner::rc_message_size_for(Rate::from_mbytes_per_sec(900), Dur::from_us(100), 16);
    assert!(need_100us < 65536, "{need_100us}");
}
