//! Protocol-invariant tests on the properties DESIGN.md calls out:
//! RC delivers every byte exactly once and in order under arbitrary
//! message schedules and WAN delays; TCP over IPoIB delivers exact byte
//! counts; collectives terminate for arbitrary shapes; simulations replay
//! deterministically.
//!
//! Formerly proptest-driven; the hermetic build vendors no proptest, so
//! each property now walks a seeded deterministic case grid (same coverage
//! envelope, bit-reproducible failures).

use bytes::Bytes;
use ibwan_repro::ibfabric::hca::HcaCore;
use ibwan_repro::ibfabric::perftest::rc_qp_pair;
use ibwan_repro::ibfabric::qp::{QpConfig, Qpn};
use ibwan_repro::ibfabric::ulp::Ulp;
use ibwan_repro::ibfabric::verbs::{Completion, RecvWr, SendWr};
use ibwan_repro::ibfabric::{Fabric, NodeHandle};
use ibwan_repro::ibwan_core::topology::{wan_node_pair, wan_node_pair_lossy};
use ibwan_repro::ibwan_core::RunConfig;
use ibwan_repro::ipoib::node::{IpoibConfig, IpoibMode, IpoibNode};
use ibwan_repro::mpisim::coll;
use ibwan_repro::mpisim::script::Op;
use ibwan_repro::mpisim::world::{JobSpec, MpiJob};
use ibwan_repro::simcore::{Ctx, Dur};
use ibwan_repro::tcpstack::TcpConfig;

/// SplitMix64: the deterministic case generator replacing proptest draws.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A deterministic pseudo-random vector of message sizes in `[1, max)`.
fn random_sizes(seed: u64, count: usize, max: u32) -> Vec<u32> {
    (0..count)
        .map(|i| 1 + (splitmix(seed ^ (i as u64) << 17) % (max as u64 - 1)) as u32)
        .collect()
}

/// Deterministic payload pattern for message `i` of length `len`.
fn pattern(i: usize, len: usize) -> Bytes {
    (0..len)
        .map(|j| ((i * 131 + j * 7) % 251) as u8)
        .collect::<Vec<u8>>()
        .into()
}

/// Posts a list of integrity-checked messages on start.
struct IntegritySender {
    qpn: Qpn,
    sizes: Vec<u32>,
}

impl Ulp for IntegritySender {
    fn start(&mut self, hca: &mut HcaCore, ctx: &mut Ctx<'_>) {
        for (i, &len) in self.sizes.iter().enumerate() {
            let wr = SendWr::send(i as u64, len, i as u64).with_data(pattern(i, len as usize));
            hca.post_send(ctx, self.qpn, wr);
        }
    }
    fn on_completion(&mut self, _h: &mut HcaCore, _c: &mut Ctx<'_>, _x: Completion) {}
}

/// Collects received messages with payloads.
struct IntegrityReceiver {
    qpn: Qpn,
    got: Vec<(u32, u64, Option<Bytes>)>,
}

impl Ulp for IntegrityReceiver {
    fn start(&mut self, hca: &mut HcaCore, _ctx: &mut Ctx<'_>) {
        for _ in 0..4096 {
            hca.post_recv(self.qpn, RecvWr { wr_id: 0 });
        }
    }
    fn on_completion(&mut self, _h: &mut HcaCore, _c: &mut Ctx<'_>, c: Completion) {
        if let Completion::RecvDone { len, imm, data, .. } = c {
            self.got.push((len, imm, data));
        }
    }
}

fn integrity_fabric(sizes: &[u32], delay_us: u64) -> (Fabric, NodeHandle, NodeHandle) {
    let (mut f, a, b) = wan_node_pair(
        &RunConfig::default(),
        9,
        Dur::from_us(delay_us),
        Box::new(IntegritySender {
            qpn: Qpn(0),
            sizes: sizes.to_vec(),
        }),
        Box::new(IntegrityReceiver {
            qpn: Qpn(0),
            got: Vec::new(),
        }),
    );
    let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
    f.hca_mut(a).ulp_mut::<IntegritySender>().qpn = qa;
    f.hca_mut(b).ulp_mut::<IntegrityReceiver>().qpn = qb;
    (f, a, b)
}

fn assert_intact(sizes: &[u32], got: &[(u32, u64, Option<Bytes>)], what: &str) {
    assert_eq!(got.len(), sizes.len(), "{what}: exactly-once delivery");
    for (i, (&expected, (len, imm, data))) in sizes.iter().zip(got.iter()).enumerate() {
        assert_eq!(*len, expected, "{what}: length of message {i}");
        assert_eq!(*imm, i as u64, "{what}: ordering of message {i}");
        let d = data.as_ref().expect("payload must arrive");
        assert_eq!(
            d,
            &pattern(i, expected as usize),
            "{what}: bytes of message {i}"
        );
    }
}

/// RC delivers every message exactly once, in order, bytes intact,
/// regardless of sizes (multi-fragment included) and WAN delay.
#[test]
fn rc_delivers_in_order_and_intact() {
    for (case, &delay_us) in [0u64, 50, 1000, 10_000].iter().enumerate() {
        for round in 0..4u64 {
            let seed = 100 * case as u64 + round;
            let count = 1 + (splitmix(seed) % 15) as usize;
            let sizes = random_sizes(seed ^ 0xA5A5, count, 12_000);
            let (mut f, _a, b) = integrity_fabric(&sizes, delay_us);
            f.run();
            let got = &f.hca(b).ulp::<IntegrityReceiver>().got;
            assert_intact(&sizes, got, &format!("delay={delay_us}us seed={seed}"));
        }
    }
}

/// TCP over IPoIB delivers exactly the bytes the application sent, for
/// any transfer size, stream count, window, and mode.
#[test]
fn tcp_over_ipoib_delivers_exact_byte_counts() {
    let cases: &[(u64, usize, u64, bool, u64)] = &[
        // (total, streams, window_kb, rc_mode, delay_us)
        (1, 1, 16, false, 0),
        (399_999, 4, 1024, true, 200),
        (65_537, 2, 64, true, 0),
        (100_000, 3, 16, false, 200),
        (250_000, 1, 1024, false, 0),
        (8_192, 4, 64, true, 200),
        (77_777, 2, 16, true, 0),
        (123_456, 3, 1024, false, 200),
    ];
    for &(total, streams, window_kb, rc_mode, delay_us) in cases {
        let cfg = if rc_mode {
            IpoibConfig::rc(65536)
        } else {
            IpoibConfig::ud()
        };
        let tcp = TcpConfig::for_mtu(cfg.mtu).with_window(window_kb << 10);
        let tx = Box::new(IpoibNode::sender(cfg, tcp, streams, total));
        let rx = Box::new(IpoibNode::receiver(cfg, tcp, streams, total));
        let (mut f, a, b) =
            wan_node_pair(&RunConfig::default(), 13, Dur::from_us(delay_us), tx, rx);
        let qa = f.hca_mut(a).core_mut().create_qp(cfg.qp_config());
        let qb = f.hca_mut(b).core_mut().create_qp(cfg.qp_config());
        if cfg.mode == IpoibMode::Rc {
            f.hca_mut(a).core_mut().connect(qa, (b.lid, qb));
            f.hca_mut(b).core_mut().connect(qb, (a.lid, qa));
        }
        {
            let u = f.hca_mut(a).ulp_mut::<IpoibNode>();
            u.port.qpn = qa;
            u.port.peer = Some((b.lid, qb));
        }
        {
            let u = f.hca_mut(b).ulp_mut::<IpoibNode>();
            u.port.qpn = qb;
            u.port.peer = Some((a.lid, qa));
        }
        f.run();
        assert_eq!(
            f.hca(b).ulp::<IpoibNode>().delivered(),
            total * streams as u64,
            "total={total} streams={streams} window={window_kb}K rc={rc_mode} delay={delay_us}"
        );
    }
}

/// Every collective terminates on the real engine for arbitrary rank
/// counts, roots, and sizes (power-of-two where the algorithm needs it).
#[test]
fn collectives_terminate_on_engine() {
    for log_n in 1u32..4 {
        for &(root_pick, len, delay_us) in &[
            (0usize, 16u32, 0u64),
            (3, 8192, 100),
            (5, 65536, 0),
            (7, 8192, 100),
        ] {
            let n = 1usize << log_n;
            let root = root_pick % n;
            let half = (n / 2).max(1);
            let spec = JobSpec::two_clusters(n - half, half, Dur::from_us(delay_us));
            let mut job = MpiJob::build(spec, |rank, nr| {
                let members: Vec<usize> = (0..nr).collect();
                let mut ops = coll::bcast(&members, rank, root, len, 100);
                ops.extend(coll::barrier(nr, rank, 8000));
                ops.extend(coll::allreduce(nr, rank, 8, 16000));
                ops.extend(coll::alltoall(nr, rank, 256, 24000));
                ops
            });
            // MpiJob::run asserts every rank finished (deadlock check).
            job.run();
        }
    }
}

/// Even with WAN packet loss, RC delivers every message exactly once,
/// in order, with its bytes intact (go-back-N retransmission).
#[test]
fn rc_is_reliable_under_wan_loss() {
    for (case, &loss_ppm) in [5_000u32, 20_000, 50_000].iter().enumerate() {
        for round in 0..3u64 {
            let seed = 1 + 7 * case as u64 + round;
            let count = 1 + (splitmix(seed ^ 0x10F) % 9) as usize;
            let sizes = random_sizes(seed ^ 0xBEEF, count, 8_000);
            let (mut f, a, b) = wan_node_pair_lossy(
                &RunConfig::default(),
                seed,
                Dur::from_us(100),
                loss_ppm,
                Box::new(IntegritySender {
                    qpn: Qpn(0),
                    sizes: sizes.to_vec(),
                }),
                Box::new(IntegrityReceiver {
                    qpn: Qpn(0),
                    got: Vec::new(),
                }),
            );
            // Tight RTO so the retry storm converges quickly in virtual time.
            let qp = ibwan_repro::ibfabric::qp::QpConfig {
                rto: Dur::from_ms(2),
                ..ibwan_repro::ibfabric::qp::QpConfig::rc()
            };
            let (qa, qb) = rc_qp_pair(&mut f, a, b, qp);
            f.hca_mut(a).ulp_mut::<IntegritySender>().qpn = qa;
            f.hca_mut(b).ulp_mut::<IntegrityReceiver>().qpn = qb;
            f.run();
            let got = &f.hca(b).ulp::<IntegrityReceiver>().got;
            assert_intact(&sizes, got, &format!("loss={loss_ppm}ppm seed={seed}"));
        }
    }
}

/// Subnet-manager routing: on a pseudo-random tree of switches with HCAs
/// hanging off pseudo-random switches, every pair of endpoints can exchange
/// a message (BFS forwarding tables are complete and loop-free).
#[test]
fn random_tree_topologies_route_all_pairs() {
    use ibwan_repro::ibfabric::fabric::FabricBuilder;
    use ibwan_repro::ibfabric::hca::HcaConfig;
    use ibwan_repro::ibfabric::link::LinkConfig;

    for seed in 0..12u64 {
        let n_switches = 1 + (splitmix(seed) % 5) as usize;
        let n_nodes = 2 + (splitmix(seed ^ 1) % 6) as usize;
        let attach: Vec<usize> = (0..n_nodes)
            .map(|i| (splitmix(seed ^ (i as u64) << 8) % 6) as usize)
            .collect();
        let src = (splitmix(seed ^ 2) as usize) % n_nodes;
        let dst_raw = (splitmix(seed ^ 3) as usize) % n_nodes;
        let dst = if dst_raw == src {
            (src + 1) % n_nodes
        } else {
            dst_raw
        };
        let size = 1 + (splitmix(seed ^ 4) % 8999) as u32;

        let mut b = FabricBuilder::new(3);
        let mut nodes = Vec::new();
        for i in 0..n_nodes {
            let ulp: Box<dyn Ulp> = if i == src {
                Box::new(IntegritySender {
                    qpn: Qpn(0),
                    sizes: vec![size],
                })
            } else if i == dst {
                Box::new(IntegrityReceiver {
                    qpn: Qpn(0),
                    got: Vec::new(),
                })
            } else {
                // Bystander nodes own no QPs.
                Box::new(ibwan_repro::ibfabric::NullUlp)
            };
            nodes.push(b.add_hca(HcaConfig::default(), ulp));
        }
        let switches: Vec<_> = (0..n_switches).map(|_| b.add_switch()).collect();
        // Random tree over switches: switch k links to a parent among 0..k.
        for k in 1..n_switches {
            let p = (splitmix(seed ^ (k as u64) << 16) as usize) % k;
            b.link(switches[k], switches[p], LinkConfig::ddr_lan());
        }
        for (i, node) in nodes.iter().enumerate() {
            let sw = switches[attach[i] % n_switches];
            b.link(node.actor, sw, LinkConfig::ddr_lan());
        }
        let mut f = b.finish();
        let (qa, qb) = rc_qp_pair(&mut f, nodes[src], nodes[dst], QpConfig::rc());
        f.hca_mut(nodes[src]).ulp_mut::<IntegritySender>().qpn = qa;
        f.hca_mut(nodes[dst]).ulp_mut::<IntegrityReceiver>().qpn = qb;
        f.run();
        let got = &f.hca(nodes[dst]).ulp::<IntegrityReceiver>().got;
        assert_eq!(
            got.len(),
            1,
            "seed {seed}: message must arrive across the tree"
        );
        assert_eq!(got[0].0, size, "seed {seed}");
    }
}

/// SDP delivers exactly the bytes sent, for any message size mix
/// straddling the BCopy/ZCopy threshold, at any delay.
#[test]
fn sdp_delivers_exact_bytes() {
    use ibwan_repro::sdp::{SdpConfig, SdpNode};
    let cases: &[(u32, u64, u64)] = &[
        // (msg_size, count, delay_us)
        (1, 39, 0),
        (4096, 17, 500),
        (32768, 8, 0),
        (65536, 4, 500),
        (262_144, 2, 0),
        (262_144, 1, 500),
    ];
    for &(msg_size, count, delay_us) in cases {
        let tx = Box::new(SdpNode::sender(SdpConfig::default(), msg_size, count));
        let rx = Box::new(SdpNode::receiver(SdpConfig::default()));
        let (mut f, a, b) =
            wan_node_pair(&RunConfig::default(), 21, Dur::from_us(delay_us), tx, rx);
        let (qa, qb) = rc_qp_pair(&mut f, a, b, QpConfig::rc());
        f.hca_mut(a).ulp_mut::<SdpNode>().socket.qpn = qa;
        f.hca_mut(b).ulp_mut::<SdpNode>().socket.qpn = qb;
        f.run();
        assert_eq!(
            f.hca(b).ulp::<SdpNode>().delivered(),
            msg_size as u64 * count,
            "size={msg_size} count={count} delay={delay_us}"
        );
    }
}

/// Every synthetic pattern terminates on the engine for arbitrary
/// parameters (deadlock freedom of the generated scripts).
#[test]
fn patterns_terminate() {
    use ibwan_repro::mpisim::patterns::Pattern;
    for which in 0usize..4 {
        for &(per_cluster, msg, reps) in &[(2usize, 64u32, 1u32), (3, 8192, 3), (4, 65536, 2)] {
            let n = 2 * per_cluster;
            let p = match which {
                0 => Pattern::Halo2d {
                    rows: 2,
                    cols: n / 2,
                    face_bytes: msg,
                    iters: reps,
                    compute_us: 10,
                },
                1 => Pattern::MasterWorker {
                    task_bytes: msg,
                    result_bytes: 64,
                    tasks_per_worker: reps,
                    compute_us: 10,
                },
                2 => Pattern::Ring {
                    block_bytes: msg,
                    iters: reps,
                },
                _ => Pattern::SparseRandom {
                    degree: 2,
                    msg_bytes: msg,
                    supersteps: reps,
                    seed: 11,
                },
            };
            let spec = JobSpec::two_clusters(per_cluster, per_cluster, Dur::from_us(50));
            let mut job = MpiJob::build(spec, |rank, nr| p.ops(rank, nr));
            job.run(); // asserts all ranks finished
        }
    }
}

/// Same seed, same configuration: bit-identical virtual end times.
#[test]
fn deterministic_replay() {
    for seed in 0..6u64 {
        let delay_us = splitmix(seed ^ 0x77) % 2_000;
        let count = 1 + (splitmix(seed ^ 0x99) % 7) as usize;
        let sizes = random_sizes(seed, count, 5_000);
        let run = |sizes: &[u32]| {
            let (mut f, _a, _b) = integrity_fabric(sizes, delay_us);
            f.run().as_ns()
        };
        assert_eq!(run(&sizes), run(&sizes), "seed {seed}");
    }
}

/// Message coalescing preserves message count and total bytes.
#[test]
fn coalescing_preserves_messages() {
    use ibwan_repro::mpisim::proto::{CoalesceConfig, MpiConfig};
    for &(count, len) in &[(1u32, 1u32), (199, 1023), (64, 512), (150, 3), (7, 777)] {
        let cfg = MpiConfig {
            coalescing: Some(CoalesceConfig::default()),
            ..MpiConfig::default()
        };
        let spec = JobSpec::two_clusters(1, 1, Dur::from_us(100)).with_mpi(cfg);
        let mut job = MpiJob::build(spec, |rank, _| {
            if rank == 0 {
                vec![
                    Op::SendWindow {
                        to: 1,
                        len,
                        tag: 1,
                        count,
                    },
                    Op::Recv { from: 1, tag: 2 },
                ]
            } else {
                vec![
                    Op::RecvWindow {
                        from: 0,
                        tag: 1,
                        count,
                    },
                    Op::Send {
                        to: 0,
                        len: 4,
                        tag: 2,
                    },
                ]
            }
        });
        job.run();
        assert_eq!(job.process(0).proto.msgs_sent(), count as u64);
        assert_eq!(job.process(0).proto.bytes_sent(), count as u64 * len as u64);
    }
}
